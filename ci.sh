#!/usr/bin/env sh
# Offline CI gate for the workspace. Mirrors .github/workflows/ci.yml so the
# same checks run locally and in automation; everything resolves against the
# vendored shim crates under crates/shims/, so no network access is needed.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

# --workspace matters: the root manifest is both a package and a workspace,
# so a bare `cargo build` covers only the root package and would skip the
# harness binaries entirely.
echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p bench --features bench --all-targets -- -D warnings"
cargo clippy -p bench --features bench --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace export smoke test"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
cargo run --release -p harness --bin trace -- --n 256 --plan all --out "$out/trace.json"
cargo run --release -p harness --bin trace -- --n 256 --plan jw --out "$out/trace.csv"
for f in trace.json trace.csv; do
    test -s "$out/$f" || { echo "FAIL: $f is empty"; exit 1; }
done
grep -q '"traceEvents"' "$out/trace.json" || { echo "FAIL: not a Chrome trace"; exit 1; }

echo "==> fault-injection smoke test"
cargo run --release -p harness --bin faults -- --seed 7 --dir "$out/faults" | tee "$out/faults.log"
grep -q 'FAULTS OK' "$out/faults.log" || { echo "FAIL: fault recovery smoke did not pass"; exit 1; }

echo "==> threaded repro smoke test (--threads 4, small N)"
cargo run --release -p harness --bin repro-all -- --quick --max-n 1024 --threads 4 \
    > "$out/repro-threaded.log"
grep -q 'jw-parallel' "$out/repro-threaded.log" || { echo "FAIL: threaded repro produced no tables"; exit 1; }

echo "==> bench-json smoke test"
# The speedup gate self-waives on single-core machines (BENCH SKIP); the
# bit-exactness gate inside the benchmark always applies, so BENCH FAIL
# means either divergent forces or a real slowdown on a multicore machine.
# quick sizes bench at N in {1024, 8192}, so the N >= 4096 speedup gate is
# active whenever the machine has more than one core.
cargo run --release -p harness --bin repro-all -- --quick --threads 4 \
    --bench-json "$out/BENCH_pr4.json" > "$out/bench.log"
test -s "$out/BENCH_pr4.json" || { echo "FAIL: BENCH_pr4.json missing or empty"; exit 1; }
grep -q '"rows"' "$out/BENCH_pr4.json" || { echo "FAIL: BENCH_pr4.json has no rows"; exit 1; }
grep -q 'BENCH OK\|BENCH SKIP' "$out/bench.log" || {
    echo "FAIL: bench gate did not pass:"; grep 'BENCH' "$out/bench.log" || true; exit 1; }

# The same repro-all run writes the PR5 hot-path rows next to the pr4 file.
# The JSON must parse (have rows), every row must be bit-exact, and the
# greppable verdict must not be a failure.
test -s "$out/BENCH_pr5.json" || { echo "FAIL: BENCH_pr5.json missing or empty"; exit 1; }
grep -q '"rows"' "$out/BENCH_pr5.json" || { echo "FAIL: BENCH_pr5.json has no rows"; exit 1; }
if grep -q '"bitexact": false' "$out/BENCH_pr5.json"; then
    echo "FAIL: BENCH_pr5.json reports an inexact optimized path"; exit 1
fi
grep -q 'BENCH_PR5 OK\|BENCH_PR5 SKIP' "$out/bench.log" || {
    echo "FAIL: pr5 bench gate did not pass:"; grep 'BENCH_PR5' "$out/bench.log" || true; exit 1; }

# The same repro-all run also writes the out-of-core tree-pipeline rows.
# Both bit-exactness columns must hold at every size; the 1.5x speedup and
# PTPM-agreement gates only arm at N >= 1M (the SHARD smoke below).
test -s "$out/BENCH_pr10.json" || { echo "FAIL: BENCH_pr10.json missing or empty"; exit 1; }
grep -q '"rows"' "$out/BENCH_pr10.json" || { echo "FAIL: BENCH_pr10.json has no rows"; exit 1; }
if grep -q '"device_bitexact": false\|"sharded_bitexact": false' "$out/BENCH_pr10.json"; then
    echo "FAIL: BENCH_pr10.json reports an inexact out-of-core path"; exit 1
fi
grep -q 'BENCH_PR10 OK\|BENCH_PR10 SKIP' "$out/bench.log" || {
    echo "FAIL: pr10 bench gate did not pass:"; grep 'BENCH_PR10' "$out/bench.log" || true; exit 1; }

echo "==> bench-history trajectory gate (append-and-verify + negative control)"
# The committed trajectory (bench/history.jsonl) is copied aside, this run's
# snapshot is appended, and the noise-banded gate must say OK or SKIP (SKIP
# is legitimate: first run on a new parallelism class has no comparable
# baseline — DESIGN.md section 13). CI never rewrites the committed file;
# appending a canonical entry is a reviewed `--write` against the real path.
hist="$out/history.jsonl"
cp bench/history.jsonl "$hist"
./target/release/bench-history --history "$hist" --ingest "$out/BENCH_pr4.json" \
    --label ci --write | tee "$out/history.log"
grep -q 'BENCH HISTORY OK\|BENCH HISTORY SKIP' "$out/history.log" || {
    echo "FAIL: bench-history gate did not pass:"
    grep 'BENCH HISTORY' "$out/history.log" || true; exit 1; }
# negative control: the same snapshot with a synthetic 10x slowdown injected
# must FAIL against the baseline the previous ingest just wrote (same
# machine, same class), and the bin must exit 1. A gate that cannot fail is
# not a gate.
set +e
./target/release/bench-history --history "$hist" --ingest "$out/BENCH_pr4.json" \
    --label slow --inject-slowdown 10 > "$out/history-slow.log" 2>&1
slow_code=$?
set -e
test "$slow_code" -eq 1 || {
    echo "FAIL: injected 10x slowdown exited $slow_code, want 1"; exit 1; }
grep -q 'BENCH HISTORY FAIL' "$out/history-slow.log" || {
    echo "FAIL: injected 10x slowdown was not flagged:"
    grep 'BENCH HISTORY' "$out/history-slow.log" || true; exit 1; }

echo "==> SHARD release smoke (million-body out-of-core tree pipeline)"
# The full PR10 gate: at N = 1M the on-device tree pipeline must beat the
# host tree path by >= 1.5x, the PTPM pipeline forecast must agree with the
# simulated clock within (0.8, 1.25), Morton sharding must shrink the peak
# device working set, and both the device-built tree and every shard split
# must reproduce the in-core forces bit-for-bit — all encoded in the
# BENCH_PR10 OK verdict (a SKIP here means the 1M size never ran: fail).
./target/release/bench-pr10 --quick --n 1048576 --shards 16 \
    --json "$out/BENCH_pr10_1m.json" | tee "$out/shard-smoke.log"
grep -q 'BENCH_PR10 OK' "$out/shard-smoke.log" || {
    echo "FAIL: million-body shard smoke did not pass:"
    grep 'BENCH_PR10' "$out/shard-smoke.log" || true; exit 1; }
test -s "$out/BENCH_pr10_1m.json" || { echo "FAIL: BENCH_pr10_1m.json missing or empty"; exit 1; }

echo "==> autotuner smoke test (forecast/measured, then db-hit, then --plan auto provenance)"
# First resolution on a fresh spool must come from the model or a
# measurement; the second must replay the persisted winner from tuning.json.
# Then a --plan auto submission must carry the db-hit provenance through the
# server into the job's bench.json artifact.
aspool="$out/tune-spool"
./target/release/autotune --spool "$aspool" --n 256 --seed 3 | tee "$out/autotune-cold.log"
grep -Eq 'AUTOTUNE OK plan=.* source=(forecast|measured)' "$out/autotune-cold.log" || {
    echo "FAIL: cold autotune did not resolve via forecast/measured"; exit 1; }
./target/release/autotune --spool "$aspool" --n 256 --seed 3 | tee "$out/autotune-warm.log"
grep -q 'AUTOTUNE OK.*source=db-hit' "$out/autotune-warm.log" || {
    echo "FAIL: warm autotune did not hit the tuning DB"; exit 1; }
./target/release/submit --spool "$aspool" --plan auto --n 256 --seed 3 --steps 2 --every 2 \
    | tee "$out/submit-auto.log"
grep -q 'plan auto: .*source=db-hit' "$out/submit-auto.log" || {
    echo "FAIL: submit --plan auto did not hit the tuning DB"; exit 1; }
./target/release/serve --spool "$aspool" | tee "$out/serve-auto.log"
grep -q 'JOBS OK' "$out/serve-auto.log" || { echo "FAIL: auto-plan job did not complete"; exit 1; }
grep -rq '"plan_source": *"auto:db-hit"' "$aspool/jobs" || {
    echo "FAIL: bench.json artifact does not record the auto resolution path"; exit 1; }

echo "==> job-server crash-recovery smoke test (SIGKILL mid-job)"
# Submit a small batch, kill the server with SIGKILL mid-job, restart it,
# and require the summary's JOBS OK tail: the interrupted job must resume
# from its checkpoint and verify bit-exact against an uninterrupted
# reference run. The server binary is exec'd directly (not via cargo run)
# so the SIGKILL hits the server process itself.
spool="$out/spool"
./target/release/submit --spool "$spool" --n 96 --steps 12 --seed 1 --every 2
./target/release/submit --spool "$spool" --n 96 --steps 12 --seed 2 --every 2 --priority high
./target/release/submit --spool "$spool" --n 96 --steps 12 --seed 3 --every 2 --fault-seed 7
./target/release/serve --spool "$spool" --throttle-ms 80 > "$out/serve-killed.log" 2>&1 &
serve_pid=$!
sleep 1
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
test "$(ls "$spool/running" "$spool/submitted" 2>/dev/null | grep -c json || true)" -gt 0 || {
    echo "FAIL: SIGKILL landed after the drain finished; nothing left to recover"; exit 1; }
./target/release/serve --spool "$spool" | tee "$out/serve-restart.log"
grep -q 'JOBS OK' "$out/serve-restart.log" || { echo "FAIL: restarted server did not report JOBS OK"; exit 1; }
grep -q 'requeued=[1-9]' "$out/serve-restart.log" || { echo "FAIL: no killed job was requeued"; exit 1; }

# identical resubmission of the full batch must be served 100% from cache
./target/release/submit --spool "$spool" --n 96 --steps 12 --seed 1 --every 2
./target/release/submit --spool "$spool" --n 96 --steps 12 --seed 2 --every 2 --priority high
./target/release/submit --spool "$spool" --n 96 --steps 12 --seed 3 --every 2 --fault-seed 7
./target/release/serve --spool "$spool" | tee "$out/serve-cached.log"
grep -q 'completed=3 computed=0 cache-hits=3' "$out/serve-cached.log" || {
    echo "FAIL: resubmitted batch was not served entirely from cache"; exit 1; }

echo "==> supervised daemon smoke test (SIGKILL mid-wave, restart, poison, SIGTERM drain)"
# Typed exit codes first: missing --spool is a configuration error (2),
# distinct from degradation (1) and spool corruption (3).
set +e
./target/release/serve >/dev/null 2>&1
usage_code=$?
set -e
test "$usage_code" -eq 2 || { echo "FAIL: serve without --spool exited $usage_code, want 2"; exit 1; }

dspool="$out/daemon-spool"
# a deliberately-unrunnable tenant: every compute unit dies on first touch,
# so supervision must requeue it until the attempt budget poisons it
./target/release/submit --spool "$dspool" --n 64 --steps 6 --every 2 --priority batch \
    --fault-seed 1 --fault-prob 0.2 --fault-loss-prob 1.0
./target/release/submit --spool "$dspool" --n 96 --steps 12 --seed 4 --every 2 --priority batch
./target/release/submit --spool "$dspool" --n 96 --steps 12 --seed 5 --every 2
./target/release/serve --spool "$dspool" --daemon --throttle-ms 60 > "$out/daemon-killed.log" 2>&1 &
daemon_pid=$!
sleep 1
# a high-priority job lands mid-wave (the daemon preempts batch for it),
# then SIGKILL the daemon exactly as a crashed host would
./target/release/submit --spool "$dspool" --n 96 --steps 12 --seed 6 --every 2 --priority high
sleep 0.3
kill -9 "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
test "$(ls "$dspool/running" "$dspool/submitted" 2>/dev/null | grep -c json || true)" -gt 0 || {
    echo "FAIL: SIGKILL landed after the daemon drained; nothing left to recover"; exit 1; }

# restart in daemon mode: recovery requeues, supervision poisons the doomed
# tenant; submit --wait mirrors outcomes into exit codes (0 done, 3 poisoned)
./target/release/serve --spool "$dspool" --daemon > "$out/daemon-drain.log" 2>&1 &
daemon_pid=$!
./target/release/submit --spool "$dspool" --n 96 --steps 12 --seed 8 --every 2 --wait \
    | tee "$out/wait-done.log"
grep -q 'outcome: .* done' "$out/wait-done.log" || { echo "FAIL: submit --wait did not report done"; exit 1; }
set +e
./target/release/submit --spool "$dspool" --n 64 --steps 6 --seed 9 --every 2 --priority batch \
    --fault-seed 2 --fault-prob 0.2 --fault-loss-prob 1.0 --wait > "$out/wait-poisoned.log" 2>&1
wait_code=$?
set -e
test "$wait_code" -eq 3 || { echo "FAIL: submit --wait on a poisoned job exited $wait_code, want 3"; exit 1; }
# let the queue drain fully, then SIGTERM: the daemon must exit 0 cleanly
for _ in $(seq 1 120); do
    test "$(ls "$dspool/running" "$dspool/submitted" 2>/dev/null | grep -c json || true)" -eq 0 && break
    sleep 0.5
done
kill -TERM "$daemon_pid"
set +e
wait "$daemon_pid"
daemon_code=$?
set -e
test "$daemon_code" -eq 0 || { echo "FAIL: SIGTERM drain exited $daemon_code, want 0"; exit 1; }
grep -q 'JOBS OK' "$out/daemon-drain.log" || { echo "FAIL: daemon did not report JOBS OK"; exit 1; }
grep -q 'poisoned=[1-9]' "$out/daemon-drain.log" || { echo "FAIL: daemon never poisoned the doomed tenant"; exit 1; }
test "$(ls "$dspool/poisoned" 2>/dev/null | grep -c json || true)" -gt 0 || {
    echo "FAIL: poisoned/ is empty; the unrunnable tenant was not quarantined"; exit 1; }
test -s "$dspool/daemon.json" || { echo "FAIL: daemon heartbeat was never written"; exit 1; }

echo "==> crash-point fuzz gate (every durable mutation prefix must recover)"
cargo test --release -q --test crashpoint_fuzz -- --nocapture | tee "$out/crashpoint.log"
grep -q 'CRASHPOINT OK' "$out/crashpoint.log" || {
    echo "FAIL: crash-point fuzz gate did not pass"; exit 1; }

echo "==> cross-backend conformance gate (sim / host / f32 matrix)"
# The full differential matrix (workloads x N x all four plans x {1,2,4}
# threads across the three backends, DESIGN.md section 11) runs in well
# under a second in release mode, so CI takes the non---quick sweep. The
# bin exits 1 on any contract violation; grep the verdict line anyway so a
# silent early exit can never pass.
cargo run --release -p harness --bin conformance | tee "$out/conformance.log"
grep -q 'CONFORMANCE OK' "$out/conformance.log" || {
    echo "FAIL: cross-backend conformance matrix did not pass"; exit 1; }

echo "==> allocation-regression gate (zero allocs per steady-state step)"
# tests/alloc_steady_state.rs installs the counting global allocator and
# asserts the serial PP/treecode/walk/Morton steps allocate nothing after
# warmup; run it in release so the gate matches shipping codegen.
cargo test --release -q --test alloc_steady_state

echo "CI OK"
