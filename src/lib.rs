//! Facade crate re-exporting the whole PTPM N-body workspace.
pub use gpu_sim;
pub use harness;
pub use nbody_core;
pub use plans;
pub use ptpm;
pub use treecode;
pub use workloads;
