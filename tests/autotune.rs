//! Acceptance gates for the PTPM-pruned autotuner (ISSUE 9):
//!
//! * the pruned shortlist finds the same winner as the full grid search on
//!   the conformance matrix's workloads, for both objectives;
//! * `--plan auto` is *referentially transparent*: an auto-resolved job is
//!   content-identical (same canonical hash, bit-exact trajectory) to the
//!   same job with the resolved plan and tile pinned explicitly — tuning
//!   selects, it never changes physics;
//! * the resolution chain degrades exactly as documented: fresh spool →
//!   forecast/measured (persisted), second call → DB hit with the
//!   identical choice, corrupt DB → typed error recorded, fallback taken,
//!   file healed.

use gpu_sim::prelude::DeviceSpec;
use jobs::prelude::*;
use nbody_core::gravity::GravityParams;
use plans::prelude::*;
use workloads::spec::{WorkloadKind, WorkloadSpec};

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nbody-ptpm-autotune-accept").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same workload matrix the backend conformance suite pins.
fn matrix() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec { kind: WorkloadKind::Plummer, n: 256, seed: 20110101 },
        WorkloadSpec { kind: WorkloadKind::UniformCube, n: 320, seed: 3 },
        WorkloadSpec { kind: WorkloadKind::Disk, n: 192, seed: 7 },
        WorkloadSpec { kind: WorkloadKind::ClusterCollision, n: 256, seed: 11 },
    ]
}

#[test]
fn pruned_shortlist_finds_the_full_grid_winner_on_the_conformance_matrix() {
    let spec = DeviceSpec::radeon_hd_5850();
    let base = PlanConfig::default();
    for workload in matrix() {
        let mut set = workload.generate();
        set.recenter();
        for objective in [TuneObjective::KernelTime, TuneObjective::TotalTime] {
            let pruned = autotune(base, &spec, &set, &params(), objective, DEFAULT_SHORTLIST);
            assert!(pruned.winner_reproducible, "{} {objective:?}", workload.label());
            assert!(
                pruned.measured.len() < pruned.forecasts.len(),
                "{}: pruning must actually skip measurements ({} !< {})",
                workload.label(),
                pruned.measured.len(),
                pruned.forecasts.len()
            );
            let full = measure(&full_grid(base, &spec), &spec, &set, &params(), objective);
            let full_best =
                full.iter().min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap()).unwrap();
            assert_eq!(
                pruned.best,
                full_best.candidate,
                "{} {objective:?}: pruned winner differs from full grid search",
                workload.label()
            );
            assert_eq!(pruned.best_seconds, full_best.seconds);
        }
    }
}

#[test]
fn auto_resolved_job_is_content_identical_to_the_pinned_job() {
    // resolve --plan auto the way submit does, then run BOTH the resolved
    // spec and a hand-pinned twin: same canonical hash (one cache entry),
    // bit-exact final snapshot, provenance differs only in plan_source
    let dir = tmp("referential");
    let workload = WorkloadSpec::plummer(96, 5);
    let resolution = resolve_plan(
        &RealFs,
        &dir.join("tuning.json"),
        &workload,
        BackendKind::Auto,
        TuneObjective::TotalTime,
        DEFAULT_SHORTLIST,
    );
    assert!(resolution.db_error.is_none(), "{:?}", resolution.db_error);

    let mut auto_spec = JobSpec::new(workload, resolution.kind, 4);
    auto_spec.tile = Some(resolution.tile());
    auto_spec.plan_source = Some(resolution.plan_source_label());
    let pinned_spec =
        JobSpec { plan_source: None, ..JobSpec { tile: auto_spec.tile, ..auto_spec.clone() } };
    assert_eq!(
        auto_spec.canonical_hash(),
        pinned_spec.canonical_hash(),
        "plan_source is provenance, not identity"
    );

    let auto_result = match run_job(&auto_spec, &dir.join("auto"), &RunOptions::default()).unwrap()
    {
        RunStatus::Complete(r) => *r,
        other => panic!("unexpected status {other:?}"),
    };
    let pinned_result =
        match run_job(&pinned_spec, &dir.join("pinned"), &RunOptions::default()).unwrap() {
            RunStatus::Complete(r) => *r,
            other => panic!("unexpected status {other:?}"),
        };
    assert_eq!(auto_result.result_checksum, pinned_result.result_checksum);
    assert_eq!(auto_result.final_snapshot, pinned_result.final_snapshot, "tuning changed physics");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resolution_chain_db_hit_then_corrupt_fallback_then_heal() {
    let dir = tmp("chain");
    let db = dir.join("tuning.json");
    let workload = WorkloadSpec::plummer(128, 9);
    let resolve = |top_k| {
        resolve_plan(&RealFs, &db, &workload, BackendKind::Sim, TuneObjective::TotalTime, top_k)
    };

    let first = resolve(DEFAULT_SHORTLIST);
    assert_ne!(first.source, PlanSource::DbHit);
    let hit = resolve(DEFAULT_SHORTLIST);
    assert_eq!(hit.source, PlanSource::DbHit);
    assert_eq!((hit.kind, hit.config), (first.kind, first.config));

    // a DB hit replays the persisted winner's forces bit-exactly
    let device = DeviceSpec::radeon_hd_5850();
    let mut set = workload.generate();
    set.recenter();
    let a = evaluate_forces(
        &Candidate { kind: hit.kind, config: hit.config },
        &device,
        &set,
        &params(),
    );
    let b = evaluate_forces(
        &Candidate { kind: first.kind, config: first.config },
        &device,
        &set,
        &params(),
    );
    assert_eq!(a, b);

    // corruption: typed error surfaced, fallback taken, file healed
    std::fs::write(&db, "{ truncated").unwrap();
    let fallback = resolve(DEFAULT_SHORTLIST);
    assert_ne!(fallback.source, PlanSource::DbHit);
    assert!(fallback.db_error.is_some());
    assert_eq!((fallback.kind, fallback.config), (first.kind, first.config), "determinism");
    let healed = resolve(DEFAULT_SHORTLIST);
    assert_eq!(healed.source, PlanSource::DbHit);
    assert!(healed.db_error.is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_source_flows_from_spec_to_artifact_through_the_server() {
    // the serve path must record which resolution path admitted the job
    let dir = tmp("artifact-flow");
    let (spool, recovery) = Spool::open(&dir).unwrap();
    let resolution = resolve_plan(
        spool.fs().as_ref(),
        &spool.root().join("tuning.json"),
        &WorkloadSpec::plummer(96, 2),
        BackendKind::Auto,
        TuneObjective::TotalTime,
        DEFAULT_SHORTLIST,
    );
    let mut spec = JobSpec::new(WorkloadSpec::plummer(96, 2), resolution.kind, 2);
    spec.tile = Some(resolution.tile());
    spec.plan_source = Some(resolution.plan_source_label());
    spool.submit(&spec).unwrap();
    let summary = drain(&spool, recovery, &ServerConfig::default()).unwrap();
    assert_eq!(summary.completed(), 1, "{:?}", summary.reports);
    let bench = spool.job_dir(&spec.hash_hex()).join("bench.json");
    let text = std::fs::read_to_string(&bench).unwrap();
    assert!(
        text.contains(&format!("\"plan_source\":\"auto:{}\"", resolution.source.id()))
            || text.contains(&format!("\"plan_source\": \"auto:{}\"", resolution.source.id())),
        "artifact must record the resolution path: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
