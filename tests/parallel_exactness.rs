//! Parallel-exactness matrix: the workspace's determinism contract says
//! every observable result — forces, energies, interaction counts, and all
//! *simulated* clocks — is bit-identical for any worker-thread count. These
//! tests sweep `--threads` ∈ {1, 2, 3, 8} (more threads than cores included
//! deliberately) over every plan, the treecode pipeline, the multi-GPU
//! evaluators, and a full integrated trajectory.
//!
//! `PlanOutcome::host_measured_s` is real wall clock ("informational only")
//! and is the one field deliberately excluded from the comparisons.
//!
//! The thread count is process-global, so a concurrently running test can
//! change it mid-run — which is harmless precisely because of the property
//! under test: any thread count produces the same bits.

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use treecode::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

const THREAD_MATRIX: [usize; 4] = [1, 2, 3, 8];

fn device() -> Device {
    Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16())
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

/// Every field of [`PlanOutcome`] except the wall-clock `host_measured_s`.
fn assert_outcomes_identical(a: &PlanOutcome, b: &PlanOutcome, what: &str) {
    assert_eq!(a.acc, b.acc, "{what}: forces differ");
    assert_eq!(a.interactions, b.interactions, "{what}: interactions differ");
    assert_eq!(a.host_tree_s, b.host_tree_s, "{what}: host_tree_s differs");
    assert_eq!(a.host_walk_s, b.host_walk_s, "{what}: host_walk_s differs");
    assert_eq!(a.kernel_s, b.kernel_s, "{what}: kernel_s differs");
    assert_eq!(a.transfer_s, b.transfer_s, "{what}: transfer_s differs");
    assert_eq!(a.recovery_s, b.recovery_s, "{what}: recovery_s differs");
    assert_eq!(a.launches, b.launches, "{what}: launches differ");
    assert_eq!(
        a.overlap_walk_with_kernel, b.overlap_walk_with_kernel,
        "{what}: overlap flag differs"
    );
}

#[test]
fn every_plan_is_bit_exact_across_thread_counts() {
    let set = plummer(700, PlummerParams::default(), 41);
    for kind in PlanKind::all() {
        let plan = make_plan(kind, PlanConfig::default());
        par::set_threads(THREAD_MATRIX[0]);
        let base = plan.evaluate(&mut device(), &set, &params());
        for &t in &THREAD_MATRIX[1..] {
            par::set_threads(t);
            let o = plan.evaluate(&mut device(), &set, &params());
            assert_outcomes_identical(&base, &o, &format!("{} @ {t} threads", kind.id()));
        }
    }
    par::set_threads(1);
}

#[test]
fn treecode_pipeline_is_bit_exact_across_thread_counts() {
    let set = plummer(2000, PlummerParams::default(), 43);
    let theta = OpeningAngle::new(0.5);
    let run = |t: usize| {
        par::set_threads(t);
        let order = morton_order(&set);
        let tree = Octree::build(&set, TreeParams::default());
        let walks = build_walks(&tree, &set, theta, 32);
        let mut acc = vec![Vec3::ZERO; set.len()];
        let stats = accelerations_bh(&tree, &set, theta, &params(), &mut acc);
        let quads = compute_quadrupoles(&tree, &set);
        let mut qacc = vec![Vec3::ZERO; set.len()];
        let qstats = accelerations_bh_quad(&tree, &quads, &set, theta, &params(), &mut qacc);
        (order, tree, walks, acc, stats, quads, qacc, qstats)
    };
    let base = run(THREAD_MATRIX[0]);
    for &t in &THREAD_MATRIX[1..] {
        let got = run(t);
        assert_eq!(base.0, got.0, "morton order differs at {t} threads");
        assert_eq!(base.1.order(), got.1.order(), "tree order differs at {t} threads");
        assert_eq!(base.1.nodes(), got.1.nodes(), "tree nodes differ at {t} threads");
        assert_eq!(base.2, got.2, "walk set differs at {t} threads");
        assert_eq!(base.3, got.3, "BH forces differ at {t} threads");
        assert_eq!(base.4, got.4, "walk stats differ at {t} threads");
        assert_eq!(base.5, got.5, "quadrupoles differ at {t} threads");
        assert_eq!(base.6, got.6, "quadrupole forces differ at {t} threads");
        assert_eq!(base.7, got.7, "quadrupole stats differ at {t} threads");
    }
    par::set_threads(1);
}

#[test]
fn multi_gpu_is_bit_exact_across_thread_counts() {
    let set = plummer(900, PlummerParams::default(), 47);
    let run = |t: usize| {
        par::set_threads(t);
        (MultiGpuJw::new(3).evaluate(&set, &params()), MultiGpuPp::new(3).evaluate(&set, &params()))
    };
    let (jw0, pp0) = run(THREAD_MATRIX[0]);
    for &t in &THREAD_MATRIX[1..] {
        let (jw, pp) = run(t);
        for (base, got, what) in [(&jw0, &jw, "multi-gpu jw"), (&pp0, &pp, "multi-gpu pp")] {
            let what = format!("{what} @ {t} threads");
            assert_outcomes_identical(&base.combined, &got.combined, &what);
            assert_eq!(base.per_device_kernel_s, got.per_device_kernel_s, "{what}: kernel split");
            assert_eq!(base.walks_per_device, got.walks_per_device, "{what}: walk split");
            assert_eq!(base.lost_devices, got.lost_devices, "{what}: losses");
            assert_eq!(base.redistributed_walks, got.redistributed_walks, "{what}: rescues");
        }
    }
    par::set_threads(1);
}

#[test]
fn integrated_trajectory_and_energies_are_bit_exact_across_thread_counts() {
    let run = |t: usize| {
        par::set_threads(t);
        let engine = PlanForceEngine::new(
            device(),
            make_plan(PlanKind::JwParallel, PlanConfig::default()),
            params(),
        );
        let set = plummer(300, PlummerParams::default(), 53);
        let mut sim = Simulation::new(set, engine, LeapfrogKdk, 0.01, params()).with_recording(2);
        sim.run(6);
        let energy = total_energy(&sim.set, &params());
        (sim.set.pos().to_vec(), sim.set.vel().to_vec(), energy, sim.history().to_vec())
    };
    let (pos0, vel0, e0, hist0) = run(THREAD_MATRIX[0]);
    assert!(!hist0.is_empty() && e0.is_finite());
    for &t in &THREAD_MATRIX[1..] {
        let (pos, vel, e, hist) = run(t);
        assert_eq!(pos0, pos, "positions diverge at {t} threads");
        assert_eq!(vel0, vel, "velocities diverge at {t} threads");
        assert_eq!(e0.to_bits(), e.to_bits(), "total energy diverges at {t} threads");
        assert_eq!(hist0, hist, "recorded diagnostics diverge at {t} threads");
    }
    par::set_threads(1);
}
