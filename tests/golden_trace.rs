//! Golden-trace regression: with a fixed workload seed, the execution
//! trace of every plan is fully deterministic — scheduling, per-phase
//! costs, transfer timings, down to the formatted byte stream. These tests
//! pin the CSV export against a checked-in golden file and check the Chrome
//! trace export is stable and structurally valid, so any change to the
//! device model, the scheduler, or the exporters shows up as a diff here
//! rather than as a silent drift of every figure.

use harness::trace_export::{capture_all, chrome_trace_json, csv, PlanTrace};
use harness::{ExperimentConfig, Runner};
use serde::Value;

const GOLDEN_N: usize = 64;

fn golden_traces() -> Vec<PlanTrace> {
    let mut runner = Runner::new(ExperimentConfig::quick());
    capture_all(&mut runner, GOLDEN_N)
}

#[test]
fn trace_csv_matches_the_golden_file() {
    let text = csv(&golden_traces());
    let golden = include_str!("golden/trace_n64.csv");
    assert!(
        text == golden,
        "trace CSV drifted from tests/golden/trace_n64.csv.\n\
         If the change to the device model or exporters is intentional, \
         regenerate with:\n  cargo run -p harness --release --bin trace -- \
         --n 64 --plan all --out tests/golden/trace_n64.csv\n\n{}",
        first_diff(golden, &text)
    );
}

/// The first differing line, for a readable failure.
fn first_diff(golden: &str, got: &str) -> String {
    for (i, (g, t)) in golden.lines().zip(got.lines()).enumerate() {
        if g != t {
            return format!("first difference at line {}:\n  golden: {g}\n  got:    {t}", i + 1);
        }
    }
    format!("line counts differ: golden {} vs got {}", golden.lines().count(), got.lines().count())
}

#[test]
fn csv_export_is_byte_stable_across_captures() {
    assert_eq!(csv(&golden_traces()), csv(&golden_traces()));
}

#[test]
fn golden_trace_is_byte_identical_with_threading_enabled() {
    // The parallel launch path re-serializes per-group events in fixed
    // group-index order, so the golden CSV must not move by a single byte
    // when worker threads execute the workgroups.
    par::set_threads(4);
    let text = csv(&golden_traces());
    par::set_threads(1);
    let golden = include_str!("golden/trace_n64.csv");
    assert!(
        text == golden,
        "threaded trace CSV drifted from tests/golden/trace_n64.csv:\n{}",
        first_diff(golden, &text)
    );
}

#[test]
fn per_cu_group_spans_stay_monotone_under_threading() {
    // Well-formedness of the simulated schedule: within one launch, the
    // groups a compute unit executes occupy increasing, non-overlapping
    // cycle spans regardless of the host thread count.
    for &threads in &[1usize, 4] {
        par::set_threads(threads);
        for plan in golden_traces() {
            for launch in &plan.trace.launches {
                let mut last_end: Vec<f64> = vec![f64::NEG_INFINITY; plan.trace.compute_units];
                for span in &launch.groups {
                    assert!(
                        span.end_cycle >= span.start_cycle,
                        "{}: launch {} group {} runs backwards",
                        plan.plan.id(),
                        launch.launch_id,
                        span.group
                    );
                    assert!(
                        span.start_cycle >= last_end[span.cu],
                        "{}: launch {} group {} overlaps CU {} at {} threads",
                        plan.plan.id(),
                        launch.launch_id,
                        span.group,
                        span.cu,
                        threads
                    );
                    last_end[span.cu] = span.end_cycle;
                }
            }
        }
    }
    par::set_threads(1);
}

#[test]
fn chrome_trace_is_byte_stable_and_structurally_valid() {
    let a = chrome_trace_json(&golden_traces());
    let b = chrome_trace_json(&golden_traces());
    assert_eq!(a, b);

    let doc = serde_json::parse_value(&a).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    // all four plans present as processes; every complete event well-formed
    let processes: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
        .collect();
    assert_eq!(processes.len(), 4);
    for plan in ["i-parallel", "j-parallel", "w-parallel", "jw-parallel"] {
        assert!(processes.iter().any(|p| p.starts_with(plan)), "no process for {plan}");
    }
    for e in events {
        match e.get("ph").and_then(Value::as_str) {
            Some("X") => {
                assert!(e.get("ts").and_then(Value::as_f64).is_some_and(|t| t >= 0.0));
                assert!(e.get("dur").and_then(Value::as_f64).is_some_and(|d| d >= 0.0));
                assert!(e.get("pid").and_then(Value::as_u64).is_some());
                assert!(e.get("tid").and_then(Value::as_u64).is_some());
            }
            Some("i") | Some("M") => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
}
