//! Integration tests of the extension features working *together*: the
//! Simulation driver on the simulated GPU, quadrupole engines inside full
//! runs, refit-based stepping, tuned configurations, device-side
//! diagnostics, multi-GPU consistency, and snapshot round-trips of evolved
//! states.

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use treecode::prelude::*;
use workloads::prelude::*;

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

#[test]
fn simulation_driver_on_simulated_gpu_records_physics() {
    let device =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    let engine = PlanForceEngine::new(
        device,
        make_plan(PlanKind::JwParallel, PlanConfig::default()),
        params(),
    );
    let mut set = plummer(256, PlummerParams::default(), 41);
    set.recenter();
    let mut sim = Simulation::new(set, engine, LeapfrogKdk, 1e-3, params()).with_recording(10);
    sim.run(30);
    assert_eq!(sim.steps(), 30);
    assert_eq!(sim.history().len(), 4); // steps 0, 10, 20, 30
    let drift = sim.energy_drift().unwrap();
    assert!(drift < 1e-3, "drift {drift}");
    assert!(sim.engine.simulated_total_seconds() > 0.0);
}

#[test]
fn quadrupole_engine_runs_full_simulations() {
    let mut set = plummer(300, PlummerParams::default(), 42);
    set.recenter();
    let engine = BarnesHut::new(params()).with_quadrupoles().with_rebuild_interval(5);
    let mut sim = Simulation::new(set, engine, LeapfrogKdk, 1e-3, params()).with_recording(20);
    sim.run(40);
    let drift = sim.energy_drift().unwrap();
    assert!(drift < 1e-2, "drift {drift}");
}

#[test]
fn tuned_jw_config_preserves_physics() {
    let set = plummer(1024, PlummerParams::default(), 43);
    let spec = DeviceSpec::radeon_hd_5850();
    let result = plans::tune::tune(
        PlanKind::JwParallel,
        PlanConfig::default(),
        &spec,
        &set,
        &params(),
        TuneObjective::KernelTime,
    );
    let mut exact = vec![Vec3::ZERO; set.len()];
    accelerations_pp(&set, &params(), &mut exact);
    let mut dev = Device::with_transfer_model(spec, TransferModel::pcie2_x16());
    let outcome = JwParallel::new(result.best).evaluate(&mut dev, &set, &params());
    let err = nbody_core::gravity::max_relative_error(&exact, &outcome.acc);
    assert!(err < 0.02, "tuned config error {err}");
    assert!(outcome.kernel_s <= result.best_seconds * 1.0001);
}

#[test]
fn device_potential_tracks_cpu_during_evolution() {
    let mut set = plummer(200, PlummerParams::default(), 44);
    set.recenter();
    let p = params();
    let mut engine = DirectPp::new(p);
    run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 15);
    let cpu_u = nbody_core::gravity::potential_energy(&set, &p);
    let mut dev =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    let (gpu_u, _) = potential_on_device(&mut dev, &set, &p, &PlanConfig::default());
    assert!(((gpu_u - cpu_u) / cpu_u).abs() < 1e-4, "gpu {gpu_u} vs cpu {cpu_u}");
}

#[test]
fn multi_gpu_trajectories_match_single_gpu() {
    // integrate a few steps with forces from 1 vs 3 devices: identical
    // physics (f32 bit patterns combined in a different but value-equal way)
    let p = params();
    let initial = plummer(192, PlummerParams::default(), 45);

    let run_with = |devices: usize| -> Vec<Vec3> {
        let mut set = initial.clone();
        let multi = MultiGpuJw::new(devices);
        // manual leapfrog with the multi-GPU evaluator
        let mut acc = multi.evaluate(&set, &p).combined.acc;
        let dt = 1e-3;
        for _ in 0..5 {
            for (i, a) in acc.iter().enumerate() {
                let v = set.vel()[i] + *a * (dt / 2.0);
                set.vel_mut()[i] = v;
                set.pos_mut()[i] += v * dt;
            }
            acc = multi.evaluate(&set, &p).combined.acc;
            for (i, a) in acc.iter().enumerate() {
                set.vel_mut()[i] += *a * (dt / 2.0);
            }
        }
        set.pos().to_vec()
    };
    let one = run_with(1);
    let three = run_with(3);
    let max_dev = one.iter().zip(&three).map(|(a, b)| a.distance(*b)).fold(0.0, f64::max);
    assert!(max_dev < 1e-9, "trajectory deviation {max_dev}");
}

#[test]
fn snapshot_roundtrips_an_evolved_state() {
    let p = params();
    let mut set = cluster_collision(200, CollisionParams::default(), 46);
    let mut engine = BarnesHut::new(p);
    run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 10);

    let snap = Snapshot::new("evolved-collision", 0.01, set.clone());
    let restored = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(restored.set, set);

    // the restored state continues identically to the original
    let mut a = set.clone();
    let mut b = restored.set;
    let mut ea = BarnesHut::new(p);
    let mut eb = BarnesHut::new(p);
    run(&mut a, &mut ea, &LeapfrogKdk, 1e-3, 5);
    run(&mut b, &mut eb, &LeapfrogKdk, 1e-3, 5);
    assert_eq!(a.pos(), b.pos());
}

#[test]
fn morton_order_agrees_with_tree_locality() {
    // Morton-ordered chunks and tree-ordered chunks both give compact walk
    // boxes; the two orderings must produce comparable interaction totals
    let set = plummer(2048, PlummerParams::default(), 47);
    let tree = Octree::build(&set, TreeParams::default());
    let tree_walks = build_walks(&tree, &set, OpeningAngle::new(0.5), 64);

    let morder = treecode::morton::morton_order(&set);
    // group-MAC lists for morton chunks, built directly
    let pos = set.pos();
    let mut morton_total = 0_u64;
    for chunk in morder.chunks(64) {
        let bbox = Aabb::from_points(chunk.iter().map(|&b| pos[b as usize]));
        let mut stack = vec![0_u32];
        let mut len = 0_u64;
        while let Some(idx) = stack.pop() {
            let node = &tree.nodes()[idx as usize];
            if accepts_group(node, &bbox, OpeningAngle::new(0.5)) {
                len += 1;
            } else if node.is_leaf {
                len += node.body_count as u64;
            } else {
                stack.extend(node.child_indices());
            }
        }
        morton_total += chunk.len() as u64 * len;
    }
    let tree_total = tree_walks.total_interactions();
    let ratio = morton_total as f64 / tree_total as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "morton {morton_total} vs tree {tree_total} (ratio {ratio})"
    );
}
