//! Property-based tests (proptest) over the core invariants: octree
//! structure, MAC geometry, walk coverage, plan-vs-reference force
//! agreement, and scheduler sanity under arbitrary group cost vectors.

use gpu_sim::cost::GroupCost;
use gpu_sim::prelude::{schedule_launch, Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::prelude::*;
use proptest::prelude::*;
use ptpm::prelude::TimeSpaceGrid;
use treecode::prelude::*;

fn arb_bodies(max_n: usize) -> impl Strategy<Value = Vec<Body>> {
    prop::collection::vec(
        (
            (-10.0_f64..10.0, -10.0_f64..10.0, -10.0_f64..10.0),
            (0.01_f64..5.0),
        )
            .prop_map(|((x, y, z), m)| Body::at_rest(Vec3::new(x, y, z), m)),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn octree_invariants_hold_for_arbitrary_clouds(bodies in arb_bodies(200), leaf in 1_usize..32) {
        let set = ParticleSet::from_bodies(&bodies);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: leaf });
        prop_assert!(tree.check_invariants(&set).is_ok());
        // total mass conserved by the multipole sweep
        prop_assert!((tree.root().mass - set.total_mass()).abs() < 1e-9 * set.total_mass().max(1.0));
    }

    #[test]
    fn walks_cover_every_body_exactly_once(bodies in arb_bodies(150), ws in 1_usize..64) {
        let set = ParticleSet::from_bodies(&bodies);
        let tree = Octree::build(&set, TreeParams::default());
        let walks = build_walks(&tree, &set, OpeningAngle::new(0.5), ws);
        let mut seen = vec![0_u32; set.len()];
        for g in &walks.groups {
            for &b in &g.bodies {
                seen[b as usize] += 1;
            }
            prop_assert!(g.bodies.len() <= ws);
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn aabb_distance_is_a_lower_bound(
        points in prop::collection::vec((-5.0_f64..5.0, -5.0_f64..5.0, -5.0_f64..5.0), 1..20),
        q in (-20.0_f64..20.0, -20.0_f64..20.0, -20.0_f64..20.0),
    ) {
        let pts: Vec<Vec3> = points.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let bbox = Aabb::from_points(pts.iter().copied());
        let q = Vec3::new(q.0, q.1, q.2);
        let d = bbox.distance_to_point(q);
        for p in &pts {
            prop_assert!(d <= q.distance(*p) + 1e-12);
        }
    }

    #[test]
    fn bh_walk_error_bounded_for_arbitrary_clouds(bodies in arb_bodies(120)) {
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let tree = Octree::build(&set, TreeParams::default());
        let mut exact = vec![Vec3::ZERO; set.len()];
        let mut approx = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        accelerations_bh(&tree, &set, OpeningAngle::new(0.4), &params, &mut approx);
        let err = nbody_core::gravity::max_relative_error(&exact, &approx);
        prop_assert!(err < 0.05, "error {err}");
    }

    #[test]
    fn scheduler_makespan_bounds(costs in prop::collection::vec(0.0_f64..1e6, 0..64)) {
        let spec = DeviceSpec::radeon_hd_5850();
        let group_costs: Vec<GroupCost> =
            costs.iter().map(|&f| GroupCost { flops: f, ..Default::default() }).collect();
        let t = schedule_launch(&spec, 64, 0, &group_costs);
        let per_group: Vec<f64> =
            costs.iter().map(|&f| f / spec.charged_flops_per_cycle_per_cu).collect();
        let total: f64 = per_group.iter().sum();
        let longest = per_group.iter().copied().fold(0.0, f64::max);
        // classic list-scheduling bounds: max(avg, longest) <= makespan <= total
        prop_assert!(t.compute_cycles <= total + 1e-9);
        prop_assert!(t.compute_cycles + 1e-9 >= longest);
        prop_assert!(t.compute_cycles + 1e-9 >= total / f64::from(spec.compute_units));
        prop_assert!(t.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn grid_placement_is_conservative(costs in prop::collection::vec(0.0_f64..1e5, 1..40), cus in 1_usize..32) {
        let grid = TimeSpaceGrid::place(&costs, cus);
        // every group placed exactly once, never overlapping on its CU
        prop_assert_eq!(grid.placements.len(), costs.len());
        for (i, a) in grid.placements.iter().enumerate() {
            prop_assert!((a.end - a.start - costs[i]).abs() < 1e-9);
            for b in &grid.placements[i + 1..] {
                if a.cu == b.cu {
                    let overlap = a.end.min(b.end) - a.start.max(b.start);
                    prop_assert!(overlap <= 1e-9, "groups overlap on cu {}", a.cu);
                }
            }
        }
        prop_assert!(grid.space_utilization() <= 1.0 + 1e-12);
    }
}

proptest! {
    // device evaluations are costly: fewer cases
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn i_parallel_matches_reference_for_arbitrary_clouds(bodies in arb_bodies(100)) {
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.1 };
        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        let mut dev = Device::with_transfer_model(
            DeviceSpec::radeon_hd_5850(),
            TransferModel::free(),
        );
        let o = IParallel::default().evaluate(&mut dev, &set, &params);
        let err = nbody_core::gravity::max_relative_error(&exact, &o.acc);
        prop_assert!(err < 2e-3, "error {err}");
    }

    #[test]
    fn jw_parallel_matches_reference_for_arbitrary_clouds(bodies in arb_bodies(100)) {
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.1 };
        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        let mut dev = Device::with_transfer_model(
            DeviceSpec::radeon_hd_5850(),
            TransferModel::free(),
        );
        let o = JwParallel::default().evaluate(&mut dev, &set, &params);
        let err = nbody_core::gravity::max_relative_error(&exact, &o.acc);
        prop_assert!(err < 0.05, "error {err}");
    }
}
