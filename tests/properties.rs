//! Property-based tests over the core invariants: octree structure, MAC
//! geometry, walk coverage, plan-vs-reference force agreement, scheduler
//! sanity under arbitrary group cost vectors, time-space grid metric
//! bounds, and execution-trace well-formedness.
//!
//! The cases are driven by the dependency-free `XorShift64` generator from
//! `nbody_core::testutil` (the build environment has no crates registry,
//! so proptest is unavailable); each test runs a fixed number of seeded
//! random cases, which keeps failures exactly reproducible by seed.

use gpu_sim::cost::GroupCost;
use gpu_sim::prelude::{schedule_launch, Device, DeviceSpec, MemoryTraceSink, TransferModel};
use nbody_core::prelude::*;
use nbody_core::testutil::XorShift64;
use plans::prelude::*;
use ptpm::prelude::TimeSpaceGrid;
use treecode::prelude::*;

/// 1..=max_n bodies at rest, positions in [-10, 10)³, masses in [0.01, 5).
fn arb_bodies(rng: &mut XorShift64, max_n: usize) -> Vec<Body> {
    let n = 1 + (rng.next_u64() as usize) % max_n;
    (0..n).map(|_| Body::at_rest(rng.uniform_vec3(-10.0, 10.0), rng.uniform(0.01, 5.0))).collect()
}

#[test]
fn octree_invariants_hold_for_arbitrary_clouds() {
    let mut rng = XorShift64::new(0xA1);
    for _ in 0..64 {
        let bodies = arb_bodies(&mut rng, 200);
        let leaf = 1 + (rng.next_u64() as usize) % 31;
        let set = ParticleSet::from_bodies(&bodies);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: leaf });
        assert!(tree.check_invariants(&set).is_ok());
        // total mass conserved by the multipole sweep
        assert!((tree.root().mass - set.total_mass()).abs() < 1e-9 * set.total_mass().max(1.0));
    }
}

#[test]
fn walks_cover_every_body_exactly_once() {
    let mut rng = XorShift64::new(0xA2);
    for _ in 0..64 {
        let bodies = arb_bodies(&mut rng, 150);
        let ws = 1 + (rng.next_u64() as usize) % 63;
        let set = ParticleSet::from_bodies(&bodies);
        let tree = Octree::build(&set, TreeParams::default());
        let walks = build_walks(&tree, &set, OpeningAngle::new(0.5), ws);
        let mut seen = vec![0_u32; set.len()];
        for g in &walks.groups {
            for &b in &g.bodies {
                seen[b as usize] += 1;
            }
            assert!(g.bodies.len() <= ws);
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}

#[test]
fn aabb_distance_is_a_lower_bound() {
    let mut rng = XorShift64::new(0xA3);
    for _ in 0..64 {
        let n = 1 + (rng.next_u64() as usize) % 19;
        let pts: Vec<Vec3> = (0..n).map(|_| rng.uniform_vec3(-5.0, 5.0)).collect();
        let q = rng.uniform_vec3(-20.0, 20.0);
        let bbox = Aabb::from_points(pts.iter().copied());
        let d = bbox.distance_to_point(q);
        for p in &pts {
            assert!(d <= q.distance(*p) + 1e-12);
        }
    }
}

#[test]
fn bh_walk_error_bounded_for_arbitrary_clouds() {
    let mut rng = XorShift64::new(0xA4);
    for _ in 0..64 {
        let bodies = arb_bodies(&mut rng, 120);
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let tree = Octree::build(&set, TreeParams::default());
        let mut exact = vec![Vec3::ZERO; set.len()];
        let mut approx = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        accelerations_bh(&tree, &set, OpeningAngle::new(0.4), &params, &mut approx);
        let err = nbody_core::gravity::max_relative_error(&exact, &approx);
        assert!(err < 0.05, "error {err}");
    }
}

#[test]
fn scheduler_makespan_bounds() {
    let mut rng = XorShift64::new(0xA5);
    let spec = DeviceSpec::radeon_hd_5850();
    for _ in 0..64 {
        let n = (rng.next_u64() as usize) % 64;
        let costs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1e6)).collect();
        let group_costs: Vec<GroupCost> =
            costs.iter().map(|&f| GroupCost { flops: f, ..Default::default() }).collect();
        let t = schedule_launch(&spec, 64, 0, &group_costs);
        let per_group: Vec<f64> =
            costs.iter().map(|&f| f / spec.charged_flops_per_cycle_per_cu).collect();
        let total: f64 = per_group.iter().sum();
        let longest = per_group.iter().copied().fold(0.0, f64::max);
        // classic list-scheduling bounds: max(avg, longest) <= makespan <= total
        assert!(t.compute_cycles <= total + 1e-9);
        assert!(t.compute_cycles + 1e-9 >= longest);
        assert!(t.compute_cycles + 1e-9 >= total / f64::from(spec.compute_units));
        assert!(t.utilization <= 1.0 + 1e-12);
    }
}

#[test]
fn grid_placement_is_conservative() {
    let mut rng = XorShift64::new(0xA6);
    for _ in 0..64 {
        let n = 1 + (rng.next_u64() as usize) % 39;
        let cus = 1 + (rng.next_u64() as usize) % 31;
        let costs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1e5)).collect();
        let grid = TimeSpaceGrid::place(&costs, cus);
        // every group placed exactly once, never overlapping on its CU
        assert_eq!(grid.placements.len(), costs.len());
        for (i, a) in grid.placements.iter().enumerate() {
            assert!((a.end - a.start - costs[i]).abs() < 1e-9);
            for b in &grid.placements[i + 1..] {
                if a.cu == b.cu {
                    let overlap = a.end.min(b.end) - a.start.max(b.start);
                    assert!(overlap <= 1e-9, "groups overlap on cu {}", a.cu);
                }
            }
        }
        assert!(grid.space_utilization() <= 1.0 + 1e-12);
    }
}

#[test]
fn grid_metrics_stay_in_unit_range() {
    let mut rng = XorShift64::new(0xA7);
    for _ in 0..64 {
        let n = 1 + (rng.next_u64() as usize) % 50;
        let cus = 1 + (rng.next_u64() as usize) % 24;
        let costs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 2e4)).collect();
        let grid = TimeSpaceGrid::place(&costs, cus);
        let u = grid.space_utilization();
        let b = grid.balance();
        assert!((0.0..=1.0 + 1e-12).contains(&u), "space_utilization {u}");
        assert!((0.0..=1.0 + 1e-12).contains(&b), "balance {b}");
    }
}

#[test]
fn occupancy_timeline_is_sum_consistent_with_placements() {
    let mut rng = XorShift64::new(0xA8);
    for _ in 0..64 {
        let n = 1 + (rng.next_u64() as usize) % 40;
        let cus = 1 + (rng.next_u64() as usize) % 16;
        let buckets = 1 + (rng.next_u64() as usize) % 40;
        let costs: Vec<f64> = (0..n).map(|_| rng.uniform(1.0, 1e4)).collect();
        let grid = TimeSpaceGrid::place(&costs, cus);
        // integrating busy CU-time over the buckets must reproduce the
        // total busy area, i.e. the summed placement durations
        let areas = grid.busy_area_timeline(buckets);
        assert_eq!(areas.len(), buckets);
        let busy_area: f64 = areas.iter().sum();
        let total_cost: f64 = costs.iter().sum();
        assert!(
            (busy_area - total_cost).abs() <= 1e-6 * total_cost.max(1.0),
            "timeline area {busy_area} vs placed cost {total_cost}"
        );
        // the point-sampled occupancy can never exceed the CU count
        let timeline = grid.occupancy_timeline(buckets);
        assert_eq!(timeline.len(), buckets);
        assert!(timeline.iter().all(|&c| c <= cus));
        // and every utilization cell is a fraction
        for row in grid.utilization_cells(buckets) {
            for cell in row {
                assert!((0.0..=1.0).contains(&cell), "cell {cell}");
            }
        }
    }
}

// Device evaluations are costly: fewer cases.

#[test]
fn i_parallel_matches_reference_for_arbitrary_clouds() {
    let mut rng = XorShift64::new(0xB1);
    for _ in 0..12 {
        let bodies = arb_bodies(&mut rng, 100);
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.1 };
        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        let mut dev =
            Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free());
        let o = IParallel::default().evaluate(&mut dev, &set, &params);
        let err = nbody_core::gravity::max_relative_error(&exact, &o.acc);
        assert!(err < 2e-3, "error {err}");
    }
}

#[test]
fn traces_are_well_formed_for_arbitrary_clouds() {
    let mut rng = XorShift64::new(0xB3);
    for case in 0..12 {
        let bodies = arb_bodies(&mut rng, 150);
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.1 };
        let spec = DeviceSpec::radeon_hd_5850();
        let cus = spec.compute_units as usize;
        let mut dev = Device::with_transfer_model(spec, TransferModel::pcie2_x16());
        let sink = MemoryTraceSink::new();
        dev.set_trace_sink(Box::new(sink.clone()));
        let kind = PlanKind::all()[case % 4];
        plans::make_plan(kind, PlanConfig::default()).evaluate(&mut dev, &set, &params);
        let trace = sink.snapshot();

        assert_eq!(trace.compute_units, cus);
        assert!(trace.clock_hz > 0.0);
        assert!(!trace.launches.is_empty() && !trace.transfers.is_empty());

        let mut prev_start = 0.0_f64;
        for (i, lt) in trace.launches.iter().enumerate() {
            assert_eq!(lt.launch_id, i);
            assert!(lt.start_s >= prev_start, "launch timeline goes backwards");
            prev_start = lt.start_s;
            assert_eq!(lt.groups.len(), lt.timing.num_groups);
            assert!((0.0..=1.0).contains(&lt.wavefront_occupancy));
            // phase summaries: sorted, labelled, and accounting for every
            // group-level phase execution
            assert!(!lt.phases.is_empty());
            assert!(lt.phases.windows(2).all(|w| w[0].phase < w[1].phase));
            assert!(lt.phases.iter().all(|p| !p.label.is_empty()));
            for summary in &lt.phases {
                let execs: u64 = lt
                    .groups
                    .iter()
                    .flat_map(|g| &g.phases)
                    .filter(|p| p.phase == summary.phase)
                    .map(|p| p.executions)
                    .sum();
                assert_eq!(execs, summary.executions);
            }
            for (gi, g) in lt.groups.iter().enumerate() {
                assert_eq!(g.group, gi);
                assert!(g.cu < cus, "group on nonexistent CU {}", g.cu);
                assert!(
                    0.0 <= g.start_cycle
                        && g.start_cycle <= g.end_cycle
                        && g.end_cycle <= lt.timing.compute_cycles * (1.0 + 1e-9),
                    "span [{}, {}] outside makespan {}",
                    g.start_cycle,
                    g.end_cycle,
                    lt.timing.compute_cycles
                );
                // the phase deltas recompose the group's total cost
                let flops: f64 = g.phases.iter().map(|p| p.cost.flops).sum();
                let barriers: u64 = g.phases.iter().map(|p| p.cost.barriers).sum();
                assert!((flops - g.cost.flops).abs() <= 1e-6 * g.cost.flops.max(1.0));
                assert_eq!(barriers, g.cost.barriers);
                // no two groups overlap on one CU
                for other in &lt.groups[gi + 1..] {
                    if other.cu == g.cu {
                        let overlap =
                            g.end_cycle.min(other.end_cycle) - g.start_cycle.max(other.start_cycle);
                        assert!(overlap <= 1e-9, "groups overlap on cu {}", g.cu);
                    }
                }
            }
        }
        // the PCIe lane is serial: transfers never overlap
        for w in trace.transfers.windows(2) {
            assert!(w[1].start_s + 1e-12 >= w[0].start_s + w[0].seconds);
        }
    }
}

#[test]
fn tuner_winner_always_comes_from_the_candidate_grid() {
    // the tuner is a pure argmin over its candidate grid: whatever the
    // workload, the winner must be a grid member, the trace must cover the
    // grid exactly, and the reported optimum must really be the minimum
    let mut rng = XorShift64::new(0xC1);
    let spec = DeviceSpec::radeon_hd_5850();
    for case in 0..8 {
        let bodies = arb_bodies(&mut rng, 300);
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let kind = PlanKind::all()[case % 4];
        let objective =
            if case % 2 == 0 { TuneObjective::KernelTime } else { TuneObjective::TotalTime };
        let base = PlanConfig::default();
        let result = tune(kind, base, &spec, &set, &params, objective);
        let grid = candidates(kind, base, &spec);
        assert!(
            grid.contains(&result.best),
            "{}: tuned config {:?} not in the candidate grid",
            kind.id(),
            result.best
        );
        assert_eq!(result.trace.len(), grid.len(), "{}: trace must cover the grid", kind.id());
        for point in &result.trace {
            assert!(grid.contains(&point.config), "{}: stray candidate", kind.id());
            assert!(point.seconds.is_finite() && point.seconds >= 0.0);
            assert!(result.best_seconds <= point.seconds, "{}: argmin violated", kind.id());
        }
    }
}

#[test]
fn tuned_host_tile_is_a_candidate_and_reproduces_bit_exact_forces() {
    // the host-tile tuner picks by wall clock, which varies per machine —
    // but the winner must come from TILE_CANDIDATES and must never move a
    // float: forces under the tuned tile are bit-identical to the default
    // tile and to the scalar reference
    let mut rng = XorShift64::new(0xC2);
    for _ in 0..6 {
        let bodies = arb_bodies(&mut rng, 280);
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let (best, trace) = tune_host_tile(&set, &params);
        assert!(nbody_core::soa::TILE_CANDIDATES.contains(&best));
        assert_eq!(trace.len(), nbody_core::soa::TILE_CANDIDATES.len());
        for (point, &tile) in trace.iter().zip(&nbody_core::soa::TILE_CANDIDATES) {
            assert_eq!(point.tile, tile, "trace order must follow the candidate grid");
            assert!(point.seconds.is_finite() && point.seconds >= 0.0);
        }

        let mut reference = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut reference);
        let mut soa = nbody_core::soa::SoaBodies::new();
        soa.fill_from(&set);
        let mut tuned = vec![Vec3::ZERO; set.len()];
        nbody_core::soa::accelerations_pp_tiled_with(soa.view(), &params, best, &mut tuned);
        let mut default_tile = vec![Vec3::ZERO; set.len()];
        nbody_core::soa::accelerations_pp_tiled_with(
            soa.view(),
            &params,
            nbody_core::soa::tile(),
            &mut default_tile,
        );
        assert_eq!(tuned, default_tile, "tuned tile {best} diverged from the default tile");
        assert_eq!(tuned, reference, "tuned tile {best} diverged from the scalar reference");
    }
}

#[test]
fn jw_parallel_matches_reference_for_arbitrary_clouds() {
    let mut rng = XorShift64::new(0xB2);
    for _ in 0..12 {
        let bodies = arb_bodies(&mut rng, 100);
        let set = ParticleSet::from_bodies(&bodies);
        let params = GravityParams { g: 1.0, softening: 0.1 };
        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        let mut dev =
            Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free());
        let o = JwParallel::default().evaluate(&mut dev, &set, &params);
        let err = nbody_core::gravity::max_relative_error(&exact, &o.acc);
        assert!(err < 0.05, "error {err}");
    }
}
