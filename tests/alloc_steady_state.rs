//! Zero-allocation steady-state gate.
//!
//! This binary installs [`par::arena::CountingAlloc`] as the global
//! allocator and asserts that, after a warmup step has populated the SoA
//! buffers, scratch arenas, and pooled tree storage, the serial hot paths
//! perform **zero** heap allocations per step:
//!
//! * the SoA-tiled PP engine driven by the leapfrog integrator,
//! * the Barnes-Hut engine (rebuild-in-place, refit, and pooled walks),
//! * interaction-list generation plus CPU walk evaluation,
//! * the incremental Morton re-sort.
//!
//! Zero allocation is a *serial* invariant (`par` pinned to one thread):
//! the parallel paths spawn scoped workers with per-chunk buffers by
//! design. The file holds exactly one `#[test]` so no concurrent test can
//! pollute the process-wide allocation counter.

#[global_allocator]
static ALLOC: par::arena::CountingAlloc = par::arena::CountingAlloc;

use nbody_core::integrator::{prime, ForceEngine, Integrator, LeapfrogKdk};
use nbody_core::prelude::*;
use treecode::prelude::*;

/// Runs `step` once more after `warmup` iterations and returns the
/// allocation events that single steady-state step performed.
fn allocs_of_step<F: FnMut()>(warmup: usize, mut step: F) -> u64 {
    for _ in 0..warmup {
        step();
    }
    par::arena::reset_alloc_count();
    step();
    par::arena::alloc_count()
}

#[test]
fn steady_state_steps_perform_zero_heap_allocations() {
    assert!(par::arena::counting_active(), "counting allocator must be installed");
    par::set_threads(1);
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let n = 512;

    // --- PP path: SoA engine + leapfrog, full integrator step ---
    let mut set = nbody_core::testutil::random_set(n, 21);
    let mut engine = SoaPp::new(params);
    prime(&mut set, &mut engine); // also resolves the tile size (auto-probe)
    let pp = allocs_of_step(3, || LeapfrogKdk.step(&mut set, &mut engine, 1e-4));
    assert_eq!(pp, 0, "SoA PP integrator step allocated {pp} times");

    // --- treecode path: Barnes-Hut with rebuild-in-place and refit ---
    // rebuild_interval 2 makes consecutive steps alternate rebuild/refit,
    // so the warmup + measured window covers both branches
    let mut bh = BarnesHut::new(params).with_rebuild_interval(2);
    let mut acc = vec![Vec3::ZERO; set.len()];
    let tree_rebuild = allocs_of_step(4, || bh.accelerations(&set, &mut acc));
    assert_eq!(tree_rebuild, 0, "Barnes-Hut step allocated {tree_rebuild} times");

    // --- interaction lists: capacity-reusing walk build + CPU evaluation ---
    let tree = Octree::build(&set, TreeParams::default());
    let theta = OpeningAngle::new(0.5);
    let mut walks = build_walks(&tree, &set, theta, 64);
    let mut scratch = par::arena::Scratch::new();
    let walk = allocs_of_step(2, || {
        build_walks_into(&mut walks, &tree, &set, theta, 64, &mut scratch);
        evaluate_walks_cpu(&walks, &tree, &set, &params, &mut acc);
    });
    assert_eq!(walk, 0, "walk build + evaluation allocated {walk} times");

    // --- Morton path: incremental re-sort of a perturbed previous order ---
    let mut order = morton_order(&set);
    let mut i = 0usize;
    let morton = allocs_of_step(3, || {
        // in-place perturbation: forces real merge passes, not just the
        // sortedness verification scan
        let len = order.len();
        order.swap(i % len, (i * 7 + 13) % len);
        i += 1;
        morton_order_incremental(&set, &mut order, &mut scratch);
    });
    assert_eq!(morton, 0, "incremental Morton re-sort allocated {morton} times");

    // sanity: the counter is actually live in this binary
    let probe = vec![0u8; 1];
    std::hint::black_box(&probe);
    assert!(par::arena::alloc_count() > 0);
}
