//! Supervised-daemon contracts: priority inversion resolved by preemption,
//! deterministically across host thread counts and fault seeds.
//!
//! The scenario is the classic inversion: a full wave of long `batch` jobs
//! holds every execution slot when a `high` job arrives. The daemon must
//! preempt the batch wave at its next checkpoint boundary, run the high job
//! first, then resume every batch job bit-exactly from its preemption
//! checkpoint. Wall-clock racing decides *when* the preemption lands, so
//! the preemption step itself is not part of the determinism contract —
//! but the final state is: every job completes, resumed jobs verify
//! bit-exact, and the cached force checksums are identical at 1, 2, and 4
//! host threads and under different transient-fault seeds.

use jobs::prelude::*;
use plans::prelude::PlanKind;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use workloads::spec::WorkloadSpec;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nbody-ptpm-daemon-it").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec(n: usize, seed: u64, steps: usize, priority: Priority) -> JobSpec {
    let mut s = JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, steps);
    s.checkpoint_every = 1;
    s.priority = priority;
    s
}

/// The determinism-relevant residue of one inversion run: which job ended
/// how, and the exact bits of every cached result.
#[derive(Debug, PartialEq)]
struct InversionFingerprint {
    done: usize,
    checksums: Vec<(String, u64)>,
}

/// Runs the inversion scenario once: two slow batch jobs fill the
/// `max_parallel = 2` wave, a high job lands mid-wave from another thread.
fn inversion_run(name: &str, fault_seed: Option<u64>) -> InversionFingerprint {
    let root = tmp(name);
    let (spool, recovery) = Spool::open(&root).unwrap();
    let batch_a = spec(64, 31, 8, Priority::Batch);
    let mut batch_b = spec(64, 32, 8, Priority::Batch);
    if let Some(seed) = fault_seed {
        batch_b.fault_seed = Some(seed);
        batch_b.fault_prob = Some(0.1);
    }
    let high = spec(48, 33, 2, Priority::High);
    spool.submit(&batch_a).unwrap();
    spool.submit(&batch_b).unwrap();

    let mut config = DaemonConfig { exit_when_idle: true, idle_sleep_ms: 1, ..Default::default() };
    config.server.artifacts = false;
    // throttle stretches each batch step to >= 12 ms wall clock so the high
    // job reliably arrives while the wave is mid-flight
    config.server.run.throttle_ms = 12;

    let stop = AtomicBool::new(false);
    let daemon = std::thread::scope(|scope| {
        let submit_spool = spool.clone();
        let high = high.clone();
        let submitter = scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            submit_spool.submit(&high).unwrap();
        });
        let daemon = run_daemon(&spool, recovery, &config, &stop).unwrap();
        submitter.join().unwrap();
        daemon
    });
    assert!(daemon.ok(), "{name}: {}", daemon.render());
    assert_eq!(spool.count(JobState::Done), 3, "{name}: {}", daemon.render());
    assert_eq!(spool.count(JobState::Poisoned), 0, "{name}");

    // the batch wave yielded at a checkpoint boundary
    let preempted =
        daemon.summary.reports.iter().filter(|r| r.outcome == JobOutcome::Preempted).count();
    assert!(preempted >= 1, "{name}: no preemption happened: {}", daemon.render());

    // the high job started within one preemption boundary: its completion
    // is finalized before either batch job's
    let completed_order: Vec<&str> = daemon
        .summary
        .reports
        .iter()
        .filter(|r| r.outcome == JobOutcome::Computed)
        .map(|r| r.hash_hex.as_str())
        .collect();
    assert_eq!(
        completed_order.first().copied(),
        Some(high.hash_hex().as_str()),
        "{name}: the high job must compute before the preempted batch jobs: {}",
        daemon.render()
    );

    // every resumed batch job verified bit-exact against its uninterrupted
    // reference (run_with_retry's verify gate)
    for r in &daemon.summary.reports {
        if r.outcome == JobOutcome::Computed && r.resumed_from > 0 {
            assert_eq!(r.verified, Some(true), "{name}: {:?}", r);
        }
    }

    // the heartbeat on disk is a complete JSON document with a drained queue
    let status: DaemonStatus =
        serde_json::from_str(&std::fs::read_to_string(spool.status_path()).unwrap()).unwrap();
    assert_eq!(status.queued_high + status.queued_normal + status.queued_batch, 0, "{name}");
    assert_eq!(status.in_flight, 0, "{name}");
    assert!(status.uptime_ticks >= 1, "{name}");

    let cache = spool.cache();
    let checksums = [&batch_a, &batch_b, &high]
        .iter()
        .map(|s| {
            let hit = cache.lookup(&s.hash_hex()).unwrap().unwrap();
            (s.hash_hex(), hit.result_checksum)
        })
        .collect();
    std::fs::remove_dir_all(&root).ok();
    InversionFingerprint { done: 3, checksums }
}

// par::set_threads is process-global, so the whole matrix lives in ONE test
// function and runs its configurations sequentially.
#[test]
fn priority_inversion_matrix_is_thread_and_fault_seed_invariant() {
    par::set_threads(1);
    let base = inversion_run("threads-1", None);

    // thread axis: the wave genuinely overlaps at 2 and 4 host threads,
    // the final physics must not notice
    for t in [2usize, 4] {
        par::set_threads(t);
        let got = inversion_run(&format!("threads-{t}"), None);
        assert_eq!(base, got, "inversion outcome diverged at {t} host threads");
    }

    // fault axis: transient faults on a batch job change simulated clocks
    // and recovery work, never the cached forces
    par::set_threads(2);
    for seed in [3u64, 11] {
        let got = inversion_run(&format!("faults-{seed}"), Some(seed));
        assert_eq!(base.checksums, got.checksums, "cached forces diverged under fault seed {seed}");
    }
    par::set_threads(1);
}
