//! PTPM-vs-simulator agreement: the analytic time-space model must predict
//! the same plan *ranking* the full simulator measures, and its absolute
//! kernel-time forecasts for the ALU-bound PP plans must land close.

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::prelude::*;
use ptpm::prelude::*;
use treecode::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn device() -> Device {
    Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free())
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

#[test]
fn i_parallel_forecast_matches_simulator_within_20_percent() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    for n in [1024_usize, 4096, 8192] {
        let set = plummer(n, PlummerParams::default(), 1);
        let mut dev = device();
        let measured = IParallel::default().evaluate(&mut dev, &set, &p).kernel_s;
        let forecast = forecast_i_parallel(n, 256, &spec).seconds;
        let ratio = forecast / measured;
        assert!(
            (0.8..1.25).contains(&ratio),
            "N={n}: forecast {forecast} vs simulated {measured} (ratio {ratio})"
        );
    }
}

#[test]
fn forecast_ranks_i_vs_j_like_the_simulator() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    for n in [512_usize, 1024, 4096] {
        let set = plummer(n, PlummerParams::default(), 2);
        let mut dev = device();
        let i_sim = IParallel::default().evaluate(&mut dev, &set, &p).kernel_s;
        let j_plan = JParallel::default();
        let slices = j_plan.slices_for(n, &spec);
        let j_sim = j_plan.evaluate(&mut dev, &set, &p).kernel_s;

        let i_fc = forecast_i_parallel(n, 256, &spec).seconds;
        let j_fc = forecast_j_parallel(n, 256, slices, &spec).seconds;
        assert_eq!(
            i_sim < j_sim,
            i_fc < j_fc,
            "N={n}: simulator says i<j = {}, forecast says {}",
            i_sim < j_sim,
            i_fc < j_fc
        );
    }
}

#[test]
fn forecast_ranks_w_vs_jw_like_the_simulator() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    let cfg = PlanConfig::default();
    for n in [1024_usize, 4096] {
        let set = plummer(n, PlummerParams::default(), 3);
        // real list lengths from the same walks the plans use
        let tree = Octree::build(&set, TreeParams { leaf_capacity: cfg.leaf_capacity });
        let walks = build_walks(&tree, &set, OpeningAngle::new(cfg.theta), cfg.walk_size);
        let lens: Vec<usize> = walks.groups.iter().map(|g| g.list_len()).collect();
        let total: usize = lens.iter().sum();
        let slice = plans::jw_parallel::auto_slice_len(total, cfg.walk_size, &spec);

        let w_fc = forecast_w_parallel(&lens, cfg.walk_size, &spec).seconds;
        let jw_fc = forecast_jw_parallel(&lens, cfg.walk_size, slice, &spec).seconds;

        let mut dev = device();
        let w_sim = WParallel::new(cfg).evaluate(&mut dev, &set, &p).kernel_s;
        let jw_sim = JwParallel::new(cfg).evaluate(&mut dev, &set, &p).kernel_s;

        assert!(
            jw_fc <= w_fc && jw_sim <= w_sim,
            "N={n}: forecast jw {jw_fc} vs w {w_fc}; simulated jw {jw_sim} vs w {w_sim}"
        );
    }
}

#[test]
fn grid_utilization_explains_gflops_ordering() {
    // the plan with higher forecast space-utilization achieves higher
    // simulated GFLOPS at small N
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    let n = 1024;
    let set = plummer(n, PlummerParams::default(), 4);
    let mut dev = device();

    let i_fc = forecast_i_parallel(n, 256, &spec);
    let j_fc = forecast_j_parallel(n, 256, 16, &spec);
    assert!(j_fc.space_utilization > i_fc.space_utilization);

    let conv = FlopConvention::Grape38;
    let i_g = IParallel::default().evaluate(&mut dev, &set, &p).gflops(conv);
    let j_g = JParallel::default().evaluate(&mut dev, &set, &p).gflops(conv);
    assert!(j_g > i_g, "j {j_g} vs i {i_g}");
}
