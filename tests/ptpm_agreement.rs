//! PTPM-vs-simulator agreement: the analytic time-space model must predict
//! the same plan *ranking* the full simulator measures, its absolute
//! kernel-time forecasts for the ALU-bound PP plans must land close, and
//! its forecast time-space *grids* must match the schedules reconstructed
//! from execution traces.

use gpu_sim::prelude::{Device, DeviceSpec, MemoryTraceSink, TransferModel};
use nbody_core::prelude::*;
use plans::prelude::*;
use ptpm::prelude::*;
use treecode::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn device() -> Device {
    Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free())
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

#[test]
fn i_parallel_forecast_matches_simulator_within_20_percent() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    for n in [1024_usize, 4096, 8192] {
        let set = plummer(n, PlummerParams::default(), 1);
        let mut dev = device();
        let measured = IParallel::default().evaluate(&mut dev, &set, &p).kernel_s;
        let forecast = forecast_i_parallel(n, 256, &spec).seconds;
        let ratio = forecast / measured;
        assert!(
            (0.8..1.25).contains(&ratio),
            "N={n}: forecast {forecast} vs simulated {measured} (ratio {ratio})"
        );
    }
}

#[test]
fn forecast_ranks_i_vs_j_like_the_simulator() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    for n in [512_usize, 1024, 4096] {
        let set = plummer(n, PlummerParams::default(), 2);
        let mut dev = device();
        let i_sim = IParallel::default().evaluate(&mut dev, &set, &p).kernel_s;
        let j_plan = JParallel::default();
        let slices = j_plan.slices_for(n, &spec);
        let j_sim = j_plan.evaluate(&mut dev, &set, &p).kernel_s;

        let i_fc = forecast_i_parallel(n, 256, &spec).seconds;
        let j_fc = forecast_j_parallel(n, 256, slices, &spec).seconds;
        assert_eq!(
            i_sim < j_sim,
            i_fc < j_fc,
            "N={n}: simulator says i<j = {}, forecast says {}",
            i_sim < j_sim,
            i_fc < j_fc
        );
    }
}

#[test]
fn forecast_ranks_w_vs_jw_like_the_simulator() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    let cfg = PlanConfig::default();
    for n in [1024_usize, 4096] {
        let set = plummer(n, PlummerParams::default(), 3);
        // real list lengths from the same walks the plans use
        let tree = Octree::build(&set, TreeParams { leaf_capacity: cfg.leaf_capacity });
        let walks = build_walks(&tree, &set, OpeningAngle::new(cfg.theta), cfg.walk_size);
        let lens: Vec<usize> = walks.groups.iter().map(|g| g.list_len()).collect();
        let total: usize = lens.iter().sum();
        let slice = plans::jw_parallel::auto_slice_len(total, cfg.walk_size, &spec);

        let w_fc = forecast_w_parallel(&lens, cfg.walk_size, &spec).seconds;
        let jw_fc = forecast_jw_parallel(&lens, cfg.walk_size, slice, &spec).seconds;

        let mut dev = device();
        let w_sim = WParallel::new(cfg).evaluate(&mut dev, &set, &p).kernel_s;
        let jw_sim = JwParallel::new(cfg).evaluate(&mut dev, &set, &p).kernel_s;

        assert!(
            jw_fc <= w_fc && jw_sim <= w_sim,
            "N={n}: forecast jw {jw_fc} vs w {w_fc}; simulated jw {jw_sim} vs w {w_sim}"
        );
    }
}

#[test]
fn grid_utilization_explains_gflops_ordering() {
    // the plan with higher forecast space-utilization achieves higher
    // simulated GFLOPS at small N
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    let n = 1024;
    let set = plummer(n, PlummerParams::default(), 4);
    let mut dev = device();

    let i_fc = forecast_i_parallel(n, 256, &spec);
    let j_fc = forecast_j_parallel(n, 256, 16, &spec);
    assert!(j_fc.space_utilization > i_fc.space_utilization);

    let conv = FlopConvention::Grape38;
    let i_g = IParallel::default().evaluate(&mut dev, &set, &p).gflops(conv);
    let j_g = JParallel::default().evaluate(&mut dev, &set, &p).gflops(conv);
    assert!(j_g > i_g, "j {j_g} vs i {i_g}");
}

/// Forecast time-space grids vs the schedules the simulator actually
/// produced, reconstructed from execution traces. The model forecasts from
/// launch shape alone (per-block ALU work), so agreement here means the
/// paper's geometric reasoning — not just its wall-clock totals — matches
/// the machine: utilization within 2 points for the uniform PP plans and
/// 15 points for the tree plans (whose memory traffic the forecast
/// ignores), balance within the same bands.
#[test]
fn forecast_grids_agree_with_observed_schedules_for_all_plans() {
    let spec = DeviceSpec::radeon_hd_5850();
    let p = params();
    let cfg = PlanConfig::default();
    for n in [1024_usize, 4096] {
        let set = plummer(n, PlummerParams::default(), 5);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: cfg.leaf_capacity });
        let walks = build_walks(&tree, &set, OpeningAngle::new(cfg.theta), cfg.walk_size);
        let lens: Vec<usize> = walks.groups.iter().map(|g| g.list_len()).collect();
        let total: usize = lens.iter().sum();
        let slice = plans::jw_parallel::auto_slice_len(total, cfg.walk_size, &spec);
        let slices = JParallel::new(cfg).slices_for(n, &spec);

        for kind in PlanKind::all() {
            let mut dev = device();
            let sink = MemoryTraceSink::new();
            dev.set_trace_sink(Box::new(sink.clone()));
            plans::make_plan(kind, cfg).evaluate(&mut dev, &set, &p);
            let trace = sink.snapshot();
            // the force kernel is always the plan's first launch
            let force = &trace.launches[0];

            let blocks = match kind {
                PlanKind::IParallel => i_parallel_block_flops(n, cfg.block_size),
                PlanKind::JParallel => j_parallel_block_flops(n, cfg.block_size, slices),
                PlanKind::WParallel => w_parallel_block_flops(&lens, cfg.walk_size),
                PlanKind::JwParallel => jw_parallel_block_flops(&lens, cfg.walk_size, slice),
            };
            let forecast = forecast_grid(&blocks, &spec);
            let observed = observed_grid(force, trace.compute_units);
            assert_eq!(forecast.placements.len(), force.timing.num_groups);

            let cmp = compare_grids(&forecast, &observed, 32);
            let tol = if kind.uses_tree() { 0.15 } else { 0.02 };
            assert!(
                cmp.utilization_error() <= tol,
                "{} at N={n}: forecast utilization {:.3} vs observed {:.3}",
                kind.id(),
                cmp.forecast_utilization,
                cmp.observed_utilization
            );
            assert!(
                cmp.balance_error() <= tol,
                "{} at N={n}: forecast balance {:.3} vs observed {:.3}",
                kind.id(),
                cmp.forecast_balance,
                cmp.observed_balance
            );
            assert!(
                cmp.mean_cell_error <= 0.30,
                "{} at N={n}: mean cell error {:.3}",
                kind.id(),
                cmp.mean_cell_error
            );
        }
    }
}
