//! End-to-end contracts of the crash-safe job server (`crates/jobs`).
//!
//! The scheduler inherits the determinism contract of the stack under it
//! (DESIGN.md §8) and must not weaken it: draining the same submitted batch
//! must produce the same job ordering, the same outcome for every job, the
//! same deadline-retry counts, and bit-exact cached results — at every host
//! thread count and under every transient-fault seed. On top of that sits
//! the crash-recovery gate: a server killed mid-job must, after restart,
//! finish the job bit-exactly and serve identical resubmissions from the
//! content-addressed cache.

use jobs::prelude::*;
use plans::prelude::PlanKind;
use std::path::PathBuf;
use workloads::spec::WorkloadSpec;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nbody-ptpm-job-server-it").join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec(n: usize, seed: u64) -> JobSpec {
    let mut s = JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, 4);
    s.checkpoint_every = 2;
    s
}

fn quick_config() -> ServerConfig {
    ServerConfig { artifacts: false, ..Default::default() }
}

/// A mixed-tenant batch: priority classes, a deadline-sliced job, a
/// fault-injected job, and a tiled variant — every scheduler feature in one
/// queue.
fn batch(deadline_s: f64, fault_seed: u64) -> Vec<JobSpec> {
    let mut high = spec(48, 1);
    high.priority = Priority::High;
    let mut sliced = spec(48, 2);
    sliced.deadline_s = Some(deadline_s);
    let mut bulk = spec(64, 3);
    bulk.priority = Priority::Batch;
    let mut faulty = spec(48, 4);
    faulty.fault_seed = Some(fault_seed);
    faulty.fault_prob = Some(0.1);
    let mut tiled = spec(48, 5);
    tiled.tile = Some(128);
    vec![high, sliced, bulk, faulty, tiled]
}

/// One drain's observable behaviour, everything the determinism contract
/// covers: scheduling order, outcomes, retry counts, resume points, and the
/// bit pattern of every cached result.
#[derive(Debug, PartialEq)]
struct DrainFingerprint {
    reports: Vec<(String, String, u32, usize)>,
    checksums: Vec<(String, u64)>,
}

fn drain_batch(name: &str, specs: &[JobSpec], config: &ServerConfig) -> DrainFingerprint {
    let root = tmp(name);
    let (spool, recovery) = Spool::open(&root).unwrap();
    for s in specs {
        spool.submit(s).unwrap();
    }
    let summary = drain(&spool, recovery, config).unwrap();
    assert!(summary.ok(), "{name}: {}", summary.render());
    let reports = summary
        .reports
        .iter()
        .map(|r| (r.id.clone(), r.outcome.id().to_string(), r.retries, r.resumed_from))
        .collect();
    let cache = spool.cache();
    let mut checksums: Vec<(String, u64)> = specs
        .iter()
        .map(|s| {
            let hit = cache.lookup(&s.hash_hex()).unwrap().unwrap_or_else(|| {
                panic!("{name}: no cached result for {}", s.label());
            });
            (s.hash_hex(), hit.result_checksum)
        })
        .collect();
    checksums.dedup();
    std::fs::remove_dir_all(&root).ok();
    DrainFingerprint { reports, checksums }
}

/// Simulated-seconds budget that slices `spec(48, _)` into several attempts:
/// 40% of an uninterrupted run's total.
fn slicing_deadline() -> f64 {
    let probe = spec(48, 2);
    let root = tmp("probe");
    let (spool, recovery) = Spool::open(&root).unwrap();
    spool.submit(&probe).unwrap();
    let summary = drain(&spool, recovery, &quick_config()).unwrap();
    assert!(summary.ok(), "{}", summary.render());
    let total = spool.cache().lookup(&probe.hash_hex()).unwrap().unwrap().simulated_total_s;
    std::fs::remove_dir_all(&root).ok();
    total * 0.4
}

// par::set_threads is process-global, so the whole matrix lives in ONE test
// function and runs its configurations sequentially.
#[test]
fn drain_matrix_is_thread_and_fault_seed_invariant() {
    let deadline = slicing_deadline();

    // --- thread axis: identical batch at 1, 2, and 4 host threads ---
    par::set_threads(1);
    let base = drain_batch("threads-1", &batch(deadline, 7), &quick_config());
    assert!(
        base.reports.iter().any(|(_, _, retries, _)| *retries > 0),
        "the sliced job must consume deadline retries: {base:?}"
    );
    for t in [2usize, 4] {
        par::set_threads(t);
        let got = drain_batch(&format!("threads-{t}"), &batch(deadline, 7), &quick_config());
        assert_eq!(base, got, "drain behaviour diverged at {t} host threads");
    }

    // --- max_parallel axis: wave width changes wall-clock, never results ---
    par::set_threads(4);
    for width in [1usize, 4] {
        let config = ServerConfig { max_parallel: width, ..quick_config() };
        let got = drain_batch(&format!("width-{width}"), &batch(deadline, 7), &config);
        assert_eq!(base, got, "drain behaviour diverged at max_parallel={width}");
    }

    // --- fault axis: transient faults change clocks, never the physics ---
    par::set_threads(2);
    for fault_seed in [3u64, 11] {
        let got = drain_batch(
            &format!("faults-{fault_seed}"),
            &batch(deadline, fault_seed),
            &quick_config(),
        );
        assert_eq!(
            base.checksums, got.checksums,
            "cached forces diverged under fault seed {fault_seed}"
        );
        assert_eq!(
            base.reports.iter().map(|r| &r.1).collect::<Vec<_>>(),
            got.reports.iter().map(|r| &r.1).collect::<Vec<_>>(),
            "outcome sequence diverged under fault seed {fault_seed}"
        );
    }
    par::set_threads(1);
}

#[test]
fn killed_server_resumes_bit_exactly_and_resubmission_hits_cache() {
    let job = spec(64, 21);

    // uninterrupted reference drain
    let ref_root = tmp("crash-reference");
    let (spool, recovery) = Spool::open(&ref_root).unwrap();
    spool.submit(&job).unwrap();
    let summary = drain(&spool, recovery, &quick_config()).unwrap();
    assert!(summary.ok());
    let reference = spool.cache().lookup(&job.hash_hex()).unwrap().unwrap();
    std::fs::remove_dir_all(&ref_root).ok();

    // the same job, crashed after step 2 (what SIGKILL leaves behind)
    let root = tmp("crash-resume");
    let (spool, recovery) = Spool::open(&root).unwrap();
    spool.submit(&job).unwrap();
    let crash = ServerConfig {
        run: RunOptions { crash_after: Some(2), ..Default::default() },
        ..quick_config()
    };
    let summary = drain(&spool, recovery, &crash).unwrap();
    assert_eq!(summary.reports[0].outcome, JobOutcome::Crashed);
    assert_eq!(spool.count(JobState::Running), 1, "crash leaves the claim in running/");

    // restart: requeue, resume from the step-2 checkpoint, verify bit-exact
    let (spool, recovery) = Spool::open(&root).unwrap();
    assert_eq!(recovery.requeued, 1);
    let summary = drain(&spool, recovery, &quick_config()).unwrap();
    assert!(summary.ok(), "{}", summary.render());
    let report = &summary.reports[0];
    assert_eq!(report.outcome, JobOutcome::Computed);
    assert_eq!(report.resumed_from, 2);
    assert_eq!(report.verified, Some(true));
    let resumed = spool.cache().lookup(&job.hash_hex()).unwrap().unwrap();
    assert_eq!(
        resumed.result_checksum, reference.result_checksum,
        "resumed result must be bit-identical to the uninterrupted run"
    );
    assert_eq!(resumed.final_snapshot.set.pos(), reference.final_snapshot.set.pos());
    assert_eq!(resumed.final_snapshot.set.vel(), reference.final_snapshot.set.vel());

    // an identical resubmission never recomputes
    spool.submit(&job).unwrap();
    let (spool, recovery) = Spool::open(&root).unwrap();
    let summary = drain(&spool, recovery, &quick_config()).unwrap();
    assert_eq!(summary.reports.len(), 1);
    assert_eq!(summary.reports[0].outcome, JobOutcome::CacheHit);
    assert_eq!(spool.cache().len(), 1, "the cache holds exactly one entry per canonical hash");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn malformed_and_doomed_tenants_cannot_degrade_the_server() {
    let root = tmp("tenants");
    let (spool, recovery) = Spool::open(&root).unwrap();
    let mut rejected = spec(48, 31);
    rejected.checkpoint_every = 0; // fails admission with a typed error
    let mut doomed = spec(48, 32);
    doomed.fault_seed = Some(1);
    doomed.fault_loss_prob = Some(1.0); // permanent device loss mid-job
    let healthy = spec(48, 33);
    spool.submit(&rejected).unwrap();
    spool.submit(&doomed).unwrap();
    spool.submit(&healthy).unwrap();
    let summary = drain(&spool, recovery, &quick_config()).unwrap();
    assert!(summary.ok(), "typed failures are not degradation: {}", summary.render());
    assert_eq!(summary.completed(), 1, "{}", summary.render());
    assert_eq!(spool.count(JobState::Failed), 2);
    assert_eq!(spool.count(JobState::Done), 1);
    let errors: Vec<String> =
        spool.list(JobState::Failed).unwrap().iter().filter_map(|r| r.error.clone()).collect();
    assert!(errors.iter().any(|e| e.contains("zero-checkpoint-every")), "{errors:?}");
    assert!(errors.iter().any(|e| e.contains("unrecoverable")), "{errors:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn artifacts_land_in_the_job_work_directory() {
    let root = tmp("artifacts");
    let (spool, recovery) = Spool::open(&root).unwrap();
    let job = spec(48, 41);
    spool.submit(&job).unwrap();
    let summary = drain(&spool, recovery, &ServerConfig::default()).unwrap();
    assert!(summary.ok(), "{}", summary.render());
    let dir = spool.job_dir(&job.hash_hex());
    let bench = std::fs::read_to_string(dir.join("bench.json")).unwrap();
    assert!(bench.contains(&job.hash_hex()), "bench.json names the job");
    let trace = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
    assert!(trace.starts_with("event,id,name,start_us,dur_us,bytes"), "{trace}");
    assert!(trace.lines().count() > 1, "trace must contain events");
    std::fs::remove_dir_all(&root).ok();
}
