//! End-to-end simulations: integrate real workloads with the device plans
//! driving the forces, and check the physics that must survive — energy,
//! momentum, and agreement between CPU and simulated-GPU trajectories.

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use workloads::prelude::*;

fn gpu_engine(kind: PlanKind) -> PlanForceEngine {
    let device =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    PlanForceEngine::new(
        device,
        make_plan(kind, PlanConfig::default()),
        GravityParams { g: 1.0, softening: 0.05 },
    )
}

#[test]
fn gpu_trajectory_tracks_cpu_trajectory() {
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let initial = plummer(256, PlummerParams::default(), 31);

    let mut cpu_set = initial.clone();
    let mut cpu_engine = DirectPp::new(params);
    run(&mut cpu_set, &mut cpu_engine, &LeapfrogKdk, 1e-3, 30);

    let mut gpu_set = initial;
    let mut engine = gpu_engine(PlanKind::IParallel);
    run(&mut gpu_set, &mut engine, &LeapfrogKdk, 1e-3, 30);

    // f32 forces diverge slowly; after 30 steps positions still agree well
    let max_dev =
        cpu_set.pos().iter().zip(gpu_set.pos()).map(|(a, b)| a.distance(*b)).fold(0.0, f64::max);
    assert!(max_dev < 1e-3, "trajectory deviation {max_dev}");
}

#[test]
fn cluster_collision_conserves_energy_under_jw() {
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let mut set = cluster_collision(400, CollisionParams::default(), 17);
    let e0 = total_energy(&set, &params);
    let mut engine = gpu_engine(PlanKind::JwParallel);
    run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 60);
    let e1 = total_energy(&set, &params);
    let drift = ((e1 - e0) / e0).abs();
    assert!(drift < 0.02, "energy drift {drift}");
    assert!(set.all_finite());
}

#[test]
fn momentum_stays_zero_under_every_plan() {
    for kind in PlanKind::all() {
        let mut set = plummer(200, PlummerParams::default(), 23);
        set.recenter();
        let mut engine = gpu_engine(kind);
        run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 20);
        let p = set.center_of_mass_velocity().unwrap() * set.total_mass();
        // tree plans have slightly asymmetric forces; bound is loose but real
        let bound = if kind.uses_tree() { 5e-3 } else { 1e-4 };
        assert!(p.norm() < bound, "{}: net momentum {:?}", kind.id(), p);
    }
}

#[test]
fn simulated_time_grows_linearly_with_steps() {
    let mut set = plummer(256, PlummerParams::default(), 29);
    let mut engine = gpu_engine(PlanKind::JwParallel);
    prime(&mut set, &mut engine);
    let t1 = engine.simulated_total_seconds();
    for _ in 0..10 {
        LeapfrogKdk.step(&mut set, &mut engine, 1e-3);
    }
    let t11 = engine.simulated_total_seconds();
    // 11 evaluations total; per-step cost roughly constant
    let per_step = (t11 - t1) / 10.0;
    assert!((t1 - per_step).abs() < per_step * 0.5, "prime {t1} vs step {per_step}");
}

#[test]
fn disk_galaxy_keeps_spinning_under_gpu_forces() {
    let mut set = disk_galaxy(500, DiskParams::default(), 37);
    let l0 = nbody_core::energy::angular_momentum(&set);
    let mut engine = gpu_engine(PlanKind::WParallel);
    run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 50);
    let l1 = nbody_core::energy::angular_momentum(&set);
    assert!((l1.z - l0.z).abs() < 0.02 * l0.z.abs(), "Lz {} -> {}", l0.z, l1.z);
}
