//! Cross-crate property coverage for `ptpm::jobcost`: the admission
//! forecast's tree-plan proxy (synthetic uniform interaction lists) must
//! stay within a documented factor bound of the direct analytic model run
//! on the *real* interaction lists of the workload it approximates.
//!
//! The proxy is admission-grade by design — one walk per `walk` bodies,
//! every list `min(N, 8·log₂N)` long — so the bound here is deliberately
//! loose: admission and load shedding need the right order of magnitude,
//! not precision (that is `ptpm::observed`'s job). A proxy drifting
//! outside an order of magnitude would silently mis-shed, which is what
//! this test exists to catch.

use gpu_sim::prelude::DeviceSpec;
use ptpm::jobcost::{
    forecast_eval_seconds, DEFAULT_BLOCK, DEFAULT_WALK, HOST_TREE_NS_PER_BODY,
    HOST_WALK_NS_PER_ENTRY,
};
use ptpm::model::{forecast_jw_parallel, forecast_w_parallel};
use treecode::interaction_list::build_walks;
use treecode::mac::OpeningAngle;
use treecode::tree::{Octree, TreeParams};
use workloads::spec::WorkloadSpec;

/// The factor the proxy may deviate from the real-geometry forecast, in
/// either direction. Observed ratios on seeded Plummer spheres at
/// N ∈ [512, 8192] stay within ~1.6x; see the assertions for the exact
/// values a failure prints.
const PROXY_FACTOR_BOUND: f64 = 4.0;

fn real_list_lens(n: usize, seed: u64, walk: usize) -> Vec<usize> {
    let mut set = WorkloadSpec::plummer(n, seed).generate();
    set.recenter();
    let tree = Octree::build(&set, TreeParams { leaf_capacity: 16 });
    let walks = build_walks(&tree, &set, OpeningAngle::new(0.5), walk);
    walks.groups.iter().map(|g| g.list_len()).collect()
}

/// Composes a kernel forecast with the explicit host tree/walk phases the
/// admission forecast now prices, using the *real* entry count — the
/// like-for-like total the proxy approximates.
fn with_host_phases(kernel_s: f64, n: usize, entries: usize) -> f64 {
    let tree_s = n as f64 * HOST_TREE_NS_PER_BODY * 1e-9;
    let walk_s = entries as f64 * HOST_WALK_NS_PER_ENTRY * 1e-9;
    tree_s + walk_s.max(kernel_s)
}

#[test]
fn tree_plan_proxy_stays_within_factor_bound_of_real_geometry() {
    let spec = DeviceSpec::radeon_hd_5850();
    for &(n, seed) in &[(512usize, 1u64), (1024, 2), (2048, 3), (4096, 4), (8192, 5)] {
        let lists = real_list_lens(n, seed, DEFAULT_WALK);
        let entries: usize = lists.iter().sum();
        let real_w =
            with_host_phases(forecast_w_parallel(&lists, DEFAULT_WALK, &spec).seconds, n, entries);
        let real_jw = with_host_phases(
            forecast_jw_parallel(&lists, DEFAULT_WALK, DEFAULT_BLOCK, &spec).seconds,
            n,
            entries,
        );
        let proxy_w = forecast_eval_seconds("w-parallel", n, None);
        let proxy_jw = forecast_eval_seconds("jw-parallel", n, None);
        for (plan, proxy, real) in
            [("w-parallel", proxy_w, real_w), ("jw-parallel", proxy_jw, real_jw)]
        {
            assert!(proxy.is_finite() && proxy > 0.0 && real.is_finite() && real > 0.0);
            let ratio = proxy / real;
            assert!(
                (1.0 / PROXY_FACTOR_BOUND..=PROXY_FACTOR_BOUND).contains(&ratio),
                "{plan} n={n}: proxy {proxy:.3e} vs real {real:.3e} (ratio {ratio:.2}) \
                 escaped the {PROXY_FACTOR_BOUND}x bound"
            );
        }
    }
}

#[test]
fn proxy_tracks_real_geometry_growth() {
    // beyond staying bounded, the proxy must *grow* with the real cost:
    // both quadruple N → both forecasts increase
    let spec = DeviceSpec::radeon_hd_5850();
    let small_real =
        forecast_w_parallel(&real_list_lens(1024, 9, DEFAULT_WALK), DEFAULT_WALK, &spec).seconds;
    let big_real =
        forecast_w_parallel(&real_list_lens(4096, 9, DEFAULT_WALK), DEFAULT_WALK, &spec).seconds;
    let small_proxy = forecast_eval_seconds("w-parallel", 1024, None);
    let big_proxy = forecast_eval_seconds("w-parallel", 4096, None);
    assert!(big_real > small_real);
    assert!(big_proxy > small_proxy);
}
