//! Seeded fuzz of malformed job specs through the submit parser path.
//!
//! `submit` builds a [`JobSpec`] from string flags (`str::parse` per
//! field), admission-checks it client-side, and spools JSON that the
//! server re-parses and re-admits. This test drives randomized hostile
//! values — NaN/Inf/negative/overflow numerics, garbage tokens — through
//! the same three layers and asserts the error paths stay *typed*:
//! `spec::admit` returns an [`AdmissionError`] with a stable id (never
//! panics), and the JSON round trip either reproduces the spec or fails
//! as a parse error (never panics, never yields an admissible mutant).

use jobs::prelude::*;
use nbody_core::testutil::XorShift64;
use plans::prelude::{BackendKind, PlanKind};
use workloads::spec::{WorkloadKind, WorkloadSpec};

/// The hostile numeric tokens a user could hand any `submit` flag.
const WILD_TOKENS: &[&str] = &[
    "NaN",
    "-NaN",
    "inf",
    "-inf",
    "1e999",
    "-1e999",
    "0",
    "-0",
    "-1",
    "18446744073709551616",
    "1e-999",
    "abc",
    "",
    "0x10",
    "1.0.0",
    "9223372036854775807",
    "0.05",
];

fn wild_f64(rng: &mut XorShift64) -> f64 {
    match rng.next_u64() % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -1e-3,
        5 => 1e308,
        6 => 5e-324,
        _ => rng.next_f64() * 2e-3,
    }
}

fn wild_usize(rng: &mut XorShift64) -> usize {
    match rng.next_u64() % 6 {
        0 => 0,
        1 => usize::MAX,
        2 => usize::MAX / 2,
        3 => 1,
        _ => (rng.next_u64() % 100_000) as usize,
    }
}

fn wild_spec(rng: &mut XorShift64) -> JobSpec {
    let kinds = WorkloadKind::all();
    let kind = kinds[(rng.next_u64() as usize) % kinds.len()];
    let plans = PlanKind::all();
    let plan = plans[(rng.next_u64() as usize) % plans.len()];
    let workload = WorkloadSpec { kind, n: wild_usize(rng), seed: rng.next_u64() };
    let mut spec = JobSpec::new(workload, plan, wild_usize(rng));
    spec.dt = wild_f64(rng);
    spec.checkpoint_every = wild_usize(rng);
    if rng.next_u64().is_multiple_of(2) {
        spec.deadline_s = Some(wild_f64(rng));
    }
    if rng.next_u64().is_multiple_of(2) {
        spec.threads = Some(wild_usize(rng));
    }
    if rng.next_u64().is_multiple_of(2) {
        spec.tile = Some(wild_usize(rng));
    }
    if rng.next_u64().is_multiple_of(2) {
        spec.fault_seed = Some(rng.next_u64());
        spec.fault_prob = Some(wild_f64(rng));
        spec.fault_loss_prob = Some(wild_f64(rng));
    }
    if rng.next_u64().is_multiple_of(2) {
        let backends = BackendKind::all();
        spec.backend = Some(backends[(rng.next_u64() as usize) % backends.len()]);
    }
    spec
}

/// What an admitted spec is allowed to look like: every invariant the rest
/// of the pipeline (runner, cache, checkpoints) relies on.
fn assert_admissible_invariants(spec: &JobSpec, policy: &AdmissionPolicy) {
    assert!(spec.workload.n >= 1 && spec.workload.n <= policy.max_n);
    assert!(spec.steps >= 1 && spec.steps <= policy.max_steps);
    assert!(spec.dt.is_finite() && spec.dt > 0.0);
    assert!(spec.checkpoint_every >= 1);
    assert_ne!(spec.threads, Some(0));
    assert_ne!(spec.tile, Some(0));
    if let Some(d) = spec.deadline_s {
        assert!(d.is_finite() && d > 0.0);
        assert_eq!(spec.backend_kind(), BackendKind::Sim);
    }
    if spec.fault_seed.is_some() {
        assert_eq!(spec.backend_kind(), BackendKind::Sim);
    }
    if let Some((_, cfg)) = spec.fault_config() {
        cfg.validate().expect("admitted fault config validates");
    }
    assert_eq!(spec.hash_hex().len(), 16);
}

#[test]
fn admit_returns_typed_errors_and_never_panics() {
    let mut rng = XorShift64::new(0xF0CC_5EED);
    let policy = AdmissionPolicy::default();
    let mut rejected = 0;
    let mut admitted = 0;
    for _ in 0..512 {
        let spec = wild_spec(&mut rng);
        match admit(&spec, &policy) {
            Ok(()) => {
                admitted += 1;
                assert_admissible_invariants(&spec, &policy);
            }
            Err(err) => {
                rejected += 1;
                // typed: a stable id, embedded in the Display form
                assert!(!err.id().is_empty());
                assert!(err.to_string().contains(err.id()), "{err}");
            }
        }
    }
    assert!(rejected > 50, "wild specs must mostly be refused ({rejected} rejections)");
    assert!(admitted > 0, "some wild specs are well-formed by construction");
}

#[test]
fn json_round_trip_of_wild_specs_never_panics_or_launders() {
    let mut rng = XorShift64::new(20110101);
    let policy = AdmissionPolicy::default();
    for _ in 0..256 {
        let spec = wild_spec(&mut rng);
        let verdict = admit(&spec, &policy);
        let json = serde_json::to_string(&spec).expect("specs always serialize");
        match serde_json::from_str::<JobSpec>(&json) {
            Ok(back) => {
                // NaN/Inf serialize as null (serde_json convention), so the
                // round trip may *drop* optional fields — re-admission must
                // not be more permissive on the required ones
                if admit(&back, &policy).is_ok() && verdict.is_err() {
                    let dropped_optional = (spec.deadline_s.is_some() && back.deadline_s.is_none())
                        || (spec.fault_seed.is_some() && back.fault_seed.is_none())
                        || (spec.fault_prob.is_some() && back.fault_prob.is_none())
                        || (spec.fault_loss_prob.is_some() && back.fault_loss_prob.is_none());
                    assert!(
                        dropped_optional,
                        "re-admission flipped without a lossy optional field: {spec:?}"
                    );
                }
            }
            Err(e) => {
                // a typed parse error is an acceptable outcome for a spec
                // whose required fields serialized as null
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

#[test]
fn submit_style_string_parsing_stays_typed() {
    // the exact semantics of submit's `parsed<T>` helper: a flag value is
    // `str::parse`d and a failure must surface as an error value, never a
    // panic, and never a silently-admitted spec
    let mut rng = XorShift64::new(7);
    let policy = AdmissionPolicy::default();
    for _ in 0..256 {
        let token = WILD_TOKENS[(rng.next_u64() as usize) % WILD_TOKENS.len()];
        let mut spec = JobSpec::new(WorkloadSpec::plummer(96, 1), PlanKind::JwParallel, 4);
        let mut parse_failed = false;
        match token.parse::<f64>() {
            Ok(dt) => spec.dt = dt,
            Err(_) => parse_failed = true,
        }
        match token.parse::<usize>() {
            Ok(steps) => spec.steps = steps,
            Err(_) => parse_failed = true,
        }
        match admit(&spec, &policy) {
            Ok(()) => assert_admissible_invariants(&spec, &policy),
            Err(err) => assert!(err.to_string().contains(err.id()), "{err}"),
        }
        // the parser and the admission layer together cover every token:
        // either parsing rejected it up front or admit ruled on the value
        let _ = parse_failed;
        // unknown backend ids are refused at parse time, not defaulted
        assert!(BackendKind::parse(token).is_none(), "{token} must not be a backend id");
    }
}
