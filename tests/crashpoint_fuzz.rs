//! The crash-point fuzz gate: a `kill -9` after *any* durable mutation of a
//! full job lifecycle must be recoverable.
//!
//! `jobs::crashpoint::fuzz` scripts a submit → run → preempt → resume →
//! complete → cache-hit lifecycle (artifacts and daemon heartbeat
//! included) over the injectable filesystem seam, numbers its durable
//! mutations, and replays it once per prefix length with a filesystem that
//! dies after exactly that many operations. After every simulated crash,
//! recovery must reopen the spool with no job lost or duplicated, drain to
//! completion, and produce bit-exact physics. This test runs the full
//! stride-1 enumeration — every crash point, not a sample — and prints the
//! verdict line the CI `CRASHPOINT` stage greps.

#[test]
fn every_crash_prefix_recovers_without_losing_or_duplicating_jobs() {
    let scratch = std::env::temp_dir().join("nbody-ptpm-crashpoint-fuzz");
    std::fs::remove_dir_all(&scratch).ok();
    let report = jobs::crashpoint::fuzz(&scratch, 1).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.mutations >= 50,
        "the lifecycle must expose at least 50 distinct crash points, got {}",
        report.mutations
    );
    assert_eq!(report.prefixes.len() as u64, report.mutations, "stride 1 must cover every prefix");
    print!("{}", report.render());
    std::fs::remove_dir_all(&scratch).ok();
}
