//! Race-detection validation: every production kernel (all four plans, both
//! reduction kernels) must execute cleanly under the device's intra-phase
//! data-race checker, and a deliberately racy kernel must be caught.

use gpu_sim::prelude::*;
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

#[test]
fn all_plan_kernels_are_race_free() {
    let mut dev =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    dev.set_race_checking(true);
    let set = plummer(700, PlummerParams::default(), 3); // not a block multiple
    let params = GravityParams { g: 1.0, softening: 0.05 };
    for kind in PlanKind::all() {
        let plan = make_plan(kind, PlanConfig::default());
        let _ = plan.evaluate(&mut dev, &set, &params);
        assert!(
            dev.races().is_empty(),
            "{}: {} race(s), first: {}",
            kind.id(),
            dev.races().len(),
            dev.races()[0]
        );
    }
}

/// A kernel where every item writes LDS word 0 in the same phase — the
/// classic unsynchronized reduction bug.
struct RacyReduction {
    input: BufF32,
    output: BufF32,
}

impl Kernel for RacyReduction {
    type ItemRegs = ();
    type GroupRegs = ();

    fn name(&self) -> &str {
        "racy-reduction"
    }

    fn lds_words(&self) -> usize {
        1
    }

    fn phase(&self, phase: usize, ctx: &mut ItemCtx<'_>, _r: &mut (), _g: &()) {
        match phase {
            0 => {
                // every item accumulates into the same LDS word without a
                // barrier: write-write race
                let v = ctx.read_f32_coalesced(self.input, ctx.global_id);
                let cur = ctx.lds_read(0);
                ctx.lds_write(0, cur + v);
            }
            _ => {
                if ctx.local_id == 0 {
                    let sum = ctx.lds_read(0);
                    ctx.write_f32(self.output, ctx.group_id, sum);
                }
            }
        }
    }

    fn control(&self, phase: usize, _g: &mut (), _i: &GroupInfo) -> Control {
        if phase == 0 {
            Control::Next
        } else {
            Control::Done
        }
    }
}

#[test]
fn racy_kernel_is_caught() {
    let mut dev =
        Device::with_transfer_model(DeviceSpec::tiny_test_device(), TransferModel::free());
    let input = dev.alloc_f32(8);
    let output = dev.alloc_f32(2);
    dev.upload_f32(input, &[1.0; 8]);
    let k = RacyReduction { input, output };
    let (_timing, races) = dev.launch_checked(&k, NdRange { global: 8, local: 4 });
    assert!(!races.is_empty(), "the unsynchronized reduction must be flagged");
    // the report names LDS word 0
    let r = &races[0];
    assert_eq!(r.space, Space::Lds);
    assert_eq!(r.index, 0);
    assert!(r.to_string().contains("LDS"));
    // the device-level log saw them too when the mode flag is used
    dev.set_race_checking(true);
    dev.reset_clocks();
    let _ = dev.launch(&k, NdRange { global: 8, local: 4 });
    assert!(!dev.races().is_empty());
}

#[test]
fn unchecked_launches_report_no_races() {
    let mut dev =
        Device::with_transfer_model(DeviceSpec::tiny_test_device(), TransferModel::free());
    let input = dev.alloc_f32(8);
    let output = dev.alloc_f32(2);
    let k = RacyReduction { input, output };
    let _ = dev.launch(&k, NdRange { global: 8, local: 4 });
    assert!(dev.races().is_empty()); // mode off: nothing recorded
}

#[test]
fn checked_and_unchecked_execution_produce_identical_results() {
    // the detector must be observation-only
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let set = plummer(300, PlummerParams::default(), 5);
    let mut fast = Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free());
    let mut checked =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free());
    checked.set_race_checking(true);
    let plan = JwParallel::default();
    let a = plan.evaluate(&mut fast, &set, &params);
    let b = plan.evaluate(&mut checked, &set, &params);
    assert_eq!(a.acc, b.acc);
    assert_eq!(a.kernel_s, b.kernel_s);
}
