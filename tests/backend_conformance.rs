//! The cross-backend differential conformance suite (ISSUE 7 acceptance
//! gate): every backend over a shared matrix of workloads × N × plans ×
//! thread counts.
//!
//! The checks themselves live in `plans::conformance` (see DESIGN.md §11
//! for the contract); this test pins the acceptance matrix:
//!
//! * sim ↔ f32 bit-exactness and per-backend thread invariance at
//!   {1, 2, 4} threads on every cell,
//! * host f64 bit-exactness against the scalar PP / treecode references,
//! * the f32 tier's relative L2 force error within the documented
//!   `A·ε₃₂·√N` bound on every cell,
//! * the fault, trace, and energy-drift contracts as backend-generic
//!   properties.

use plans::prelude::*;
use workloads::spec::{WorkloadKind, WorkloadSpec};

fn case(kind: WorkloadKind, n: usize, seed: u64) -> ConformanceCase {
    let mut set = WorkloadSpec { kind, n, seed }.generate();
    set.recenter();
    ConformanceCase::new(format!("{}-{n}", kind.id()), set)
}

fn matrix_cases() -> Vec<ConformanceCase> {
    vec![
        case(WorkloadKind::Plummer, 256, 20110101),
        case(WorkloadKind::UniformCube, 320, 3),
        case(WorkloadKind::Disk, 192, 7),
        case(WorkloadKind::ClusterCollision, 256, 11),
    ]
}

#[test]
fn full_matrix_meets_the_backend_contract() {
    let report =
        run_matrix(&matrix_cases(), &PlanKind::all(), &DEFAULT_THREADS, PlanConfig::default());
    assert!(report.ok(), "{}", report.render());
    assert_eq!(report.cells.len(), 4 * 4, "4 workloads x 4 plans");
    let rendered = report.render();
    assert!(rendered.contains("CONFORMANCE OK"), "{rendered}");
    for cell in &report.cells {
        assert_eq!(cell.threads, vec![1, 2, 4], "acceptance thread counts");
        assert!(
            cell.f32_rel_l2 <= cell.f32_bound,
            "{}/{}: {} > {}",
            cell.case,
            cell.plan.id(),
            cell.f32_rel_l2,
            cell.f32_bound
        );
        // the band is meaningful: f32 really is off the f64 bits, just
        // within bound (identical results would suggest a wired-up oracle)
        assert!(cell.f32_rel_l2 > 0.0, "{}/{}", cell.case, cell.plan.id());
    }
}

#[test]
fn non_default_plan_geometry_still_conforms() {
    // explicit slice geometry exercises the j-parallel and jw-parallel
    // reduction orders off their auto-tuned defaults
    let config = PlanConfig {
        block_size: 128,
        j_slices: Some(5),
        walk_size: 128,
        jw_slice_len: Some(96),
        ..PlanConfig::default()
    };
    let cases = [case(WorkloadKind::Plummer, 300, 5)];
    let report = run_matrix(&cases, &PlanKind::all(), &[1, 4], config);
    assert!(report.ok(), "{}", report.render());
}

#[test]
fn fault_and_trace_contracts_are_backend_generic() {
    let set = case(WorkloadKind::Plummer, 192, 13).set;
    let config = PlanConfig::default();
    let fault_failures = check_fault_contract(&set, config);
    assert!(fault_failures.is_empty(), "{fault_failures:?}");
    let trace_failures = check_trace_contract(&set, config);
    assert!(trace_failures.is_empty(), "{trace_failures:?}");
}

#[test]
fn energy_drift_of_the_tiers_agrees() {
    let set = case(WorkloadKind::Plummer, 128, 17).set;
    let failures = check_energy_drift(&set, PlanConfig::default(), 8);
    assert!(failures.is_empty(), "{failures:?}");
}
