//! Property matrix for the cache-blocked SoA PP kernel: every tile size,
//! every population (including empty, singleton, and a non-power-of-two),
//! and both serial and parallel execution must reproduce the scalar
//! reference `accelerations_pp` bit-for-bit.
//!
//! The kernel earns this by construction — each row's acceleration is one
//! sequential j-ascending accumulation chain regardless of how rows are
//! grouped into tiles or chunked over threads — and this test pins the
//! property against refactors.

use nbody_core::prelude::*;

const TILE_SIZES: [usize; 4] = [1, 3, 8, 64];
const POPULATIONS: [usize; 4] = [0, 1, 5, 257];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn params_grid() -> [GravityParams; 2] {
    [
        GravityParams { g: 1.0, softening: 0.05 },
        // eps = 0 exercises the self-interaction skip (the 1/r³ singularity
        // must be excluded, not masked into the sum)
        GravityParams { g: 2.5, softening: 0.0 },
    ]
}

#[test]
fn tiled_kernel_is_bitwise_identical_to_naive_for_all_tiles_and_sizes() {
    for n in POPULATIONS {
        let set = nbody_core::testutil::random_set(n, 42 + n as u64);
        let mut soa = SoaBodies::new();
        soa.fill_from(&set);
        for params in params_grid() {
            let mut naive = vec![Vec3::ZERO; n];
            accelerations_pp(&set, &params, &mut naive);
            // tile sizes: the fixed grid plus N itself (one block spans
            // every row) — skip 0, tiles must be positive
            let mut tiles: Vec<usize> = TILE_SIZES.to_vec();
            if n > 0 {
                tiles.push(n);
            }
            for tile in tiles {
                let mut serial = vec![Vec3::ZERO; n];
                accelerations_pp_tiled_with(soa.view(), &params, tile, &mut serial);
                assert_eq!(
                    serial, naive,
                    "serial tiled diverged: n={n}, tile={tile}, params={params:?}"
                );
                for threads in THREAD_COUNTS {
                    let mut parallel = vec![Vec3::ZERO; n];
                    accelerations_pp_tiled_parallel(
                        soa.view(),
                        &params,
                        tile,
                        threads,
                        &mut parallel,
                    );
                    assert_eq!(
                        parallel, naive,
                        "parallel tiled diverged: n={n}, tile={tile}, threads={threads}, \
                         params={params:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn soa_engine_matches_reference_engine_across_thread_counts() {
    let set = nbody_core::testutil::random_set(257, 7);
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let mut reference = vec![Vec3::ZERO; set.len()];
    accelerations_pp(&set, &params, &mut reference);
    for threads in THREAD_COUNTS {
        par::set_threads(threads);
        let mut engine = SoaPp::new(params);
        let mut acc = vec![Vec3::ZERO; set.len()];
        use nbody_core::integrator::ForceEngine;
        engine.accelerations(&set, &mut acc);
        // second evaluation reuses the warm SoA buffers — still exact
        let mut again = vec![Vec3::ZERO; set.len()];
        engine.accelerations(&set, &mut again);
        assert_eq!(acc, reference, "SoaPp diverged at {threads} threads");
        assert_eq!(again, reference, "warm SoaPp diverged at {threads} threads");
    }
    par::set_threads(1);
}
