//! Fault-recovery invariants, end to end.
//!
//! The contract of the fault subsystem (`gpu_sim::fault`, `plans::recover`,
//! `harness::faults`): a run that hits transient injected faults and
//! recovers by retry must reproduce the fault-free forces **bit-exactly**,
//! with the recovery overhead visible on the simulated clocks; a multi-GPU
//! run that loses a device must finish on the survivors within the
//! cross-validation tolerance; and a crashed checkpointed run must resume
//! into a bit-exact trajectory.

use gpu_sim::prelude::{Device, DeviceSpec, FaultConfig, FaultPlan, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn device() -> Device {
    Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16())
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

#[test]
fn every_plan_recovers_transient_faults_bitexactly() {
    let set = plummer(700, PlummerParams::default(), 17);
    for kind in PlanKind::all() {
        let plan = make_plan(kind, PlanConfig::default());
        let mut clean_dev = device();
        let clean = plan.evaluate(&mut clean_dev, &set, &params());

        let mut faulty_dev = device();
        faulty_dev.set_fault_plan(FaultPlan::new(19, FaultConfig::transient(0.25)));
        let faulty = plan.evaluate(&mut faulty_dev, &set, &params());

        assert_eq!(clean.acc, faulty.acc, "{}: recovered forces differ", kind.id());
        assert_eq!(clean.interactions, faulty.interactions);
        let counts = faulty_dev.fault_plan().unwrap().counts();
        assert!(counts.total() > 0, "{}: seed 19 at p=0.25 must inject faults", kind.id());
        assert!(faulty.recovery_s > 0.0, "{}: recovery overhead must be charged", kind.id());
        assert_eq!(clean.recovery_s, 0.0);
        assert!(
            faulty.total_seconds() > clean.total_seconds(),
            "{}: recovery must show in the end-to-end time",
            kind.id()
        );
    }
}

#[test]
fn fault_overhead_is_visible_in_the_execution_trace() {
    use gpu_sim::trace::MemoryTraceSink;
    let set = plummer(500, PlummerParams::default(), 23);
    let mut dev = device();
    dev.set_fault_plan(FaultPlan::new(19, FaultConfig::transient(0.25)));
    let sink = MemoryTraceSink::new();
    dev.set_trace_sink(Box::new(sink.clone()));
    let plan = make_plan(PlanKind::JwParallel, PlanConfig::default());
    let _ = plan.evaluate(&mut dev, &set, &params());
    let trace = sink.snapshot();
    assert!(!trace.faults.is_empty(), "injected faults must be recorded as trace events");
    for (i, ft) in trace.faults.iter().enumerate() {
        assert_eq!(ft.fault_id, i, "fault ids are sequential");
        assert!(ft.at_s >= 0.0 && ft.charged_s >= 0.0);
        assert!(!ft.op.is_empty());
    }
}

#[test]
fn multi_gpu_survives_device_loss_within_tolerance() {
    let set = plummer(1000, PlummerParams::default(), 29);
    let healthy = MultiGpuJw::new(3).evaluate(&set, &params());
    let cfg = FaultConfig::default().with_device_loss(0.02);
    let degraded = (0..40)
        .map(|seed| MultiGpuJw::new(3).with_faults(seed, cfg).evaluate(&set, &params()))
        .find(|o| !o.lost_devices.is_empty())
        .expect("some seed in 0..40 must lose a device");
    assert!(degraded.lost_devices.len() < 3, "survivors must remain");
    assert!(degraded.redistributed_walks > 0);
    assert_eq!(
        degraded.walks_per_device.iter().sum::<usize>(),
        healthy.walks_per_device.iter().sum::<usize>(),
        "every walk must still be evaluated exactly once"
    );
    let err =
        nbody_core::gravity::max_relative_error(&healthy.combined.acc, &degraded.combined.acc);
    assert!(err < 1e-5, "degraded result out of tolerance: {err}");
}

#[test]
fn fault_recovery_is_thread_count_invariant() {
    // Injected faults draw from a per-device deterministic stream indexed
    // by operation order, and the host thread pool never reorders device
    // operations — so for any fault seed, the recovered forces AND the
    // simulated recovery overhead must be identical at every thread count.
    let set = plummer(500, PlummerParams::default(), 37);
    let faulty_eval = |kind: PlanKind, seed: u64| {
        let plan = make_plan(kind, PlanConfig::default());
        let mut dev = device();
        dev.set_fault_plan(FaultPlan::new(seed, FaultConfig::transient(0.25)));
        plan.evaluate(&mut dev, &set, &params())
    };
    for seed in [3u64, 19, 101] {
        for kind in PlanKind::all() {
            par::set_threads(1);
            let base = faulty_eval(kind, seed);
            assert!(base.recovery_s > 0.0, "{}: seed {seed} must inject faults", kind.id());
            for t in [2, 3, 8] {
                par::set_threads(t);
                let o = faulty_eval(kind, seed);
                let what = format!("{} seed {seed} @ {t} threads", kind.id());
                assert_eq!(base.acc, o.acc, "{what}: recovered forces differ");
                assert_eq!(base.recovery_s, o.recovery_s, "{what}: recovery_s differs");
                assert_eq!(base.kernel_s, o.kernel_s, "{what}: kernel_s differs");
                assert_eq!(base.launches, o.launches, "{what}: launches differ");
            }
        }
    }
    par::set_threads(1);
}

#[test]
fn multi_gpu_loss_recovery_is_thread_count_invariant() {
    // Device-loss rescue (re-partitioning orphaned walks over survivors)
    // must pick the same survivors and produce the same forces no matter
    // how many host threads drive the devices.
    let set = plummer(600, PlummerParams::default(), 29);
    let cfg = FaultConfig::default().with_device_loss(0.02);
    let run = |seed: u64, t: usize| {
        par::set_threads(t);
        MultiGpuJw::new(3).with_faults(seed, cfg).evaluate(&set, &params())
    };
    let mut saw_loss = false;
    for seed in 0..12 {
        let base = run(seed, 1);
        saw_loss |= !base.lost_devices.is_empty();
        for t in [2, 8] {
            let got = run(seed, t);
            let what = format!("seed {seed} @ {t} threads");
            assert_eq!(base.lost_devices, got.lost_devices, "{what}: losses differ");
            assert_eq!(base.redistributed_walks, got.redistributed_walks, "{what}: rescues differ");
            assert_eq!(base.walks_per_device, got.walks_per_device, "{what}: split differs");
            assert_eq!(base.combined.acc, got.combined.acc, "{what}: forces differ");
            assert_eq!(
                base.combined.recovery_s, got.combined.recovery_s,
                "{what}: recovery_s differs"
            );
        }
    }
    assert!(saw_loss, "some seed in 0..12 must lose a device");
    par::set_threads(1);
}

#[test]
fn checkpoint_restart_reproduces_the_fault_free_trajectory() {
    let cfg = harness::faults::FaultRun::smoke(13);
    let dir = std::env::temp_dir().join("nbody-ptpm-fault-recovery-test");
    let report = harness::error::or_exit(harness::faults::demo(&cfg, &dir));
    assert!(report.ends_with("FAULTS OK\n"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecoverable_device_loss_panics_with_context() {
    let set = plummer(300, PlummerParams::default(), 31);
    let result = std::panic::catch_unwind(|| {
        let mut dev = device();
        // certain loss: the very first operation fails permanently
        dev.set_fault_plan(FaultPlan::new(1, FaultConfig::default().with_device_loss(1.0)));
        let plan = make_plan(PlanKind::IParallel, PlanConfig::default());
        plan.evaluate(&mut dev, &set, &params())
    });
    let err = result.expect_err("a lost single device cannot complete");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("beyond recovery"), "panic message must explain: {msg}");
}
