//! Cross-crate validation: every execution plan, on every workload family,
//! must reproduce the scalar CPU reference within its method's error budget.

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use workloads::prelude::*;
use workloads::spec::{WorkloadKind, WorkloadSpec};

fn device() -> Device {
    Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16())
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

/// PP plans are exact up to f32; tree plans carry the θ=0.5 multipole error.
fn error_budget(kind: PlanKind) -> f64 {
    if kind.uses_tree() {
        0.02
    } else {
        1e-3
    }
}

#[test]
fn all_plans_match_reference_on_all_workloads() {
    let mut dev = device();
    let p = params();
    for kind_w in WorkloadKind::all() {
        let set = WorkloadSpec { kind: kind_w, n: 600, seed: 5 }.generate();
        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &p, &mut exact);
        for kind in PlanKind::all() {
            let plan = make_plan(kind, PlanConfig::default());
            let outcome = plan.evaluate(&mut dev, &set, &p);
            let err = nbody_core::gravity::max_relative_error(&exact, &outcome.acc);
            assert!(err < error_budget(kind), "{} on {}: error {err}", kind.id(), kind_w.id());
        }
    }
}

#[test]
fn pp_plans_agree_with_each_other_tightly() {
    let mut dev = device();
    let p = params();
    let set = plummer(1500, PlummerParams::default(), 9);
    let i = IParallel::default().evaluate(&mut dev, &set, &p);
    let j = JParallel::default().evaluate(&mut dev, &set, &p);
    let err = nbody_core::gravity::max_relative_error(&i.acc, &j.acc);
    assert!(err < 1e-4, "i vs j: {err}");
}

#[test]
fn tree_plans_agree_with_each_other_tightly() {
    let mut dev = device();
    let p = params();
    let set = plummer(1500, PlummerParams::default(), 10);
    let w = WParallel::default().evaluate(&mut dev, &set, &p);
    let jw = JwParallel::default().evaluate(&mut dev, &set, &p);
    let err = nbody_core::gravity::max_relative_error(&w.acc, &jw.acc);
    assert!(err < 1e-5, "w vs jw: {err}");
    assert_eq!(w.interactions, jw.interactions);
}

#[test]
fn tightening_theta_tightens_device_results() {
    let mut dev = device();
    let p = params();
    let set = plummer(1200, PlummerParams::default(), 11);
    let mut exact = vec![Vec3::ZERO; set.len()];
    accelerations_pp(&set, &p, &mut exact);

    let run_theta = |dev: &mut Device, theta: f64| {
        let cfg = PlanConfig { theta, ..Default::default() };
        let o = JwParallel::new(cfg).evaluate(dev, &set, &p);
        nbody_core::gravity::max_relative_error(&exact, &o.acc)
    };
    let loose = run_theta(&mut dev, 0.9);
    let tight = run_theta(&mut dev, 0.3);
    assert!(tight < loose, "θ=0.3 ({tight}) should beat θ=0.9 ({loose})");
    assert!(tight < 5e-3, "θ=0.3 error {tight}");
}

#[test]
fn varying_block_size_does_not_change_physics() {
    let mut dev = device();
    let p = params();
    let set = plummer(700, PlummerParams::default(), 12);
    let mut reference: Option<Vec<Vec3>> = None;
    for block in [64, 128, 256] {
        let cfg = PlanConfig { block_size: block, ..Default::default() };
        let o = IParallel::new(cfg).evaluate(&mut dev, &set, &p);
        if let Some(ref r) = reference {
            let err = nbody_core::gravity::max_relative_error(r, &o.acc);
            assert!(err < 1e-5, "block {block}: {err}");
        } else {
            reference = Some(o.acc);
        }
    }
}

#[test]
fn varying_walk_size_does_not_change_physics_beyond_mac() {
    let mut dev = device();
    let p = params();
    let set = plummer(900, PlummerParams::default(), 13);
    let mut exact = vec![Vec3::ZERO; set.len()];
    accelerations_pp(&set, &p, &mut exact);
    for ws in [64, 128, 256] {
        let cfg = PlanConfig { walk_size: ws, ..Default::default() };
        let o = JwParallel::new(cfg).evaluate(&mut dev, &set, &p);
        let err = nbody_core::gravity::max_relative_error(&exact, &o.acc);
        assert!(err < 0.02, "walk size {ws}: {err}");
    }
}
