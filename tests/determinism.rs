//! Determinism: every simulated quantity — forces, interaction counts,
//! device clocks — must be bit-identical across repeated runs. This is what
//! makes the experiment tables reproducible artifacts rather than noise.

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn evaluate(kind: PlanKind, n: usize, seed: u64) -> PlanOutcome {
    let mut dev =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    let set = plummer(n, PlummerParams::default(), seed);
    let plan = make_plan(kind, PlanConfig::default());
    plan.evaluate(&mut dev, &set, &GravityParams { g: 1.0, softening: 0.05 })
}

#[test]
fn every_plan_is_bitwise_deterministic() {
    for kind in PlanKind::all() {
        let a = evaluate(kind, 800, 21);
        let b = evaluate(kind, 800, 21);
        assert_eq!(a.acc, b.acc, "{} forces differ", kind.id());
        assert_eq!(a.interactions, b.interactions, "{} interactions differ", kind.id());
        assert_eq!(a.kernel_s, b.kernel_s, "{} kernel clock differs", kind.id());
        assert_eq!(a.transfer_s, b.transfer_s, "{} transfer clock differs", kind.id());
        assert_eq!(a.launches, b.launches);
    }
}

#[test]
fn different_seeds_give_different_systems() {
    let a = evaluate(PlanKind::JwParallel, 400, 1);
    let b = evaluate(PlanKind::JwParallel, 400, 2);
    assert_ne!(a.acc, b.acc);
}

#[test]
fn workload_generation_is_cross_run_stable() {
    // pin a few sampled values so accidental RNG/stream changes are caught
    // (ChaCha8 with a fixed seed is platform-independent)
    let set = plummer(8, PlummerParams::default(), 42);
    let p0 = set.pos()[0];
    let again = plummer(8, PlummerParams::default(), 42);
    assert_eq!(set, again);
    assert!(p0.is_finite());
}

#[test]
fn fault_schedule_and_recovery_are_seed_deterministic() {
    use gpu_sim::prelude::{FaultConfig, FaultPlan};
    let evaluate_faulty = |kind: PlanKind| {
        let mut dev =
            Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
        dev.set_fault_plan(FaultPlan::new(31, FaultConfig::transient(0.2)));
        let set = plummer(800, PlummerParams::default(), 21);
        let plan = make_plan(kind, PlanConfig::default());
        let outcome = plan.evaluate(&mut dev, &set, &GravityParams { g: 1.0, softening: 0.05 });
        let counts = dev.fault_plan().unwrap().counts();
        (outcome, counts)
    };
    for kind in PlanKind::all() {
        let (a, ca) = evaluate_faulty(kind);
        let (b, cb) = evaluate_faulty(kind);
        // same seed → same fault schedule, same recovery path, same clocks
        assert_eq!(ca, cb, "{} fault schedule differs", kind.id());
        assert_eq!(a.recovery_s, b.recovery_s, "{} recovery time differs", kind.id());
        assert_eq!(a.kernel_s, b.kernel_s, "{} kernel clock differs", kind.id());
        assert_eq!(a.total_seconds(), b.total_seconds());
        assert_eq!(a.acc, b.acc, "{} forces differ", kind.id());
        // and the recovered forces match the fault-free run bit-exactly
        let clean = evaluate(kind, 800, 21);
        assert_eq!(a.acc, clean.acc, "{} recovery is not bit-exact", kind.id());
        assert_eq!(clean.recovery_s, 0.0);
    }
}

#[test]
fn simulated_clocks_are_independent_of_wall_time() {
    // run the same evaluation twice with an artificial pause between; the
    // simulated clocks must not change (only host_measured_s may)
    let a = evaluate(PlanKind::WParallel, 600, 7);
    std::thread::sleep(std::time::Duration::from_millis(20));
    let b = evaluate(PlanKind::WParallel, 600, 7);
    assert_eq!(a.kernel_s, b.kernel_s);
    assert_eq!(a.host_tree_s, b.host_tree_s);
    assert_eq!(a.host_walk_s, b.host_walk_s);
    assert_eq!(a.total_seconds(), b.total_seconds());
}
