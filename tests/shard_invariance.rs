//! Out-of-core invariance matrix: Morton-sharded and device-tree execution
//! must be *observably absent* — every shard count, thread count, and
//! backend substrate reproduces that substrate's unsharded forces and
//! post-kick total energy bit-for-bit, the memory budget actually bounds
//! the device working set, and the PTPM pipeline forecast tracks the
//! simulated pipeline clock at moderate N.

use nbody_core::body::ParticleSet;
use nbody_core::energy::total_energy;
use nbody_core::gravity::GravityParams;
use nbody_core::vec3::Vec3;
use plans::prelude::{
    build_tree_on_device, default_device, evaluate_tree_plan, make_backend, predict_pipeline_shape,
    BackendKind, PlanConfig, PlanKind,
};
use ptpm::model::forecast_pipeline;
use treecode::tree::{Octree, TreeParams};
use workloads::spec::WorkloadSpec;

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

fn set(n: usize, seed: u64) -> ParticleSet {
    let mut s = WorkloadSpec::plummer(n, seed).generate();
    s.recenter();
    s
}

/// Total energy after kicking the velocities with `acc` — a scalar that is
/// bitwise-sensitive to every force component.
fn kicked_energy(set: &ParticleSet, acc: &[Vec3]) -> f64 {
    let mut kicked = set.clone();
    for (v, a) in kicked.vel_mut().iter_mut().zip(acc) {
        *v += *a * 1e-3;
    }
    total_energy(&kicked, &params())
}

#[test]
fn shard_matrix_reproduces_unsharded_forces_and_energy_bitwise() {
    let bodies = set(2048, 11);
    let p = params();
    for plan in [PlanKind::WParallel, PlanKind::JwParallel] {
        for backend in [BackendKind::Sim, BackendKind::Host] {
            par::set_threads(1);
            let reference =
                make_backend(backend, PlanConfig::default()).evaluate(plan, &bodies, &p);
            let ref_energy = kicked_energy(&bodies, &reference.acc);
            for shards in [1usize, 2, 7, 64] {
                for threads in [1usize, 4] {
                    par::set_threads(threads);
                    let config = PlanConfig { shards: Some(shards), ..Default::default() };
                    let got = make_backend(backend, config).evaluate(plan, &bodies, &p);
                    let label =
                        format!("{} {} shards={shards} threads={threads}", plan.id(), backend.id());
                    assert_eq!(got.acc, reference.acc, "forces diverged: {label}");
                    assert_eq!(
                        kicked_energy(&bodies, &got.acc).to_bits(),
                        ref_energy.to_bits(),
                        "energy diverged: {label}"
                    );
                    assert!(
                        got.shards_used >= 1 && got.shards_used <= shards,
                        "shards_used {} outside [1, {shards}]: {label}",
                        got.shards_used
                    );
                }
            }
        }
    }
    par::set_threads(1);
}

#[test]
fn memory_budget_bounds_the_device_working_set() {
    par::set_threads(1);
    let bodies = set(4096, 3);
    let p = params();
    for plan in [PlanKind::WParallel, PlanKind::JwParallel] {
        let unsharded =
            evaluate_tree_plan(plan, &PlanConfig::default(), &mut default_device(), &bodies, &p);
        let budget = unsharded.outcome.peak_device_bytes / 2;
        let config = PlanConfig { mem_budget_bytes: Some(budget), ..Default::default() };
        let run = evaluate_tree_plan(plan, &config, &mut default_device(), &bodies, &p);
        assert_eq!(run.outcome.acc, unsharded.outcome.acc, "{plan:?} budget run diverged");
        assert!(run.outcome.shards_used > 1, "{plan:?} budget produced no sharding");
        assert!(
            run.outcome.peak_device_bytes < unsharded.outcome.peak_device_bytes,
            "{plan:?} budget did not shrink the peak: {} vs {}",
            run.outcome.peak_device_bytes,
            unsharded.outcome.peak_device_bytes
        );
    }
}

#[test]
fn device_tree_is_byte_identical_even_when_degenerate() {
    par::set_threads(1);
    let p = params();
    // a healthy cloud and a fully coincident one (every body at one point,
    // which forces the documented host-build fallback path)
    let healthy = set(3000, 7);
    let mut coincident = set(96, 8);
    let anchor = coincident.pos()[0];
    for q in coincident.pos_mut() {
        *q = anchor;
    }
    for bodies in [&healthy, &coincident] {
        let tree_params = TreeParams { leaf_capacity: 16 };
        let host = Octree::build(bodies, tree_params);
        let built = build_tree_on_device(&mut default_device(), bodies, tree_params);
        assert_eq!(built.tree.nodes(), host.nodes(), "node records diverge");
        assert_eq!(built.tree.order(), host.order(), "body order diverges");
        for plan in [PlanKind::WParallel, PlanKind::JwParallel] {
            let reference =
                evaluate_tree_plan(plan, &PlanConfig::default(), &mut default_device(), bodies, &p);
            let config = PlanConfig { device_tree: true, ..Default::default() };
            let run = evaluate_tree_plan(plan, &config, &mut default_device(), bodies, &p);
            assert_eq!(run.outcome.acc, reference.outcome.acc, "{plan:?} forces diverge");
        }
    }
}

#[test]
fn ptpm_pipeline_forecast_tracks_the_simulated_clock() {
    par::set_threads(1);
    let bodies = set(8192, 5);
    let config = PlanConfig { device_tree: true, ..Default::default() };
    let spec = gpu_sim::prelude::DeviceSpec::radeon_hd_5850();
    let xfer = gpu_sim::prelude::TransferModel::pcie2_x16();
    for plan in [PlanKind::WParallel, PlanKind::JwParallel] {
        let run = evaluate_tree_plan(plan, &config, &mut default_device(), &bodies, &params());
        assert!(!run.shape.fallback_host_build, "{plan:?} unexpectedly fell back");
        let forecast = forecast_pipeline(&run.shape, &spec, &xfer).seconds();
        let ratio = forecast / run.outcome.pipeline_s;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{plan:?}: forecast {forecast:.3e} vs observed {:.3e} (ratio {ratio:.3})",
            run.outcome.pipeline_s
        );
        // the autotuner's shape predictor must agree with the observed shape
        let predicted = predict_pipeline_shape(&bodies, &config);
        assert_eq!(predicted.entries, run.shape.entries, "{plan:?} predicted entries drift");
        assert_eq!(predicted.nodes, run.shape.nodes, "{plan:?} predicted nodes drift");
    }
}
