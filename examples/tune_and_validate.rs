//! Auto-tune a plan for a workload, then validate the winner: the
//! production workflow a downstream user runs when adopting the library on
//! a new problem size or a different (simulated) device.
//!
//! Run with: `cargo run --release --example tune_and_validate -- [N]`

use gpu_sim::prelude::DeviceSpec;
use nbody_core::prelude::*;
use plans::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4096);
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let set = plummer(n, PlummerParams::default(), 99);
    let spec = DeviceSpec::radeon_hd_5850();

    println!("Tuning jw-parallel for N = {n} on {} ...\n", spec.name);
    let result = plans::tune::tune(
        PlanKind::JwParallel,
        PlanConfig::default(),
        &spec,
        &set,
        &params,
        TuneObjective::KernelTime,
    );
    println!("{:>10} {:>12} {:>14}", "walk size", "slice len", "kernel time");
    for point in &result.trace {
        println!(
            "{:>10} {:>12} {:>11.3} ms{}",
            point.config.walk_size,
            point.config.jw_slice_len.map(|l| l.to_string()).unwrap_or_else(|| "auto".to_string()),
            point.seconds * 1e3,
            if point.config == result.best { "  <- best" } else { "" }
        );
    }

    println!("\nValidating the tuned configuration (race-checked, vs f64 reference):");
    let report = plans::validate::validate_plan(
        PlanKind::JwParallel,
        result.best,
        &spec,
        &set,
        &params,
        ErrorBudget::default(),
    );
    println!("  {}", report.summary());
    assert!(report.passed, "tuned configuration failed validation");

    println!("\nAnd the other plans at their defaults, for comparison:");
    for r in plans::validate::validate_all(PlanConfig::default(), &spec, &set, &params) {
        println!("  {}", r.summary());
    }
}
