//! Plummer cluster in virial equilibrium: verify that a cluster sampled
//! from the equilibrium distribution *stays* in equilibrium when evolved
//! with the Barnes-Hut treecode, and show how the opening angle θ trades
//! accuracy for interaction count — the knob behind the paper's tree plans.
//!
//! Run with: `cargo run --release --example plummer_cluster`

use nbody_core::prelude::*;
use treecode::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn main() {
    let n = 4096;
    let params = GravityParams { g: 1.0, softening: 0.02 };
    let set = plummer(n, PlummerParams::default(), 3);
    let d0 = Diagnostics::measure(&set, &params);
    println!("Plummer sphere, N = {n}");
    println!("initial virial ratio -2T/U = {:.4} (1.0 = equilibrium)\n", d0.virial);

    // θ sweep: accuracy vs work
    println!("{:>6}  {:>14}  {:>14}  {:>12}", "theta", "interactions", "vs direct", "max rel err");
    let mut exact = vec![Vec3::ZERO; n];
    accelerations_pp(&set, &params, &mut exact);
    let pp_count = (n * (n - 1)) as f64;
    for theta in [0.2, 0.4, 0.5, 0.7, 1.0] {
        let tree = Octree::build(&set, TreeParams::default());
        let mut acc = vec![Vec3::ZERO; n];
        let stats = accelerations_bh(&tree, &set, OpeningAngle::new(theta), &params, &mut acc);
        let err = nbody_core::gravity::max_relative_error(&exact, &acc);
        println!(
            "{theta:>6.1}  {:>14}  {:>13.1}%  {:>12.2e}",
            stats.total_interactions(),
            100.0 * stats.total_interactions() as f64 / pp_count,
            err
        );
    }

    // evolve half a crossing time and watch the equilibrium hold
    let mut sim = set.clone();
    let mut engine = BarnesHut::with_theta(params, OpeningAngle::new(0.5));
    let dt = 1e-3;
    let steps = 200;
    run(&mut sim, &mut engine, &LeapfrogKdk, dt, steps);
    let d1 = Diagnostics::measure(&sim, &params);
    println!("\nafter {steps} leapfrog steps (dt = {dt}):");
    println!("  virial ratio   {:.4} -> {:.4}", d0.virial, d1.virial);
    println!("  energy drift   {:.2e}", d0.energy_drift(&d1));
    println!("  net momentum   {:.2e}", d1.momentum.norm());
    println!(
        "  tree time {:.1} ms, walk time {:.1} ms over {} evaluations",
        engine.tree_time().as_secs_f64() * 1e3,
        engine.walk_time().as_secs_f64() * 1e3,
        engine.evaluations()
    );
}
