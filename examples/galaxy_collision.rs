//! Galaxy collision: two disk galaxies on a tilted collision course,
//! integrated end-to-end on the simulated GPU with the jw-parallel plan.
//!
//! Prints diagnostics (energy, angular momentum, extent) as the encounter
//! unfolds, plus the accumulated simulated device time — the workload the
//! paper's introduction motivates.
//!
//! Run with: `cargo run --release --example galaxy_collision`

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use workloads::prelude::{galaxy_collision, CollisionParams};

fn main() {
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let mut set = galaxy_collision(2000, CollisionParams::default(), 7);
    println!(
        "Two disk galaxies: {} bodies, approaching at {:.2} per axis",
        set.len(),
        CollisionParams::default().approach_speed
    );

    let device =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    let mut engine = PlanForceEngine::new(
        device,
        make_plan(PlanKind::JwParallel, PlanConfig::default()),
        params,
    );

    let dt = 2e-3;
    let steps_per_report = 50;
    let reports = 6;

    let d0 = Diagnostics::measure(&set, &params);
    println!("{:>6}  {:>12}  {:>12}  {:>10}  {:>10}", "step", "energy", "Lz", "extent", "drift");
    prime(&mut set, &mut engine);
    for r in 0..=reports {
        if r > 0 {
            for _ in 0..steps_per_report {
                LeapfrogKdk.step(&mut set, &mut engine, dt);
            }
        }
        let d = Diagnostics::measure(&set, &params);
        let (lo, hi) = set.bounding_box().unwrap();
        println!(
            "{:>6}  {:>12.5}  {:>12.5}  {:>10.3}  {:>10.2e}",
            r * steps_per_report,
            d.total,
            d.angular_momentum.z,
            (hi - lo).max_component(),
            d0.energy_drift(&d)
        );
    }

    println!(
        "\nsimulated device time for {} force evaluations: {:.3} s total ({:.3} s in kernels)",
        engine.evaluations(),
        engine.simulated_total_seconds(),
        engine.simulated_kernel_seconds()
    );
    if let Some(o) = engine.last_outcome() {
        println!(
            "last evaluation: {} interactions, {:.0} GFLOPS",
            o.interactions,
            o.gflops(FlopConvention::Grape38)
        );
    }
}
