//! Plan explorer: evaluate all four execution plans at one problem size,
//! print their time splits, and show the PTPM time-space picture behind the
//! numbers — including the analytic forecast the paper's model makes and an
//! ASCII rendering of each plan's compute-unit occupancy.
//!
//! Run with: `cargo run --release --example plan_explorer -- [N]`
//! (default N = 2048)

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::make_plan;
use plans::prelude::*;
use ptpm::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2048);
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let set = plummer(n, PlummerParams::default(), 11);
    let spec = DeviceSpec::radeon_hd_5850();
    println!("Exploring all four plans at N = {n} on {}\n", spec.name);

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "plan", "kernel", "total", "interactions", "GFLOPS(38)", "launches"
    );
    let mut outcomes = Vec::new();
    for kind in PlanKind::all() {
        let mut device = Device::with_transfer_model(spec.clone(), TransferModel::pcie2_x16());
        let plan = make_plan(kind, PlanConfig::default());
        let o = plan.evaluate(&mut device, &set, &params);
        println!(
            "{:<12} {:>9.3} ms {:>9.3} ms {:>12} {:>12.0} {:>10}",
            kind.id(),
            o.kernel_s * 1e3,
            o.total_seconds() * 1e3,
            o.interactions,
            o.gflops(FlopConvention::Grape38),
            o.launches
        );
        // keep the heaviest launch's per-CU busy profile for the grid view
        let heaviest = device
            .launches()
            .iter()
            .max_by(|a, b| a.timing.seconds.partial_cmp(&b.timing.seconds).unwrap())
            .expect("at least one launch");
        outcomes.push((kind, heaviest.timing.cu_busy_cycles.clone()));
    }

    // PTPM analytic forecasts for the two PP plans (closed-form)
    println!("\nPTPM analytic forecast (ALU-only model):");
    let fi = forecast_i_parallel(n, 256, &spec);
    let fj = forecast_j_parallel(n, 256, 8, &spec);
    for (name, f) in [("i-parallel", fi), ("j-parallel S=8", fj)] {
        println!(
            "  {:<16} blocks {:>4}  predicted {:>8.3} ms  space utilization {:>5.1}%",
            name,
            f.blocks,
            f.seconds * 1e3,
            f.space_utilization * 100.0
        );
    }

    // time-space occupancy of each plan's main kernel
    println!("\nTime-space occupancy of the heaviest kernel (one row per CU):");
    for (kind, busy) in &outcomes {
        let total: f64 = busy.iter().sum();
        let max = busy.iter().copied().fold(0.0_f64, f64::max);
        let bar: String = busy
            .iter()
            .map(|b| {
                let frac = if max > 0.0 { b / max } else { 0.0 };
                match (frac * 8.0).round() as usize {
                    0 => ' ',
                    1..=2 => '.',
                    3..=5 => 'o',
                    _ => '#',
                }
            })
            .collect();
        println!(
            "  {:<12} |{}|  balance {:>5.1}%",
            kind.id(),
            bar,
            if max > 0.0 { 100.0 * total / (max * busy.len() as f64) } else { 0.0 }
        );
    }
}
