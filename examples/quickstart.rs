//! Quickstart: simulate a small star cluster three ways and check they
//! agree — the CPU direct sum, the CPU Barnes-Hut treecode, and the paper's
//! jw-parallel plan on the simulated Radeon HD 5850.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::prelude::*;
use plans::prelude::*;
use treecode::prelude::BarnesHut;
use workloads::prelude::{plummer, PlummerParams};

fn main() {
    let n = 1024;
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let set = plummer(n, PlummerParams::default(), 42);
    println!("Sampled a Plummer sphere: {n} bodies, total mass {:.3}", set.total_mass());

    // 1. ground truth: direct particle-particle sum on the CPU
    let mut pp_acc = vec![Vec3::ZERO; n];
    accelerations_pp(&set, &params, &mut pp_acc);

    // 2. Barnes-Hut treecode on the CPU
    let mut bh = BarnesHut::new(params);
    let mut bh_acc = vec![Vec3::ZERO; n];
    bh.accelerations(&set, &mut bh_acc);
    let bh_err = nbody_core::gravity::max_relative_error(&pp_acc, &bh_acc);
    println!("Barnes-Hut (θ=0.5) vs direct sum: max relative error {bh_err:.2e}");

    // 3. the paper's jw-parallel plan on the simulated GPU
    let mut device =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    let outcome = JwParallel::default().evaluate(&mut device, &set, &params);
    let gpu_err = nbody_core::gravity::max_relative_error(&pp_acc, &outcome.acc);
    println!("jw-parallel on {}:", device.spec().name);
    println!("  max relative error vs direct sum  {gpu_err:.2e}");
    println!("  interactions                      {}", outcome.interactions);
    println!("  simulated kernel time             {:.3} ms", outcome.kernel_s * 1e3);
    println!(
        "  sustained throughput              {:.0} GFLOPS (38-flop convention)",
        outcome.gflops(FlopConvention::Grape38)
    );

    // 4. integrate 100 steps with the treecode and watch energy conservation
    let mut sim = set.clone();
    let e0 = total_energy(&sim, &params);
    run(&mut sim, &mut bh, &LeapfrogKdk, 1e-3, 100);
    let e1 = total_energy(&sim, &params);
    println!(
        "100 leapfrog steps with Barnes-Hut: relative energy drift {:.2e}",
        ((e1 - e0) / e0).abs()
    );
}
