//! Multi-GPU scaling: jw-parallel across 1–8 simulated Radeon HD 5850s —
//! the scaling direction the paper's conclusion (and Hamada's SC'09 cluster
//! work it builds on) points at. Kernels overlap across boards; transfers
//! share one host PCIe root.
//!
//! Run with: `cargo run --release --example multi_gpu_scaling -- [N]`
//! (default N = 16384)

use nbody_core::prelude::*;
use plans::prelude::*;
use workloads::prelude::{plummer, PlummerParams};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16384);
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let set = plummer(n, PlummerParams::default(), 13);
    println!("jw-parallel strong scaling, N = {n}, Plummer sphere\n");
    println!(
        "{:>8} {:>14} {:>10} {:>10} {:>12} {:>10}",
        "devices", "kernel time", "speedup", "balance", "transfer", "walks/dev"
    );

    let mut baseline = None;
    for d in [1_usize, 2, 4, 8] {
        let outcome = MultiGpuJw::new(d).evaluate(&set, &params);
        let kernel = outcome.combined.kernel_s;
        let base = *baseline.get_or_insert(kernel);
        println!(
            "{:>8} {:>11.3} ms {:>9.2}x {:>9.1}% {:>9.3} ms {:>10}",
            d,
            kernel * 1e3,
            base / kernel,
            outcome.balance() * 100.0,
            outcome.combined.transfer_s * 1e3,
            outcome.walks_per_device.iter().sum::<usize>() / d
        );
    }

    println!(
        "\nNote: kernel time scales near-linearly while transfer time grows with the\n\
         device count (each board receives the body array over the shared link) —\n\
         the classic multi-GPU trade the lineage papers manage with overlap."
    );
}
