//! # par
//!
//! Deterministic host parallelism for the workspace, built on
//! [`std::thread::scope`] only — the build environment has no reachable
//! crates registry, so no external thread-pool dependency is possible.
//!
//! ## The determinism contract
//!
//! Every helper here splits work into **contiguous index chunks** and
//! returns the per-chunk results **in chunk order**, so a caller that
//! combines them in that order observes a fixed merge order regardless of
//! which worker finished first. Callers must uphold one rule for results to
//! be bit-exact across thread counts: the value computed for an item must
//! depend only on the item (and shared read-only state), never on which
//! chunk the item landed in. All hot paths in this workspace satisfy that
//! rule — work-groups of a GPU launch are independent by the programming
//! model, tree walks are independent per walk, and per-body forces are
//! independent per body — which is why `--threads 1` and `--threads k`
//! produce identical forces, energies, and simulated clocks.
//!
//! The global thread count is process-wide: [`set_threads`] overrides it,
//! otherwise the `NBODY_THREADS` environment variable applies, otherwise
//! [`std::thread::available_parallelism`]. With a count of 1 every helper
//! degenerates to a plain in-order loop on the calling thread — byte-for-
//! byte the pre-existing serial behavior.

pub mod arena;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = not yet resolved; anything else is the configured thread count.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide thread count used by all helpers.
///
/// # Panics
/// Panics if `n == 0`.
pub fn set_threads(n: usize) {
    assert!(n >= 1, "thread count must be >= 1");
    THREADS.store(n, Ordering::Relaxed);
}

/// The thread count in effect: the last [`set_threads`] value, else
/// `NBODY_THREADS`, else the machine's available parallelism (at least 1).
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = resolve_default();
    // first caller wins; any later set_threads still overrides
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

/// Cores the OS reports, independent of the configured count — what speedup
/// gates should consult before asserting wall-clock improvements.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn resolve_default() -> usize {
    if let Ok(v) = std::env::var("NBODY_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    available_parallelism()
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, non-empty
/// ranges. Deterministic in `(len, parts)`; the concatenation of the ranges
/// is exactly `0..len`.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts; // first `extra` chunks get one more item
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Applies `f` to contiguous chunks of `0..len` (at most [`threads`] of
/// them) and returns the results **in chunk order**. With one thread or one
/// chunk, `f` runs inline on the caller.
pub fn map_chunks<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, threads());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(move || f(r))).collect();
        handles.into_iter().map(join_propagating).collect()
    })
}

/// Runs independent tasks and returns their results **in task order**. The
/// tasks are distributed over at most [`threads`] workers as contiguous
/// slices of the task list; worker `w` runs its slice front to back. With
/// one thread the tasks simply run in order on the caller.
pub fn run_tasks<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let ranges = chunk_ranges(n, threads());
    if ranges.len() <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let mut tasks: Vec<Option<F>> = tasks.into_iter().map(Some).collect();
    let mut slices: Vec<&mut [Option<F>]> = Vec::with_capacity(ranges.len());
    let mut rest = tasks.as_mut_slice();
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        slices.push(head);
        rest = tail;
    }
    let mut per_chunk: Vec<Vec<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = slices
            .into_iter()
            .map(|slice| {
                s.spawn(move || {
                    slice.iter_mut().map(|t| (t.take().expect("task present"))()).collect()
                })
            })
            .collect();
        handles.into_iter().map(join_propagating).collect()
    });
    let mut out = Vec::with_capacity(n);
    for chunk in per_chunk.iter_mut() {
        out.append(chunk);
    }
    out
}

fn join_propagating<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that read results dependent on the *current* global thread
    /// count must not interleave with tests that change it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn chunk_ranges_partition_exactly() {
        for len in [0_usize, 1, 2, 7, 8, 100, 1023] {
            for parts in [1_usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty(), "empty chunk for len={len} parts={parts}");
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn chunk_sizes_are_near_equal() {
        let ranges = chunk_ranges(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn map_chunks_results_arrive_in_chunk_order() {
        let _guard = LOCK.lock().unwrap();
        set_threads(3);
        let out = map_chunks(11, |r| r.clone());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..11).collect::<Vec<_>>());
        set_threads(1);
        let serial = map_chunks(11, |r| r.clone());
        assert_eq!(serial.len(), 1);
        assert_eq!(serial[0], 0..11);
    }

    #[test]
    fn map_chunks_is_thread_count_invariant_for_item_maps() {
        let _guard = LOCK.lock().unwrap();
        let work = |r: Range<usize>| -> Vec<u64> { r.map(|i| (i as u64) * 7 + 1).collect() };
        let mut flats = Vec::new();
        for t in [1_usize, 2, 3, 8] {
            set_threads(t);
            flats.push(map_chunks(100, work).into_iter().flatten().collect::<Vec<u64>>());
        }
        set_threads(1);
        assert!(flats.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn run_tasks_preserves_task_order() {
        let _guard = LOCK.lock().unwrap();
        for t in [1_usize, 2, 5] {
            set_threads(t);
            let tasks: Vec<_> = (0..9).map(|i| move || i * i).collect();
            assert_eq!(run_tasks(tasks), (0..9).map(|i| i * i).collect::<Vec<_>>());
        }
        set_threads(1);
    }

    #[test]
    fn zero_len_is_fine() {
        assert!(map_chunks(0, |_| ()).is_empty());
        assert!(run_tasks(Vec::<fn() -> ()>::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_rejected() {
        set_threads(0);
    }
}
