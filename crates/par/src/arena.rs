//! Persistent scratch memory for zero-allocation steady states.
//!
//! Hot per-step paths (PP force tiles, Morton sorting, octree bucketing,
//! tree traversal, interaction lists) all need temporary buffers. Allocating
//! them fresh every step is the dominant serial cost once the thread pool is
//! in place, so this module provides:
//!
//! * [`Scratch`] — a keyed arena of reusable `Vec<T>` buffers. A caller
//!   [`Scratch::take`]s a buffer, uses it, and [`Scratch::put`]s it back;
//!   after a warmup step every take returns a buffer whose capacity already
//!   fits, so steady-state steps perform **zero heap allocations**.
//! * [`CountingAlloc`] — a global-allocator wrapper over [`std::alloc::System`]
//!   that counts allocations. It is never installed by library code; test
//!   and bench binaries opt in with `#[global_allocator]` to *gate* the
//!   zero-allocation invariant (see `tests/alloc_steady_state.rs` and the
//!   harness `alloc-count` feature).
//!
//! Buffers are typed by element: the slot key is `(TypeId of T, name)`, so
//! the same name can safely hold a `Vec<u32>` in one subsystem and a
//! `Vec<f64>` in another without aliasing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A keyed arena of reusable scratch buffers.
///
/// Not a pool with reference counting — ownership is explicit: [`take`]
/// moves the buffer out (leaving an empty placeholder), [`put`] moves it
/// back, cleared but with capacity intact. Taking the same key twice without
/// an intervening put simply yields a fresh empty `Vec` for the second call,
/// which is correct but allocates once it grows; structure callers so each
/// buffer has one taker at a time.
///
/// [`take`]: Scratch::take
/// [`put`]: Scratch::put
#[derive(Default)]
pub struct Scratch {
    slots: HashMap<(TypeId, &'static str), Box<dyn Any + Send>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffer registered under `key`, or an empty `Vec` if none
    /// exists yet. The returned buffer is always empty; its capacity is
    /// whatever the last [`Scratch::put`] left behind.
    pub fn take<T: Send + 'static>(&mut self, key: &'static str) -> Vec<T> {
        match self.slots.get_mut(&(TypeId::of::<Vec<T>>(), key)) {
            Some(slot) => {
                std::mem::take(slot.downcast_mut::<Vec<T>>().expect("slot type fixed by TypeId"))
            }
            None => {
                // register the slot now so the steady state only ever hits
                // the Some arm (no HashMap insert after warmup)
                self.slots.insert((TypeId::of::<Vec<T>>(), key), Box::new(Vec::<T>::new()));
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the arena, clearing its contents but keeping its
    /// capacity for the next [`Scratch::take`].
    pub fn put<T: Send + 'static>(&mut self, key: &'static str, mut buf: Vec<T>) {
        buf.clear();
        match self.slots.get_mut(&(TypeId::of::<Vec<T>>(), key)) {
            Some(slot) => *slot.downcast_mut::<Vec<T>>().expect("slot type fixed by TypeId") = buf,
            None => {
                self.slots.insert((TypeId::of::<Vec<T>>(), key), Box::new(buf));
            }
        }
    }

    /// Number of registered slots (for diagnostics).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

/// Cloning an arena yields a fresh empty one: scratch capacity is an
/// optimization, never state, so a cloned owner (e.g. a cloned force engine)
/// simply re-warms its own buffers.
impl Clone for Scratch {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Scratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scratch").field("slots", &self.slots.len()).finish()
    }
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper over the system allocator.
///
/// Library code never installs this; binaries that gate the zero-allocation
/// invariant do, via:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: par::arena::CountingAlloc = par::arena::CountingAlloc;
/// ```
///
/// Only allocation *events* are counted (alloc, alloc_zeroed, and growth
/// reallocs); deallocation is free and untracked because the invariant under
/// test is "no new heap memory is requested per steady-state step".
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events observed so far by [`CountingAlloc`] (0 forever unless
/// a binary installed it as the global allocator).
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Resets the allocation counter to zero.
pub fn reset_alloc_count() {
    ALLOCATIONS.store(0, Ordering::Relaxed);
}

/// True if [`CountingAlloc`] is actually installed in this process, probed
/// by performing one heap allocation and checking the counter moved. Lets
/// shared report code emit `None` instead of a bogus zero when counting is
/// unavailable.
pub fn counting_active() -> bool {
    let before = alloc_count();
    let probe = vec![0u8; 64];
    std::hint::black_box(&probe);
    alloc_count() > before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_preserves_capacity() {
        let mut s = Scratch::new();
        let mut v: Vec<u32> = s.take("keys");
        assert!(v.is_empty());
        v.extend(0..1000);
        let cap = v.capacity();
        s.put("keys", v);
        let v2: Vec<u32> = s.take("keys");
        assert!(v2.is_empty(), "put clears contents");
        assert_eq!(v2.capacity(), cap, "put keeps capacity");
    }

    #[test]
    fn same_name_different_types_do_not_alias() {
        let mut s = Scratch::new();
        let mut a: Vec<u32> = s.take("buf");
        a.push(7);
        s.put("buf", a);
        let b: Vec<f64> = s.take("buf");
        assert!(b.is_empty());
        assert_eq!(s.slots(), 2);
    }

    #[test]
    fn double_take_yields_fresh_empty() {
        let mut s = Scratch::new();
        let mut a: Vec<u8> = s.take("x");
        a.reserve(64);
        let b: Vec<u8> = s.take("x");
        assert_eq!(b.capacity(), 0);
        s.put("x", a);
        s.put("x", b); // last put wins; still consistent
        let _ = s.take::<u8>("x");
    }

    #[test]
    fn clone_is_fresh() {
        let mut s = Scratch::new();
        let mut v: Vec<u64> = s.take("k");
        v.reserve(128);
        s.put("k", v);
        let c = s.clone();
        assert_eq!(c.slots(), 0);
    }

    #[test]
    fn counter_api_is_monotone_and_resettable() {
        reset_alloc_count();
        // counting_active() may be false (allocator not installed in unit
        // tests) but the API must not panic and the counter stays coherent.
        let _ = counting_active();
        let c = alloc_count();
        reset_alloc_count();
        assert!(alloc_count() <= c);
    }
}
