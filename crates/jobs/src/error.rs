//! Typed errors for the job subsystem.
//!
//! The server is long-running and multi-tenant, so a failing job must
//! surface as a *recorded, typed* failure on that job — never a panic that
//! takes the daemon down. [`JobError::is_retryable`] is the single place
//! that decides which failures the scheduler retries with bounded backoff
//! (deadline yields that made progress) and which are terminal (I/O,
//! corrupt state, unrecoverable device faults).

use crate::spec::AdmissionError;
use workloads::snapshot::SnapshotError;

/// What can go wrong submitting, spooling, or running a job.
#[derive(Debug)]
pub enum JobError {
    /// A spool or artifact file operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A checkpoint or result snapshot failed to load or validate.
    Snapshot {
        /// The file involved.
        path: String,
        /// The underlying snapshot error.
        source: SnapshotError,
    },
    /// A spool record or cache entry was unparseable.
    Parse {
        /// The file involved.
        path: String,
        /// What the parser reported.
        msg: String,
    },
    /// The spec was refused at admission.
    Admission(AdmissionError),
    /// The attempt's simulated clock exceeded the job's deadline; the
    /// runner checkpointed and yielded cooperatively.
    DeadlineExceeded {
        /// The step the attempt reached (and checkpointed).
        step: usize,
        /// Simulated seconds the attempt had consumed.
        simulated_s: f64,
        /// The per-attempt budget that was exceeded.
        deadline_s: f64,
        /// True when this attempt advanced past the step it resumed from —
        /// a retry can make further progress from the new checkpoint.
        progressed: bool,
    },
    /// The job's device faulted beyond recovery (e.g. permanent device
    /// loss); caught at the job boundary so the server survives.
    Unrecoverable(String),
    /// A result-integrity invariant failed (resumed run diverged from the
    /// reference, or a cached result failed its checksum).
    Verification(String),
    /// The attempt exceeded its *wall-clock* watchdog budget (distinct from
    /// the simulated-seconds deadline): the host was genuinely stuck or
    /// throttled, not just simulating a long run. The runner checkpointed
    /// before yielding; the daemon decides whether to requeue or poison.
    WatchdogTimeout {
        /// The step the attempt reached (and checkpointed).
        step: usize,
        /// Wall-clock seconds the attempt had consumed.
        elapsed_s: f64,
        /// The wall-clock budget that was exceeded.
        watchdog_s: f64,
    },
    /// Admission shed this job: the PTPM forecast of the queue's simulated
    /// cost exceeded the configured budget, and the job's priority class
    /// does not override load shedding.
    Overloaded {
        /// PTPM-forecast simulated seconds for this job alone.
        forecast_s: f64,
        /// Forecast simulated seconds of everything queued and running.
        debt_s: f64,
        /// The configured queue-debt budget that was exceeded.
        budget_s: f64,
    },
}

impl JobError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        JobError::Io { path: path.into(), source }
    }

    /// Wraps a snapshot error with the file it occurred on.
    pub fn snapshot(path: impl Into<String>, source: SnapshotError) -> Self {
        JobError::Snapshot { path: path.into(), source }
    }

    /// Stable machine-readable identifier recorded in failed job records.
    pub fn id(&self) -> &'static str {
        match self {
            JobError::Io { .. } => "io",
            JobError::Snapshot { .. } => "snapshot",
            JobError::Parse { .. } => "parse",
            JobError::Admission(_) => "admission",
            JobError::DeadlineExceeded { .. } => "deadline-exceeded",
            JobError::Unrecoverable(_) => "unrecoverable",
            JobError::Verification(_) => "verification",
            JobError::WatchdogTimeout { .. } => "watchdog-timeout",
            JobError::Overloaded { .. } => "overloaded",
        }
    }

    /// True when the scheduler should retry with bounded backoff: only a
    /// deadline yield that made progress (the retry resumes from the new
    /// checkpoint with a fresh simulated-time budget). Everything else is
    /// deterministic-terminal or unsafe to repeat blindly.
    pub fn is_retryable(&self) -> bool {
        matches!(self, JobError::DeadlineExceeded { progressed: true, .. })
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Io { path, source } => write!(f, "[io] cannot access {path}: {source}"),
            JobError::Snapshot { path, source } => {
                write!(f, "[snapshot] {path} unusable: {source}")
            }
            JobError::Parse { path, msg } => write!(f, "[parse] {path} malformed: {msg}"),
            JobError::Admission(e) => write!(f, "[admission] {e}"),
            JobError::DeadlineExceeded { step, simulated_s, deadline_s, progressed } => write!(
                f,
                "[deadline-exceeded] simulated {simulated_s:.3e} s > budget {deadline_s:.3e} s \
                 at step {step} ({})",
                if *progressed { "progress checkpointed" } else { "no progress" }
            ),
            JobError::Unrecoverable(msg) => write!(f, "[unrecoverable] {msg}"),
            JobError::Verification(msg) => write!(f, "[verification] {msg}"),
            JobError::WatchdogTimeout { step, elapsed_s, watchdog_s } => write!(
                f,
                "[watchdog-timeout] wall clock {elapsed_s:.3} s > budget {watchdog_s:.3} s \
                 at step {step} (progress checkpointed)"
            ),
            JobError::Overloaded { forecast_s, debt_s, budget_s } => write!(
                f,
                "[overloaded] forecast queue debt {debt_s:.3e} s exceeds budget {budget_s:.3e} s \
                 (this job forecasts {forecast_s:.3e} s); resubmit later or raise priority"
            ),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Io { source, .. } => Some(source),
            JobError::Snapshot { source, .. } => Some(source),
            JobError::Admission(source) => Some(source),
            _ => None,
        }
    }
}

impl From<AdmissionError> for JobError {
    fn from(e: AdmissionError) -> Self {
        JobError::Admission(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_progressing_deadline_is_retryable() {
        let yes = JobError::DeadlineExceeded {
            step: 4,
            simulated_s: 2.0,
            deadline_s: 1.0,
            progressed: true,
        };
        let no = JobError::DeadlineExceeded {
            step: 4,
            simulated_s: 2.0,
            deadline_s: 1.0,
            progressed: false,
        };
        assert!(yes.is_retryable());
        assert!(!no.is_retryable());
        assert!(!JobError::Unrecoverable("x".into()).is_retryable());
        assert!(!JobError::io("p", std::io::Error::other("boom")).is_retryable());
    }

    #[test]
    fn messages_carry_ids_and_context() {
        let e = JobError::io("/spool/x.json", std::io::Error::other("disk"));
        assert_eq!(e.id(), "io");
        assert!(e.to_string().contains("/spool/x.json"));
        let e = JobError::Admission(AdmissionError::ZeroSteps);
        assert!(e.to_string().contains("zero-steps"));
        assert!(std::error::Error::source(&e).is_some());
        let e = JobError::DeadlineExceeded {
            step: 3,
            simulated_s: 1.5,
            deadline_s: 1.0,
            progressed: true,
        };
        assert!(e.to_string().contains("deadline-exceeded"), "{e}");
    }

    #[test]
    fn supervision_errors_are_typed_and_not_blindly_retryable() {
        let wd = JobError::WatchdogTimeout { step: 7, elapsed_s: 3.2, watchdog_s: 1.0 };
        assert_eq!(wd.id(), "watchdog-timeout");
        assert!(!wd.is_retryable(), "the daemon supervises watchdog requeues, not the wave loop");
        assert!(wd.to_string().contains("watchdog-timeout"));
        let shed = JobError::Overloaded { forecast_s: 2.0, debt_s: 9.0, budget_s: 5.0 };
        assert_eq!(shed.id(), "overloaded");
        assert!(!shed.is_retryable());
        assert!(shed.to_string().contains("overloaded"), "{shed}");
    }
}
