//! The persistent autotuning database behind `--plan auto`.
//!
//! [`resolve_plan`] turns "auto" into a concrete `(plan kind, config)` by
//! the three-stage chain the DESIGN.md §13 contract specifies:
//!
//! 1. **DB hit** — a versioned `tuning.json` keyed by
//!    `(workload kind, N-bucket, device spec hash, backend tier, objective)`
//!    already knows the winner for this situation: reuse it verbatim.
//! 2. **PTPM forecast** — on a miss, the analytic model ranks the
//!    *expressible* candidate grid on the workload's real interaction-list
//!    geometry; when the forecast separates the best candidate decisively
//!    from every other plan kind, trust it without measuring.
//! 3. **Measured fallback** — otherwise measure the PTPM-pruned shortlist
//!    on the simulated device (deterministic simulated seconds) and take
//!    the winner.
//!
//! Whatever path resolved the plan, the winner is persisted back through
//! the [`crate::fsx`] seam with the same atomic-rename transaction every
//! other durable file uses, so a crash mid-store leaves either the old DB
//! or the new one — never a torn file. A *corrupt* DB (truncated by an
//! ancient crash, hand-edited, version-skewed) surfaces as a typed
//! [`JobError::Parse`] that resolution records and routes around: the
//! resolver falls back to the measured path and heals the file by
//! rewriting it. Resolution never panics and never blocks admission.
//!
//! Tuning *selects*; it never changes physics. The resolved `(kind, tile)`
//! is pinned into the job spec before hashing, so a tuned job is the same
//! job as an explicitly-pinned one — bit-exact, cache-shared, and replayed
//! identically from a DB hit (the round-trip tests hold this).

use crate::error::JobError;
use crate::fsx::SpoolFs;
use gpu_sim::prelude::DeviceSpec;
use nbody_core::gravity::GravityParams;
use plans::prelude::{
    forecast_grid_points, measure, prune, BackendKind, Candidate, ForecastGeometry, PlanConfig,
    PlanKind, TuneObjective,
};
use serde::{Deserialize, Serialize};
use std::path::Path;
use workloads::spec::WorkloadSpec;

/// Schema version of `tuning.json`. A mismatch is a parse error (the DB is
/// a cache: healing by re-measurement is always safe, guessing is not).
pub const DB_VERSION: u32 = 1;

/// When the forecast-best candidate undercuts the best forecast of every
/// *other* plan kind by at least this factor, resolution trusts the model
/// without measuring. Within one kind the forecast ordering is sharp; the
/// margin guards the cross-kind comparisons where the ALU-only model is
/// optimistic.
pub const FORECAST_MARGIN: f64 = 0.85;

/// Tile sizes `--plan auto` considers: the values a [`crate::spec::JobSpec`]
/// can express through its single `tile` knob (the runner pins both block
/// and walk geometry from it).
pub const AUTO_TILES: [usize; 3] = [64, 128, 256];

/// One persisted winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningEntry {
    /// The [`db_key`] this winner answers.
    pub key: String,
    /// Winning plan kind id ([`PlanKind::id`]).
    pub plan: String,
    /// The winning configuration, replayable bit-exactly.
    pub config: PlanConfig,
    /// Which resolution path produced it ([`PlanSource::id`]).
    pub source: String,
    /// The PTPM forecast of the winner, seconds.
    pub forecast_s: f64,
    /// Measured simulated seconds, when the measured path ran.
    pub measured_s: Option<f64>,
}

/// The on-disk autotuning database: a versioned, key-sorted list of
/// winners. Entries are a sorted `Vec`, not a map, so the JSON is stable
/// and diffs cleanly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningDb {
    /// Schema version ([`DB_VERSION`]).
    pub version: u32,
    /// Winners, ascending by key.
    pub entries: Vec<TuningEntry>,
}

impl Default for TuningDb {
    fn default() -> Self {
        TuningDb { version: DB_VERSION, entries: Vec::new() }
    }
}

impl TuningDb {
    /// Loads the DB at `path`. Missing file → `Ok(None)` (a fresh spool);
    /// unreadable, unparseable, or version-skewed → a typed error, never a
    /// panic — callers fall back to measurement and heal the file.
    pub fn load(path: &Path) -> Result<Option<TuningDb>, JobError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(JobError::io(path.display().to_string(), e)),
        };
        let db: TuningDb = serde_json::from_str(&text).map_err(|e| JobError::Parse {
            path: path.display().to_string(),
            msg: format!("tuning db: {e}"),
        })?;
        if db.version != DB_VERSION {
            return Err(JobError::Parse {
                path: path.display().to_string(),
                msg: format!("tuning db version {} (expected {})", db.version, DB_VERSION),
            });
        }
        Ok(Some(db))
    }

    /// Persists the DB through the crash-safe seam: parent directory
    /// asserted, then the usual `.tmp` + rename transaction. A crash at any
    /// point leaves the previous DB (or none) intact.
    pub fn store(&self, fs: &dyn SpoolFs, path: &Path) -> Result<(), JobError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs.create_dir_all(parent)
                    .map_err(|e| JobError::io(parent.display().to_string(), e))?;
            }
        }
        let json = serde_json::to_string(self).expect("tuning db serializes");
        fs.write_atomic(path, &json).map_err(|e| JobError::io(path.display().to_string(), e))
    }

    /// The entry for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&TuningEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Inserts or replaces the entry for its key, keeping the list sorted.
    pub fn put(&mut self, entry: TuningEntry) {
        self.entries.retain(|e| e.key != entry.key);
        let at = self.entries.partition_point(|e| e.key < entry.key);
        self.entries.insert(at, entry);
    }
}

/// FNV-1a hash of the device spec's canonical JSON, 16 hex digits — the
/// DB key component that keeps winners from one simulated device from
/// being served on another.
pub fn device_spec_hash(spec: &DeviceSpec) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let json = serde_json::to_string(spec).expect("device spec serializes");
    let mut hash = OFFSET;
    for &b in json.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:016x}")
}

fn objective_id(objective: TuneObjective) -> &'static str {
    match objective {
        TuneObjective::KernelTime => "kernel",
        TuneObjective::TotalTime => "total",
    }
}

/// The DB key for a situation: workload kind, N bucketed to the next power
/// of two (tuning winners are stable within a bucket; exact N would make
/// the DB useless), device spec hash, resolved backend tier, objective.
pub fn db_key(
    workload: &WorkloadSpec,
    device: &DeviceSpec,
    backend: BackendKind,
    objective: TuneObjective,
) -> String {
    format!(
        "{}/n{}/{}/{}/{}",
        workload.kind.id(),
        workload.n.next_power_of_two(),
        device_spec_hash(device),
        backend.resolve().id(),
        objective_id(objective)
    )
}

/// Which stage of the resolution chain produced the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Reused a persisted winner.
    DbHit,
    /// Trusted a decisive PTPM forecast without measuring.
    Forecast,
    /// Measured the pruned shortlist on the simulated device.
    Measured,
}

impl PlanSource {
    /// Stable identifier recorded in job artifacts.
    pub fn id(self) -> &'static str {
        match self {
            PlanSource::DbHit => "db-hit",
            PlanSource::Forecast => "forecast",
            PlanSource::Measured => "measured",
        }
    }
}

/// The outcome of `--plan auto` resolution.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// The resolved plan kind.
    pub kind: PlanKind,
    /// Its winning configuration.
    pub config: PlanConfig,
    /// Which chain stage answered.
    pub source: PlanSource,
    /// A DB problem resolution routed around (corrupt file, failed store),
    /// surfaced for logging; never fatal.
    pub db_error: Option<String>,
}

impl Resolution {
    /// The job-spec `tile` expressing this configuration (the runner pins
    /// both block and walk geometry from it; the expressible grid keeps
    /// them equal by construction).
    pub fn tile(&self) -> usize {
        if self.kind.uses_tree() {
            self.config.walk_size
        } else {
            self.config.block_size
        }
    }

    /// The provenance string recorded in the job spec and artifact,
    /// e.g. `auto:db-hit`.
    pub fn plan_source_label(&self) -> String {
        format!("auto:{}", self.source.id())
    }
}

/// The candidate grid a [`crate::spec::JobSpec`] can express: every plan
/// kind crossed with [`AUTO_TILES`], block and walk geometry pinned to the
/// same tile, slice counts left on their auto rules (a spec has no slice
/// knob).
pub fn expressible_grid(base: PlanConfig) -> Vec<Candidate> {
    let mut grid = Vec::new();
    for kind in PlanKind::all() {
        for tile in AUTO_TILES {
            let config = PlanConfig {
                block_size: tile,
                walk_size: tile,
                j_slices: None,
                jw_slice_len: None,
                ..base
            };
            grid.push(Candidate { kind, config });
        }
    }
    grid
}

/// Resolves `--plan auto` for a workload: DB hit → PTPM forecast →
/// measured fallback, persisting the winner back through `fs`. Infallible
/// by contract — DB corruption and store failures are recorded in
/// [`Resolution::db_error`] and routed around, never propagated, so a bad
/// cache file can delay admission by one measurement but never block it.
pub fn resolve_plan(
    fs: &dyn SpoolFs,
    db_path: &Path,
    workload: &WorkloadSpec,
    backend: BackendKind,
    objective: TuneObjective,
    top_k: usize,
) -> Resolution {
    let device = DeviceSpec::radeon_hd_5850();
    let key = db_key(workload, &device, backend, objective);
    let (mut db, mut db_error) = match TuningDb::load(db_path) {
        Ok(Some(db)) => (db, None),
        Ok(None) => (TuningDb::default(), None),
        Err(e) => (TuningDb::default(), Some(e.to_string())),
    };
    if let Some(entry) = db.get(&key) {
        // an unknown plan id means a foreign or future entry: treat as a
        // miss and heal it below rather than guessing
        if let Some(kind) = PlanKind::parse(&entry.plan) {
            return Resolution { kind, config: entry.config, source: PlanSource::DbHit, db_error };
        }
    }

    let base = PlanConfig::default();
    let grid = expressible_grid(base);
    let mut set = workload.generate();
    set.recenter();
    let geom = ForecastGeometry::build(&set, base, &grid);
    let forecasts = forecast_grid_points(&grid, &geom, &device, objective);
    let best = forecasts[0];
    let best_other_kind =
        forecasts.iter().find(|p| p.candidate.kind != best.candidate.kind).map(|p| p.forecast_s);
    let decisive = best_other_kind.is_none_or(|other| best.forecast_s <= FORECAST_MARGIN * other);

    let params = GravityParams { g: 1.0, softening: 0.05 };
    let (winner, source, forecast_s, measured_s) = if decisive {
        (best.candidate, PlanSource::Forecast, best.forecast_s, None)
    } else {
        let shortlist = prune(&forecasts, top_k);
        let measured = measure(&shortlist, &device, &set, &params, objective);
        let best_point = measured
            .iter()
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap())
            .expect("non-empty shortlist");
        let f = forecasts
            .iter()
            .find(|p| p.candidate == best_point.candidate)
            .expect("shortlist is a subset of the forecast grid")
            .forecast_s;
        (best_point.candidate, PlanSource::Measured, f, Some(best_point.seconds))
    };

    db.put(TuningEntry {
        key,
        plan: winner.kind.id().to_string(),
        config: winner.config,
        source: source.id().to_string(),
        forecast_s,
        measured_s,
    });
    if let Err(e) = db.store(fs, db_path) {
        let msg = format!("tuning db store failed: {e}");
        db_error = Some(match db_error {
            Some(prev) => format!("{prev}; {msg}"),
            None => msg,
        });
    }
    Resolution { kind: winner.kind, config: winner.config, source, db_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsx::{CrashFs, RealFs};
    use plans::prelude::{autotune, evaluate_forces, DEFAULT_SHORTLIST};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-tuning").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_entry(key: &str) -> TuningEntry {
        TuningEntry {
            key: key.to_string(),
            plan: PlanKind::JwParallel.id().to_string(),
            config: PlanConfig::default(),
            source: PlanSource::Measured.id().to_string(),
            forecast_s: 1.5e-3,
            measured_s: Some(2.0e-3),
        }
    }

    #[test]
    fn db_round_trips_and_missing_is_none() {
        let dir = tmp("roundtrip");
        let path = dir.join("tuning.json");
        assert!(TuningDb::load(&path).unwrap().is_none());
        let mut db = TuningDb::default();
        db.put(sample_entry("b"));
        db.put(sample_entry("a"));
        db.store(&RealFs, &path).unwrap();
        let back = TuningDb::load(&path).unwrap().unwrap();
        assert_eq!(back, db);
        assert_eq!(back.entries[0].key, "a", "entries stay key-sorted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_replaces_existing_key() {
        let mut db = TuningDb::default();
        db.put(sample_entry("k"));
        let mut updated = sample_entry("k");
        updated.plan = PlanKind::IParallel.id().to_string();
        db.put(updated);
        assert_eq!(db.entries.len(), 1);
        assert_eq!(db.entries[0].plan, "i-parallel");
    }

    #[test]
    fn corrupt_and_version_skewed_dbs_are_typed_errors_not_panics() {
        let dir = tmp("corrupt");
        let path = dir.join("tuning.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = TuningDb::load(&path).unwrap_err();
        assert_eq!(err.id(), "parse", "{err}");
        std::fs::write(&path, "{\"version\":99,\"entries\":[]}").unwrap();
        let err = TuningDb::load(&path).unwrap_err();
        assert_eq!(err.id(), "parse", "{err}");
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn db_key_buckets_n_and_separates_tiers() {
        let device = DeviceSpec::radeon_hd_5850();
        let w = |n| WorkloadSpec::plummer(n, 1);
        let k = |n, b, o| db_key(&w(n), &device, b, o);
        // one bucket per power-of-two range
        assert_eq!(
            k(600, BackendKind::Sim, TuneObjective::TotalTime),
            k(1024, BackendKind::Sim, TuneObjective::TotalTime)
        );
        assert_ne!(
            k(1024, BackendKind::Sim, TuneObjective::TotalTime),
            k(1025, BackendKind::Sim, TuneObjective::TotalTime)
        );
        // auto resolves to sim: shared entry
        assert_eq!(
            k(512, BackendKind::Auto, TuneObjective::TotalTime),
            k(512, BackendKind::Sim, TuneObjective::TotalTime)
        );
        // tiers and objectives are distinct
        assert_ne!(
            k(512, BackendKind::Host, TuneObjective::TotalTime),
            k(512, BackendKind::Sim, TuneObjective::TotalTime)
        );
        assert_ne!(
            k(512, BackendKind::Sim, TuneObjective::KernelTime),
            k(512, BackendKind::Sim, TuneObjective::TotalTime)
        );
        // a different device spec keys differently
        assert_ne!(
            db_key(
                &w(512),
                &DeviceSpec::radeon_hd_5870(),
                BackendKind::Sim,
                TuneObjective::TotalTime
            ),
            k(512, BackendKind::Sim, TuneObjective::TotalTime)
        );
    }

    #[test]
    fn resolution_chain_misses_then_hits_with_identical_choice() {
        let dir = tmp("chain");
        let path = dir.join("tuning.json");
        let workload = WorkloadSpec::plummer(128, 7);
        let first = resolve_plan(
            &RealFs,
            &path,
            &workload,
            BackendKind::Sim,
            TuneObjective::TotalTime,
            DEFAULT_SHORTLIST,
        );
        assert_ne!(first.source, PlanSource::DbHit, "fresh dir cannot hit");
        assert!(first.db_error.is_none(), "{:?}", first.db_error);
        assert!(path.exists(), "winner was persisted");
        let second = resolve_plan(
            &RealFs,
            &path,
            &workload,
            BackendKind::Sim,
            TuneObjective::TotalTime,
            DEFAULT_SHORTLIST,
        );
        assert_eq!(second.source, PlanSource::DbHit);
        assert_eq!(second.kind, first.kind);
        assert_eq!(second.config, first.config);
        assert_eq!(second.tile(), first.tile());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_db_falls_back_and_heals() {
        let dir = tmp("heal");
        let path = dir.join("tuning.json");
        std::fs::write(&path, "garbage").unwrap();
        let workload = WorkloadSpec::plummer(96, 3);
        let r = resolve_plan(
            &RealFs,
            &path,
            &workload,
            BackendKind::Sim,
            TuneObjective::TotalTime,
            DEFAULT_SHORTLIST,
        );
        assert_ne!(r.source, PlanSource::DbHit);
        assert!(r.db_error.as_deref().unwrap_or("").contains("parse"), "{:?}", r.db_error);
        // the rewrite healed the file: next resolution is a clean hit
        let again = resolve_plan(
            &RealFs,
            &path,
            &workload,
            BackendKind::Sim,
            TuneObjective::TotalTime,
            DEFAULT_SHORTLIST,
        );
        assert_eq!(again.source, PlanSource::DbHit);
        assert!(again.db_error.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn db_hit_replays_the_autotune_winner_bit_exactly() {
        // persist the *full* autotuner's measured winner, then check a DB
        // hit reproduces exactly that candidate and that replaying it gives
        // bit-identical forces — the invariant that makes persistence safe
        let dir = tmp("replay");
        let path = dir.join("tuning.json");
        let device = DeviceSpec::radeon_hd_5850();
        let workload = WorkloadSpec::plummer(128, 11);
        let mut set = workload.generate();
        set.recenter();
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let result = autotune(
            PlanConfig::default(),
            &device,
            &set,
            &params,
            TuneObjective::TotalTime,
            DEFAULT_SHORTLIST,
        );
        assert!(result.winner_reproducible);
        let key = db_key(&workload, &device, BackendKind::Sim, TuneObjective::TotalTime);
        let mut db = TuningDb::default();
        db.put(TuningEntry {
            key,
            plan: result.best.kind.id().to_string(),
            config: result.best.config,
            source: PlanSource::Measured.id().to_string(),
            forecast_s: 0.0,
            measured_s: Some(result.best_seconds),
        });
        db.store(&RealFs, &path).unwrap();
        let r = resolve_plan(
            &RealFs,
            &path,
            &workload,
            BackendKind::Sim,
            TuneObjective::TotalTime,
            DEFAULT_SHORTLIST,
        );
        assert_eq!(r.source, PlanSource::DbHit);
        assert_eq!(r.kind, result.best.kind);
        assert_eq!(r.config, result.best.config);
        let replayed =
            evaluate_forces(&Candidate { kind: r.kind, config: r.config }, &device, &set, &params);
        let original = evaluate_forces(&result.best, &device, &set, &params);
        assert_eq!(replayed, original, "DB hit must replay the winner bit-exactly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_crash_points_leave_old_db_or_new_db_never_torn() {
        let dir = tmp("crashfuzz");
        let path = dir.join("tuning.json");
        // establish an old generation on disk
        let mut old = TuningDb::default();
        old.put(sample_entry("old"));
        old.store(&RealFs, &path).unwrap();
        // count the mutations a store takes from this state
        let counter = CrashFs::counting();
        let mut new = old.clone();
        new.put(sample_entry("new"));
        new.store(counter.as_ref(), &path).unwrap();
        let ops = counter.ops_used();
        assert!(ops >= 2, "write_atomic is at least write + rename");
        // crash after every prefix; the DB must load as exactly old or new
        for budget in 0..ops {
            old.store(&RealFs, &path).unwrap();
            std::fs::remove_file(dir.join("tuning.json.tmp")).ok();
            let fs = CrashFs::with_budget(budget);
            let _ = new.store(fs.as_ref(), &path);
            let loaded = TuningDb::load(&path)
                .expect("a crashed store must never leave a torn DB")
                .expect("the old generation must survive an incomplete store");
            assert!(
                loaded == old || loaded == new,
                "budget {budget}: loaded neither generation: {loaded:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
