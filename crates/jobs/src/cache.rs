//! Content-addressed result cache.
//!
//! The determinism contract (DESIGN.md §8) makes a job's final state a pure
//! function of `(spec, seed, plan, threads, tile)` — exactly the fields the
//! canonical job hash covers. So a completed result can be stored under
//! `cache/<hash16>.json` and any later submission of an identical spec is a
//! *cache hit*: the server returns the stored result without recomputing.
//! Scheduling-only fields (priority, deadline, fault injection) are excluded
//! from the hash on purpose — a job that limped through retries and device
//! faults produces bit-identical physics, so it may serve a later fault-free
//! resubmission.
//!
//! Lookups re-verify the snapshot content checksum before trusting an entry:
//! the cache entry embeds a [`Snapshot`] through derived deserialization,
//! which skips the validating [`Snapshot::from_json`] path, and a cache that
//! silently served bit-rotted physics would defeat its own purpose. A corrupt
//! entry is treated as a miss and deleted.

use crate::error::JobError;
use crate::fsx::{real_fs, SpoolFs};
use crate::spec::JobSpec;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use workloads::snapshot::{content_checksum, Snapshot};

/// A completed job's durable result: the final particle state plus the
/// execution metadata worth reporting on a cache hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Canonical job hash (16 hex digits) — the cache key.
    pub hash_hex: String,
    /// The spec that produced this result.
    pub spec: JobSpec,
    /// Final particle state at `steps × dt`.
    pub final_snapshot: Snapshot,
    /// Copy of the snapshot's content checksum, re-verified on every lookup.
    pub result_checksum: u64,
    /// Steps integrated.
    pub steps: usize,
    /// Simulated device seconds for the whole job (all attempts).
    pub simulated_total_s: f64,
    /// Simulated kernel-only seconds.
    pub simulated_kernel_s: f64,
    /// Simulated seconds lost to fault recovery.
    pub recovery_s: f64,
    /// Total injected faults survived.
    pub fault_total: u64,
    /// Step the final attempt resumed from (0 = ran from scratch).
    pub resumed_from: usize,
    /// Deadline retries consumed across the job's lifetime.
    pub retries: u32,
}

/// Handle to a cache directory of `<hash16>.json` entries.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    fs: Arc<dyn SpoolFs>,
}

impl ResultCache {
    /// Wraps `dir` (created lazily on first store) on the production
    /// filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_fs(dir, real_fs())
    }

    /// Wraps `dir` with every mutation routed through `fs`.
    pub fn with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn SpoolFs>) -> Self {
        ResultCache { dir: dir.into(), fs }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, hash_hex: &str) -> PathBuf {
        self.dir.join(format!("{hash_hex}.json"))
    }

    /// Looks up a result by canonical hash. Returns `Ok(None)` on a miss.
    /// An entry that is unparseable, mislabeled, or fails its content
    /// checksum is deleted and reported as a miss — the job simply
    /// recomputes.
    pub fn lookup(&self, hash_hex: &str) -> Result<Option<JobResult>, JobError> {
        let path = self.entry_path(hash_hex);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(JobError::io(path.display().to_string(), e)),
        };
        match Self::validate(hash_hex, &text) {
            Ok(result) => Ok(Some(result)),
            Err(reason) => {
                eprintln!("evicting corrupt cache entry {}: {reason}", path.display());
                self.fs.remove_file(&path).ok();
                Ok(None)
            }
        }
    }

    fn validate(hash_hex: &str, text: &str) -> Result<JobResult, String> {
        let result: JobResult = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if result.hash_hex != hash_hex {
            return Err(format!("entry labeled {} filed under {hash_hex}", result.hash_hex));
        }
        if result.spec.hash_hex() != hash_hex {
            return Err("embedded spec does not hash to the cache key".into());
        }
        let snap = &result.final_snapshot;
        let actual = content_checksum(snap.time, &snap.set);
        if Some(actual) != snap.checksum || actual != result.result_checksum {
            return Err(format!(
                "content checksum mismatch (stored {:?}/{:#018x}, computed {actual:#018x})",
                snap.checksum, result.result_checksum
            ));
        }
        if !snap.set.all_finite() {
            return Err("snapshot contains non-finite values".into());
        }
        Ok(result)
    }

    /// Stores a result under its canonical hash, atomically. Overwrites any
    /// existing entry (determinism makes them bit-identical anyway).
    pub fn store(&self, result: &JobResult) -> Result<(), JobError> {
        self.fs
            .create_dir_all(&self.dir)
            .map_err(|e| JobError::io(self.dir.display().to_string(), e))?;
        let path = self.entry_path(&result.hash_hex);
        let json = serde_json::to_string(result).map_err(|e| JobError::Parse {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        self.fs.write_atomic(&path, &json).map_err(|e| JobError::io(path.display().to_string(), e))
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plans::prelude::{BackendKind, PlanKind};
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-cache").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn result(n: usize, seed: u64) -> JobResult {
        let spec = JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, 3);
        let set = spec.workload.generate();
        let snap = Snapshot::new(spec.label(), 3.0 * spec.dt, set);
        let checksum = snap.checksum.unwrap();
        JobResult {
            hash_hex: spec.hash_hex(),
            spec,
            final_snapshot: snap,
            result_checksum: checksum,
            steps: 3,
            simulated_total_s: 1.0,
            simulated_kernel_s: 0.8,
            recovery_s: 0.0,
            fault_total: 0,
            resumed_from: 0,
            retries: 0,
        }
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ResultCache::new(tmp("roundtrip"));
        let r = result(16, 1);
        assert!(cache.lookup(&r.hash_hex).unwrap().is_none(), "miss before store");
        cache.store(&r).unwrap();
        let hit = cache.lookup(&r.hash_hex).unwrap().expect("hit after store");
        assert_eq!(hit, r);
        assert_eq!(cache.len(), 1);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn precision_tiers_never_share_cache_entries() {
        let cache = ResultCache::new(tmp("tiers"));
        let r = result(16, 6); // computed on the default (sim, f32-tier) backend
        cache.store(&r).unwrap();

        // the same spec pinned to another tier hashes differently, so the
        // lookup is a miss — an f32 result can never serve an f64 request
        let mut host_spec = r.spec.clone();
        host_spec.backend = Some(BackendKind::Host);
        assert_ne!(host_spec.hash_hex(), r.hash_hex);
        assert!(cache.lookup(&host_spec.hash_hex()).unwrap().is_none());

        let mut f32_spec = r.spec.clone();
        f32_spec.backend = Some(BackendKind::F32);
        assert_ne!(f32_spec.hash_hex(), host_spec.hash_hex());
        assert_ne!(f32_spec.hash_hex(), r.hash_hex);
        assert!(cache.lookup(&f32_spec.hash_hex()).unwrap().is_none());

        // while an explicit `auto` or `sim` still hits the stored entry
        for same in [BackendKind::Auto, BackendKind::Sim] {
            let mut spec = r.spec.clone();
            spec.backend = Some(same);
            assert_eq!(spec.hash_hex(), r.hash_hex);
            assert!(cache.lookup(&spec.hash_hex()).unwrap().is_some());
        }
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_entry_is_evicted_as_miss() {
        let cache = ResultCache::new(tmp("corrupt"));
        let r = result(16, 2);
        cache.store(&r).unwrap();
        // flip a payload digit without touching the stored checksums, as
        // silent bit rot would
        let path = cache.dir().join(format!("{}.json", r.hash_hex));
        let text = std::fs::read_to_string(&path).unwrap();
        let broken = text.replacen("\"time\":", "\"time\":1e9,\"ignored\":", 1);
        assert_ne!(text, broken);
        std::fs::write(&path, broken).unwrap();
        assert!(cache.lookup(&r.hash_hex).unwrap().is_none(), "corrupt entry is a miss");
        assert!(!path.exists(), "corrupt entry is deleted");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn mislabeled_entry_is_evicted() {
        let cache = ResultCache::new(tmp("mislabel"));
        let r = result(16, 3);
        let other = result(16, 4);
        // file r's payload under other's key
        std::fs::create_dir_all(cache.dir()).unwrap();
        let path = cache.dir().join(format!("{}.json", other.hash_hex));
        std::fs::write(&path, serde_json::to_string(&r).unwrap()).unwrap();
        assert!(cache.lookup(&other.hash_hex).unwrap().is_none());
        assert!(!path.exists());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn unparseable_entry_is_evicted() {
        let cache = ResultCache::new(tmp("garbage"));
        std::fs::create_dir_all(cache.dir()).unwrap();
        let path = cache.dir().join("deadbeefdeadbeef.json");
        std::fs::write(&path, "{nope").unwrap();
        assert!(cache.lookup("deadbeefdeadbeef").unwrap().is_none());
        assert!(!path.exists());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn store_is_atomic_no_tmp_left() {
        let cache = ResultCache::new(tmp("atomic"));
        let r = result(8, 5);
        cache.store(&r).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
