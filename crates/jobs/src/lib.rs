//! # jobs
//!
//! Simulation-as-a-service: a crash-safe, multi-tenant job server over the
//! deterministic PTPM simulation stack.
//!
//! A *job* is a fully reproducible simulation request — workload spec, plan,
//! steps, time-step, optional fault injection — described by [`spec::JobSpec`].
//! Jobs flow through a durable on-disk [`spool::Spool`] with a five-state
//! machine (`submitted → running → done | failed | poisoned`) whose every
//! transition is an atomic rename, so a `kill -9` at any instant leaves the
//! spool in a recoverable state: on the next [`spool::Spool::open`],
//! in-flight jobs are re-queued and resume from their newest usable
//! checkpoint ([`checkpoint::scan`]) bit-exactly. That claim is not prose:
//! every durable mutation goes through the [`fsx::SpoolFs`] seam, and the
//! crash-point fuzzer ([`crashpoint`]) replays a full job lifecycle killing
//! the filesystem after each mutation prefix, asserting recovery loses and
//! duplicates nothing.
//!
//! The scheduler ([`server::drain`]) applies admission control
//! ([`spec::admit`] — malformed or over-budget specs fail with typed
//! [`spec::AdmissionError`]s), orders work by priority class then submission
//! sequence, and runs up to `max_parallel` jobs concurrently on the
//! [`par`] pool. Per-job deadlines are *cooperative*: the runner checks the
//! simulated device clock between integration steps, checkpoints, and yields;
//! the server retries with the deterministic bounded backoff of
//! [`gpu_sim::fault::RetryPolicy`], so a deadline behaves as a simulated-time
//! slice and retry counts are identical across host thread counts.
//!
//! Because every run is bit-exact in `(spec, seed, plan, threads, tile)`
//! (DESIGN.md §8), completed results are content-addressed by the canonical
//! job hash ([`spec::JobSpec::canonical_hash`]) and stored in
//! [`cache::ResultCache`]: resubmitting an identical spec is a cache hit that
//! never recomputes. Every computed job also emits the PR 1 observability
//! artifacts (`trace.csv`, `bench.json`) into its spool work directory
//! ([`artifact`]).
//!
//! On top of the finite drain sits the supervised daemon
//! ([`daemon::run_daemon`]): a long-lived tick loop with preemptive
//! scheduling (an arriving `high` job preempts running `batch` jobs at
//! their next checkpoint boundary), wall-clock watchdogs for stuck
//! attempts, attempt-budget poisoning into `poisoned/`, PTPM-forecast load
//! shedding ([`server::ShedPolicy`]), an atomic `daemon.json` heartbeat,
//! and graceful SIGTERM drain.

#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod checkpoint;
pub mod crashpoint;
pub mod daemon;
pub mod error;
pub mod fsx;
pub mod runner;
pub mod server;
pub mod spec;
pub mod spool;
pub mod tuning;

/// Common imports.
pub mod prelude {
    pub use crate::cache::{JobResult, ResultCache};
    pub use crate::checkpoint::{scan, CheckpointScan};
    pub use crate::crashpoint::{fuzz, CrashpointReport};
    pub use crate::daemon::{run_daemon, DaemonConfig, DaemonExit, DaemonStatus, DaemonSummary};
    pub use crate::error::JobError;
    pub use crate::fsx::{real_fs, CrashFs, RealFs, SpoolFs};
    pub use crate::runner::{reference_set, run_job, RunOptions, RunStatus};
    pub use crate::server::{drain, DrainSummary, JobOutcome, JobReport, ServerConfig, ShedPolicy};
    pub use crate::spec::{admit, AdmissionError, AdmissionPolicy, JobSpec, Priority};
    pub use crate::spool::{JobRecord, JobState, Spool, SpoolRecovery};
    pub use crate::tuning::{
        db_key, device_spec_hash, expressible_grid, resolve_plan, PlanSource, Resolution, TuningDb,
        TuningEntry, AUTO_TILES, DB_VERSION, FORECAST_MARGIN,
    };
}

pub use prelude::*;
