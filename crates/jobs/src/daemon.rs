//! Supervised daemon mode: the long-lived lifetime of the job server.
//!
//! [`run_daemon`] turns the round engine from [`crate::server`] into a
//! service loop. Each *tick* it:
//!
//! 1. delivers any scripted arrivals due at this tick (tests and CI drive
//!    deterministic schedules this way; production intake is whatever
//!    `submit` drops into `submitted/` — the spool directory *is* the
//!    intake socket),
//! 2. runs one scheduling round — admission, PTPM load shedding, cache
//!    service, one concurrent wave, supervision (requeue / poison /
//!    preempt) — via [`crate::server`]'s round engine,
//! 3. writes an atomic heartbeat to `<spool>/daemon.json` with uptime
//!    ticks, per-priority queue depths, jobs in flight, and the cache hit
//!    rate, then
//! 4. checks the stop flag (the `serve` binary wires SIGTERM to it).
//!
//! Ticks are *simulated time* for scheduling purposes: a tick is one round,
//! not a wall-clock interval, so a scripted run is bit-reproducible. Wall
//! clocks appear in exactly two places, both supervision: the per-attempt
//! watchdog ([`crate::runner::RunOptions::watchdog_s`]) and the idle sleep
//! between empty polls.
//!
//! **Graceful drain:** when the stop flag rises, the daemon stops intake
//! and exits after the current round. A round ends only when its wave has
//! ended, and every way a wave job ends is durable — completed into
//! `done/`, checkpointed and requeued, poisoned, or still checkpointed at
//! its last boundary in `running/` for the next [`Spool::open`] to
//! requeue. Nothing is lost by exiting between rounds; queued work stays in
//! `submitted/` for the next start. That is the whole crash-consistency
//! contract: SIGTERM is just a crash the daemon saw coming.

use crate::error::JobError;
use crate::server::{drain_round, DrainSummary, RoundResult, ServerConfig};
use crate::spec::{JobSpec, Priority};
use crate::spool::{JobState, Spool, SpoolRecovery};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration for one daemon run.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Scheduler configuration for each round. The default enables
    /// supervision and batch preemption — that is what makes it a daemon.
    pub server: ServerConfig,
    /// Stop after this many ticks (None = run until the stop flag rises).
    pub max_ticks: Option<u64>,
    /// Exit once the spool is idle and every scripted arrival has been
    /// delivered (useful for finite CI runs; a production daemon keeps
    /// polling).
    pub exit_when_idle: bool,
    /// Wall-clock sleep between polls when a tick found nothing to do.
    pub idle_sleep_ms: u64,
    /// Deterministic arrival script: `(tick, spec)` pairs submitted when
    /// the daemon reaches that tick. Sorted internally; ties keep script
    /// order.
    pub arrivals: Vec<(u64, JobSpec)>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            server: ServerConfig { supervise: true, preempt_batch: true, ..Default::default() },
            max_ticks: None,
            exit_when_idle: false,
            idle_sleep_ms: 10,
            arrivals: Vec::new(),
        }
    }
}

/// The heartbeat the daemon writes atomically to `<spool>/daemon.json`
/// every tick. External monitors read this file; it is always a complete,
/// valid JSON document (written via the same `.tmp` + rename discipline as
/// every other spool file).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Ticks since this daemon started (uptime in scheduler time).
    pub uptime_ticks: u64,
    /// `high` jobs waiting in `submitted/`.
    pub queued_high: usize,
    /// `normal` jobs waiting in `submitted/`.
    pub queued_normal: usize,
    /// `batch` jobs waiting in `submitted/`.
    pub queued_batch: usize,
    /// Jobs currently claimed in `running/` (in flight).
    pub in_flight: usize,
    /// Jobs quarantined in `poisoned/`.
    pub poisoned: usize,
    /// Entries in the content-addressed result cache.
    pub cache_entries: usize,
    /// Fraction of completed jobs served from the cache this run
    /// (0.0 when nothing has completed yet).
    pub cache_hit_rate: f64,
}

/// Why [`run_daemon`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonExit {
    /// The stop flag rose (SIGTERM); the daemon drained gracefully.
    Stopped,
    /// `exit_when_idle` was set and the spool went idle with no scripted
    /// arrivals left.
    Idle,
    /// `max_ticks` was reached.
    TickLimit,
    /// A simulated crash hook fired mid-wave (tests only).
    Crashed,
}

/// Everything one daemon run did.
#[derive(Debug)]
pub struct DaemonSummary {
    /// The accumulated per-job reports and recovery stats, exactly as a
    /// finite drain would report them.
    pub summary: DrainSummary,
    /// Ticks the daemon ran.
    pub ticks: u64,
    /// Why it returned.
    pub exit: DaemonExit,
    /// The last heartbeat written.
    pub last_status: DaemonStatus,
}

impl DaemonSummary {
    /// True when no job ended in an untyped or diverged state (same
    /// contract as [`DrainSummary::ok`]).
    pub fn ok(&self) -> bool {
        self.summary.ok()
    }

    /// Report: a `daemon  :` line, then the standard drain report ending in
    /// `JOBS OK` / `JOBS DEGRADED` (CI greps that tail).
    pub fn render(&self) -> String {
        let mut out = format!(
            "daemon  : ticks={} exit={:?} preempted={} requeued={} poisoned={} shed={}\n",
            self.ticks,
            self.exit,
            self.summary.count("preempted"),
            self.summary.count("requeued"),
            self.summary.count("poisoned"),
            self.summary.count("shed"),
        );
        out.push_str(&self.summary.render());
        out
    }
}

fn queue_depth(spool: &Spool, priority: Priority) -> Result<usize, JobError> {
    Ok(spool.list(JobState::Submitted)?.iter().filter(|r| r.spec.priority == priority).count())
}

fn write_heartbeat(spool: &Spool, status: &DaemonStatus) -> Result<(), JobError> {
    let path = spool.status_path();
    let text = serde_json::to_string_pretty(status)
        .map_err(|e| JobError::Parse { path: path.display().to_string(), msg: e.to_string() })?;
    spool.fs().write_atomic(&path, &text).map_err(|e| JobError::io(path.display().to_string(), e))
}

fn heartbeat(
    spool: &Spool,
    summary: &DrainSummary,
    uptime_ticks: u64,
) -> Result<DaemonStatus, JobError> {
    let hits = summary.count("cache-hit");
    let completed = summary.completed();
    let status = DaemonStatus {
        uptime_ticks,
        queued_high: queue_depth(spool, Priority::High)?,
        queued_normal: queue_depth(spool, Priority::Normal)?,
        queued_batch: queue_depth(spool, Priority::Batch)?,
        in_flight: spool.count(JobState::Running),
        poisoned: spool.count(JobState::Poisoned),
        cache_entries: spool.cache().len(),
        cache_hit_rate: if completed == 0 { 0.0 } else { hits as f64 / completed as f64 },
    };
    write_heartbeat(spool, &status)?;
    Ok(status)
}

/// Runs the supervised daemon loop until the stop flag rises, the tick
/// limit is reached, or (with `exit_when_idle`) the spool drains.
///
/// The stop flag is the SIGTERM seam: the `serve` binary points a signal
/// handler at it; tests flip it from a thread. The daemon checks it between
/// rounds, so stopping never interrupts a wave — every in-flight job
/// finishes or reaches a durable checkpoint first.
pub fn run_daemon(
    spool: &Spool,
    recovery: SpoolRecovery,
    config: &DaemonConfig,
    stop: &AtomicBool,
) -> Result<DaemonSummary, JobError> {
    let cache = spool.cache();
    let mut summary = DrainSummary { reports: Vec::new(), recovery };
    let mut arrivals: Vec<(u64, JobSpec)> = config.arrivals.clone();
    arrivals.sort_by_key(|(tick, _)| *tick);
    let mut next_arrival = 0usize;
    let mut ticks: u64 = 0;
    // the status file exists from tick 0, before any round runs
    heartbeat(spool, &summary, 0)?;
    let mut last_status;
    let exit = loop {
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= ticks {
            spool.submit(&arrivals[next_arrival].1)?;
            next_arrival += 1;
        }
        let round = drain_round(spool, &cache, &config.server, &mut summary)?;
        ticks += 1;
        last_status = heartbeat(spool, &summary, ticks)?;
        if round == RoundResult::Crashed {
            break DaemonExit::Crashed;
        }
        if stop.load(Ordering::SeqCst) {
            break DaemonExit::Stopped;
        }
        if let Some(max) = config.max_ticks {
            if ticks >= max {
                break DaemonExit::TickLimit;
            }
        }
        if round == RoundResult::Idle {
            if config.exit_when_idle && next_arrival >= arrivals.len() {
                break DaemonExit::Idle;
            }
            std::thread::sleep(std::time::Duration::from_millis(config.idle_sleep_ms));
        }
    };
    Ok(DaemonSummary { summary, ticks, exit, last_status })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunOptions;
    use crate::server::JobOutcome;
    use plans::prelude::PlanKind;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicBool;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-daemon").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec(n: usize, seed: u64, priority: Priority) -> JobSpec {
        let mut s = JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, 4);
        s.checkpoint_every = 2;
        s.priority = priority;
        s
    }

    fn quick_daemon() -> DaemonConfig {
        let mut config =
            DaemonConfig { exit_when_idle: true, idle_sleep_ms: 1, ..Default::default() };
        config.server.artifacts = false;
        config
    }

    #[test]
    fn scripted_arrivals_drain_and_heartbeat_tracks_them() {
        let (spool, recovery) = Spool::open(tmp("script")).unwrap();
        let config = DaemonConfig {
            arrivals: vec![
                (0, spec(64, 1, Priority::Batch)),
                (0, spec(64, 2, Priority::Normal)),
                (2, spec(64, 1, Priority::Batch)), // repeat: cache hit
            ],
            ..quick_daemon()
        };
        let stop = AtomicBool::new(false);
        let daemon = run_daemon(&spool, recovery, &config, &stop).unwrap();
        assert!(daemon.ok(), "{}", daemon.render());
        assert_eq!(daemon.exit, DaemonExit::Idle);
        assert_eq!(daemon.summary.completed(), 3);
        assert_eq!(daemon.summary.count("cache-hit"), 1, "{}", daemon.render());
        assert_eq!(daemon.last_status.queued_batch, 0);
        assert_eq!(daemon.last_status.in_flight, 0);
        assert!(daemon.last_status.cache_hit_rate > 0.3);

        // the heartbeat on disk is the last status, atomically written
        let text = std::fs::read_to_string(spool.status_path()).unwrap();
        let on_disk: DaemonStatus = serde_json::from_str(&text).unwrap();
        assert_eq!(on_disk.uptime_ticks, daemon.last_status.uptime_ticks);
        assert_eq!(on_disk.cache_entries, 2);
        let rendered = daemon.render();
        assert!(rendered.ends_with("JOBS OK\n"), "{rendered}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn stop_flag_drains_gracefully_and_leaves_queue_durable() {
        let (spool, recovery) = Spool::open(tmp("sigterm")).unwrap();
        // stop is already raised: the daemon must still finish the current
        // round (one wave) and leave the rest in submitted/
        let config = DaemonConfig {
            arrivals: vec![
                (0, spec(64, 10, Priority::Normal)),
                (0, spec(64, 11, Priority::Normal)),
                (0, spec(64, 12, Priority::Normal)),
            ],
            ..quick_daemon()
        };
        let stop = AtomicBool::new(true);
        let daemon = run_daemon(&spool, recovery, &config, &stop).unwrap();
        assert_eq!(daemon.exit, DaemonExit::Stopped);
        assert!(daemon.ok(), "{}", daemon.render());
        assert_eq!(daemon.ticks, 1, "one round, then out");
        assert_eq!(spool.count(JobState::Running), 0, "nothing left in flight");
        let completed = daemon.summary.completed();
        assert_eq!(completed, 2, "one wave of max_parallel=2 finished");
        assert_eq!(spool.count(JobState::Submitted), 1, "the rest waits durably");

        // a later daemon picks the queue right back up
        let (spool, recovery) = Spool::open(spool.root()).unwrap();
        let stop = AtomicBool::new(false);
        let daemon =
            run_daemon(&spool, recovery, &DaemonConfig { ..quick_daemon() }, &stop).unwrap();
        assert!(daemon.ok());
        assert_eq!(spool.count(JobState::Done), 3);
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn arriving_high_preempts_running_batch_and_both_finish_bitexact() {
        let (spool, recovery) = Spool::open(tmp("preempt")).unwrap();
        let mut batch = spec(96, 20, Priority::Batch);
        batch.steps = 8;
        batch.checkpoint_every = 1;
        let reference = crate::runner::reference_set(&batch);
        spool.submit(&batch).unwrap();

        let mut config = quick_daemon();
        // slow the batch job down so the high job reliably arrives mid-run
        config.server.run = RunOptions { throttle_ms: 15, ..Default::default() };
        config.server.max_parallel = 1;
        let high = spec(64, 21, Priority::High);
        let stop = AtomicBool::new(false);
        let daemon = std::thread::scope(|scope| {
            let spool_for_submit = spool.clone();
            let high = high.clone();
            let submitter = scope.spawn(move || {
                // land in submitted/ while the batch wave is mid-flight
                std::thread::sleep(std::time::Duration::from_millis(40));
                spool_for_submit.submit(&high).unwrap();
            });
            let daemon = run_daemon(&spool, recovery, &config, &stop).unwrap();
            submitter.join().unwrap();
            daemon
        });
        assert!(daemon.ok(), "{}", daemon.render());
        assert_eq!(spool.count(JobState::Done), 2, "{}", daemon.render());
        let preempts =
            daemon.summary.reports.iter().filter(|r| r.outcome == JobOutcome::Preempted).count();
        assert!(preempts >= 1, "the batch job yielded at a boundary: {}", daemon.render());
        // the preempted batch job resumed and its physics is bit-exact
        let batch_reports: Vec<_> = daemon
            .summary
            .reports
            .iter()
            .filter(|r| r.hash_hex == batch.hash_hex() && r.outcome == JobOutcome::Computed)
            .collect();
        assert_eq!(batch_reports.len(), 1);
        assert!(batch_reports[0].resumed_from > 0, "resumed from the preemption checkpoint");
        assert_eq!(batch_reports[0].verified, Some(true), "bit-exact against uninterrupted run");
        let result = spool.cache().lookup(&batch.hash_hex()).unwrap().unwrap();
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        assert_eq!(result.final_snapshot.set.vel(), reference.vel());
        // preemption never charges an attempt
        let done = spool.list(JobState::Done).unwrap();
        let batch_record = done.iter().find(|r| r.hash_hex == batch.hash_hex()).unwrap();
        assert_eq!(batch_record.attempts, 1, "{batch_record:?}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn unrunnable_job_is_poisoned_while_daemon_stays_up() {
        let (spool, recovery) = Spool::open(tmp("poison")).unwrap();
        let mut doomed = spec(64, 30, Priority::Batch);
        doomed.fault_seed = Some(1);
        doomed.fault_prob = Some(0.2);
        doomed.fault_loss_prob = Some(1.0);
        let config = DaemonConfig {
            arrivals: vec![(0, doomed.clone()), (0, spec(64, 31, Priority::Normal))],
            ..quick_daemon()
        };
        let stop = AtomicBool::new(false);
        let daemon = run_daemon(&spool, recovery, &config, &stop).unwrap();
        assert!(daemon.ok(), "{}", daemon.render());
        assert_eq!(daemon.exit, DaemonExit::Idle, "poison quarantine cannot wedge the loop");
        assert_eq!(spool.count(JobState::Poisoned), 1);
        assert_eq!(spool.count(JobState::Done), 1);
        assert_eq!(daemon.last_status.poisoned, 1);
        let rendered = daemon.render();
        assert!(rendered.contains("poisoned=1"), "{rendered}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn tick_limit_bounds_the_run() {
        let (spool, recovery) = Spool::open(tmp("ticks")).unwrap();
        let config = DaemonConfig { max_ticks: Some(3), exit_when_idle: false, ..quick_daemon() };
        let stop = AtomicBool::new(false);
        let daemon = run_daemon(&spool, recovery, &config, &stop).unwrap();
        assert_eq!(daemon.exit, DaemonExit::TickLimit);
        assert_eq!(daemon.ticks, 3);
        assert_eq!(daemon.last_status.uptime_ticks, 3);
        std::fs::remove_dir_all(spool.root()).ok();
    }
}
