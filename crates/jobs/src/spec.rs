//! Job specifications, canonical content hashing, and admission control.
//!
//! A [`JobSpec`] pins down everything that determines a simulation result:
//! the workload (kind, N, seed), the execution plan, step count and
//! time-step. The determinism contract (DESIGN.md §8) guarantees the result
//! is *also* invariant in host thread count and tile size, so those fields
//! are recorded (and hashed, when pinned) purely as provenance — the
//! canonical hash over the result-determining fields is what makes completed
//! results content-addressable.
//!
//! Admission control ([`admit`]) rejects malformed and over-budget specs
//! with typed [`AdmissionError`]s before any compute is spent — the server
//! applies it at intake, and `submit` applies it client-side for an early
//! error.

use gpu_sim::prelude::FaultConfig;
use plans::prelude::{BackendKind, PlanKind};
use serde::{Deserialize, Serialize};
use workloads::spec::WorkloadSpec;

/// Scheduling priority class, highest first. Within a class, jobs run in
/// submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Latency-sensitive: always scheduled before the other classes.
    High,
    /// The default class.
    Normal,
    /// Bulk/background work: scheduled only after the other classes.
    Batch,
}

impl Priority {
    /// Stable identifier used in spool records and CLI flags.
    pub fn id(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Scheduling rank: lower runs first.
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Parses the [`Priority::id`] form.
    pub fn parse(s: &str) -> Option<Self> {
        Priority::all().into_iter().find(|p| p.id() == s)
    }

    /// All classes, highest first.
    pub fn all() -> [Priority; 3] {
        [Priority::High, Priority::Normal, Priority::Batch]
    }
}

/// A fully reproducible simulation job request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The initial condition (kind, N, seed).
    pub workload: WorkloadSpec,
    /// The execution plan to run on the simulated device.
    pub plan: PlanKind,
    /// Leapfrog steps to integrate.
    pub steps: usize,
    /// Time-step size.
    pub dt: f64,
    /// Checkpoint cadence in steps (also the resume granularity).
    pub checkpoint_every: usize,
    /// Scheduling class.
    pub priority: Priority,
    /// Cooperative deadline in *simulated device seconds per attempt*; when
    /// the attempt's simulated clock exceeds it between steps, the runner
    /// checkpoints and yields, and the server retries with bounded backoff —
    /// a deadline therefore acts as a deterministic time slice.
    pub deadline_s: Option<f64>,
    /// Requested host thread count (provenance; results are bit-exact across
    /// thread counts, so this is hashed but never changes the answer).
    pub threads: Option<usize>,
    /// Requested host tile size (provenance, as with `threads`).
    pub tile: Option<usize>,
    /// Seed for deterministic fault injection on this job's device.
    pub fault_seed: Option<u64>,
    /// Transient-fault probability used with `fault_seed` (default 0.05).
    pub fault_prob: Option<f64>,
    /// Per-operation device-loss probability (chaos testing: an
    /// unrecoverable device surfaces as a typed job failure, never as a
    /// server crash).
    pub fault_loss_prob: Option<f64>,
    /// Execution backend / precision tier (`None` = auto = sim). Hashed by
    /// its *resolved* kind: an f32-tier result can never be served for an
    /// f64-tier request, while `auto` and an explicit `sim` share one cache
    /// entry.
    pub backend: Option<BackendKind>,
    /// How the plan was chosen when the submitter used `--plan auto`
    /// (`"auto:db-hit"` / `"auto:forecast"` / `"auto:measured"`; `None` for
    /// an explicitly pinned plan). Pure provenance: resolution happens
    /// *before* hashing, so by the time a spec is hashed its plan and tile
    /// are concrete — an auto-resolved job and the identical pinned job
    /// share one cache entry, which is exactly the §13 invariant.
    pub plan_source: Option<String>,
    /// Morton shard count for out-of-core tree execution. Sharding is
    /// bit-exact at any count (DESIGN.md §14), so this is a scheduling
    /// knob, *not* hashed — a sharded and an unsharded submission of the
    /// same job share one cached result.
    #[serde(default)]
    pub shards: Option<usize>,
    /// Device-memory budget in bytes for out-of-core tree execution; the
    /// runner derives the shard count from it. Bit-exact like `shards`,
    /// therefore also excluded from the canonical hash.
    #[serde(default)]
    pub mem_budget_bytes: Option<usize>,
    /// Build the octree and interaction lists on the device (the PR-10 tree
    /// pipeline). The device tree is byte-identical to the host build and
    /// its forces bitwise-equal, so this too is excluded from the hash.
    #[serde(default)]
    pub device_tree: bool,
}

impl JobSpec {
    /// A spec with the default knobs: `dt = 1e-3`, checkpoint every 8
    /// steps, [`Priority::Normal`], no deadline, no fault injection.
    pub fn new(workload: WorkloadSpec, plan: PlanKind, steps: usize) -> Self {
        Self {
            workload,
            plan,
            steps,
            dt: 1e-3,
            checkpoint_every: 8,
            priority: Priority::Normal,
            deadline_s: None,
            threads: None,
            tile: None,
            fault_seed: None,
            fault_prob: None,
            fault_loss_prob: None,
            backend: None,
            plan_source: None,
            shards: None,
            mem_budget_bytes: None,
            device_tree: false,
        }
    }

    /// True when this job asked for out-of-core (Morton-sharded) tree
    /// execution — the case where admission budgets device *memory* instead
    /// of applying the flat N cap.
    pub fn is_sharded_tree(&self) -> bool {
        self.plan.uses_tree() && (self.shards.is_some() || self.mem_budget_bytes.is_some())
    }

    /// Admission-grade peak-device-bytes estimate for this job: the fixed
    /// per-body residency (float4 bodies + accelerations, plus the tree
    /// pipeline's key/index and f64 bit-pattern buffers when `device_tree`)
    /// plus one shard's packed interaction-list arena, sized from the same
    /// synthetic list fit as [`ptpm::jobcost`]'s time forecasts. Like those,
    /// this is the right order of magnitude, not a promise — the runner's
    /// `peak_device_bytes` is the measured truth.
    pub fn estimated_device_bytes(&self) -> u64 {
        let n = self.workload.n as u64;
        if !self.plan.uses_tree() {
            // PP plans: padded float4 bodies up, float4 accelerations down
            return 32 * n;
        }
        let walk = self.tile.unwrap_or(ptpm::jobcost::DEFAULT_WALK).max(1);
        let entries = ptpm::jobcost::proxy_entries(self.workload.n, walk) as u64;
        // packed float4 list entries + one target lane per walk body
        let streamed = 16 * entries + 4 * n;
        let fixed = if self.device_tree { 96 * n } else { 32 * n };
        let per_shard = match (self.mem_budget_bytes, self.shards) {
            // a budget caps the arena directly (never below the fixed set)
            (Some(b), _) => (fixed + streamed).min((b as u64).max(fixed)) - fixed,
            (None, Some(s)) => streamed.div_ceil(s.max(1) as u64),
            (None, None) => streamed,
        };
        fixed + per_shard
    }

    /// The resolved backend this job runs on (`None`/`auto` → sim).
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.unwrap_or_default().resolve()
    }

    /// FNV-1a content hash over exactly the result-determining fields:
    /// `(workload kind, n, seed, plan, steps, dt, threads, tile, backend)` —
    /// the `(spec, seed, plan, threads, tile)` key of the determinism
    /// contract plus the backend/precision tier, which changes delivered
    /// bits between tiers.
    ///
    /// Priority, deadline, fault injection, and `plan_source` are
    /// deliberately *excluded*: the first three change scheduling and
    /// simulated clocks but never the trajectory (fault recovery is
    /// bit-exact), and `plan_source` is pure provenance over an
    /// already-resolved plan — so two submissions differing only in those
    /// fields share one cached result.
    pub fn canonical_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix_bytes = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix_bytes(self.workload.kind.id().as_bytes());
        mix_bytes(&(self.workload.n as u64).to_le_bytes());
        mix_bytes(&self.workload.seed.to_le_bytes());
        mix_bytes(self.plan.id().as_bytes());
        mix_bytes(&(self.steps as u64).to_le_bytes());
        mix_bytes(&self.dt.to_bits().to_le_bytes());
        mix_bytes(&(self.threads.unwrap_or(0) as u64).to_le_bytes());
        mix_bytes(&(self.tile.unwrap_or(0) as u64).to_le_bytes());
        mix_bytes(self.backend_kind().id().as_bytes());
        hash
    }

    /// The canonical hash as 16 lowercase hex digits — the job's cache key
    /// and work-directory name.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.canonical_hash())
    }

    /// PTPM-forecast simulated seconds for the whole job (`steps` force
    /// evaluations plus priming) on the reference device — the number
    /// admission-time load shedding budgets against. Deterministic for a
    /// fixed spec.
    pub fn forecast_seconds(&self) -> f64 {
        ptpm::jobcost::forecast_job_seconds_with(
            self.plan.id(),
            self.workload.n,
            self.steps,
            self.tile,
            self.device_tree,
        )
    }

    /// The fault plan seed and configuration this spec asks for, if any.
    /// Built field-by-field (not via the asserting constructors) so a
    /// malformed probability reaches [`admit`]'s validation as a typed
    /// rejection instead of a panic.
    pub fn fault_config(&self) -> Option<(u64, FaultConfig)> {
        let seed = self.fault_seed?;
        let p = self.fault_prob.unwrap_or(0.05);
        let mut cfg = FaultConfig {
            launch_fail_prob: p,
            launch_corrupt_prob: p,
            transfer_error_prob: p,
            transfer_timeout_prob: p,
            ..FaultConfig::default()
        };
        if let Some(loss) = self.fault_loss_prob {
            cfg.device_loss_prob = loss;
        }
        Some((seed, cfg))
    }

    /// Human-readable one-liner for logs. The backend is mentioned only
    /// when explicitly pinned off the default.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} plan={} steps={} prio={}",
            self.workload.label(),
            self.plan.id(),
            self.steps,
            self.priority.id()
        );
        if let Some(backend) = self.backend {
            label.push_str(&format!(" backend={}", backend.id()));
        }
        label
    }
}

/// Resource budgets a job must fit inside to be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Largest admissible body count. **Not applied** to sharded tree jobs
    /// ([`JobSpec::is_sharded_tree`]): those stream their interaction lists
    /// through bounded arenas, so the binding resource is device memory
    /// (`max_mem_bytes`), not N.
    pub max_n: usize,
    /// Largest admissible step count.
    pub max_steps: usize,
    /// Cap on `n² × (steps + 1)` — the pairwise-interaction budget of the
    /// whole job (the `+ 1` charges the priming force evaluation).
    pub max_interactions: u64,
    /// Cap on [`JobSpec::estimated_device_bytes`] for sharded tree jobs —
    /// the memory-budget rule that replaces the flat N cap for them.
    /// Defaults to the reference device's 1 GiB of global memory.
    #[serde(default = "default_max_mem_bytes")]
    pub max_mem_bytes: u64,
}

fn default_max_mem_bytes() -> u64 {
    1 << 30
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            max_n: 65_536,
            max_steps: 100_000,
            max_interactions: u64::MAX,
            max_mem_bytes: default_max_mem_bytes(),
        }
    }
}

/// Why a spec was refused at admission. [`AdmissionError::id`] is the
/// machine-readable form recorded in the spool.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// `n == 0`: nothing to simulate.
    ZeroBodies,
    /// `n` exceeds the policy's cap.
    TooManyBodies {
        /// Requested body count.
        n: usize,
        /// The policy cap it exceeded.
        max: usize,
    },
    /// `steps == 0`: nothing to do (a zero-step job would cache vacuously).
    ZeroSteps,
    /// `steps` exceeds the policy's cap.
    TooManySteps {
        /// Requested step count.
        steps: usize,
        /// The policy cap it exceeded.
        max: usize,
    },
    /// Total interaction budget `n² × (steps + 1)` exceeds the policy cap.
    OverBudget {
        /// The job's interaction count.
        interactions: u64,
        /// The policy cap it exceeded.
        max: u64,
    },
    /// `dt` is NaN, infinite, or not strictly positive.
    BadDt(f64),
    /// Deadline is NaN, infinite, or not strictly positive.
    BadDeadline(f64),
    /// `checkpoint_every == 0` would divide by zero at the cadence check.
    ZeroCheckpointEvery,
    /// A pinned thread count of zero is meaningless.
    ZeroThreads,
    /// A pinned tile size of zero is meaningless.
    ZeroTile,
    /// A shard count of zero is meaningless.
    ZeroShards,
    /// A memory budget of zero bytes admits nothing.
    ZeroMemBudget,
    /// Sharding requested for a plan without a tree to shard.
    ShardsRequireTreePlan(&'static str),
    /// A sharded tree job's estimated peak device bytes exceed the policy's
    /// memory budget (the rule that replaces the flat N cap for them).
    OverMemoryBudget {
        /// The job's estimated peak device bytes.
        bytes: u64,
        /// The policy cap it exceeded.
        max: u64,
    },
    /// The fault configuration is invalid (probability outside `[0, 1]` or
    /// a non-finite penalty).
    BadFaultConfig(String),
    /// Fault injection requested on a backend without a simulated device.
    FaultsUnsupportedBackend(&'static str),
    /// A simulated-clock deadline requested on a backend without a
    /// simulated clock.
    DeadlineUnsupportedBackend(&'static str),
}

impl AdmissionError {
    /// Stable machine-readable identifier (recorded in failed job records).
    pub fn id(&self) -> &'static str {
        match self {
            AdmissionError::ZeroBodies => "zero-bodies",
            AdmissionError::TooManyBodies { .. } => "too-many-bodies",
            AdmissionError::ZeroSteps => "zero-steps",
            AdmissionError::TooManySteps { .. } => "too-many-steps",
            AdmissionError::OverBudget { .. } => "over-budget",
            AdmissionError::BadDt(_) => "bad-dt",
            AdmissionError::BadDeadline(_) => "bad-deadline",
            AdmissionError::ZeroCheckpointEvery => "zero-checkpoint-every",
            AdmissionError::ZeroThreads => "zero-threads",
            AdmissionError::ZeroTile => "zero-tile",
            AdmissionError::ZeroShards => "zero-shards",
            AdmissionError::ZeroMemBudget => "zero-mem-budget",
            AdmissionError::ShardsRequireTreePlan(_) => "shards-require-tree-plan",
            AdmissionError::OverMemoryBudget { .. } => "over-memory-budget",
            AdmissionError::BadFaultConfig(_) => "bad-fault-config",
            AdmissionError::FaultsUnsupportedBackend(_) => "faults-unsupported-backend",
            AdmissionError::DeadlineUnsupportedBackend(_) => "deadline-unsupported-backend",
        }
    }
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.id())?;
        match self {
            AdmissionError::ZeroBodies => write!(f, "workload has zero bodies"),
            AdmissionError::TooManyBodies { n, max } => {
                write!(f, "n={n} exceeds the admission cap of {max}")
            }
            AdmissionError::ZeroSteps => write!(f, "job has zero integration steps"),
            AdmissionError::TooManySteps { steps, max } => {
                write!(f, "steps={steps} exceeds the admission cap of {max}")
            }
            AdmissionError::OverBudget { interactions, max } => {
                write!(f, "interaction budget {interactions} exceeds the cap of {max}")
            }
            AdmissionError::BadDt(dt) => write!(f, "dt={dt} is not a positive finite number"),
            AdmissionError::BadDeadline(d) => {
                write!(f, "deadline_s={d} is not a positive finite number")
            }
            AdmissionError::ZeroCheckpointEvery => write!(f, "checkpoint_every must be >= 1"),
            AdmissionError::ZeroThreads => write!(f, "a pinned thread count must be >= 1"),
            AdmissionError::ZeroTile => write!(f, "a pinned tile size must be >= 1"),
            AdmissionError::ZeroShards => write!(f, "a pinned shard count must be >= 1"),
            AdmissionError::ZeroMemBudget => write!(f, "a memory budget must be >= 1 byte"),
            AdmissionError::ShardsRequireTreePlan(p) => {
                write!(f, "plan '{p}' has no tree to shard or build on the device")
            }
            AdmissionError::OverMemoryBudget { bytes, max } => {
                write!(f, "estimated peak device bytes {bytes} exceed the memory budget of {max}")
            }
            AdmissionError::BadFaultConfig(msg) => write!(f, "fault config invalid: {msg}"),
            AdmissionError::FaultsUnsupportedBackend(b) => {
                write!(f, "backend '{b}' has no simulated device to inject faults into")
            }
            AdmissionError::DeadlineUnsupportedBackend(b) => {
                write!(f, "backend '{b}' has no simulated clock for deadline_s to slice")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Validates `spec` against `policy`; `Err` is the first violated rule.
pub fn admit(spec: &JobSpec, policy: &AdmissionPolicy) -> Result<(), AdmissionError> {
    if spec.workload.n == 0 {
        return Err(AdmissionError::ZeroBodies);
    }
    if spec.shards == Some(0) {
        return Err(AdmissionError::ZeroShards);
    }
    if spec.mem_budget_bytes == Some(0) {
        return Err(AdmissionError::ZeroMemBudget);
    }
    if (spec.shards.is_some() || spec.mem_budget_bytes.is_some() || spec.device_tree)
        && !spec.plan.uses_tree()
    {
        return Err(AdmissionError::ShardsRequireTreePlan(spec.plan.id()));
    }
    if spec.is_sharded_tree() {
        // out-of-core tree jobs stream bounded arenas: the flat N cap is
        // replaced by the device-memory budget
        let bytes = spec.estimated_device_bytes();
        if bytes > policy.max_mem_bytes {
            return Err(AdmissionError::OverMemoryBudget { bytes, max: policy.max_mem_bytes });
        }
    } else if spec.workload.n > policy.max_n {
        return Err(AdmissionError::TooManyBodies { n: spec.workload.n, max: policy.max_n });
    }
    if spec.steps == 0 {
        return Err(AdmissionError::ZeroSteps);
    }
    if spec.steps > policy.max_steps {
        return Err(AdmissionError::TooManySteps { steps: spec.steps, max: policy.max_steps });
    }
    let interactions = (spec.workload.n as u64)
        .saturating_mul(spec.workload.n as u64)
        .saturating_mul(spec.steps as u64 + 1);
    if interactions > policy.max_interactions {
        return Err(AdmissionError::OverBudget { interactions, max: policy.max_interactions });
    }
    if !spec.dt.is_finite() || spec.dt <= 0.0 {
        return Err(AdmissionError::BadDt(spec.dt));
    }
    if let Some(d) = spec.deadline_s {
        if !d.is_finite() || d <= 0.0 {
            return Err(AdmissionError::BadDeadline(d));
        }
    }
    if spec.checkpoint_every == 0 {
        return Err(AdmissionError::ZeroCheckpointEvery);
    }
    if spec.threads == Some(0) {
        return Err(AdmissionError::ZeroThreads);
    }
    if spec.tile == Some(0) {
        return Err(AdmissionError::ZeroTile);
    }
    if let Some((_, cfg)) = spec.fault_config() {
        cfg.validate().map_err(AdmissionError::BadFaultConfig)?;
    }
    let backend = spec.backend_kind();
    if backend != BackendKind::Sim {
        if spec.fault_seed.is_some() {
            return Err(AdmissionError::FaultsUnsupportedBackend(backend.id()));
        }
        if spec.deadline_s.is_some() {
            return Err(AdmissionError::DeadlineUnsupportedBackend(backend.id()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::new(WorkloadSpec::plummer(128, 1), PlanKind::JwParallel, 10)
    }

    #[test]
    fn default_spec_admits() {
        admit(&spec(), &AdmissionPolicy::default()).unwrap();
    }

    #[test]
    fn hash_is_stable_and_sensitive_to_result_fields() {
        let base = spec();
        assert_eq!(base.canonical_hash(), spec().canonical_hash());
        assert_eq!(base.hash_hex().len(), 16);
        for mutated in [
            JobSpec { workload: WorkloadSpec::plummer(129, 1), ..base.clone() },
            JobSpec { workload: WorkloadSpec::plummer(128, 2), ..base.clone() },
            JobSpec { plan: PlanKind::IParallel, ..base.clone() },
            JobSpec { steps: 11, ..base.clone() },
            JobSpec { dt: 2e-3, ..base.clone() },
            JobSpec { threads: Some(4), ..base.clone() },
            JobSpec { tile: Some(8), ..base.clone() },
            JobSpec { backend: Some(BackendKind::Host), ..base.clone() },
            JobSpec { backend: Some(BackendKind::F32), ..base.clone() },
        ] {
            assert_ne!(base.canonical_hash(), mutated.canonical_hash(), "{mutated:?}");
        }
    }

    #[test]
    fn hash_distinguishes_precision_tiers_but_not_auto_from_sim() {
        let base = spec();
        // auto, an explicit auto, and an explicit sim all share one entry…
        for same in [
            JobSpec { backend: Some(BackendKind::Auto), ..base.clone() },
            JobSpec { backend: Some(BackendKind::Sim), ..base.clone() },
        ] {
            assert_eq!(base.canonical_hash(), same.canonical_hash());
        }
        // …while the three substrates are pairwise distinct: an f32-tier
        // result can never be served for an f64-tier request
        let host = JobSpec { backend: Some(BackendKind::Host), ..base.clone() };
        let f32b = JobSpec { backend: Some(BackendKind::F32), ..base.clone() };
        assert_ne!(host.canonical_hash(), f32b.canonical_hash());
        assert_ne!(host.canonical_hash(), base.canonical_hash());
        assert_ne!(f32b.canonical_hash(), base.canonical_hash());
    }

    #[test]
    fn hash_ignores_scheduling_only_fields() {
        let base = spec();
        for same in [
            JobSpec { priority: Priority::High, ..base.clone() },
            JobSpec { deadline_s: Some(1.0), ..base.clone() },
            JobSpec { fault_seed: Some(7), ..base.clone() },
            JobSpec { checkpoint_every: 3, ..base.clone() },
            JobSpec { plan_source: Some("auto:db-hit".into()), ..base.clone() },
            // out-of-core execution is bit-exact, so these share the
            // unsharded job's cache entry
            JobSpec { shards: Some(4), ..base.clone() },
            JobSpec { mem_budget_bytes: Some(1 << 24), ..base.clone() },
            JobSpec { device_tree: true, ..base.clone() },
        ] {
            assert_eq!(base.canonical_hash(), same.canonical_hash());
        }
    }

    #[test]
    fn admission_rejects_each_malformation_with_its_id() {
        let policy = AdmissionPolicy {
            max_n: 1024,
            max_steps: 100,
            max_interactions: 1 << 20,
            ..AdmissionPolicy::default()
        };
        let cases: Vec<(JobSpec, &str)> = vec![
            (
                JobSpec {
                    workload: WorkloadSpec::plummer(0, 1),
                    ..JobSpec::new(WorkloadSpec::plummer(0, 1), PlanKind::JwParallel, 5)
                },
                "zero-bodies",
            ),
            (
                JobSpec::new(WorkloadSpec::plummer(2048, 1), PlanKind::JwParallel, 5),
                "too-many-bodies",
            ),
            (JobSpec { steps: 0, ..spec() }, "zero-steps"),
            (JobSpec { steps: 101, ..spec() }, "too-many-steps"),
            (
                JobSpec::new(WorkloadSpec::plummer(1024, 1), PlanKind::JwParallel, 100),
                "over-budget",
            ),
            (JobSpec { dt: 0.0, ..spec() }, "bad-dt"),
            (JobSpec { dt: f64::NAN, ..spec() }, "bad-dt"),
            (JobSpec { deadline_s: Some(-1.0), ..spec() }, "bad-deadline"),
            (JobSpec { checkpoint_every: 0, ..spec() }, "zero-checkpoint-every"),
            (JobSpec { threads: Some(0), ..spec() }, "zero-threads"),
            (JobSpec { tile: Some(0), ..spec() }, "zero-tile"),
            (JobSpec { fault_seed: Some(1), fault_prob: Some(1.5), ..spec() }, "bad-fault-config"),
            (
                JobSpec { backend: Some(BackendKind::Host), fault_seed: Some(1), ..spec() },
                "faults-unsupported-backend",
            ),
            (
                JobSpec { backend: Some(BackendKind::F32), deadline_s: Some(1.0), ..spec() },
                "deadline-unsupported-backend",
            ),
        ];
        for (bad, id) in cases {
            let err = admit(&bad, &policy).unwrap_err();
            assert_eq!(err.id(), id, "{bad:?} -> {err}");
            assert!(err.to_string().contains(id), "{err}");
        }
    }

    #[test]
    fn sharded_tree_jobs_swap_the_n_cap_for_a_memory_budget() {
        let policy = AdmissionPolicy { max_n: 1024, ..AdmissionPolicy::default() };
        // over the N cap, unsharded: rejected on N
        let big = JobSpec::new(WorkloadSpec::plummer(1_000_000, 1), PlanKind::WParallel, 2);
        assert_eq!(admit(&big, &policy).unwrap_err().id(), "too-many-bodies");
        // the same N with a shard count: admitted under the memory budget
        let sharded = JobSpec { shards: Some(64), ..big.clone() };
        assert!(sharded.is_sharded_tree());
        admit(&sharded, &policy).unwrap();
        // and with an explicit budget: also admitted
        let budgeted = JobSpec { mem_budget_bytes: Some(256 << 20), ..big.clone() };
        admit(&budgeted, &policy).unwrap();
        // but a starvation-level policy budget still rejects
        let tight = AdmissionPolicy { max_mem_bytes: 1 << 20, ..policy };
        let err = admit(&sharded, &tight).unwrap_err();
        assert_eq!(err.id(), "over-memory-budget");
        assert!(err.to_string().contains("memory budget"), "{err}");
    }

    #[test]
    fn out_of_core_malformations_get_typed_rejections() {
        let policy = AdmissionPolicy::default();
        let cases: Vec<(JobSpec, &str)> = vec![
            (JobSpec { shards: Some(0), ..spec() }, "zero-shards"),
            (JobSpec { mem_budget_bytes: Some(0), ..spec() }, "zero-mem-budget"),
            (
                JobSpec { shards: Some(2), plan: PlanKind::IParallel, ..spec() },
                "shards-require-tree-plan",
            ),
            (
                JobSpec { device_tree: true, plan: PlanKind::JParallel, ..spec() },
                "shards-require-tree-plan",
            ),
        ];
        for (bad, id) in cases {
            let err = admit(&bad, &policy).unwrap_err();
            assert_eq!(err.id(), id, "{bad:?} -> {err}");
        }
    }

    #[test]
    fn estimated_bytes_shrink_with_shards_and_respect_budgets() {
        let big = JobSpec::new(WorkloadSpec::plummer(1_000_000, 1), PlanKind::WParallel, 2);
        let unsharded = big.estimated_device_bytes();
        let sharded = JobSpec { shards: Some(64), ..big.clone() }.estimated_device_bytes();
        assert!(sharded < unsharded, "{sharded} !< {unsharded}");
        let budget = 200u64 << 20;
        let budgeted = JobSpec { mem_budget_bytes: Some(budget as usize), ..big.clone() }
            .estimated_device_bytes();
        assert!(budgeted <= budget, "{budgeted} > {budget}");
        // device-tree jobs carry the pipeline's extra fixed buffers
        let dt =
            JobSpec { device_tree: true, shards: Some(64), ..big.clone() }.estimated_device_bytes();
        assert!(dt > sharded);
    }

    #[test]
    fn device_tree_forecast_differs_from_host_tree_forecast() {
        let host = JobSpec::new(WorkloadSpec::plummer(65_536, 1), PlanKind::WParallel, 4);
        let dev = JobSpec { device_tree: true, ..host.clone() };
        let a = host.forecast_seconds();
        let b = dev.forecast_seconds();
        assert!(a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0);
        assert_ne!(a, b, "the pipeline phases must be priced differently");
    }

    #[test]
    fn legacy_json_without_out_of_core_fields_still_parses() {
        // specs spooled before PR 10 must keep loading with the defaults
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let legacy = json
            .replace("\"shards\":null,", "")
            .replace("\"mem_budget_bytes\":null,", "")
            .replace("\"device_tree\":false,", "")
            .replace(",\"shards\":null", "")
            .replace(",\"mem_budget_bytes\":null", "")
            .replace(",\"device_tree\":false", "");
        assert!(!legacy.contains("shards"), "{legacy}");
        assert!(!legacy.contains("device_tree"), "{legacy}");
        let back: JobSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.shards, None);
        assert!(!back.device_tree);
    }

    #[test]
    fn priority_parse_roundtrips_and_orders() {
        for p in Priority::all() {
            assert_eq!(Priority::parse(p.id()), Some(p));
        }
        assert_eq!(Priority::parse("nope"), None);
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Batch.rank());
    }

    #[test]
    fn fault_config_built_from_spec() {
        let mut s = spec();
        assert!(s.fault_config().is_none());
        s.fault_seed = Some(9);
        s.fault_prob = Some(0.2);
        s.fault_loss_prob = Some(0.5);
        let (seed, cfg) = s.fault_config().unwrap();
        assert_eq!(seed, 9);
        assert_eq!(cfg.launch_fail_prob, 0.2);
        assert_eq!(cfg.device_loss_prob, 0.5);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let mut s = spec();
        s.deadline_s = Some(0.25);
        s.fault_seed = Some(3);
        s.backend = Some(BackendKind::Host);
        let json = serde_json::to_string(&s).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert!(s.label().contains("backend=host"), "{}", s.label());
    }

    #[test]
    fn legacy_json_without_backend_field_still_parses() {
        // specs spooled before the backend field existed must keep loading
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"backend\""));
        let legacy = json.replace("\"backend\":null,", "").replace(",\"backend\":null", "");
        assert!(!legacy.contains("\"backend\""), "{legacy}");
        let back: JobSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.backend_kind(), BackendKind::Sim);
    }

    #[test]
    fn legacy_json_without_plan_source_field_still_parses() {
        // specs spooled before `--plan auto` existed must keep loading
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"plan_source\""));
        let legacy = json.replace("\"plan_source\":null,", "").replace(",\"plan_source\":null", "");
        assert!(!legacy.contains("\"plan_source\""), "{legacy}");
        let back: JobSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.plan_source, None);
    }
}
