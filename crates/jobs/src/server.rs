//! The multi-tenant scheduler: admission, waves, retries, cache, survival.
//!
//! [`drain`] empties a spool deterministically. Each round it lists
//! `submitted/` (already ordered by priority class then submission
//! sequence), applies admission control and PTPM load shedding, serves
//! cache hits, and runs the next *wave* — up to `max_parallel` jobs with
//! pairwise-distinct canonical hashes — concurrently on the [`par`] pool. A
//! duplicate hash inside a wave is deferred one round so it becomes a cache
//! hit instead of a redundant computation.
//!
//! Retry lives here, not in the runner: a deadline yield that made progress
//! is retried up to [`gpu_sim::fault::RetryPolicy::max_attempts`] with
//! deterministic exponential backoff (charged as a bounded wall-clock
//! sleep). A permanent device fault panics inside the recovery layer by
//! design; the wave worker catches the unwind at the job boundary and
//! records a typed `unrecoverable` failure — one tenant's chaos never takes
//! the server down.
//!
//! The same round engine serves two lifetimes:
//!
//! * **finite drain** (`supervise = false`, the default): failures are
//!   terminal; the call returns when the spool is empty — PR 6 semantics.
//! * **supervised** (`supervise = true`, what the daemon runs): failed
//!   attempts are *requeued* with their durably-charged attempt count until
//!   [`ServerConfig::max_job_attempts`] is exhausted, then quarantined into
//!   `poisoned/` with a typed reason. With `preempt_batch = true`, a `high`
//!   job arriving while a wave of `batch` jobs runs preempts them at their
//!   next checkpoint boundary (progress stays durable; the requeued jobs
//!   resume bit-exactly and the preemption does not charge an attempt).
//!
//! PTPM load shedding ([`ShedPolicy`]): admission consults
//! [`crate::spec::JobSpec::forecast_seconds`] — the paper's analytic model
//! composed over the whole job — and sheds `batch` jobs with a typed
//! `overloaded` rejection once the forecast debt of everything queued and
//! running exceeds the budget. `high` and `normal` always admit:
//! backpressure lands on the traffic that asked for it.
//!
//! All spool transitions happen on the scheduler thread in wave order, so
//! the spool's on-disk history is identical for every host thread count.

use crate::artifact::write_artifacts;
use crate::cache::{JobResult, ResultCache};
use crate::error::JobError;
use crate::runner::{reference_set, run_job, RunOptions, RunStatus};
use crate::spec::{admit, AdmissionPolicy, Priority};
use crate::spool::{JobRecord, JobState, Spool, SpoolRecovery};
use gpu_sim::fault::RetryPolicy;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// PTPM-guarded load shedding: the queue-debt budget admission enforces.
#[derive(Debug, Clone)]
pub struct ShedPolicy {
    /// Maximum PTPM-forecast simulated seconds of queued-plus-running work.
    /// A `batch` job whose admission would push the debt past this budget
    /// is shed with a typed `overloaded` rejection; `high` and `normal`
    /// jobs always admit.
    pub budget_s: f64,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Jobs run concurrently per wave (admission-controlled parallelism).
    pub max_parallel: usize,
    /// Budgets specs must fit inside.
    pub admission: AdmissionPolicy,
    /// Retry budget and backoff for deadline yields.
    pub retry: RetryPolicy,
    /// Re-run resumed jobs' references and require bit-exactness before
    /// caching (the crash-recovery gate; costs one uninterrupted re-run).
    pub verify_resumed: bool,
    /// Runner hooks (CI throttle, simulated crash, watchdog budget).
    pub run: RunOptions,
    /// Emit `bench.json` / `trace.csv` for every computed job.
    pub artifacts: bool,
    /// PTPM load shedding; `None` disables it.
    pub shed: Option<ShedPolicy>,
    /// Cross-restart attempt budget per job: a job that has durably charged
    /// this many claims (crash loops) — or, under supervision, whose
    /// attempt fails with this many charged — is quarantined into
    /// `poisoned/` instead of retried forever.
    pub max_job_attempts: u32,
    /// Daemon semantics: requeue failed attempts until the budget above
    /// poisons them, instead of failing terminally on first error.
    pub supervise: bool,
    /// Let an arriving `high` job preempt running `batch` jobs at their
    /// next checkpoint boundary.
    pub preempt_batch: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_parallel: 2,
            admission: AdmissionPolicy::default(),
            retry: RetryPolicy::default(),
            verify_resumed: true,
            run: RunOptions::default(),
            artifacts: true,
            shed: None,
            max_job_attempts: 3,
            supervise: false,
            preempt_batch: false,
        }
    }
}

/// How one drained job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Ran to completion and was stored in the cache.
    Computed,
    /// Served from the content-addressed cache without recomputing.
    CacheHit,
    /// Terminal failure, recorded in `failed/` with the error string.
    Failed(String),
    /// Refused at admission, recorded in `failed/`.
    Rejected(String),
    /// Shed by PTPM load shedding, recorded in `failed/` with the typed
    /// `overloaded` error.
    Shed(String),
    /// Quarantined into `poisoned/`: the job exhausted its cross-restart
    /// attempt budget.
    Poisoned(String),
    /// Supervised failure sent back to `submitted/` for another attempt.
    Requeued(String),
    /// Preempted at a checkpoint boundary by an arriving `high` job and
    /// requeued with progress intact (does not charge an attempt).
    Preempted,
    /// The simulated-crash hook fired; the record stays in `running/` for
    /// the next [`Spool::open`] to requeue.
    Crashed,
}

impl JobOutcome {
    /// Stable identifier for report lines.
    pub fn id(&self) -> &'static str {
        match self {
            JobOutcome::Computed => "computed",
            JobOutcome::CacheHit => "cache-hit",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::Rejected(_) => "rejected",
            JobOutcome::Shed(_) => "shed",
            JobOutcome::Poisoned(_) => "poisoned",
            JobOutcome::Requeued(_) => "requeued",
            JobOutcome::Preempted => "preempted",
            JobOutcome::Crashed => "crashed",
        }
    }
}

/// One job's drain report.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's spool identity.
    pub id: String,
    /// Canonical hash.
    pub hash_hex: String,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Deadline retries consumed in this drain.
    pub retries: u32,
    /// Step the final attempt resumed from (0 = from scratch).
    pub resumed_from: usize,
    /// Bit-exactness verdict for resumed jobs (None = not applicable).
    pub verified: Option<bool>,
}

/// Everything one [`drain`] did, in completion order.
#[derive(Debug)]
pub struct DrainSummary {
    /// Per-job reports in the order jobs were finalized.
    pub reports: Vec<JobReport>,
    /// What opening the spool had to repair.
    pub recovery: SpoolRecovery,
}

impl DrainSummary {
    pub(crate) fn count(&self, id: &str) -> usize {
        self.reports.iter().filter(|r| r.outcome.id() == id).count()
    }

    /// Jobs that ended in `done/` (computed or cache hit).
    pub fn completed(&self) -> usize {
        self.count("computed") + self.count("cache-hit")
    }

    /// Jobs that resumed from a checkpoint.
    pub fn resumed_jobs(&self) -> usize {
        self.reports.iter().filter(|r| r.resumed_from > 0).count()
    }

    /// Resumed jobs that verified bit-exact against their reference.
    pub fn verified_bitexact(&self) -> usize {
        self.reports.iter().filter(|r| r.verified == Some(true)).count()
    }

    /// True when nothing failed for an unexpected reason: every job either
    /// completed, was rejected/shed/poisoned with a *typed* error, was
    /// requeued or preempted under supervision, or crashed on purpose — and
    /// no resumed job failed verification.
    pub fn ok(&self) -> bool {
        self.reports.iter().all(|r| r.verified != Some(false))
    }

    /// Human- and grep-friendly report (the `serve` binary prints this;
    /// the CI smoke greps its `JOBS OK` tail).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&format!("{} : {}", r.id, r.outcome.id()));
            if r.retries > 0 {
                out.push_str(&format!(" retries={}", r.retries));
            }
            if r.resumed_from > 0 {
                out.push_str(&format!(" resumed-from={}", r.resumed_from));
            }
            if let Some(v) = r.verified {
                out.push_str(if v { " bit-exact" } else { " DIVERGED" });
            }
            match &r.outcome {
                JobOutcome::Failed(msg)
                | JobOutcome::Rejected(msg)
                | JobOutcome::Shed(msg)
                | JobOutcome::Poisoned(msg)
                | JobOutcome::Requeued(msg) => {
                    out.push_str(&format!(" ({msg})"));
                }
                _ => {}
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "jobs    : completed={} computed={} cache-hits={} failed={} rejected={} crashed={} \
             shed={} poisoned={} preempted={} requeued={}\n",
            self.completed(),
            self.count("computed"),
            self.count("cache-hit"),
            self.count("failed"),
            self.count("rejected"),
            self.count("crashed"),
            self.count("shed"),
            self.count("poisoned"),
            self.count("preempted"),
            self.count("requeued"),
        ));
        out.push_str(&format!(
            "recovery: requeued={} tmp-cleaned={} duplicates-dropped={} resumed-jobs={} \
             verified-bitexact={}\n",
            self.recovery.requeued,
            self.recovery.tmp_cleaned,
            self.recovery.duplicates_dropped,
            self.resumed_jobs(),
            self.verified_bitexact(),
        ));
        out.push_str(if self.ok() { "JOBS OK\n" } else { "JOBS DEGRADED\n" });
        out
    }
}

/// How one wave worker's job ended.
enum WaveOutcome {
    Done(Box<JobResult>),
    Preempted,
    Crashed,
    Failed(JobError),
}

/// What a wave worker hands back to the scheduler thread.
struct WaveResult {
    record: JobRecord,
    outcome: WaveOutcome,
    retries: u32,
    verified: Option<bool>,
}

/// Runs one job to completion, retrying deadline yields per `config.retry`.
/// Never panics: unwinds from the recovery layer become typed errors.
fn run_with_retry(
    spool: &Spool,
    record: &JobRecord,
    config: &ServerConfig,
    opts: &RunOptions,
) -> WaveResult {
    let dir = spool.job_dir(&record.hash_hex);
    let mut retries = 0u32;
    loop {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(&record.spec, &dir, opts)
        }));
        let outcome = match attempt {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "panic with non-string payload".into());
                Err(JobError::Unrecoverable(msg))
            }
        };
        match outcome {
            Ok(RunStatus::Complete(mut result)) => {
                // the record was claimed before the wave, so `attempts` is
                // already one ahead of the completed prior attempts
                result.retries = record.attempts.saturating_sub(1) + retries;
                let verified = if result.resumed_from > 0 && config.verify_resumed {
                    let reference = reference_set(&record.spec);
                    Some(
                        result.final_snapshot.set.pos() == reference.pos()
                            && result.final_snapshot.set.vel() == reference.vel(),
                    )
                } else {
                    None
                };
                return WaveResult {
                    record: record.clone(),
                    outcome: WaveOutcome::Done(result),
                    retries,
                    verified,
                };
            }
            Ok(RunStatus::Preempted { .. }) => {
                return WaveResult {
                    record: record.clone(),
                    outcome: WaveOutcome::Preempted,
                    retries,
                    verified: None,
                };
            }
            Ok(RunStatus::Crashed { .. }) => {
                return WaveResult {
                    record: record.clone(),
                    outcome: WaveOutcome::Crashed,
                    retries,
                    verified: None,
                };
            }
            Err(err)
                if err.is_retryable() && (retries as usize + 1) < config.retry.max_attempts =>
            {
                retries += 1;
                // deterministic exponential backoff, charged as bounded wall
                // time so a tight deadline cannot stall the wave
                let backoff = config.retry.backoff_s(retries as usize).min(0.05);
                std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
            }
            Err(err) => {
                return WaveResult {
                    record: record.clone(),
                    outcome: WaveOutcome::Failed(err),
                    retries,
                    verified: None,
                };
            }
        }
    }
}

/// What one scheduling round did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundResult {
    /// `submitted/` was empty; nothing to do.
    Idle,
    /// At least one job was finalized, requeued, or deferred.
    Progressed,
    /// A simulated crash stopped the server mid-wave.
    Crashed,
}

/// Runs one scheduling round: intake pass (admission, shedding, cache,
/// claim) followed by one concurrent wave and its sequential finalization.
/// This is the engine both [`drain`] and the daemon loop turn.
pub(crate) fn drain_round(
    spool: &Spool,
    cache: &ResultCache,
    config: &ServerConfig,
    summary: &mut DrainSummary,
) -> Result<RoundResult, JobError> {
    let submitted = spool.list(JobState::Submitted)?;
    if submitted.is_empty() {
        return Ok(RoundResult::Idle);
    }

    // queue debt starts from whatever is already committed to run
    let mut debt_s = 0.0;
    if config.shed.is_some() {
        for r in spool.list(JobState::Running)? {
            debt_s += r.spec.forecast_seconds();
        }
    }

    // admission, shedding, cache service, and wave selection — sequential,
    // in scheduling order, so the outcome is thread-count invariant
    let mut wave: Vec<JobRecord> = Vec::new();
    let mut deferred = 0usize;
    for record in submitted {
        if let Err(err) = admit(&record.spec, &config.admission) {
            let job_err = JobError::from(err);
            let mut failed = record.clone();
            failed.error = Some(job_err.to_string());
            spool.transition(&failed, JobState::Submitted, JobState::Failed)?;
            summary.reports.push(JobReport {
                id: record.id,
                hash_hex: record.hash_hex,
                outcome: JobOutcome::Rejected(job_err.to_string()),
                retries: 0,
                resumed_from: 0,
                verified: None,
            });
            continue;
        }
        if let Some(_hit) = cache.lookup(&record.hash_hex)? {
            let mut done = record.clone();
            done.error = None;
            spool.transition(&done, JobState::Submitted, JobState::Done)?;
            summary.reports.push(JobReport {
                id: record.id,
                hash_hex: record.hash_hex,
                outcome: JobOutcome::CacheHit,
                retries: 0,
                resumed_from: 0,
                verified: None,
            });
            continue;
        }
        if let Some(policy) = &config.shed {
            let forecast_s = record.spec.forecast_seconds();
            if record.spec.priority == Priority::Batch && debt_s + forecast_s > policy.budget_s {
                let err = JobError::Overloaded {
                    forecast_s,
                    debt_s: debt_s + forecast_s,
                    budget_s: policy.budget_s,
                };
                let msg = err.to_string();
                let mut shed = record.clone();
                shed.error = Some(msg.clone());
                spool.transition(&shed, JobState::Submitted, JobState::Failed)?;
                summary.reports.push(JobReport {
                    id: record.id,
                    hash_hex: record.hash_hex,
                    outcome: JobOutcome::Shed(msg),
                    retries: 0,
                    resumed_from: 0,
                    verified: None,
                });
                continue;
            }
            debt_s += forecast_s;
        }
        if wave.len() == config.max_parallel.max(1) {
            deferred += 1;
            continue;
        }
        if wave.iter().any(|w| w.hash_hex == record.hash_hex) {
            // identical job already in this wave: defer one round so it
            // lands on the cache entry the first copy is about to write
            deferred += 1;
            continue;
        }
        if record.attempts >= config.max_job_attempts {
            // a crash-looping job: every claim was durably charged, so the
            // budget survives server restarts
            let msg = format!(
                "[poisoned] {} attempts exhausted; last: {}",
                record.attempts,
                record.error.as_deref().unwrap_or("crash loop (no recorded error)")
            );
            let mut poisoned = record.clone();
            poisoned.error = Some(msg.clone());
            spool.transition(&poisoned, JobState::Submitted, JobState::Poisoned)?;
            summary.reports.push(JobReport {
                id: record.id,
                hash_hex: record.hash_hex,
                outcome: JobOutcome::Poisoned(msg),
                retries: 0,
                resumed_from: 0,
                verified: None,
            });
            continue;
        }
        wave.push(spool.claim(&record)?);
    }
    if wave.is_empty() {
        return Ok(RoundResult::Progressed);
    }
    let _ = deferred; // deferred jobs are picked up by the next round

    // per-job runner options: checkpoints route through the spool's fs
    // seam, and preemptible batch jobs get a preemption flag
    let mut opts: Vec<RunOptions> = Vec::with_capacity(wave.len());
    let mut batch_flags: Vec<Arc<AtomicBool>> = Vec::new();
    for record in &wave {
        let mut o = config.run.clone();
        o.fs = spool.fs();
        if config.preempt_batch && record.spec.priority == Priority::Batch {
            let flag = Arc::new(AtomicBool::new(false));
            batch_flags.push(Arc::clone(&flag));
            o.preempt = Some(flag);
        }
        opts.push(o);
    }

    // while the wave runs, a watcher raises the preemption flags the moment
    // a high-priority job lands in submitted/
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = (!batch_flags.is_empty()).then(|| {
        let spool = spool.clone();
        let stop = Arc::clone(&stop);
        let flags = batch_flags;
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let high_waiting = spool
                    .list(JobState::Submitted)
                    .map(|subs| subs.iter().any(|r| r.spec.priority == Priority::High))
                    .unwrap_or(false);
                if high_waiting {
                    for flag in &flags {
                        flag.store(true, Ordering::SeqCst);
                    }
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    });

    // the wave runs concurrently; results come back in wave order because
    // par::run_tasks preserves task order
    let results: Vec<WaveResult> = par::run_tasks(
        wave.iter()
            .zip(&opts)
            .map(|(record, o)| || run_with_retry(spool, record, config, o))
            .collect(),
    );
    stop.store(true, Ordering::SeqCst);
    if let Some(w) = watcher {
        w.join().ok();
    }

    // finalization is sequential and in wave order: spool and cache
    // mutations are identical for every host thread count
    let mut crashed = false;
    for wave_result in results {
        let mut record = wave_result.record;
        record.attempts += wave_result.retries;
        let report = match wave_result.outcome {
            WaveOutcome::Done(result) => {
                if wave_result.verified == Some(false) {
                    let msg = JobError::Verification(
                        "resumed run diverged from the fault-free reference".into(),
                    )
                    .to_string();
                    record.error = Some(msg.clone());
                    spool.transition(&record, JobState::Running, JobState::Failed)?;
                    JobReport {
                        id: record.id.clone(),
                        hash_hex: record.hash_hex.clone(),
                        outcome: JobOutcome::Failed(msg),
                        retries: wave_result.retries,
                        resumed_from: result.resumed_from,
                        verified: Some(false),
                    }
                } else {
                    cache.store(&result)?;
                    if config.artifacts {
                        write_artifacts(
                            &result,
                            &spool.job_dir(&record.hash_hex),
                            spool.fs().as_ref(),
                        )?;
                    }
                    record.error = None;
                    spool.transition(&record, JobState::Running, JobState::Done)?;
                    JobReport {
                        id: record.id.clone(),
                        hash_hex: record.hash_hex.clone(),
                        outcome: JobOutcome::Computed,
                        retries: wave_result.retries,
                        resumed_from: result.resumed_from,
                        verified: wave_result.verified,
                    }
                }
            }
            WaveOutcome::Preempted => {
                // restore the claim's attempt charge: preemption is the
                // scheduler's doing, not the job's failure
                record.attempts = record.attempts.saturating_sub(1 + wave_result.retries);
                record.error = None;
                spool.transition(&record, JobState::Running, JobState::Submitted)?;
                JobReport {
                    id: record.id.clone(),
                    hash_hex: record.hash_hex.clone(),
                    outcome: JobOutcome::Preempted,
                    retries: wave_result.retries,
                    resumed_from: 0,
                    verified: None,
                }
            }
            WaveOutcome::Crashed => {
                // leave the record in running/ exactly as a dead server
                // would; Spool::open requeues it
                crashed = true;
                JobReport {
                    id: record.id.clone(),
                    hash_hex: record.hash_hex.clone(),
                    outcome: JobOutcome::Crashed,
                    retries: wave_result.retries,
                    resumed_from: 0,
                    verified: None,
                }
            }
            WaveOutcome::Failed(err) => {
                let msg = err.to_string();
                record.error = Some(msg.clone());
                let supervisable = config.supervise && !matches!(err, JobError::Verification(_));
                if supervisable && record.attempts < config.max_job_attempts {
                    spool.transition(&record, JobState::Running, JobState::Submitted)?;
                    JobReport {
                        id: record.id.clone(),
                        hash_hex: record.hash_hex.clone(),
                        outcome: JobOutcome::Requeued(msg),
                        retries: wave_result.retries,
                        resumed_from: 0,
                        verified: None,
                    }
                } else if supervisable {
                    let msg =
                        format!("[poisoned] {} attempts exhausted; last: {msg}", record.attempts);
                    record.error = Some(msg.clone());
                    spool.transition(&record, JobState::Running, JobState::Poisoned)?;
                    JobReport {
                        id: record.id.clone(),
                        hash_hex: record.hash_hex.clone(),
                        outcome: JobOutcome::Poisoned(msg),
                        retries: wave_result.retries,
                        resumed_from: 0,
                        verified: None,
                    }
                } else {
                    spool.transition(&record, JobState::Running, JobState::Failed)?;
                    JobReport {
                        id: record.id.clone(),
                        hash_hex: record.hash_hex.clone(),
                        outcome: JobOutcome::Failed(msg),
                        retries: wave_result.retries,
                        resumed_from: 0,
                        verified: None,
                    }
                }
            }
        };
        summary.reports.push(report);
    }
    Ok(if crashed { RoundResult::Crashed } else { RoundResult::Progressed })
}

/// Drains the spool: runs every submitted job to a terminal state (or to a
/// simulated crash). Deterministic for a fixed spool content: job ordering,
/// retry counts, cache hits, and the resulting on-disk state are identical
/// across host thread counts.
pub fn drain(
    spool: &Spool,
    recovery: SpoolRecovery,
    config: &ServerConfig,
) -> Result<DrainSummary, JobError> {
    let cache = spool.cache();
    let mut summary = DrainSummary { reports: Vec::new(), recovery };
    loop {
        match drain_round(spool, &cache, config, &mut summary)? {
            RoundResult::Idle | RoundResult::Crashed => break,
            RoundResult::Progressed => {}
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, Priority};
    use plans::prelude::PlanKind;
    use std::path::PathBuf;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-server").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec(n: usize, seed: u64) -> JobSpec {
        let mut s = JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, 4);
        s.checkpoint_every = 2;
        s
    }

    fn quick_config() -> ServerConfig {
        ServerConfig { artifacts: false, ..Default::default() }
    }

    #[test]
    fn drains_batch_in_priority_order_and_caches() {
        let (spool, recovery) = Spool::open(tmp("basic")).unwrap();
        let mut high = spec(64, 2);
        high.priority = Priority::High;
        spool.submit(&spec(64, 1)).unwrap();
        spool.submit(&high).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        assert_eq!(summary.completed(), 2);
        assert_eq!(summary.reports[0].hash_hex, high.hash_hex(), "high priority runs first");
        assert_eq!(spool.count(JobState::Done), 2);
        assert_eq!(spool.cache().len(), 2);

        // resubmission of an identical spec is a pure cache hit
        spool.submit(&spec(64, 1)).unwrap();
        let (spool, recovery) = Spool::open(spool.root()).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert_eq!(summary.reports.len(), 1);
        assert_eq!(summary.reports[0].outcome, JobOutcome::CacheHit);
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn duplicate_hashes_in_one_wave_compute_once() {
        let (spool, recovery) = Spool::open(tmp("dedup")).unwrap();
        spool.submit(&spec(64, 5)).unwrap();
        spool.submit(&spec(64, 5)).unwrap();
        spool.submit(&spec(64, 5)).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok());
        let computed = summary.reports.iter().filter(|r| r.outcome == JobOutcome::Computed).count();
        let hits = summary.reports.iter().filter(|r| r.outcome == JobOutcome::CacheHit).count();
        assert_eq!((computed, hits), (1, 2), "{}", summary.render());
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn admission_rejections_are_typed_and_recorded() {
        let (spool, recovery) = Spool::open(tmp("reject")).unwrap();
        // checkpoint_every = 0 is malformed but JSON-representable, so it
        // reaches the server's admission check (a NaN dt would already be
        // quarantined at spool parse time)
        let mut bad = spec(64, 1);
        bad.checkpoint_every = 0;
        spool.submit(&bad).unwrap();
        spool.submit(&spec(64, 2)).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "a typed rejection is not degradation");
        let rejected: Vec<_> = summary
            .reports
            .iter()
            .filter_map(|r| match &r.outcome {
                JobOutcome::Rejected(msg) => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].contains("zero-checkpoint-every"), "{rejected:?}");
        assert_eq!(spool.count(JobState::Failed), 1);
        assert_eq!(spool.count(JobState::Done), 1);
        let failed = spool.list(JobState::Failed).unwrap();
        assert!(failed[0].error.as_deref().unwrap().contains("zero-checkpoint-every"));
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn deadline_jobs_retry_and_complete() {
        let (spool, recovery) = Spool::open(tmp("deadline")).unwrap();
        // probe the budget first
        let probe = spec(64, 9);
        spool.submit(&probe).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok());
        let total = spool.cache().lookup(&probe.hash_hex()).unwrap().unwrap().simulated_total_s;

        let mut sliced = spec(64, 10);
        sliced.deadline_s = Some(total * 0.4);
        spool.submit(&sliced).unwrap();
        let (spool, recovery) = Spool::open(spool.root()).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        let report = &summary.reports[0];
        assert_eq!(report.outcome, JobOutcome::Computed);
        assert!(report.retries > 0, "a 40% budget must slice the job");
        assert!(report.resumed_from > 0);
        assert_eq!(report.verified, Some(true), "resumed job verified bit-exact");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn permanent_device_loss_fails_the_job_not_the_server() {
        let (spool, recovery) = Spool::open(tmp("chaos")).unwrap();
        let mut doomed = spec(64, 11);
        doomed.fault_seed = Some(1);
        doomed.fault_prob = Some(0.2);
        doomed.fault_loss_prob = Some(1.0); // every CU dies on first touch
        spool.submit(&doomed).unwrap();
        spool.submit(&spec(64, 12)).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "typed failure keeps the server healthy");
        let failed: Vec<_> =
            summary.reports.iter().filter(|r| matches!(r.outcome, JobOutcome::Failed(_))).collect();
        assert_eq!(failed.len(), 1, "{}", summary.render());
        assert_eq!(spool.count(JobState::Done), 1, "the healthy job still completes");
        assert_eq!(spool.count(JobState::Failed), 1);
        let record = &spool.list(JobState::Failed).unwrap()[0];
        assert!(record.error.as_deref().unwrap().contains("unrecoverable"), "{record:?}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn simulated_crash_leaves_job_running_and_resume_completes() {
        let root = tmp("crash");
        let (spool, recovery) = Spool::open(&root).unwrap();
        let job = spec(64, 13);
        spool.submit(&job).unwrap();
        let crash_config = ServerConfig {
            run: RunOptions { crash_after: Some(2), ..Default::default() },
            ..quick_config()
        };
        let summary = drain(&spool, recovery, &crash_config).unwrap();
        assert_eq!(summary.reports[0].outcome, JobOutcome::Crashed);
        assert_eq!(spool.count(JobState::Running), 1, "crash leaves the claim in place");

        // restart: open requeues, drain resumes from the checkpoint
        let (spool, recovery) = Spool::open(&root).unwrap();
        assert_eq!(recovery.requeued, 1);
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        let report = &summary.reports[0];
        assert_eq!(report.outcome, JobOutcome::Computed);
        assert_eq!(report.resumed_from, 2);
        assert_eq!(report.verified, Some(true), "resumed result is bit-exact");
        let rendered = summary.render();
        assert!(rendered.contains("resumed-jobs=1"), "{rendered}");
        assert!(rendered.ends_with("JOBS OK\n"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn ptpm_shedding_drops_batch_keeps_high() {
        let (spool, recovery) = Spool::open(tmp("shed")).unwrap();
        let mut batch_a = spec(64, 20);
        batch_a.priority = Priority::Batch;
        let mut batch_b = spec(64, 21);
        batch_b.priority = Priority::Batch;
        let mut high = spec(64, 22);
        high.priority = Priority::High;
        spool.submit(&batch_a).unwrap();
        spool.submit(&batch_b).unwrap();
        spool.submit(&high).unwrap();

        // budget fits the high job plus exactly one batch job
        let one_job = high.forecast_seconds();
        assert!(one_job > 0.0);
        let config =
            ServerConfig { shed: Some(ShedPolicy { budget_s: one_job * 2.5 }), ..quick_config() };
        let summary = drain(&spool, recovery, &config).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        let shed: Vec<_> =
            summary.reports.iter().filter(|r| matches!(r.outcome, JobOutcome::Shed(_))).collect();
        assert_eq!(shed.len(), 1, "{}", summary.render());
        assert_eq!(shed[0].hash_hex, batch_b.hash_hex(), "later batch job is the one shed");
        assert_eq!(summary.completed(), 2, "high and the first batch job still run");
        let record = &spool.list(JobState::Failed).unwrap()[0];
        assert!(record.error.as_deref().unwrap().contains("[overloaded]"), "{record:?}");
        let rendered = summary.render();
        assert!(rendered.contains("shed=1"), "{rendered}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn supervised_failures_requeue_then_poison_with_typed_reason() {
        let (spool, recovery) = Spool::open(tmp("poison")).unwrap();
        let mut doomed = spec(64, 30);
        doomed.fault_seed = Some(1);
        doomed.fault_prob = Some(0.2);
        doomed.fault_loss_prob = Some(1.0); // deterministically unrunnable
        spool.submit(&doomed).unwrap();
        spool.submit(&spec(64, 31)).unwrap();
        let config = ServerConfig { supervise: true, max_job_attempts: 3, ..quick_config() };
        let summary = drain(&spool, recovery, &config).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        let requeues =
            summary.reports.iter().filter(|r| matches!(r.outcome, JobOutcome::Requeued(_))).count();
        let poisons =
            summary.reports.iter().filter(|r| matches!(r.outcome, JobOutcome::Poisoned(_))).count();
        assert_eq!(requeues, 2, "attempts 1 and 2 requeue: {}", summary.render());
        assert_eq!(poisons, 1, "attempt 3 poisons: {}", summary.render());
        assert_eq!(spool.count(JobState::Poisoned), 1);
        assert_eq!(spool.count(JobState::Done), 1, "the healthy job is unaffected");
        assert_eq!(spool.count(JobState::Failed), 0, "supervision never uses failed/ for this");
        let record = &spool.list(JobState::Poisoned).unwrap()[0];
        assert_eq!(record.attempts, 3);
        let reason = record.error.as_deref().unwrap();
        assert!(reason.contains("[poisoned]"), "{reason}");
        assert!(reason.contains("[unrecoverable]"), "the last typed error rides along: {reason}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn watchdog_attempts_are_supervised_and_make_progress() {
        let (spool, recovery) = Spool::open(tmp("watchdog")).unwrap();
        let mut slow = spec(64, 40);
        slow.checkpoint_every = 1;
        spool.submit(&slow).unwrap();
        // a zero watchdog budget times every attempt out after exactly one
        // step — deterministically, however fast the host is. Each attempt
        // checkpoints and is requeued; three attempts reach step 3, then
        // the attempt budget poisons the job
        let config = ServerConfig {
            supervise: true,
            max_job_attempts: 3,
            run: RunOptions { watchdog_s: Some(0.0), ..Default::default() },
            ..quick_config()
        };
        let summary = drain(&spool, recovery, &config).unwrap();
        let poisoned = spool.list(JobState::Poisoned).unwrap();
        assert_eq!(poisoned.len(), 1, "{}", summary.render());
        assert!(poisoned[0].error.as_deref().unwrap().contains("[watchdog-timeout]"));
        // progress survived across the supervised attempts: the checkpoint
        // directory holds step 3 (one step per attempt, three attempts)
        let scan = crate::checkpoint::scan(&spool.job_dir(&slow.hash_hex())).unwrap();
        assert_eq!(scan.best.unwrap().0, 3, "each attempt advanced one durable step");
        std::fs::remove_dir_all(spool.root()).ok();
    }
}
