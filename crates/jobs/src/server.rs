//! The multi-tenant scheduler: admission, waves, retries, cache, survival.
//!
//! [`drain`] empties a spool deterministically. Each round it lists
//! `submitted/` (already ordered by priority class then submission
//! sequence), applies admission control, serves cache hits, and runs the
//! next *wave* — up to `max_parallel` jobs with pairwise-distinct canonical
//! hashes — concurrently on the [`par`] pool. A duplicate hash inside a
//! wave is deferred one round so it becomes a cache hit instead of a
//! redundant computation.
//!
//! Retry lives here, not in the runner: a deadline yield that made progress
//! is retried up to [`gpu_sim::fault::RetryPolicy::max_attempts`] with
//! deterministic exponential backoff (charged as a bounded wall-clock
//! sleep). A permanent device fault panics inside the recovery layer by
//! design; the wave worker catches the unwind at the job boundary and
//! records a typed `unrecoverable` failure — one tenant's chaos never takes
//! the server down.
//!
//! All spool transitions happen on the scheduler thread in wave order, so
//! the spool's on-disk history is identical for every host thread count.

use crate::artifact::write_artifacts;
use crate::cache::JobResult;
use crate::error::JobError;
use crate::runner::{reference_set, run_job, RunOptions, RunStatus};
use crate::spec::{admit, AdmissionPolicy};
use crate::spool::{JobRecord, JobState, Spool, SpoolRecovery};
use gpu_sim::fault::RetryPolicy;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Jobs run concurrently per wave (admission-controlled parallelism).
    pub max_parallel: usize,
    /// Budgets specs must fit inside.
    pub admission: AdmissionPolicy,
    /// Retry budget and backoff for deadline yields.
    pub retry: RetryPolicy,
    /// Re-run resumed jobs' references and require bit-exactness before
    /// caching (the crash-recovery gate; costs one uninterrupted re-run).
    pub verify_resumed: bool,
    /// Runner hooks (CI throttle, simulated crash).
    pub run: RunOptions,
    /// Emit `bench.json` / `trace.csv` for every computed job.
    pub artifacts: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_parallel: 2,
            admission: AdmissionPolicy::default(),
            retry: RetryPolicy::default(),
            verify_resumed: true,
            run: RunOptions::default(),
            artifacts: true,
        }
    }
}

/// How one drained job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Ran to completion and was stored in the cache.
    Computed,
    /// Served from the content-addressed cache without recomputing.
    CacheHit,
    /// Terminal failure, recorded in `failed/` with the error string.
    Failed(String),
    /// Refused at admission, recorded in `failed/`.
    Rejected(String),
    /// The simulated-crash hook fired; the record stays in `running/` for
    /// the next [`Spool::open`] to requeue.
    Crashed,
}

impl JobOutcome {
    /// Stable identifier for report lines.
    pub fn id(&self) -> &'static str {
        match self {
            JobOutcome::Computed => "computed",
            JobOutcome::CacheHit => "cache-hit",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::Rejected(_) => "rejected",
            JobOutcome::Crashed => "crashed",
        }
    }
}

/// One job's drain report.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's spool identity.
    pub id: String,
    /// Canonical hash.
    pub hash_hex: String,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Deadline retries consumed in this drain.
    pub retries: u32,
    /// Step the final attempt resumed from (0 = from scratch).
    pub resumed_from: usize,
    /// Bit-exactness verdict for resumed jobs (None = not applicable).
    pub verified: Option<bool>,
}

/// Everything one [`drain`] did, in completion order.
#[derive(Debug)]
pub struct DrainSummary {
    /// Per-job reports in the order jobs were finalized.
    pub reports: Vec<JobReport>,
    /// What opening the spool had to repair.
    pub recovery: SpoolRecovery,
}

impl DrainSummary {
    fn count(&self, id: &str) -> usize {
        self.reports.iter().filter(|r| r.outcome.id() == id).count()
    }

    /// Jobs that ended in `done/` (computed or cache hit).
    pub fn completed(&self) -> usize {
        self.count("computed") + self.count("cache-hit")
    }

    /// Jobs that resumed from a checkpoint.
    pub fn resumed_jobs(&self) -> usize {
        self.reports.iter().filter(|r| r.resumed_from > 0).count()
    }

    /// Resumed jobs that verified bit-exact against their reference.
    pub fn verified_bitexact(&self) -> usize {
        self.reports.iter().filter(|r| r.verified == Some(true)).count()
    }

    /// True when nothing failed for an unexpected reason: every job either
    /// completed, was rejected by admission, failed with a *typed* error,
    /// or crashed on purpose — and no resumed job failed verification.
    pub fn ok(&self) -> bool {
        self.reports.iter().all(|r| r.verified != Some(false))
    }

    /// Human- and grep-friendly report (the `serve` binary prints this;
    /// the CI smoke greps its `JOBS OK` tail).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&format!("{} : {}", r.id, r.outcome.id()));
            if r.retries > 0 {
                out.push_str(&format!(" retries={}", r.retries));
            }
            if r.resumed_from > 0 {
                out.push_str(&format!(" resumed-from={}", r.resumed_from));
            }
            if let Some(v) = r.verified {
                out.push_str(if v { " bit-exact" } else { " DIVERGED" });
            }
            match &r.outcome {
                JobOutcome::Failed(msg) | JobOutcome::Rejected(msg) => {
                    out.push_str(&format!(" ({msg})"));
                }
                _ => {}
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "jobs    : completed={} computed={} cache-hits={} failed={} rejected={} crashed={}\n",
            self.completed(),
            self.count("computed"),
            self.count("cache-hit"),
            self.count("failed"),
            self.count("rejected"),
            self.count("crashed"),
        ));
        out.push_str(&format!(
            "recovery: requeued={} tmp-cleaned={} duplicates-dropped={} resumed-jobs={} \
             verified-bitexact={}\n",
            self.recovery.requeued,
            self.recovery.tmp_cleaned,
            self.recovery.duplicates_dropped,
            self.resumed_jobs(),
            self.verified_bitexact(),
        ));
        out.push_str(if self.ok() { "JOBS OK\n" } else { "JOBS DEGRADED\n" });
        out
    }
}

/// What a wave worker hands back to the scheduler thread.
struct WaveResult {
    record: JobRecord,
    outcome: Result<Box<JobResult>, JobError>,
    retries: u32,
    crashed: bool,
    verified: Option<bool>,
}

/// Runs one job to completion, retrying deadline yields per `config.retry`.
/// Never panics: unwinds from the recovery layer become typed errors.
fn run_with_retry(spool: &Spool, record: &JobRecord, config: &ServerConfig) -> WaveResult {
    let dir = spool.job_dir(&record.hash_hex);
    let mut retries = 0u32;
    loop {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(&record.spec, &dir, &config.run)
        }));
        let outcome = match attempt {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "panic with non-string payload".into());
                Err(JobError::Unrecoverable(msg))
            }
        };
        match outcome {
            Ok(RunStatus::Complete(mut result)) => {
                result.retries = record.attempts + retries;
                let verified = if result.resumed_from > 0 && config.verify_resumed {
                    let reference = reference_set(&record.spec);
                    Some(
                        result.final_snapshot.set.pos() == reference.pos()
                            && result.final_snapshot.set.vel() == reference.vel(),
                    )
                } else {
                    None
                };
                return WaveResult {
                    record: record.clone(),
                    outcome: Ok(result),
                    retries,
                    crashed: false,
                    verified,
                };
            }
            Ok(RunStatus::Crashed { .. }) => {
                return WaveResult {
                    record: record.clone(),
                    outcome: Err(JobError::Unrecoverable("simulated crash".into())),
                    retries,
                    crashed: true,
                    verified: None,
                };
            }
            Err(err)
                if err.is_retryable() && (retries as usize + 1) < config.retry.max_attempts =>
            {
                retries += 1;
                // deterministic exponential backoff, charged as bounded wall
                // time so a tight deadline cannot stall the wave
                let backoff = config.retry.backoff_s(retries as usize).min(0.05);
                std::thread::sleep(std::time::Duration::from_secs_f64(backoff));
            }
            Err(err) => {
                return WaveResult {
                    record: record.clone(),
                    outcome: Err(err),
                    retries,
                    crashed: false,
                    verified: None,
                };
            }
        }
    }
}

/// Drains the spool: runs every submitted job to a terminal state (or to a
/// simulated crash). Deterministic for a fixed spool content: job ordering,
/// retry counts, cache hits, and the resulting on-disk state are identical
/// across host thread counts.
pub fn drain(
    spool: &Spool,
    recovery: SpoolRecovery,
    config: &ServerConfig,
) -> Result<DrainSummary, JobError> {
    let cache = spool.cache();
    let mut summary = DrainSummary { reports: Vec::new(), recovery };

    loop {
        let submitted = spool.list(JobState::Submitted)?;
        if submitted.is_empty() {
            break;
        }

        // admission, cache service, and wave selection — sequential, in
        // scheduling order, so the outcome is thread-count invariant
        let mut wave: Vec<JobRecord> = Vec::new();
        let mut deferred = 0usize;
        for record in submitted {
            if wave.len() == config.max_parallel.max(1) {
                deferred += 1;
                continue;
            }
            if let Err(err) = admit(&record.spec, &config.admission) {
                let job_err = JobError::from(err);
                let mut failed = record.clone();
                failed.error = Some(job_err.to_string());
                spool.transition(&failed, JobState::Submitted, JobState::Failed)?;
                summary.reports.push(JobReport {
                    id: record.id,
                    hash_hex: record.hash_hex,
                    outcome: JobOutcome::Rejected(job_err.to_string()),
                    retries: 0,
                    resumed_from: 0,
                    verified: None,
                });
                continue;
            }
            if let Some(_hit) = cache.lookup(&record.hash_hex)? {
                let mut done = record.clone();
                done.error = None;
                spool.transition(&done, JobState::Submitted, JobState::Done)?;
                summary.reports.push(JobReport {
                    id: record.id,
                    hash_hex: record.hash_hex,
                    outcome: JobOutcome::CacheHit,
                    retries: 0,
                    resumed_from: 0,
                    verified: None,
                });
                continue;
            }
            if wave.iter().any(|w| w.hash_hex == record.hash_hex) {
                // identical job already in this wave: defer one round so it
                // lands on the cache entry the first copy is about to write
                deferred += 1;
                continue;
            }
            spool.transition(&record, JobState::Submitted, JobState::Running)?;
            wave.push(record);
        }
        if wave.is_empty() {
            if deferred == 0 {
                break;
            }
            continue;
        }

        // the wave runs concurrently; results come back in wave order
        // because par::run_tasks preserves task order
        let results: Vec<WaveResult> = par::run_tasks(
            wave.iter().map(|record| || run_with_retry(spool, record, config)).collect(),
        );

        // finalization is sequential and in wave order: spool and cache
        // mutations are identical for every host thread count
        for wave_result in results {
            let mut record = wave_result.record;
            record.attempts += wave_result.retries + 1;
            let report = match wave_result.outcome {
                Ok(result) => {
                    if wave_result.verified == Some(false) {
                        let msg = JobError::Verification(
                            "resumed run diverged from the fault-free reference".into(),
                        )
                        .to_string();
                        record.error = Some(msg.clone());
                        spool.transition(&record, JobState::Running, JobState::Failed)?;
                        JobReport {
                            id: record.id.clone(),
                            hash_hex: record.hash_hex.clone(),
                            outcome: JobOutcome::Failed(msg),
                            retries: wave_result.retries,
                            resumed_from: result.resumed_from,
                            verified: Some(false),
                        }
                    } else {
                        cache.store(&result)?;
                        if config.artifacts {
                            write_artifacts(&result, &spool.job_dir(&record.hash_hex))?;
                        }
                        record.error = None;
                        spool.transition(&record, JobState::Running, JobState::Done)?;
                        JobReport {
                            id: record.id.clone(),
                            hash_hex: record.hash_hex.clone(),
                            outcome: JobOutcome::Computed,
                            retries: wave_result.retries,
                            resumed_from: result.resumed_from,
                            verified: wave_result.verified,
                        }
                    }
                }
                Err(_) if wave_result.crashed => JobReport {
                    // leave the record in running/ exactly as a dead server
                    // would; Spool::open requeues it
                    id: record.id.clone(),
                    hash_hex: record.hash_hex.clone(),
                    outcome: JobOutcome::Crashed,
                    retries: wave_result.retries,
                    resumed_from: 0,
                    verified: None,
                },
                Err(err) => {
                    let msg = err.to_string();
                    record.error = Some(msg.clone());
                    spool.transition(&record, JobState::Running, JobState::Failed)?;
                    JobReport {
                        id: record.id.clone(),
                        hash_hex: record.hash_hex.clone(),
                        outcome: JobOutcome::Failed(msg),
                        retries: wave_result.retries,
                        resumed_from: 0,
                        verified: None,
                    }
                }
            };
            summary.reports.push(report);
        }

        // a simulated crash stops the server like a real one would
        if summary.reports.iter().any(|r| r.outcome == JobOutcome::Crashed) {
            break;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, Priority};
    use plans::prelude::PlanKind;
    use std::path::PathBuf;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-server").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec(n: usize, seed: u64) -> JobSpec {
        let mut s = JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, 4);
        s.checkpoint_every = 2;
        s
    }

    fn quick_config() -> ServerConfig {
        ServerConfig { artifacts: false, ..Default::default() }
    }

    #[test]
    fn drains_batch_in_priority_order_and_caches() {
        let (spool, recovery) = Spool::open(tmp("basic")).unwrap();
        let mut high = spec(64, 2);
        high.priority = Priority::High;
        spool.submit(&spec(64, 1)).unwrap();
        spool.submit(&high).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        assert_eq!(summary.completed(), 2);
        assert_eq!(summary.reports[0].hash_hex, high.hash_hex(), "high priority runs first");
        assert_eq!(spool.count(JobState::Done), 2);
        assert_eq!(spool.cache().len(), 2);

        // resubmission of an identical spec is a pure cache hit
        spool.submit(&spec(64, 1)).unwrap();
        let (spool, recovery) = Spool::open(spool.root()).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert_eq!(summary.reports.len(), 1);
        assert_eq!(summary.reports[0].outcome, JobOutcome::CacheHit);
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn duplicate_hashes_in_one_wave_compute_once() {
        let (spool, recovery) = Spool::open(tmp("dedup")).unwrap();
        spool.submit(&spec(64, 5)).unwrap();
        spool.submit(&spec(64, 5)).unwrap();
        spool.submit(&spec(64, 5)).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok());
        let computed = summary.reports.iter().filter(|r| r.outcome == JobOutcome::Computed).count();
        let hits = summary.reports.iter().filter(|r| r.outcome == JobOutcome::CacheHit).count();
        assert_eq!((computed, hits), (1, 2), "{}", summary.render());
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn admission_rejections_are_typed_and_recorded() {
        let (spool, recovery) = Spool::open(tmp("reject")).unwrap();
        // checkpoint_every = 0 is malformed but JSON-representable, so it
        // reaches the server's admission check (a NaN dt would already be
        // quarantined at spool parse time)
        let mut bad = spec(64, 1);
        bad.checkpoint_every = 0;
        spool.submit(&bad).unwrap();
        spool.submit(&spec(64, 2)).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "a typed rejection is not degradation");
        let rejected: Vec<_> = summary
            .reports
            .iter()
            .filter_map(|r| match &r.outcome {
                JobOutcome::Rejected(msg) => Some(msg.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].contains("zero-checkpoint-every"), "{rejected:?}");
        assert_eq!(spool.count(JobState::Failed), 1);
        assert_eq!(spool.count(JobState::Done), 1);
        let failed = spool.list(JobState::Failed).unwrap();
        assert!(failed[0].error.as_deref().unwrap().contains("zero-checkpoint-every"));
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn deadline_jobs_retry_and_complete() {
        let (spool, recovery) = Spool::open(tmp("deadline")).unwrap();
        // probe the budget first
        let probe = spec(64, 9);
        spool.submit(&probe).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok());
        let total = spool.cache().lookup(&probe.hash_hex()).unwrap().unwrap().simulated_total_s;

        let mut sliced = spec(64, 10);
        sliced.deadline_s = Some(total * 0.4);
        spool.submit(&sliced).unwrap();
        let (spool, recovery) = Spool::open(spool.root()).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        let report = &summary.reports[0];
        assert_eq!(report.outcome, JobOutcome::Computed);
        assert!(report.retries > 0, "a 40% budget must slice the job");
        assert!(report.resumed_from > 0);
        assert_eq!(report.verified, Some(true), "resumed job verified bit-exact");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn permanent_device_loss_fails_the_job_not_the_server() {
        let (spool, recovery) = Spool::open(tmp("chaos")).unwrap();
        let mut doomed = spec(64, 11);
        doomed.fault_seed = Some(1);
        doomed.fault_prob = Some(0.2);
        doomed.fault_loss_prob = Some(1.0); // every CU dies on first touch
        spool.submit(&doomed).unwrap();
        spool.submit(&spec(64, 12)).unwrap();
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "typed failure keeps the server healthy");
        let failed: Vec<_> =
            summary.reports.iter().filter(|r| matches!(r.outcome, JobOutcome::Failed(_))).collect();
        assert_eq!(failed.len(), 1, "{}", summary.render());
        assert_eq!(spool.count(JobState::Done), 1, "the healthy job still completes");
        assert_eq!(spool.count(JobState::Failed), 1);
        let record = &spool.list(JobState::Failed).unwrap()[0];
        assert!(record.error.as_deref().unwrap().contains("unrecoverable"), "{record:?}");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn simulated_crash_leaves_job_running_and_resume_completes() {
        let root = tmp("crash");
        let (spool, recovery) = Spool::open(&root).unwrap();
        let job = spec(64, 13);
        spool.submit(&job).unwrap();
        let crash_config = ServerConfig {
            run: RunOptions { crash_after: Some(2), ..Default::default() },
            ..quick_config()
        };
        let summary = drain(&spool, recovery, &crash_config).unwrap();
        assert_eq!(summary.reports[0].outcome, JobOutcome::Crashed);
        assert_eq!(spool.count(JobState::Running), 1, "crash leaves the claim in place");

        // restart: open requeues, drain resumes from the checkpoint
        let (spool, recovery) = Spool::open(&root).unwrap();
        assert_eq!(recovery.requeued, 1);
        let summary = drain(&spool, recovery, &quick_config()).unwrap();
        assert!(summary.ok(), "{}", summary.render());
        let report = &summary.reports[0];
        assert_eq!(report.outcome, JobOutcome::Computed);
        assert_eq!(report.resumed_from, 2);
        assert_eq!(report.verified, Some(true), "resumed result is bit-exact");
        let rendered = summary.render();
        assert!(rendered.contains("resumed-jobs=1"), "{rendered}");
        assert!(rendered.ends_with("JOBS OK\n"));
        std::fs::remove_dir_all(&root).ok();
    }
}
