//! Hardened checkpoint discovery and writing.
//!
//! A job's work directory accumulates `ckpt-<step>.json` snapshots. A crash
//! can leave that directory arbitrarily messy: zero-byte files from a crash
//! before the first write hit disk, truncated JSON from a crash mid-write
//! (only possible for pre-atomic writers — current writers go through a
//! `.tmp` sibling plus rename), stale `.tmp` siblings from a crash between
//! write and rename, files from future schema versions after a downgrade,
//! or checksum-corrupt payloads from bit rot. [`scan`] must never resume
//! from any of those: it returns the newest checkpoint that loads *and*
//! validates, reports everything it had to skip, and deletes stale `.tmp`
//! litter.
//!
//! This module is the single implementation for both the job server and the
//! `harness::faults` checkpoint/restart driver.

use crate::error::JobError;
use crate::fsx::{RealFs, SpoolFs};
use std::path::{Path, PathBuf};
use workloads::snapshot::Snapshot;

/// The checkpoint file name for `step`.
pub fn checkpoint_path(dir: &Path, step: usize) -> PathBuf {
    dir.join(format!("ckpt-{step:05}.json"))
}

/// Writes the checkpoint for `step` atomically on the production
/// filesystem. See [`save_checkpoint_with`].
pub fn save_checkpoint(
    dir: &Path,
    label: &str,
    time: f64,
    step: usize,
    set: &nbody_core::body::ParticleSet,
) -> Result<PathBuf, JobError> {
    save_checkpoint_with(&RealFs, dir, label, time, step, set)
}

/// Writes the checkpoint for `step` through the `fs` seam: the same
/// `.tmp`-then-rename transaction as [`Snapshot::save`], byte-identical
/// payload, but interruptible by the crash-point fuzzer.
pub fn save_checkpoint_with(
    fs: &dyn SpoolFs,
    dir: &Path,
    label: &str,
    time: f64,
    step: usize,
    set: &nbody_core::body::ParticleSet,
) -> Result<PathBuf, JobError> {
    fs.create_dir_all(dir).map_err(|e| JobError::io(dir.display().to_string(), e))?;
    let path = checkpoint_path(dir, step);
    let snap = Snapshot::new(label, time, set.clone());
    fs.write_atomic(&path, &snap.to_json())
        .map_err(|e| JobError::io(path.display().to_string(), e))?;
    Ok(path)
}

/// A checkpoint file [`scan`] refused to resume from, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCheckpoint {
    /// File name within the scanned directory.
    pub file: String,
    /// Why it was unusable.
    pub reason: String,
}

/// What [`scan`] found.
#[derive(Debug, Default)]
pub struct CheckpointScan {
    /// The newest checkpoint that loaded and validated, as `(step,
    /// snapshot)`.
    pub best: Option<(usize, Snapshot)>,
    /// Unusable `ckpt-*` entries, sorted by file name. Candidates older
    /// than the newest usable checkpoint are not validated (they are never
    /// resumed from), so only zero-byte files and failures at or above the
    /// resume point appear here.
    pub skipped: Vec<SkippedCheckpoint>,
    /// Stale `ckpt-*.tmp` files deleted (a crash between write and rename).
    pub tmp_cleaned: usize,
}

/// Scans `dir` for the newest usable checkpoint. A missing directory is an
/// empty scan, not an error; unusable files are skipped and reported, never
/// trusted.
pub fn scan(dir: &Path) -> Result<CheckpointScan, JobError> {
    let mut out = CheckpointScan::default();
    if !dir.exists() {
        return Ok(out);
    }
    let entries = std::fs::read_dir(dir).map_err(|e| JobError::io(dir.display().to_string(), e))?;
    let mut candidates: Vec<(usize, PathBuf, String)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| JobError::io(dir.display().to_string(), e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("ckpt-") {
            continue; // foreign files (artifacts, records) are none of ours
        }
        if name.ends_with(".tmp") {
            // crash between write and rename: the rename never happened, so
            // the durable file (if any) is intact and this litter is dead
            if std::fs::remove_file(entry.path()).is_ok() {
                out.tmp_cleaned += 1;
            }
            continue;
        }
        let Some(step) = name
            .strip_prefix("ckpt-")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|d| d.parse::<usize>().ok())
        else {
            out.skipped.push(SkippedCheckpoint { file: name, reason: "unrecognized name".into() });
            continue;
        };
        let meta = match entry.metadata() {
            Ok(m) => m,
            Err(e) => {
                out.skipped.push(SkippedCheckpoint { file: name, reason: format!("stat: {e}") });
                continue;
            }
        };
        if !meta.is_file() {
            out.skipped.push(SkippedCheckpoint { file: name, reason: "not a regular file".into() });
            continue;
        }
        if meta.len() == 0 {
            out.skipped.push(SkippedCheckpoint {
                file: name,
                reason: "empty file (crash before write)".into(),
            });
            continue;
        }
        candidates.push((step, entry.path(), name));
    }
    // newest first: try to load until one validates; older files are not
    // resumed from, so they are not worth validating
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (step, path, name) in candidates {
        match Snapshot::load(&path) {
            Ok(snap) => {
                out.best = Some((step, snap));
                break;
            }
            Err(err) => out.skipped.push(SkippedCheckpoint { file: name, reason: err.to_string() }),
        }
    }
    out.skipped.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(out)
}

/// Deletes every stale `*.tmp` file directly inside `dir` (non-recursive).
/// Returns how many were removed; a missing directory removes nothing.
pub fn clean_stale_tmp(dir: &Path) -> std::io::Result<usize> {
    if !dir.exists() {
        return Ok(0);
    }
    let mut cleaned = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") && entry.file_type()?.is_file() {
            std::fs::remove_file(entry.path())?;
            cleaned += 1;
        }
    }
    Ok(cleaned)
}

/// Deletes every stale `*.tmp` file anywhere under `root` — state dirs,
/// the result cache, and per-job work/artifact directories at any depth.
/// Removals go through `fs` so recovery itself is crash-enumerable.
/// Traversal is depth-first over a sorted entry list, so the removal order
/// (and thus the fuzzer's op numbering) is deterministic.
pub fn clean_stale_tmp_recursive(root: &Path, fs: &dyn SpoolFs) -> std::io::Result<usize> {
    if !root.exists() {
        return Ok(0);
    }
    let mut cleaned = 0;
    let mut entries: Vec<_> = std::fs::read_dir(root)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let ty = entry.file_type()?;
        if ty.is_dir() {
            cleaned += clean_stale_tmp_recursive(&entry.path(), fs)?;
        } else if ty.is_file() && entry.file_name().to_string_lossy().ends_with(".tmp") {
            fs.remove_file(&entry.path())?;
            cleaned += 1;
        }
    }
    Ok(cleaned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::testutil::XorShift64;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-ckpt").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_valid(dir: &Path, step: usize) {
        let set = WorkloadSpec::plummer(16, 42).generate();
        save_checkpoint(dir, "test", step as f64 * 1e-3, step, &set).unwrap();
    }

    #[test]
    fn missing_dir_is_empty_scan() {
        let scan = scan(Path::new("/definitely/not/here")).unwrap();
        assert!(scan.best.is_none());
        assert!(scan.skipped.is_empty());
    }

    #[test]
    fn newest_valid_checkpoint_wins() {
        let dir = tmp("newest");
        for step in [3, 9, 6] {
            write_valid(&dir, step);
        }
        let scan = scan(&dir).unwrap();
        assert_eq!(scan.best.as_ref().unwrap().0, 9);
        assert!(scan.skipped.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_byte_truncated_wrong_version_and_corrupt_all_skipped() {
        let dir = tmp("garbage");
        write_valid(&dir, 4);
        // zero-byte file at the highest step: crash before the write hit disk
        std::fs::write(checkpoint_path(&dir, 99), b"").unwrap();
        // truncated header: valid prefix cut mid-token
        let full = std::fs::read_to_string(checkpoint_path(&dir, 4)).unwrap();
        std::fs::write(checkpoint_path(&dir, 90), &full[..20]).unwrap();
        // wrong schema version
        let versioned = full.replacen("\"version\":2", "\"version\":999", 1);
        assert_ne!(versioned, full, "version field must exist to corrupt");
        std::fs::write(checkpoint_path(&dir, 91), versioned).unwrap();
        // checksum-corrupt payload: flip a digit inside the data
        let corrupt = full.replacen("\"time\":0.004", "\"time\":0.005", 1);
        assert_ne!(corrupt, full, "time field must exist to corrupt");
        std::fs::write(checkpoint_path(&dir, 92), corrupt).unwrap();

        let scan = scan(&dir).unwrap();
        assert_eq!(scan.best.as_ref().unwrap().0, 4, "only the valid one survives");
        let skipped: Vec<&str> = scan.skipped.iter().map(|s| s.file.as_str()).collect();
        assert_eq!(
            skipped,
            ["ckpt-00090.json", "ckpt-00091.json", "ckpt-00092.json", "ckpt-00099.json"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_are_deleted_not_resumed() {
        let dir = tmp("tmp-litter");
        write_valid(&dir, 2);
        std::fs::write(dir.join("ckpt-00008.json.tmp"), "{half a snapsho").unwrap();
        let scan = scan(&dir).unwrap();
        assert_eq!(scan.best.as_ref().unwrap().0, 2);
        assert_eq!(scan.tmp_cleaned, 1);
        assert!(!dir.join("ckpt-00008.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_and_weird_names_do_not_confuse_the_scan() {
        let dir = tmp("foreign");
        write_valid(&dir, 5);
        std::fs::write(dir.join("bench.json"), "{}").unwrap();
        std::fs::write(dir.join("trace.csv"), "event\n").unwrap();
        std::fs::write(dir.join("ckpt-abc.json"), "{}").unwrap();
        std::fs::create_dir(dir.join("ckpt-00042.json")).unwrap();
        let scan = scan(&dir).unwrap();
        assert_eq!(scan.best.as_ref().unwrap().0, 5);
        let reasons: Vec<&str> = scan.skipped.iter().map(|s| s.reason.as_str()).collect();
        assert!(reasons.contains(&"unrecognized name"), "{reasons:?}");
        assert!(reasons.contains(&"not a regular file"), "{reasons:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Seeded property test: litter the directory with a random mix of
    /// garbage around one valid checkpoint; the scan must always pick the
    /// valid one, skip every piece of garbage newer than it, and never
    /// panic.
    #[test]
    fn property_scan_survives_random_garbage() {
        let mut rng = XorShift64::new(0x5eed_50c1_a100);
        for case in 0..25 {
            let dir = tmp(&format!("prop-{case}"));
            let valid_step = 1 + (rng.next_u64() % 50) as usize;
            write_valid(&dir, valid_step);
            let full = std::fs::read_to_string(checkpoint_path(&dir, valid_step)).unwrap();
            let mut expected_skips = 0usize;
            for g in 0..(1 + rng.next_u64() % 6) {
                // garbage strictly newer than the valid checkpoint, so every
                // piece is probed (and must be skipped) before the valid one
                let step = valid_step + 1 + (g as usize) * 7 + (rng.next_u64() % 7) as usize;
                let path = checkpoint_path(&dir, step);
                match rng.next_u64() % 5 {
                    0 => std::fs::write(&path, b"").unwrap(),
                    1 => {
                        let cut = 1 + (rng.next_u64() as usize) % (full.len() - 1);
                        std::fs::write(&path, &full[..cut]).unwrap();
                    }
                    2 => {
                        let v = format!("\"version\":{}", 3 + rng.next_u64() % 100);
                        std::fs::write(&path, full.replacen("\"version\":2", &v, 1)).unwrap();
                    }
                    3 => {
                        // flip payload without touching the stored checksum
                        let broken = full.replacen("\"x\":", "\"x\":1e9,\"ignored\":", 1);
                        std::fs::write(&path, broken).unwrap();
                    }
                    _ => std::fs::write(&path, "not json at all").unwrap(),
                }
                expected_skips += 1;
            }
            if rng.next_u64().is_multiple_of(2) {
                std::fs::write(dir.join("ckpt-00000.json.tmp"), "dead").unwrap();
            }
            let scan = scan(&dir).unwrap();
            let (best_step, snap) = scan.best.expect("valid checkpoint must be found");
            assert_eq!(best_step, valid_step, "case {case}");
            assert!(snap.set.all_finite());
            assert_eq!(scan.skipped.len(), expected_skips, "case {case}: {:?}", scan.skipped);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn clean_stale_tmp_only_touches_tmp_files() {
        let dir = tmp("clean");
        write_valid(&dir, 1);
        std::fs::write(dir.join("a.tmp"), "x").unwrap();
        std::fs::write(dir.join("b.json.tmp"), "y").unwrap();
        assert_eq!(clean_stale_tmp(&dir).unwrap(), 2);
        assert!(checkpoint_path(&dir, 1).exists());
        assert_eq!(clean_stale_tmp(Path::new("/not/here")).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
