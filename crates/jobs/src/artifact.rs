//! Per-job observability artifacts.
//!
//! Every *computed* job leaves two files in its spool work directory, both
//! written atomically and both deterministic for a fixed spec:
//!
//! * `bench.json` — the job's execution summary (simulated clock split,
//!   fault tally, resume/retry provenance), the job-server analogue of the
//!   repro binaries' bench tables;
//! * `trace.csv` — a compact event table (launches, PCIe transfers, host
//!   markers, injected faults) of one representative traced force
//!   evaluation of the job's plan, captured with the PR 1 trace layer.
//!
//! Cache hits do not rewrite artifacts: the files describe the run that
//! actually computed the result, and they are already in the shared
//! per-hash work directory.

use crate::cache::JobResult;
use crate::error::JobError;
use crate::fsx::SpoolFs;
use gpu_sim::trace::{MemoryTraceSink, Trace};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Paths of the artifacts one job emitted.
#[derive(Debug, Clone)]
pub struct ArtifactSet {
    /// The execution-summary JSON.
    pub bench_json: PathBuf,
    /// The compact event table.
    pub trace_csv: PathBuf,
}

/// The `bench.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Canonical job hash.
    pub job: String,
    /// Human-readable spec label.
    pub label: String,
    /// Execution plan id.
    pub plan: String,
    /// Body count.
    pub n: usize,
    /// Steps integrated.
    pub steps: usize,
    /// Simulated end-to-end device seconds.
    pub simulated_total_s: f64,
    /// Simulated kernel-only seconds.
    pub simulated_kernel_s: f64,
    /// Simulated seconds lost to fault recovery.
    pub recovery_s: f64,
    /// Injected faults survived.
    pub fault_total: u64,
    /// Step the final attempt resumed from (0 = from scratch).
    pub resumed_from: usize,
    /// Deadline retries consumed.
    pub retries: u32,
    /// Kernel launches in the traced evaluation.
    pub trace_launches: usize,
    /// PCIe transfers in the traced evaluation.
    pub trace_transfers: usize,
    /// How `--plan auto` resolved the plan (`"auto:db-hit"` /
    /// `"auto:forecast"` / `"auto:measured"`); `None` when the plan was
    /// pinned explicitly.
    pub plan_source: Option<String>,
}

/// Captures one traced force evaluation of the job's plan: a fresh traced
/// device primes the initial set once. Deterministic for a fixed spec.
///
/// Trace contract (DESIGN.md §11): only the sim backend owns a device, so
/// jobs pinned to the host or f32 backend get an *empty* trace — the
/// `trace.csv` artifact is then just the header.
fn traced_evaluation(spec: &crate::spec::JobSpec) -> Trace {
    use gpu_sim::prelude::{Device, DeviceSpec, FaultPlan, TransferModel};
    use nbody_core::gravity::GravityParams;
    use nbody_core::integrator::prime;
    use plans::engine::PlanForceEngine;
    use plans::make_plan;
    use plans::prelude::{BackendKind, PlanConfig};

    if spec.backend_kind() != BackendKind::Sim {
        return Trace::default();
    }

    let sink = MemoryTraceSink::new();
    let mut device =
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16());
    device.set_trace_sink(Box::new(sink.clone()));
    if let Some((seed, cfg)) = spec.fault_config() {
        device.set_fault_plan(FaultPlan::new(seed, cfg));
    }
    let mut config = PlanConfig::default();
    if let Some(tile) = spec.tile {
        config.block_size = tile;
        config.walk_size = tile;
    }
    let mut engine = PlanForceEngine::new(
        device,
        make_plan(spec.plan, config),
        GravityParams { g: 1.0, softening: 0.05 },
    );
    let mut set = spec.workload.generate();
    set.recenter();
    prime(&mut set, &mut engine);
    sink.snapshot()
}

/// Compact CSV header: one row per event, empty cells where a column does
/// not apply.
pub const TRACE_CSV_HEADER: &str = "event,id,name,start_us,dur_us,bytes";

fn us(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

/// Renders a [`Trace`] as the compact per-job CSV.
pub fn trace_csv(trace: &Trace) -> String {
    let mut out = String::from(TRACE_CSV_HEADER);
    out.push('\n');
    let mut row = |cells: [String; 6]| {
        out.push_str(&cells.join(","));
        out.push('\n');
    };
    for lt in &trace.launches {
        row([
            "launch".into(),
            lt.launch_id.to_string(),
            lt.kernel.clone(),
            us(lt.start_s),
            us(lt.timing.seconds),
            String::new(),
        ]);
    }
    for tr in &trace.transfers {
        row([
            "transfer".into(),
            tr.transfer_id.to_string(),
            if tr.to_device { "h2d".into() } else { "d2h".into() },
            us(tr.start_s),
            us(tr.seconds),
            tr.bytes.to_string(),
        ]);
    }
    for m in &trace.markers {
        row([
            "marker".into(),
            String::new(),
            m.label.clone(),
            us(m.at_s),
            String::new(),
            String::new(),
        ]);
    }
    for ft in &trace.faults {
        row([
            "fault".into(),
            ft.fault_id.to_string(),
            format!("{} {}", ft.kind.id(), ft.op),
            us(ft.at_s),
            us(ft.charged_s),
            String::new(),
        ]);
    }
    out
}

/// Writes `bench.json` and `trace.csv` for a computed result into its work
/// directory, atomically, through the `fs` seam.
pub fn write_artifacts(
    result: &JobResult,
    dir: &Path,
    fs: &dyn SpoolFs,
) -> Result<ArtifactSet, JobError> {
    fs.create_dir_all(dir).map_err(|e| JobError::io(dir.display().to_string(), e))?;
    let trace = traced_evaluation(&result.spec);

    let record = BenchRecord {
        job: result.hash_hex.clone(),
        label: result.spec.label(),
        plan: result.spec.plan.id().to_string(),
        n: result.spec.workload.n,
        steps: result.steps,
        simulated_total_s: result.simulated_total_s,
        simulated_kernel_s: result.simulated_kernel_s,
        recovery_s: result.recovery_s,
        fault_total: result.fault_total,
        resumed_from: result.resumed_from,
        retries: result.retries,
        trace_launches: trace.launches.len(),
        trace_transfers: trace.transfers.len(),
        plan_source: result.spec.plan_source.clone(),
    };
    let bench_json = dir.join("bench.json");
    let json = serde_json::to_string_pretty(&record).map_err(|e| JobError::Parse {
        path: bench_json.display().to_string(),
        msg: e.to_string(),
    })?;
    fs.write_atomic(&bench_json, &json)
        .map_err(|e| JobError::io(bench_json.display().to_string(), e))?;

    let trace_path = dir.join("trace.csv");
    fs.write_atomic(&trace_path, &trace_csv(&trace))
        .map_err(|e| JobError::io(trace_path.display().to_string(), e))?;
    Ok(ArtifactSet { bench_json, trace_csv: trace_path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_job, RunOptions, RunStatus};
    use crate::spec::JobSpec;
    use plans::prelude::PlanKind;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-artifact").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn artifacts_are_written_parseable_and_deterministic() {
        let spec = JobSpec::new(WorkloadSpec::plummer(96, 7), PlanKind::JwParallel, 2);
        let dir = tmp("emit");
        let result = match run_job(&spec, &dir, &RunOptions::default()).unwrap() {
            RunStatus::Complete(result) => *result,
            other => panic!("unexpected status {other:?}"),
        };
        let set = write_artifacts(&result, &dir, &crate::fsx::RealFs).unwrap();
        let bench: BenchRecord =
            serde_json::from_str(&std::fs::read_to_string(&set.bench_json).unwrap()).unwrap();
        assert_eq!(bench.job, result.hash_hex);
        assert_eq!(bench.steps, 2);
        assert_eq!(bench.plan_source, None, "pinned plan has no auto provenance");
        assert!(bench.trace_launches > 0);
        assert!(bench.simulated_total_s > 0.0);

        let csv = std::fs::read_to_string(&set.trace_csv).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), TRACE_CSV_HEADER);
        let width = TRACE_CSV_HEADER.split(',').count();
        let mut kinds = std::collections::HashSet::new();
        for line in lines {
            assert_eq!(line.split(',').count(), width, "ragged row: {line}");
            kinds.insert(line.split(',').next().unwrap().to_string());
        }
        assert!(kinds.contains("launch"));
        assert!(kinds.contains("transfer"));

        // second emission is byte-identical
        let csv2 = {
            let dir2 = tmp("emit-again");
            let set2 = write_artifacts(&result, &dir2, &crate::fsx::RealFs).unwrap();
            let text = std::fs::read_to_string(&set2.trace_csv).unwrap();
            std::fs::remove_dir_all(&dir2).ok();
            text
        };
        assert_eq!(csv, csv2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_source_provenance_reaches_the_artifact() {
        let mut spec = JobSpec::new(WorkloadSpec::plummer(64, 9), PlanKind::IParallel, 1);
        spec.plan_source = Some("auto:db-hit".to_string());
        let dir = tmp("provenance");
        let result = match run_job(&spec, &dir, &RunOptions::default()).unwrap() {
            RunStatus::Complete(result) => *result,
            other => panic!("unexpected status {other:?}"),
        };
        let set = write_artifacts(&result, &dir, &crate::fsx::RealFs).unwrap();
        let bench: BenchRecord =
            serde_json::from_str(&std::fs::read_to_string(&set.bench_json).unwrap()).unwrap();
        assert_eq!(bench.plan_source.as_deref(), Some("auto:db-hit"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_sim_backends_emit_empty_traces() {
        for backend in [plans::prelude::BackendKind::Host, plans::prelude::BackendKind::F32] {
            let mut spec = JobSpec::new(WorkloadSpec::plummer(64, 5), PlanKind::IParallel, 1);
            spec.backend = Some(backend);
            let trace = traced_evaluation(&spec);
            assert!(trace.is_empty(), "{backend:?} must not trace");
            assert_eq!(trace_csv(&trace).trim_end(), TRACE_CSV_HEADER);
        }
    }

    #[test]
    fn faulty_spec_produces_fault_rows() {
        let mut spec = JobSpec::new(WorkloadSpec::plummer(128, 3), PlanKind::IParallel, 1);
        spec.fault_seed = Some(3);
        spec.fault_prob = Some(0.5);
        let trace = traced_evaluation(&spec);
        assert!(!trace.faults.is_empty(), "p=0.5 must hit the priming evaluation");
        let csv = trace_csv(&trace);
        assert!(csv.lines().any(|l| l.starts_with("fault,")), "{csv}");
    }
}
