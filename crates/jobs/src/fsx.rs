//! The injectable filesystem seam under every durable mutation.
//!
//! The spool's crash-consistency story rests on a short list of primitive
//! filesystem mutations — `create_dir_all`, `write`, `rename`,
//! `remove_file` — composed into atomic-rename transactions. [`SpoolFs`]
//! makes that list *explicit and injectable*: production code runs on
//! [`RealFs`] (plain `std::fs`), while the crash-point fuzzer
//! ([`crate::crashpoint`]) substitutes a [`CrashFs`] that performs the
//! first `k` mutations faithfully and then refuses every further one —
//! exactly the on-disk state a `kill -9` after the `k`-th syscall leaves
//! behind. Because every spool, cache, checkpoint, and artifact write goes
//! through this seam, enumerating `k` over a whole job lifecycle enumerates
//! every crash point the subsystem can experience.
//!
//! Reads are deliberately *not* virtualized: they cannot change the durable
//! state, so they are irrelevant to crash consistency and stay plain
//! `std::fs` at the call sites.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Message carried by the [`io::Error`] a [`CrashFs`] injects once its
/// budget is spent. [`is_crashpoint`] recognizes it anywhere in a
/// [`crate::error::JobError`] chain.
pub const CRASH_MARKER: &str = "crashpoint: simulated crash after mutation budget";

/// The primitive durable mutations the job subsystem performs.
///
/// Implementations must be thread-safe: the server runs jobs concurrently,
/// and each worker checkpoints through the same seam.
pub trait SpoolFs: Send + Sync + std::fmt::Debug {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// `std::fs::write`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// `std::fs::rename`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// `std::fs::remove_file`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// The atomic-write transaction every durable file goes through:
    /// `.tmp` sibling first, then rename. Two mutations; a crash between
    /// them leaves only deletable litter.
    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        self.write(&tmp, text.as_bytes())?;
        self.rename(&tmp, path)
    }
}

/// The production filesystem: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl SpoolFs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// The default seam: a shared [`RealFs`].
pub fn real_fs() -> Arc<dyn SpoolFs> {
    Arc::new(RealFs)
}

/// A filesystem that dies after a fixed number of mutations.
///
/// The first `budget` mutating operations are performed by the wrapped
/// [`RealFs`]; every later one returns an [`io::Error`] carrying
/// [`CRASH_MARKER`] *without touching the disk* — the durable state is
/// frozen at an exact prefix of the mutation sequence, which is what a
/// power cut after the `budget`-th syscall leaves. With
/// [`CrashFs::counting`] the budget is effectively infinite and the
/// instance doubles as the op counter that sizes the fuzz enumeration.
#[derive(Debug)]
pub struct CrashFs {
    remaining: AtomicI64,
    used: AtomicU64,
}

impl CrashFs {
    /// A seam that crashes after `budget` mutations.
    pub fn with_budget(budget: u64) -> Arc<Self> {
        Arc::new(CrashFs { remaining: AtomicI64::new(budget as i64), used: AtomicU64::new(0) })
    }

    /// A seam that never crashes but counts every mutation.
    pub fn counting() -> Arc<Self> {
        Arc::new(CrashFs { remaining: AtomicI64::new(i64::MAX), used: AtomicU64::new(0) })
    }

    /// Mutations performed so far (crash-refused ones excluded).
    pub fn ops_used(&self) -> u64 {
        self.used.load(Ordering::SeqCst)
    }

    /// True once the budget is spent and the simulated machine is "down".
    pub fn crashed(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) <= 0
    }

    fn spend(&self) -> io::Result<()> {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err(io::Error::other(CRASH_MARKER));
        }
        self.used.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

impl SpoolFs for CrashFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // only charge a mutation when the directory is genuinely created:
        // the common re-assertion of an existing tree is a no-op on disk,
        // and charging it would make op numbering depend on call order
        // rather than durable effects
        if path.is_dir() {
            return Ok(());
        }
        self.spend()?;
        RealFs.create_dir_all(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.spend()?;
        RealFs.write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.spend()?;
        RealFs.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.spend()?;
        RealFs.remove_file(path)
    }
}

/// True when `err`'s chain bottoms out in a [`CrashFs`] injection — the
/// fuzz harness's signal to stop the lifecycle and run recovery.
pub fn is_crashpoint(err: &crate::error::JobError) -> bool {
    let mut source: Option<&(dyn std::error::Error + 'static)> = Some(err);
    while let Some(e) = source {
        if e.to_string().contains(CRASH_MARKER) {
            return true;
        }
        source = e.source();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-fsx").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counting_fs_counts_every_mutation() {
        let dir = tmp("count");
        let fs = CrashFs::counting();
        fs.write(&dir.join("a"), b"1").unwrap();
        fs.write_atomic(&dir.join("b"), "2").unwrap(); // write + rename
        fs.remove_file(&dir.join("a")).unwrap();
        assert_eq!(fs.ops_used(), 4);
        assert!(!fs.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_budget_freezes_state_at_an_exact_prefix() {
        let dir = tmp("budget");
        let fs = CrashFs::with_budget(1);
        // op 1 lands: the .tmp write; op 2 (the rename) is refused, so the
        // durable name never appears — the classic mid-transaction crash
        let err = fs.write_atomic(&dir.join("x.json"), "{}").unwrap_err();
        assert!(err.to_string().contains(CRASH_MARKER));
        assert!(dir.join("x.json.tmp").exists(), "first op was applied");
        assert!(!dir.join("x.json").exists(), "second op was refused");
        assert!(fs.crashed());
        // once down, everything is refused without touching disk
        assert!(fs.write(&dir.join("y"), b"z").is_err());
        assert!(!dir.join("y").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn existing_dirs_are_not_charged() {
        let dir = tmp("dirs");
        let fs = CrashFs::counting();
        fs.create_dir_all(&dir.join("sub")).unwrap();
        assert_eq!(fs.ops_used(), 1);
        fs.create_dir_all(&dir.join("sub")).unwrap();
        assert_eq!(fs.ops_used(), 1, "re-assertion is free");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashpoint_errors_are_recognizable_through_the_chain() {
        let io = std::io::Error::other(CRASH_MARKER);
        let err = crate::error::JobError::io("/spool/x", io);
        assert!(is_crashpoint(&err));
        let plain = crate::error::JobError::io("/spool/x", std::io::Error::other("disk full"));
        assert!(!is_crashpoint(&plain));
    }
}
