//! Crash-point fuzzing: prove the spool survives a crash after *every*
//! durable mutation.
//!
//! The crash-consistency argument in [`crate::spool`] is inductive: each
//! mutation is atomic, each transition writes its destination before
//! removing its source, and [`Spool::open`] repairs every intermediate
//! state. This module turns the induction into an exhaustive test. A
//! scripted job lifecycle — submit → run → preempt at a checkpoint
//! boundary → resume → complete → cache-hit resubmission, with artifacts
//! and a daemon heartbeat — is first executed on a counting
//! [`crate::fsx::CrashFs`] to number its durable mutations `1..=M`; then,
//! for each prefix length `k`, the lifecycle is replayed on a fresh
//! directory with a [`CrashFs`] that dies after `k` mutations. That leaves
//! on disk exactly the state a `kill -9` after the `k`-th syscall would
//! leave. Recovery is then asserted:
//!
//! 1. [`Spool::open`] succeeds and leaves every acknowledged job in
//!    exactly one state directory — nothing lost, nothing duplicated
//!    (a submission is *acknowledged* once `submit` returned `Ok`, i.e.
//!    its durable rename landed);
//! 2. a plain drain on the recovered spool completes every acknowledged
//!    job into `done/`;
//! 3. the batch job's final result — whatever mixture of preemption,
//!    crash, and resume it went through — is bit-exact against an
//!    uninterrupted reference integration.
//!
//! The enumeration is exhaustive by construction: every durable mutation
//! the subsystem can make goes through the [`crate::fsx::SpoolFs`] seam,
//! so `k` ranges over every possible crash point of the lifecycle.

use crate::error::JobError;
use crate::fsx::{is_crashpoint, CrashFs, SpoolFs};
use crate::runner::reference_set;
use crate::server::{drain, drain_round, DrainSummary, ServerConfig};
use crate::spec::{JobSpec, Priority};
use crate::spool::{JobState, Spool, SpoolRecovery};
use nbody_core::body::ParticleSet;
use plans::prelude::PlanKind;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use workloads::spec::WorkloadSpec;

/// The batch job the lifecycle preempts, resumes, and verifies.
pub fn batch_spec() -> JobSpec {
    let mut s = JobSpec::new(WorkloadSpec::plummer(32, 101), PlanKind::JwParallel, 4);
    s.checkpoint_every = 2;
    s.priority = Priority::Batch;
    s
}

/// The high-priority job that arrives mid-lifecycle.
pub fn high_spec() -> JobSpec {
    let mut s = JobSpec::new(WorkloadSpec::plummer(32, 102), PlanKind::JParallel, 2);
    s.checkpoint_every = 1;
    s.priority = Priority::High;
    s
}

fn lifecycle_config() -> ServerConfig {
    ServerConfig { max_parallel: 1, artifacts: true, ..Default::default() }
}

/// Runs the scripted lifecycle on `fs`, pushing each acknowledged
/// submission id into `acked` the moment its durable write has landed.
/// Sequential (`max_parallel = 1`) and preempted via a pre-raised flag, so
/// the mutation sequence is identical on every run — which is what makes
/// prefix `k` meaningful.
fn lifecycle(root: &Path, fs: Arc<dyn SpoolFs>, acked: &mut Vec<String>) -> Result<(), JobError> {
    let (spool, _) = Spool::open_with(root, fs)?;
    let config = lifecycle_config();
    let cache = spool.cache();

    // submit → run → preempt: the flag is already up, so the wave yields
    // at the first checkpoint boundary and requeues with progress intact
    acked.push(spool.submit(&batch_spec())?.id);
    let mut preempting = config.clone();
    preempting.run.preempt = Some(Arc::new(AtomicBool::new(true)));
    let mut scratch = DrainSummary { reports: Vec::new(), recovery: SpoolRecovery::default() };
    drain_round(&spool, &cache, &preempting, &mut scratch)?;

    // a high-priority job arrives; the next drain runs it first, then
    // resumes the preempted batch job from its checkpoint and verifies it
    acked.push(spool.submit(&high_spec())?.id);
    drain(&spool, SpoolRecovery::default(), &config)?;

    // identical resubmission: served from the content-addressed cache
    acked.push(spool.submit(&batch_spec())?.id);
    drain(&spool, SpoolRecovery::default(), &config)?;

    // one daemon tick on the drained spool covers the heartbeat writes
    let daemon = crate::daemon::DaemonConfig {
        server: config,
        max_ticks: Some(1),
        exit_when_idle: true,
        idle_sleep_ms: 0,
        arrivals: Vec::new(),
    };
    let stop = AtomicBool::new(false);
    crate::daemon::run_daemon(&spool, SpoolRecovery::default(), &daemon, &stop)?;
    Ok(())
}

fn verify_recovery(root: &Path, acked: &[String], reference: &ParticleSet) -> Result<(), String> {
    // recovery runs on the real filesystem: the machine came back up
    let (spool, recovery) = Spool::open(root).map_err(|e| format!("recovery open failed: {e}"))?;

    // no acknowledged job lost or duplicated
    for id in acked {
        let name = format!("{id}.json");
        let homes: Vec<&str> = JobState::all()
            .iter()
            .filter(|s| spool.dir(**s).join(&name).exists())
            .map(|s| s.dir_name())
            .collect();
        if homes.len() != 1 {
            return Err(format!("job {id} is in {homes:?} after recovery (want exactly one)"));
        }
    }

    // the recovered spool drains to completion...
    let config = ServerConfig { max_parallel: 1, artifacts: false, ..Default::default() };
    let summary =
        drain(&spool, recovery, &config).map_err(|e| format!("recovery drain failed: {e}"))?;
    if !summary.ok() {
        return Err(format!("recovery drain degraded:\n{}", summary.render()));
    }
    for id in acked {
        if spool.job_state(id) != Some(JobState::Done) {
            return Err(format!("job {id} did not reach done/ after recovery"));
        }
    }

    // ...and, when the batch submission made it in before the crash, its
    // physics is bit-exact despite any mixture of crash, preempt, resume
    let batch_hash = batch_spec().hash_hex();
    if acked.iter().any(|id| id.ends_with(&batch_hash)) {
        let result = spool
            .cache()
            .lookup(&batch_hash)
            .map_err(|e| format!("cache lookup failed: {e}"))?
            .ok_or("batch result missing from cache after recovery")?;
        if result.final_snapshot.set.pos() != reference.pos()
            || result.final_snapshot.set.vel() != reference.vel()
        {
            return Err("batch result diverged from the uninterrupted reference".into());
        }
    }
    Ok(())
}

/// What one fuzz run proved.
#[derive(Debug)]
pub struct CrashpointReport {
    /// Durable mutations in the uninterrupted lifecycle (`M`).
    pub mutations: u64,
    /// Crash prefixes tested, each recovering with no job lost or
    /// duplicated and bit-exact physics.
    pub prefixes: Vec<u64>,
}

impl CrashpointReport {
    /// The verdict line CI greps.
    pub fn render(&self) -> String {
        format!(
            "CRASHPOINT OK ({} crash prefixes of {} mutations, all recovered)\n",
            self.prefixes.len(),
            self.mutations
        )
    }
}

/// Enumerates the lifecycle's crash points and verifies recovery after
/// each. `stride = 1` tests every prefix (the CI release-mode gate);
/// larger strides sample the space for cheap debug-mode runs. Returns an
/// error describing the first violated invariant, if any.
pub fn fuzz(scratch: &Path, stride: u64) -> Result<CrashpointReport, String> {
    // pass 1: count the mutation sequence on a crash-free seam
    let probe = scratch.join("probe");
    std::fs::remove_dir_all(&probe).ok();
    let counter = CrashFs::counting();
    let mut acked = Vec::new();
    lifecycle(&probe, counter.clone(), &mut acked)
        .map_err(|e| format!("uninterrupted lifecycle failed: {e}"))?;
    let mutations = counter.ops_used();
    std::fs::remove_dir_all(&probe).ok();

    let reference = reference_set(&batch_spec());
    let mut prefixes = Vec::new();
    let mut k = 0u64;
    while k < mutations {
        let root = scratch.join(format!("k{k:04}"));
        std::fs::remove_dir_all(&root).ok();
        let crash_fs = CrashFs::with_budget(k);
        let mut acked = Vec::new();
        match lifecycle(&root, crash_fs, &mut acked) {
            Ok(()) => {
                return Err(format!(
                    "prefix {k} of {mutations} completed without crashing: the budget \
                     accounting and the mutation count disagree"
                ));
            }
            Err(e) if is_crashpoint(&e) => {}
            Err(e) => {
                return Err(format!("prefix {k}: lifecycle died with a non-crash error: {e}"))
            }
        }
        verify_recovery(&root, &acked, &reference).map_err(|e| format!("prefix {k}: {e}"))?;
        std::fs::remove_dir_all(&root).ok();
        prefixes.push(k);
        k += stride.max(1);
    }
    Ok(CrashpointReport { mutations, prefixes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-crashpoint").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn lifecycle_is_deterministic_and_rich_enough() {
        // the prefix enumeration is only meaningful if the op sequence is
        // reproducible, and the acceptance bar wants >= 50 crash points
        let a = CrashFs::counting();
        let mut acked = Vec::new();
        lifecycle(&tmp("det-a"), a.clone(), &mut acked).unwrap();
        assert_eq!(acked.len(), 3);
        let b = CrashFs::counting();
        lifecycle(&tmp("det-b"), b.clone(), &mut Vec::new()).unwrap();
        assert_eq!(a.ops_used(), b.ops_used(), "mutation count must be reproducible");
        assert!(a.ops_used() >= 50, "lifecycle has {} mutations, want >= 50", a.ops_used());
        std::fs::remove_dir_all(tmp("det-a").parent().unwrap()).ok();
    }

    #[test]
    fn sampled_prefixes_recover() {
        // debug-mode sample; the CI release gate runs stride 1 over all
        // prefixes via tests/crashpoint_fuzz.rs
        let scratch = tmp("sampled");
        let report = fuzz(&scratch, 13).unwrap();
        assert!(report.prefixes.len() >= 4, "{report:?}");
        assert!(report.render().starts_with("CRASHPOINT OK"));
        std::fs::remove_dir_all(&scratch).ok();
    }
}
