//! Executes one job attempt: resume, integrate, checkpoint, yield.
//!
//! [`run_job`] is the single-attempt engine under the server's retry loop.
//! It resumes from the newest usable checkpoint in the job's work directory
//! ([`crate::checkpoint::scan`]), re-primes forces from the restored
//! positions (bit-exact, per the determinism contract), integrates with
//! kick-drift-kick leapfrog, and checkpoints on the spec's cadence plus the
//! final step.
//!
//! Deadlines are *cooperative and simulated*: after each step the runner
//! compares the engine's accumulated simulated device seconds against
//! `spec.deadline_s`. On exceed it checkpoints the current step and returns
//! [`JobError::DeadlineExceeded`] — the server retries, and the retry
//! resumes from that checkpoint with a fresh budget. Because the simulated
//! clock is deterministic, the yield step — and therefore the retry count —
//! is identical across host thread counts and runs.
//!
//! A permanent device fault (injected device loss) panics deep in the
//! recovery layer by design; the server catches it at the job boundary, so
//! this module stays panic-transparent.

use crate::cache::JobResult;
use crate::checkpoint::{save_checkpoint_with, scan};
use crate::error::JobError;
use crate::fsx::{real_fs, SpoolFs};
use crate::spec::JobSpec;
use gpu_sim::prelude::{Device, DeviceSpec, FaultPlan, TransferModel};
use nbody_core::body::ParticleSet;
use nbody_core::gravity::GravityParams;
use nbody_core::integrator::{prime, Integrator, LeapfrogKdk};
use plans::engine::PlanForceEngine;
use plans::prelude::{make_backend, Backend, BackendKind, PlanConfig, SimBackend};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use workloads::snapshot::Snapshot;

/// Knobs for one attempt that are not part of the job spec (and therefore
/// never hashed): supervision hooks and test/CI hooks.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Wall-clock milliseconds to sleep after each step. Used by the serve
    /// binary's `--throttle-ms` so a CI `SIGKILL` reliably lands mid-job;
    /// never affects the simulated clocks or the trajectory.
    pub throttle_ms: u64,
    /// Abandon the attempt after this step *without* transitioning the
    /// spool — an in-process stand-in for a host crash (the on-disk state
    /// is exactly what a `kill -9` at that instant leaves).
    pub crash_after: Option<usize>,
    /// Cooperative preemption flag: when the scheduler sets it, the attempt
    /// yields [`RunStatus::Preempted`] at its next checkpoint boundary —
    /// progress is durable, so the requeued job resumes bit-exactly.
    pub preempt: Option<Arc<AtomicBool>>,
    /// Wall-clock watchdog budget per attempt, in seconds. Distinct from
    /// the simulated-seconds deadline: this one catches attempts that are
    /// genuinely stuck on the host. Checked cooperatively between steps;
    /// on exceed the attempt checkpoints and returns
    /// [`JobError::WatchdogTimeout`].
    pub watchdog_s: Option<f64>,
    /// The filesystem seam checkpoint writes go through.
    pub fs: Arc<dyn SpoolFs>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            throttle_ms: 0,
            crash_after: None,
            preempt: None,
            watchdog_s: None,
            fs: real_fs(),
        }
    }
}

/// How an attempt ended (errors are returned separately as [`JobError`]).
#[derive(Debug)]
pub enum RunStatus {
    /// The job integrated all its steps; the result is ready to cache.
    Complete(Box<JobResult>),
    /// The simulated crash hook fired; state survives only as checkpoints.
    Crashed {
        /// The step the attempt had reached when it died.
        at_step: usize,
    },
    /// The scheduler's preemption flag fired; the attempt checkpointed at
    /// `at_step` and yielded. Requeue and resume bit-exactly.
    Preempted {
        /// The checkpoint boundary the attempt yielded at.
        at_step: usize,
    },
}

/// The initial particle set of a spec, recentered like every driver in this
/// repo does before integrating.
fn initial_set(spec: &JobSpec) -> ParticleSet {
    let mut set = spec.workload.generate();
    set.recenter();
    set
}

fn plan_config(spec: &JobSpec) -> PlanConfig {
    let mut config = PlanConfig::default();
    if let Some(tile) = spec.tile {
        // one knob pins both block geometries. The tile is part of the
        // canonical hash precisely because it is NOT physics-neutral in
        // general: j/jw slice grouping and walk-level MAC geometry depend
        // on it (DESIGN.md §13), so differently-tiled runs must never share
        // a cache entry.
        config.block_size = tile;
        config.walk_size = tile;
    }
    config
}

fn engine(spec: &JobSpec, with_faults: bool) -> PlanForceEngine {
    let config = plan_config(spec);
    let params = GravityParams { g: 1.0, softening: 0.05 };
    let backend: Box<dyn Backend> = match spec.backend_kind() {
        // admission guarantees fault injection only reaches the sim
        // backend, but build the device here anyway so the plan can carry it
        BackendKind::Sim => {
            let mut device = Device::with_transfer_model(
                DeviceSpec::radeon_hd_5850(),
                TransferModel::pcie2_x16(),
            );
            if with_faults {
                if let Some((seed, cfg)) = spec.fault_config() {
                    device.set_fault_plan(FaultPlan::new(seed, cfg));
                }
            }
            Box::new(SimBackend::new(device, config))
        }
        other => make_backend(other, config),
    };
    PlanForceEngine::with_backend(backend, spec.plan, params)
}

/// Runs (or resumes) one attempt of `spec`, checkpointing into `dir`.
///
/// On success the returned [`JobResult`] carries the final snapshot, the
/// attempt's simulated clocks, fault tally, and the step it resumed from;
/// `retries` is left at zero for the server to fill in. A deadline yield
/// returns [`JobError::DeadlineExceeded`] with the progress flag the retry
/// policy keys on.
pub fn run_job(spec: &JobSpec, dir: &Path, opts: &RunOptions) -> Result<RunStatus, JobError> {
    opts.fs.create_dir_all(dir).map_err(|e| JobError::io(dir.display().to_string(), e))?;
    let (start_step, mut set) = match scan(dir)?.best {
        Some((step, snap)) => (step, snap.set),
        None => (0, initial_set(spec)),
    };

    let mut eng = engine(spec, true);
    // re-prime after restore: forces are a deterministic function of the
    // restored positions, so this reproduces the pre-crash accelerations
    prime(&mut set, &mut eng);

    let started = std::time::Instant::now();
    let mut step = start_step;
    while step < spec.steps {
        LeapfrogKdk.step(&mut set, &mut eng, spec.dt);
        step += 1;
        let on_cadence = step % spec.checkpoint_every == 0 || step == spec.steps;
        if on_cadence {
            save_checkpoint_with(
                opts.fs.as_ref(),
                dir,
                &spec.label(),
                step as f64 * spec.dt,
                step,
                &set,
            )?;
        }
        if opts.crash_after == Some(step) && step < spec.steps {
            return Ok(RunStatus::Crashed { at_step: step });
        }
        // preemption only fires where a checkpoint just landed: the yield
        // point is always durable, so the requeued job resumes bit-exactly
        if on_cadence && step < spec.steps {
            if let Some(flag) = &opts.preempt {
                if flag.load(Ordering::SeqCst) {
                    return Ok(RunStatus::Preempted { at_step: step });
                }
            }
        }
        if let Some(deadline_s) = spec.deadline_s {
            let simulated_s = eng.simulated_total_seconds();
            if step < spec.steps && simulated_s > deadline_s {
                if !on_cadence {
                    save_checkpoint_with(
                        opts.fs.as_ref(),
                        dir,
                        &spec.label(),
                        step as f64 * spec.dt,
                        step,
                        &set,
                    )?;
                }
                return Err(JobError::DeadlineExceeded {
                    step,
                    simulated_s,
                    deadline_s,
                    progressed: step > start_step,
                });
            }
        }
        if let Some(watchdog_s) = opts.watchdog_s {
            let elapsed_s = started.elapsed().as_secs_f64();
            if step < spec.steps && elapsed_s > watchdog_s {
                if !on_cadence {
                    save_checkpoint_with(
                        opts.fs.as_ref(),
                        dir,
                        &spec.label(),
                        step as f64 * spec.dt,
                        step,
                        &set,
                    )?;
                }
                return Err(JobError::WatchdogTimeout { step, elapsed_s, watchdog_s });
            }
        }
        if opts.throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.throttle_ms));
        }
    }

    let final_snapshot = Snapshot::new(spec.label(), spec.steps as f64 * spec.dt, set);
    let result_checksum = final_snapshot.checksum.expect("fresh snapshots carry a checksum");
    let fault_total =
        eng.device().and_then(|d| d.fault_plan()).map(|p| p.counts().total() as u64).unwrap_or(0);
    Ok(RunStatus::Complete(Box::new(JobResult {
        hash_hex: spec.hash_hex(),
        spec: spec.clone(),
        final_snapshot,
        result_checksum,
        steps: spec.steps,
        simulated_total_s: eng.simulated_total_seconds(),
        simulated_kernel_s: eng.simulated_kernel_seconds(),
        recovery_s: eng.simulated_recovery_seconds(),
        fault_total,
        resumed_from: start_step,
        retries: 0,
    })))
}

/// The fault-free, checkpoint-free reference trajectory for `spec` — what
/// crash-recovery and cache verification compare against bit-exactly.
pub fn reference_set(spec: &JobSpec) -> ParticleSet {
    let mut set = initial_set(spec);
    let mut eng = engine(spec, false);
    prime(&mut set, &mut eng);
    for _ in 0..spec.steps {
        LeapfrogKdk.step(&mut set, &mut eng, spec.dt);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use plans::prelude::PlanKind;
    use std::path::PathBuf;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-runner").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec() -> JobSpec {
        let mut s = JobSpec::new(WorkloadSpec::plummer(96, 42), PlanKind::JwParallel, 6);
        s.checkpoint_every = 2;
        s
    }

    fn complete(status: RunStatus) -> JobResult {
        match status {
            RunStatus::Complete(result) => *result,
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn fresh_run_completes_and_matches_reference() {
        let dir = tmp("fresh");
        let result = complete(run_job(&spec(), &dir, &RunOptions::default()).unwrap());
        assert_eq!(result.resumed_from, 0);
        assert_eq!(result.steps, 6);
        assert_eq!(result.fault_total, 0);
        assert_eq!(result.recovery_s, 0.0);
        assert!(result.simulated_total_s > result.simulated_kernel_s);
        let reference = reference_set(&spec());
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        assert_eq!(result.final_snapshot.set.vel(), reference.vel());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_then_resume_is_bitexact() {
        let dir = tmp("crash");
        let opts = RunOptions { crash_after: Some(3), ..Default::default() };
        match run_job(&spec(), &dir, &opts).unwrap() {
            RunStatus::Crashed { at_step } => assert_eq!(at_step, 3),
            other => panic!("crash hook did not fire: {other:?}"),
        }
        let result = complete(run_job(&spec(), &dir, &RunOptions::default()).unwrap());
        assert_eq!(result.resumed_from, 2, "newest checkpoint before the crash is step 2");
        let reference = reference_set(&spec());
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        assert_eq!(result.final_snapshot.set.vel(), reference.vel());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_yields_checkpoint_and_retries_complete_bitexactly() {
        let dir = tmp("deadline-probe");
        let full = complete(run_job(&spec(), &dir, &RunOptions::default()).unwrap());
        std::fs::remove_dir_all(&dir).ok();

        let mut tight = spec();
        tight.deadline_s = Some(full.simulated_total_s * 0.4);
        let dir = tmp("deadline");
        let mut attempts = 0;
        let result = loop {
            attempts += 1;
            assert!(attempts <= 8, "deadline slicing did not converge");
            match run_job(&tight, &dir, &RunOptions::default()) {
                Ok(status) => break complete(status),
                Err(JobError::DeadlineExceeded { progressed, step, .. }) => {
                    assert!(progressed, "every attempt must advance at least one step");
                    assert!(step < tight.steps);
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        };
        assert!(attempts > 1, "deadline at 40% of total must slice the job");
        assert!(result.resumed_from > 0);
        let reference = reference_set(&spec());
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        assert_eq!(result.final_snapshot.set.vel(), reference.vel());

        // deterministic slicing: the same tight deadline yields the same
        // attempt count from a fresh directory
        let dir2 = tmp("deadline-again");
        let mut attempts2 = 0;
        loop {
            attempts2 += 1;
            match run_job(&tight, &dir2, &RunOptions::default()) {
                Ok(_) => break,
                Err(JobError::DeadlineExceeded { .. }) => {}
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert_eq!(attempts, attempts2);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn transient_faults_do_not_change_the_answer() {
        let mut faulty = spec();
        faulty.fault_seed = Some(3);
        faulty.fault_prob = Some(0.1);
        let dir = tmp("faulty");
        let result = complete(run_job(&faulty, &dir, &RunOptions::default()).unwrap());
        assert!(result.fault_total > 0, "seed 3 at p=0.1 must inject something");
        assert!(result.recovery_s > 0.0);
        let reference = reference_set(&faulty);
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        assert_eq!(result.final_snapshot.set.vel(), reference.vel());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_tiers_route_through_the_trait() {
        let dir = tmp("backend-sim");
        let sim = complete(run_job(&spec(), &dir, &RunOptions::default()).unwrap());

        // the f32 backend re-executes the device kernels bit-exactly, so the
        // whole trajectory matches the sim oracle — under a distinct hash
        let mut f32_spec = spec();
        f32_spec.backend = Some(BackendKind::F32);
        let dir_f = tmp("backend-f32");
        let f32_res = complete(run_job(&f32_spec, &dir_f, &RunOptions::default()).unwrap());
        assert_ne!(sim.hash_hex, f32_res.hash_hex);
        assert_eq!(sim.final_snapshot.set.pos(), f32_res.final_snapshot.set.pos());
        assert_eq!(sim.final_snapshot.set.vel(), f32_res.final_snapshot.set.vel());
        assert_eq!(f32_res.simulated_total_s, 0.0, "no simulated clock off the sim backend");

        // the host f64 tier computes different bits but the same physics,
        // and reproduces its own reference trajectory exactly
        let mut host_spec = spec();
        host_spec.backend = Some(BackendKind::Host);
        let dir_h = tmp("backend-host");
        let host = complete(run_job(&host_spec, &dir_h, &RunOptions::default()).unwrap());
        assert_ne!(host.hash_hex, sim.hash_hex);
        assert_ne!(host.hash_hex, f32_res.hash_hex);
        assert_ne!(host.final_snapshot.set.pos(), sim.final_snapshot.set.pos());
        assert!(host.final_snapshot.set.all_finite());
        let reference = reference_set(&host_spec);
        assert_eq!(host.final_snapshot.set.pos(), reference.pos());
        assert_eq!(host.final_snapshot.set.vel(), reference.vel());

        for dir in [dir, dir_f, dir_h] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn preemption_yields_at_checkpoint_boundary_and_resumes_bitexactly() {
        let dir = tmp("preempt");
        let flag = Arc::new(AtomicBool::new(true)); // raised before the attempt starts
        let opts = RunOptions { preempt: Some(Arc::clone(&flag)), ..Default::default() };
        match run_job(&spec(), &dir, &opts).unwrap() {
            RunStatus::Preempted { at_step } => {
                assert_eq!(at_step, 2, "first checkpoint boundary (checkpoint_every=2)");
                assert!(crate::checkpoint::checkpoint_path(&dir, at_step).exists());
            }
            other => panic!("expected preemption, got {other:?}"),
        }
        // flag lowered: the resumed attempt runs to completion from step 2
        flag.store(false, Ordering::SeqCst);
        let result = complete(run_job(&spec(), &dir, &opts).unwrap());
        assert_eq!(result.resumed_from, 2);
        let reference = reference_set(&spec());
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        assert_eq!(result.final_snapshot.set.vel(), reference.vel());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_checkpoints_then_times_out_stuck_attempts() {
        let dir = tmp("watchdog");
        // a zero budget trips on the very first step regardless of host
        // speed, and the trip point must be durable so a later attempt
        // resumes instead of restarting
        let opts = RunOptions { watchdog_s: Some(0.0), ..Default::default() };
        match run_job(&spec(), &dir, &opts).unwrap_err() {
            JobError::WatchdogTimeout { step, elapsed_s, watchdog_s } => {
                assert_eq!(step, 1);
                assert!(elapsed_s > watchdog_s);
                assert!(crate::checkpoint::checkpoint_path(&dir, step).exists());
            }
            other => panic!("expected watchdog timeout, got {other}"),
        }
        let result = complete(run_job(&spec(), &dir, &RunOptions::default()).unwrap());
        assert_eq!(result.resumed_from, 1);
        let reference = reference_set(&spec());
        assert_eq!(result.final_snapshot.set.pos(), reference.pos());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tile_override_changes_clocks_not_physics() {
        let dir_a = tmp("tile-a");
        let base = complete(run_job(&spec(), &dir_a, &RunOptions::default()).unwrap());
        let mut tiled = spec();
        tiled.tile = Some(128);
        let dir_b = tmp("tile-b");
        let other = complete(run_job(&tiled, &dir_b, &RunOptions::default()).unwrap());
        assert_ne!(base.hash_hex, other.hash_hex, "tile is hashed as provenance");
        assert_eq!(base.final_snapshot.set.pos(), other.final_snapshot.set.pos());
        assert_eq!(base.final_snapshot.set.vel(), other.final_snapshot.set.vel());
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
