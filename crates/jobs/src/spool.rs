//! The durable on-disk job spool: a crash-safe five-state machine.
//!
//! ```text
//! spool/
//!   seq                      next submission sequence ticket
//!   submitted/<id>.json      waiting for the scheduler
//!   running/<id>.json        claimed by a serve process
//!   done/<id>.json           completed (result in cache/)
//!   failed/<id>.json         terminal failure (typed error recorded)
//!   poisoned/<id>.json       quarantined: exhausted its attempt budget
//!   jobs/<hash16>/           per-job work dir: checkpoints + artifacts
//!   cache/<hash16>.json      content-addressed results
//!   daemon.json              daemon heartbeat (written atomically per tick)
//! ```
//!
//! Every file write goes through a `.tmp` sibling plus atomic rename, and
//! every state transition is `write destination → remove source`, so a
//! `kill -9` at any instant leaves either the old state, the new state, or
//! both — never a torn file. [`Spool::open`] repairs the "both" case with a
//! fixed precedence (`done`/`failed`/`poisoned` over `running` over
//! `submitted`), deletes stale `.tmp` litter *recursively across the whole
//! spool tree* (state dirs, the cache, and every per-job work/artifact
//! directory — a kill-9 between an artifact's `.tmp` write and its rename
//! must not leave debris forever), and re-queues jobs a dead server left in
//! `running/` so they resume from their checkpoints.
//!
//! Every mutation goes through the [`crate::fsx::SpoolFs`] seam, which is
//! what lets the crash-point fuzzer ([`crate::crashpoint`]) enumerate and
//! interrupt each one.

use crate::error::JobError;
use crate::fsx::{real_fs, SpoolFs};
use crate::spec::JobSpec;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The five job states; each is a directory under the spool root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting for the scheduler.
    Submitted,
    /// Claimed by a serve process.
    Running,
    /// Completed; the result is in the cache.
    Done,
    /// Terminal failure; the record carries the typed error.
    Failed,
    /// Quarantined: the job consumed its whole cross-restart attempt budget
    /// (watchdog kills, unrecoverable faults, crash loops) and will not be
    /// retried again. The record carries the typed reason.
    Poisoned,
}

impl JobState {
    /// Directory name under the spool root.
    pub fn dir_name(self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Poisoned => "poisoned",
        }
    }

    /// All states.
    pub fn all() -> [JobState; 5] {
        [
            JobState::Submitted,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Poisoned,
        ]
    }

    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Poisoned)
    }
}

/// One spooled job: the spec plus its submission identity and outcome
/// bookkeeping. This is the JSON document that moves between state dirs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Monotone submission sequence (scheduling tiebreaker within a
    /// priority class).
    pub seq: u64,
    /// Stable identity: `job-<seq:08>-<hash16>` (also the file stem).
    pub id: String,
    /// Canonical content hash of the spec, as 16 hex digits.
    pub hash_hex: String,
    /// The request itself.
    pub spec: JobSpec,
    /// Attempts started so far. Incremented durably at *claim* time
    /// ([`Spool::claim`]), so a job that crashes the server on every
    /// attempt still accumulates history and can be poisoned instead of
    /// requeued forever.
    pub attempts: u32,
    /// Typed error message for failed/poisoned jobs (`[id] detail` form).
    pub error: Option<String>,
}

impl JobRecord {
    /// The record's file name in any state directory.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.id)
    }
}

/// What [`Spool::open`] had to repair after a crash.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpoolRecovery {
    /// Jobs moved from `running/` back to `submitted/` (they resume from
    /// their newest checkpoint).
    pub requeued: usize,
    /// Stale `.tmp` files deleted across the whole spool tree.
    pub tmp_cleaned: usize,
    /// Duplicate records dropped (a crash between the two halves of a
    /// transition left the job in two state dirs).
    pub duplicates_dropped: usize,
}

/// Writes `text` to `path` atomically: `.tmp` sibling, then rename.
/// Production-only convenience over [`crate::fsx::RealFs`]; seam-aware code
/// uses [`SpoolFs::write_atomic`].
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    crate::fsx::RealFs.write_atomic(path, text)
}

/// Handle to a spool directory tree.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
    fs: Arc<dyn SpoolFs>,
}

impl Spool {
    /// Opens (creating if needed) the spool at `root` on the production
    /// filesystem. See [`Spool::open_with`].
    pub fn open(root: impl Into<PathBuf>) -> Result<(Self, SpoolRecovery), JobError> {
        Self::open_with(root, real_fs())
    }

    /// Opens the spool at `root` with every mutation routed through `fs`,
    /// and repairs any crash litter: stale `.tmp` files are deleted
    /// recursively across the whole tree (state dirs, cache, per-job
    /// work/artifact dirs), duplicate records are resolved by state
    /// precedence, and jobs a dead server left in `running/` are re-queued.
    pub fn open_with(
        root: impl Into<PathBuf>,
        fs: Arc<dyn SpoolFs>,
    ) -> Result<(Self, SpoolRecovery), JobError> {
        let spool = Spool { root: root.into(), fs };
        let mut recovery = SpoolRecovery::default();
        for state in JobState::all() {
            let dir = spool.dir(state);
            spool
                .fs
                .create_dir_all(&dir)
                .map_err(|e| JobError::io(dir.display().to_string(), e))?;
        }
        for extra in [spool.cache_dir(), spool.jobs_dir()] {
            spool
                .fs
                .create_dir_all(&extra)
                .map_err(|e| JobError::io(extra.display().to_string(), e))?;
        }
        // one recursive sweep covers everything: state dirs, the cache, and
        // every per-job work directory however deep its artifacts nest
        recovery.tmp_cleaned +=
            crate::checkpoint::clean_stale_tmp_recursive(&spool.root, spool.fs.as_ref())
                .map_err(|e| JobError::io(spool.root.display().to_string(), e))?;

        // duplicate resolution: a terminal record wins over running, which
        // wins over submitted; then requeue whatever genuinely runs nowhere
        let terminal: Vec<String> = [JobState::Done, JobState::Failed, JobState::Poisoned]
            .into_iter()
            .flat_map(|s| spool.file_names(s))
            .collect();
        for state in [JobState::Running, JobState::Submitted] {
            for name in spool.file_names(state) {
                if terminal.contains(&name) {
                    spool.fs.remove_file(&spool.dir(state).join(&name)).ok();
                    recovery.duplicates_dropped += 1;
                }
            }
        }
        let running: Vec<String> = spool.file_names(JobState::Running);
        for name in running {
            let dst = spool.dir(JobState::Submitted).join(&name);
            if dst.exists() {
                // crash between claim-write and submitted-remove: the
                // submitted copy is authoritative, drop the claim
                spool.fs.remove_file(&spool.dir(JobState::Running).join(&name)).ok();
                recovery.duplicates_dropped += 1;
            } else {
                spool
                    .fs
                    .rename(&spool.dir(JobState::Running).join(&name), &dst)
                    .map_err(|e| JobError::io(dst.display().to_string(), e))?;
                recovery.requeued += 1;
            }
        }
        Ok((spool, recovery))
    }

    /// The spool root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The filesystem seam all of this spool's mutations go through.
    pub fn fs(&self) -> Arc<dyn SpoolFs> {
        Arc::clone(&self.fs)
    }

    /// The directory for `state`.
    pub fn dir(&self, state: JobState) -> PathBuf {
        self.root.join(state.dir_name())
    }

    /// The content-addressed result cache directory.
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    /// The parent of all per-job work directories.
    pub fn jobs_dir(&self) -> PathBuf {
        self.root.join("jobs")
    }

    /// The daemon heartbeat/status file.
    pub fn status_path(&self) -> PathBuf {
        self.root.join("daemon.json")
    }

    /// The work directory (checkpoints, artifacts) for a job hash. Shared
    /// by identical resubmissions — which is exactly what lets a re-queued
    /// job resume the checkpoints of its crashed predecessor.
    pub fn job_dir(&self, hash_hex: &str) -> PathBuf {
        self.jobs_dir().join(hash_hex)
    }

    /// The result cache over this spool's cache directory (sharing the
    /// spool's filesystem seam).
    pub fn cache(&self) -> crate::cache::ResultCache {
        crate::cache::ResultCache::with_fs(self.cache_dir(), Arc::clone(&self.fs))
    }

    fn file_names(&self, state: JobState) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(self.dir(state)) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".json") {
                    names.push(name);
                }
            }
        }
        names.sort();
        names
    }

    /// Allocates the next submission sequence number (ticket file, written
    /// atomically). Single-writer per spool; concurrent submitters should
    /// serialize externally.
    fn next_seq(&self) -> Result<u64, JobError> {
        let path = self.root.join("seq");
        let next = match std::fs::read_to_string(&path) {
            Ok(text) => text.trim().parse::<u64>().unwrap_or(0) + 1,
            Err(_) => 1,
        };
        self.fs
            .write_atomic(&path, &next.to_string())
            .map_err(|e| JobError::io(path.display().to_string(), e))?;
        Ok(next)
    }

    /// Submits a spec: allocates a sequence number and durably writes the
    /// record into `submitted/`. No admission check happens here — the
    /// server is the authority (use [`crate::spec::admit`] client-side for
    /// an early error).
    pub fn submit(&self, spec: &JobSpec) -> Result<JobRecord, JobError> {
        let seq = self.next_seq()?;
        let hash_hex = spec.hash_hex();
        let record = JobRecord {
            seq,
            id: format!("job-{seq:08}-{hash_hex}"),
            hash_hex,
            spec: spec.clone(),
            attempts: 0,
            error: None,
        };
        self.write_record(&record, JobState::Submitted)?;
        Ok(record)
    }

    pub(crate) fn write_record(&self, record: &JobRecord, state: JobState) -> Result<(), JobError> {
        let path = self.dir(state).join(record.file_name());
        let json = serde_json::to_string_pretty(record).map_err(|e| JobError::Parse {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        self.fs.write_atomic(&path, &json).map_err(|e| JobError::io(path.display().to_string(), e))
    }

    /// All records in `state`, in scheduling order: priority class rank,
    /// then submission sequence. Unparseable records are quarantined into
    /// `failed/` (renamed as-is) instead of wedging the queue.
    pub fn list(&self, state: JobState) -> Result<Vec<JobRecord>, JobError> {
        let mut records = Vec::new();
        for name in self.file_names(state) {
            let path = self.dir(state).join(&name);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| JobError::io(path.display().to_string(), e))?;
            match serde_json::from_str::<JobRecord>(&text) {
                Ok(rec) => records.push(rec),
                Err(err) => {
                    eprintln!("quarantining malformed spool record {name}: {err}");
                    let dst = self.dir(JobState::Failed).join(&name);
                    self.fs
                        .rename(&path, &dst)
                        .map_err(|e| JobError::io(dst.display().to_string(), e))?;
                }
            }
        }
        records.sort_by_key(|r| (r.spec.priority.rank(), r.seq));
        Ok(records)
    }

    /// Counts records in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.file_names(state).len()
    }

    /// The state dir currently holding job `id`, if any. Linear scan over
    /// the five dirs — used by `submit --wait` to poll an outcome.
    pub fn job_state(&self, id: &str) -> Option<JobState> {
        let name = format!("{id}.json");
        JobState::all().into_iter().find(|s| self.dir(*s).join(&name).exists())
    }

    /// Moves `record` from `from` to `to`, persisting any field updates
    /// (attempts, error). Crash-safe: destination is written first, then
    /// the source is removed; [`Spool::open`] resolves the overlap window.
    pub fn transition(
        &self,
        record: &JobRecord,
        from: JobState,
        to: JobState,
    ) -> Result<(), JobError> {
        self.write_record(record, to)?;
        let src = self.dir(from).join(record.file_name());
        match self.fs.remove_file(&src) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(JobError::io(src.display().to_string(), e)),
        }
    }

    /// Claims a submitted job for execution: durably charges one attempt
    /// (`attempts + 1` is written into `running/` *before* the job starts),
    /// so even a server that dies mid-job leaves an accurate attempt count
    /// for the poisoning policy to read after requeue. Returns the claimed
    /// record.
    pub fn claim(&self, record: &JobRecord) -> Result<JobRecord, JobError> {
        let mut claimed = record.clone();
        claimed.attempts += 1;
        self.transition(&claimed, JobState::Submitted, JobState::Running)?;
        Ok(claimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, Priority};
    use plans::prelude::PlanKind;
    use workloads::spec::WorkloadSpec;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nbody-ptpm-jobs-spool").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spec(n: usize, seed: u64) -> JobSpec {
        JobSpec::new(WorkloadSpec::plummer(n, seed), PlanKind::JwParallel, 4)
    }

    #[test]
    fn submit_list_transition_roundtrip() {
        let (spool, rec) = Spool::open(tmp("roundtrip")).unwrap();
        assert_eq!(rec, SpoolRecovery::default());
        let a = spool.submit(&spec(32, 1)).unwrap();
        let b = spool.submit(&spec(32, 2)).unwrap();
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
        assert!(a.id.starts_with("job-00000001-"));
        let listed = spool.list(JobState::Submitted).unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].id, a.id, "sequence order within a class");
        spool.transition(&a, JobState::Submitted, JobState::Running).unwrap();
        assert_eq!(spool.count(JobState::Submitted), 1);
        assert_eq!(spool.count(JobState::Running), 1);
        let mut done = a.clone();
        done.attempts = 1;
        spool.transition(&done, JobState::Running, JobState::Done).unwrap();
        let done_listed = spool.list(JobState::Done).unwrap();
        assert_eq!(done_listed[0].attempts, 1);
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn priority_classes_order_before_sequence() {
        let (spool, _) = Spool::open(tmp("priority")).unwrap();
        let mut batch = spec(16, 1);
        batch.priority = Priority::Batch;
        let mut high = spec(16, 2);
        high.priority = Priority::High;
        let normal = spec(16, 3);
        spool.submit(&batch).unwrap();
        spool.submit(&normal).unwrap();
        spool.submit(&high).unwrap();
        let ids: Vec<u64> =
            spool.list(JobState::Submitted).unwrap().iter().map(|r| r.seq).collect();
        assert_eq!(ids, [3, 2, 1], "high, then normal, then batch");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn reopen_requeues_running_and_cleans_tmp() {
        let root = tmp("requeue");
        let (spool, _) = Spool::open(&root).unwrap();
        let a = spool.submit(&spec(32, 1)).unwrap();
        spool.transition(&a, JobState::Submitted, JobState::Running).unwrap();
        // crash litter: a half-written record and a half-written checkpoint
        std::fs::write(spool.dir(JobState::Submitted).join("x.json.tmp"), "{half").unwrap();
        let jd = spool.job_dir(&a.hash_hex);
        std::fs::create_dir_all(&jd).unwrap();
        std::fs::write(jd.join("ckpt-00004.json.tmp"), "{half").unwrap();

        let (spool2, recovery) = Spool::open(&root).unwrap();
        assert_eq!(recovery.requeued, 1);
        assert!(recovery.tmp_cleaned >= 2, "{recovery:?}");
        assert_eq!(spool2.count(JobState::Running), 0);
        let listed = spool2.list(JobState::Submitted).unwrap();
        assert_eq!(listed[0].id, a.id);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_sweeps_cache_and_artifact_tmp_debris() {
        // the found shape: kill-9 between an artifact's .tmp write and its
        // rename used to leave debris forever in cache/ and jobs/<hash>/
        let root = tmp("artifact-debris");
        let (spool, _) = Spool::open(&root).unwrap();
        let a = spool.submit(&spec(32, 9)).unwrap();
        std::fs::write(spool.cache_dir().join("deadbeef.json.tmp"), "{half").unwrap();
        let jd = spool.job_dir(&a.hash_hex);
        std::fs::create_dir_all(&jd).unwrap();
        std::fs::write(jd.join("bench.json.tmp"), "{half").unwrap();
        std::fs::write(jd.join("trace.csv.tmp"), "event,").unwrap();
        std::fs::write(spool.root().join("daemon.json.tmp"), "{half").unwrap();
        // and one nested a level deeper than any current writer produces —
        // the sweep is recursive, not a hand-kept directory list
        let deep = jd.join("extra");
        std::fs::create_dir_all(&deep).unwrap();
        std::fs::write(deep.join("x.tmp"), "junk").unwrap();

        let (spool2, recovery) = Spool::open(&root).unwrap();
        assert_eq!(recovery.tmp_cleaned, 5, "{recovery:?}");
        assert!(!spool2.cache_dir().join("deadbeef.json.tmp").exists());
        assert!(!jd.join("bench.json.tmp").exists());
        assert!(!jd.join("trace.csv.tmp").exists());
        assert!(!deep.join("x.tmp").exists());
        assert!(!spool2.root().join("daemon.json.tmp").exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_resolves_duplicates_by_precedence() {
        let root = tmp("dupes");
        let (spool, _) = Spool::open(&root).unwrap();
        let a = spool.submit(&spec(32, 1)).unwrap();
        // simulate a crash between transition halves: record in both
        // running/ and done/
        spool.write_record(&a, JobState::Running).unwrap();
        spool.write_record(&a, JobState::Done).unwrap();
        std::fs::remove_file(spool.dir(JobState::Submitted).join(a.file_name())).unwrap();
        let (spool2, recovery) = Spool::open(&root).unwrap();
        assert_eq!(recovery.duplicates_dropped, 1);
        assert_eq!(recovery.requeued, 0);
        assert_eq!(spool2.count(JobState::Done), 1);
        assert_eq!(spool2.count(JobState::Running), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn poisoned_records_win_precedence_and_survive_reopen() {
        let root = tmp("poison-precedence");
        let (spool, _) = Spool::open(&root).unwrap();
        let a = spool.submit(&spec(32, 4)).unwrap();
        let mut poisoned = a.clone();
        poisoned.attempts = 3;
        poisoned.error = Some("[poisoned] attempts exhausted".into());
        // crash between the halves of a running → poisoned transition
        spool.write_record(&a, JobState::Running).unwrap();
        spool.write_record(&poisoned, JobState::Poisoned).unwrap();
        std::fs::remove_file(spool.dir(JobState::Submitted).join(a.file_name())).unwrap();
        let (spool2, recovery) = Spool::open(&root).unwrap();
        assert_eq!(recovery.duplicates_dropped, 1);
        assert_eq!(spool2.count(JobState::Poisoned), 1);
        assert_eq!(spool2.count(JobState::Running), 0);
        assert_eq!(spool2.job_state(&a.id), Some(JobState::Poisoned));
        let rec = &spool2.list(JobState::Poisoned).unwrap()[0];
        assert_eq!(rec.attempts, 3);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn claim_durably_charges_an_attempt() {
        let (spool, _) = Spool::open(tmp("claim")).unwrap();
        let a = spool.submit(&spec(32, 5)).unwrap();
        assert_eq!(a.attempts, 0);
        let claimed = spool.claim(&a).unwrap();
        assert_eq!(claimed.attempts, 1);
        assert_eq!(spool.count(JobState::Submitted), 0);
        let on_disk = &spool.list(JobState::Running).unwrap()[0];
        assert_eq!(on_disk.attempts, 1, "the charge is durable before the job runs");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn malformed_record_is_quarantined_not_fatal() {
        let (spool, _) = Spool::open(tmp("quarantine")).unwrap();
        spool.submit(&spec(32, 1)).unwrap();
        std::fs::write(spool.dir(JobState::Submitted).join("job-zzz.json"), "{nope").unwrap();
        let listed = spool.list(JobState::Submitted).unwrap();
        assert_eq!(listed.len(), 1, "the good record survives");
        assert_eq!(spool.count(JobState::Failed), 1, "the bad one is quarantined");
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn write_atomic_leaves_no_tmp_sibling() {
        let root = tmp("atomic");
        std::fs::create_dir_all(&root).unwrap();
        let path = root.join("x.json");
        write_atomic(&path, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        assert!(!root.join("x.json.tmp").exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn identical_specs_share_hash_but_not_identity() {
        let (spool, _) = Spool::open(tmp("identity")).unwrap();
        let a = spool.submit(&spec(32, 1)).unwrap();
        let b = spool.submit(&spec(32, 1)).unwrap();
        assert_eq!(a.hash_hex, b.hash_hex);
        assert_ne!(a.id, b.id);
        assert_eq!(spool.job_dir(&a.hash_hex), spool.job_dir(&b.hash_hex));
        std::fs::remove_dir_all(spool.root()).ok();
    }

    #[test]
    fn job_state_locates_records_across_dirs() {
        let (spool, _) = Spool::open(tmp("locate")).unwrap();
        let a = spool.submit(&spec(32, 7)).unwrap();
        assert_eq!(spool.job_state(&a.id), Some(JobState::Submitted));
        let claimed = spool.claim(&a).unwrap();
        assert_eq!(spool.job_state(&a.id), Some(JobState::Running));
        spool.transition(&claimed, JobState::Running, JobState::Done).unwrap();
        assert_eq!(spool.job_state(&a.id), Some(JobState::Done));
        assert_eq!(spool.job_state("job-99999999-none"), None);
        std::fs::remove_dir_all(spool.root()).ok();
    }
}
