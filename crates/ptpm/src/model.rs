//! Analytic PTPM forecasts per execution plan.
//!
//! Given only the launch *shape* — how many blocks, how much arithmetic per
//! block — the model predicts kernel time and space utilization without
//! running anything. The paper uses this reasoning to argue jw-parallel's
//! superiority before measuring it; we implement the argument and test that
//! the forecast ranking matches the simulator's measured ranking (see the
//! workspace integration tests).
//!
//! The model deliberately ignores memory traffic: on interaction-bound
//! N-body kernels the ALU term dominates, and keeping one term makes the
//! closed forms legible. The simulator keeps the full cost model; the gap
//! between the two is itself reported by the harness.

use crate::grid::TimeSpaceGrid;
use gpu_sim::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Flops the forecast charges per pairwise interaction (GRAPE convention,
/// matching the device kernels).
pub const FLOPS_PER_INTERACTION: f64 = 38.0;

/// An analytic forecast for one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Forecast {
    /// Work-groups in the launch.
    pub blocks: usize,
    /// Total convention flops.
    pub total_flops: f64,
    /// Predicted kernel seconds.
    pub seconds: f64,
    /// Predicted space utilization in the time-space grid.
    pub space_utilization: f64,
    /// Predicted balance (min/max CU busy time).
    pub balance: f64,
}

impl Forecast {
    /// Predicted GFLOPS.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.total_flops / self.seconds / 1e9
    }
}

/// The time-space grid a launch of the given per-block flop counts is
/// forecast to occupy: blocks placed by the same greedy least-loaded
/// discipline the simulator's scheduler uses, with per-block cycles from the
/// ALU term alone. This *is* the forecast's internal geometry — exposed so
/// it can be diffed cell-by-cell against a grid observed from an execution
/// trace (see [`crate::observed`]).
pub fn forecast_grid(block_flops: &[f64], spec: &DeviceSpec) -> TimeSpaceGrid {
    let per_cu_rate = spec.charged_flops_per_cycle_per_cu;
    let cycles: Vec<f64> = block_flops.iter().map(|f| f / per_cu_rate).collect();
    TimeSpaceGrid::place(&cycles, spec.compute_units as usize)
}

/// Forecasts a launch from per-block flop counts: places blocks on the
/// time-space grid and converts the makespan to seconds.
pub fn forecast_blocks(block_flops: &[f64], spec: &DeviceSpec) -> Forecast {
    let grid = forecast_grid(block_flops, spec);
    let total_flops: f64 = block_flops.iter().sum();
    Forecast {
        blocks: block_flops.len(),
        total_flops,
        seconds: grid.makespan / spec.clock_hz,
        space_utilization: grid.space_utilization(),
        balance: grid.balance(),
    }
}

/// Per-block flop counts of an i-parallel launch: ⌈N/p⌉ equal blocks, each
/// evaluating `p × N_pad` interactions.
pub fn i_parallel_block_flops(n: usize, block_size: usize) -> Vec<f64> {
    let n_pad = n.div_ceil(block_size).max(1) * block_size;
    let blocks = n_pad / block_size;
    vec![(block_size * n_pad) as f64 * FLOPS_PER_INTERACTION; blocks]
}

/// i-parallel: ⌈N/p⌉ blocks, each evaluating `p × N_pad` interactions.
pub fn forecast_i_parallel(n: usize, block_size: usize, spec: &DeviceSpec) -> Forecast {
    forecast_blocks(&i_parallel_block_flops(n, block_size), spec)
}

/// Per-block flop counts of a j-parallel launch: ⌈N/p⌉ × S equal blocks.
///
/// # Panics
/// Panics if `slices == 0`.
pub fn j_parallel_block_flops(n: usize, block_size: usize, slices: usize) -> Vec<f64> {
    assert!(slices > 0, "slices must be positive");
    let n_pad = n.div_ceil(block_size).max(1) * block_size;
    let base = n_pad / block_size;
    let slice_len = n_pad.div_ceil(slices);
    vec![(block_size * slice_len) as f64 * FLOPS_PER_INTERACTION; base * slices]
}

/// j-parallel: ⌈N/p⌉ × S blocks, each evaluating `p × (N_pad / S)`
/// interactions, plus the (ALU-negligible) reduction.
pub fn forecast_j_parallel(
    n: usize,
    block_size: usize,
    slices: usize,
    spec: &DeviceSpec,
) -> Forecast {
    forecast_blocks(&j_parallel_block_flops(n, block_size, slices), spec)
}

/// Per-block flop counts of a w-parallel launch: one block per walk, cost
/// following the (ragged) list lengths.
pub fn w_parallel_block_flops(list_lens: &[usize], walk_size: usize) -> Vec<f64> {
    list_lens.iter().map(|&len| (walk_size * len) as f64 * FLOPS_PER_INTERACTION).collect()
}

/// w-parallel: one block per walk; block cost follows the (ragged) list
/// lengths.
pub fn forecast_w_parallel(list_lens: &[usize], walk_size: usize, spec: &DeviceSpec) -> Forecast {
    forecast_blocks(&w_parallel_block_flops(list_lens, walk_size), spec)
}

/// Per-block flop counts of a jw-parallel launch: every list cut into slices
/// of at most `slice_len` entries, one block per slice (empty walks still
/// get one block — they need their reduction slot zeroed).
///
/// # Panics
/// Panics if `slice_len == 0`.
pub fn jw_parallel_block_flops(
    list_lens: &[usize],
    walk_size: usize,
    slice_len: usize,
) -> Vec<f64> {
    assert!(slice_len > 0, "slice_len must be positive");
    let mut block_flops = Vec::new();
    for &len in list_lens {
        let mut remaining = len.max(1); // empty walks still occupy a block
        while remaining > 0 {
            let this = remaining.min(slice_len);
            block_flops.push((walk_size * this) as f64 * FLOPS_PER_INTERACTION);
            remaining -= this;
        }
    }
    block_flops
}

/// jw-parallel: lists sliced to at most `slice_len` entries; each slice is a
/// block of bounded cost.
pub fn forecast_jw_parallel(
    list_lens: &[usize],
    walk_size: usize,
    slice_len: usize,
    spec: &DeviceSpec,
) -> Forecast {
    forecast_blocks(&jw_parallel_block_flops(list_lens, walk_size, slice_len), spec)
}

// ---------------------------------------------------------------------------
// On-device tree pipeline (Morton keys → sort → level link → walk emit)
// ---------------------------------------------------------------------------
//
// The pipeline's kernels in `plans::tree_pipeline` charge their events from
// the constants below, and [`forecast_pipeline`] re-derives the same charges
// from a measured [`PipelineShape`] and feeds them through the *actual*
// simulator scheduler (`gpu_sim::sched::schedule_launch`) with uniform
// per-group costs. Forecast and measurement therefore share one cost
// vocabulary; the residual error is purely the per-group raggedness the
// uniform approximation ignores.

use gpu_sim::cost::GroupCost;
use gpu_sim::pcie::TransferModel;
use gpu_sim::sched::schedule_launch;

/// Levels of the geometric key / linked build (21 octant choices fit a
/// 63-bit key).
pub const PIPELINE_LEVELS: usize = 21;
/// LSD radix passes over the 64-bit keys (one byte per pass).
pub const SORT_PASSES: usize = 8;
/// Work-group size of the per-item pipeline kernels.
pub const PIPELINE_LOCAL: usize = 256;
/// Work-group size of the per-walk / per-range pipeline kernels.
pub const PIPELINE_GROUP_LOCAL: usize = 64;
/// LDS words the radix kernel stages (histogram + scan scratch).
pub const SORT_LDS_WORDS: usize = 512;
/// Flops per body per key level (octant compares + center update).
pub const KEY_FLOPS_PER_LEVEL: f64 = 8.0;
/// Flops per item per radix pass (digit extract + bucket bookkeeping).
pub const SORT_FLOPS_PER_ITEM: f64 = 4.0;
/// LDS words per item per radix pass (histogram traffic).
pub const SORT_LDS_PER_ITEM: f64 = 2.0;
/// Flops per key scanned by the level-link run detector.
pub const LINK_FLOPS_PER_KEY: f64 = 2.0;
/// Flops per body of the leaf canonicalization sort (~n log n amortized).
pub const LEAF_SORT_FLOPS_PER_BODY: f64 = 8.0;
/// Flops per body of the multipole gather (mass add + weighted position).
pub const MULTIPOLE_FLOPS_PER_BODY: f64 = 7.0;
/// Flops per node of the multipole combine (children sum + division).
pub const MULTIPOLE_FLOPS_PER_NODE: f64 = 24.0;
/// Flops per body of a walk bounding-box reduction.
pub const BBOX_FLOPS_PER_BODY: f64 = 6.0;
/// Flops per tree node visited by a walk traversal (MAC evaluation).
pub const SCAN_FLOPS_PER_VISIT: f64 = 12.0;
/// Flops per interaction-list entry packed by the emit kernel.
pub const EMIT_FLOPS_PER_ENTRY: f64 = 4.0;
/// Flops per body of the f64→f32 position/mass conversion.
pub const CONVERT_FLOPS_PER_BODY: f64 = 4.0;
/// `u32` words per node of the uploaded tree metadata
/// (start, count, leaf flag, 8 children).
pub const META_U32_PER_NODE: usize = 11;
/// `u64` words per node of the uploaded tree geometry
/// (center ×3, half, com ×3, mass — f64 bit patterns).
pub const GEOM_U64_PER_NODE: usize = 8;

/// Measured geometry of one on-device tree-pipeline run — everything the
/// forecast needs, nothing it could not know on a real device (counts come
/// from descriptor readbacks the pipeline performs anyway).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineShape {
    /// Bodies.
    pub n: usize,
    /// Per linked level: `(open ranges, keys scanned)`.
    pub levels: Vec<(usize, usize)>,
    /// Tree nodes built.
    pub nodes: usize,
    /// Leaf ranges canonicalized (leaves holding ≥ 2 bodies).
    pub leaf_ranges: usize,
    /// Bodies covered by those leaf ranges.
    pub leaf_bodies: usize,
    /// Walk groups of the global walk grid.
    pub walks: usize,
    /// Bodies per walk group (threads per emit/scan block).
    pub walk_size: usize,
    /// Interaction-list entries over all walks (cells + bodies).
    pub entries: usize,
    /// Direct-body entries among `entries`.
    pub body_entries: usize,
    /// Tree nodes visited across all walk traversals.
    pub visited: usize,
    /// True when the level build hit the key-depth floor and the tree came
    /// from the host fallback (keys/sort/link launches still ran; leaf-sort
    /// and multipole kernels did not).
    pub fallback_host_build: bool,
}

/// Forecast of one pipeline run, split the way the device clocks split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineForecast {
    /// Predicted seconds inside pipeline kernels.
    pub kernel_s: f64,
    /// Predicted seconds of pipeline transfers (uploads + descriptor
    /// readbacks).
    pub transfer_s: f64,
    /// Per-phase second breakdown, in pipeline order.
    pub phases: Vec<(String, f64)>,
}

impl PipelineForecast {
    /// Total predicted pipeline seconds (kernels + transfers).
    pub fn seconds(&self) -> f64 {
        self.kernel_s + self.transfer_s
    }
}

/// Times one launch of `groups` equal work-groups through the simulator's
/// scheduler — the uniform-cost core of the pipeline forecast.
fn uniform_launch_s(
    spec: &DeviceSpec,
    local: usize,
    lds_words: usize,
    groups: usize,
    per_group: GroupCost,
) -> f64 {
    if groups == 0 {
        return 0.0;
    }
    schedule_launch(spec, local, lds_words, &vec![per_group; groups]).seconds
}

/// Forecasts the on-device tree pipeline from its measured shape: every
/// kernel's charges are re-derived from the shared constants and scheduled
/// exactly as the simulator schedules them (uniform per-group costs), and
/// every transfer is priced by the same PCIe model the device charges.
pub fn forecast_pipeline(
    shape: &PipelineShape,
    spec: &DeviceSpec,
    xfer: &TransferModel,
) -> PipelineForecast {
    let n = shape.n as f64;
    let cts = |bytes: f64| bytes / f64::from(spec.transaction_bytes);
    let mut phases: Vec<(String, f64)> = Vec::new();
    let mut kernel_s = 0.0;
    let mut transfer_s = 0.0;
    let mut kernel = |phases: &mut Vec<(String, f64)>, name: &str, s: f64| {
        phases.push((name.to_string(), s));
        kernel_s += s;
    };

    // Upload of f64 position/mass bit patterns (3n + n u64).
    let up = xfer.seconds(24 * shape.n) + xfer.seconds(8 * shape.n);
    phases.push(("upload-bits".into(), up));
    transfer_s += up;

    // Morton keys: per-item kernel over n items.
    let key_groups = shape.n.div_ceil(PIPELINE_LOCAL).max(1);
    let ipg = n / key_groups as f64;
    kernel(
        &mut phases,
        "morton-keys",
        uniform_launch_s(
            spec,
            PIPELINE_LOCAL,
            0,
            key_groups,
            GroupCost {
                flops: KEY_FLOPS_PER_LEVEL * PIPELINE_LEVELS as f64 * ipg,
                read_bytes: 24.0 * ipg,
                read_transactions: cts(24.0 * ipg),
                write_bytes: 12.0 * ipg,
                write_transactions: cts(12.0 * ipg),
                barriers: 1,
                ..Default::default()
            },
        ),
    );

    // Radix sort: SORT_PASSES identical launches.
    let pass_s = uniform_launch_s(
        spec,
        PIPELINE_LOCAL,
        SORT_LDS_WORDS,
        key_groups,
        GroupCost {
            flops: SORT_FLOPS_PER_ITEM * ipg,
            lds_accesses: SORT_LDS_PER_ITEM * ipg,
            read_bytes: 12.0 * ipg,
            read_transactions: cts(12.0 * ipg),
            write_bytes: 12.0 * ipg,
            write_transactions: 2.0 * cts(12.0 * ipg),
            barriers: 1,
            ..Default::default()
        },
    );
    kernel(&mut phases, "radix-sort", SORT_PASSES as f64 * pass_s);

    // Level linking: one launch per level, one group per open range, with a
    // per-level counts readback (each level's descriptors come back before
    // the next level launches).
    let mut link_s = 0.0;
    let mut desc_s = 0.0;
    for &(ranges, keys) in &shape.levels {
        let kpg = keys as f64 / ranges.max(1) as f64;
        link_s += uniform_launch_s(
            spec,
            PIPELINE_GROUP_LOCAL,
            0,
            ranges,
            GroupCost {
                flops: LINK_FLOPS_PER_KEY * kpg,
                read_bytes: 8.0 * kpg,
                read_transactions: cts(8.0 * kpg),
                write_bytes: 32.0,
                write_transactions: cts(32.0),
                barriers: 1,
                ..Default::default()
            },
        );
        desc_s += xfer.seconds(32 * ranges);
    }
    kernel(&mut phases, "level-link", link_s);
    phases.push(("desc-readback".into(), desc_s));
    transfer_s += desc_s;

    if !shape.fallback_host_build {
        // Leaf canonicalization.
        let bpg = shape.leaf_bodies as f64 / shape.leaf_ranges.max(1) as f64;
        kernel(
            &mut phases,
            "leaf-sort",
            uniform_launch_s(
                spec,
                PIPELINE_GROUP_LOCAL,
                0,
                shape.leaf_ranges,
                GroupCost {
                    flops: LEAF_SORT_FLOPS_PER_BODY * bpg,
                    read_bytes: 4.0 * bpg,
                    read_transactions: cts(4.0 * bpg),
                    write_bytes: 4.0 * bpg,
                    write_transactions: cts(4.0 * bpg),
                    barriers: 1,
                    ..Default::default()
                },
            ),
        );
        // Multipoles: per-item body gather plus amortized node combine.
        let nodes = shape.nodes as f64;
        let node_read = (META_U32_PER_NODE * 4) as f64 * nodes + 32.0 * (nodes - 1.0).max(0.0);
        kernel(
            &mut phases,
            "multipoles",
            uniform_launch_s(
                spec,
                PIPELINE_LOCAL,
                0,
                key_groups,
                GroupCost {
                    flops: (MULTIPOLE_FLOPS_PER_BODY * n + MULTIPOLE_FLOPS_PER_NODE * nodes)
                        / key_groups as f64,
                    read_bytes: (36.0 * n + node_read) / key_groups as f64,
                    read_transactions: (4.0 * n + n * cts(4.0) + cts(node_read))
                        / key_groups as f64,
                    write_bytes: 32.0 * nodes / key_groups as f64,
                    write_transactions: cts(32.0 * nodes) / key_groups as f64,
                    barriers: 1,
                    ..Default::default()
                },
            ),
        );
        // Tree meta/geometry round trip + permutation readback.
        let meta_up = xfer.seconds(META_U32_PER_NODE * 4 * shape.nodes)
            + xfer.seconds(GEOM_U64_PER_NODE * 8 * shape.nodes);
        let geom_down = xfer.seconds(GEOM_U64_PER_NODE * 8 * shape.nodes);
        let idx_down = xfer.seconds(4 * shape.n);
        phases.push(("tree-roundtrip".into(), meta_up + geom_down + idx_down));
        transfer_s += meta_up + geom_down + idx_down;
    } else {
        // Host fallback: the permutation is uploaded instead of downloaded.
        let idx_up = xfer.seconds(4 * shape.n);
        phases.push(("fallback-idx-upload".into(), idx_up));
        transfer_s += idx_up;
    }

    // f64 → f32 conversion.
    kernel(
        &mut phases,
        "convert-f32",
        uniform_launch_s(
            spec,
            PIPELINE_LOCAL,
            0,
            key_groups,
            GroupCost {
                flops: CONVERT_FLOPS_PER_BODY * ipg,
                read_bytes: 32.0 * ipg,
                read_transactions: cts(32.0 * ipg),
                write_bytes: 16.0 * ipg,
                write_transactions: cts(16.0 * ipg),
                barriers: 1,
                ..Default::default()
            },
        ),
    );

    // Walk scan + emit: one group per walk each; the emit kernel re-traverses
    // and additionally gathers/writes the packed entries.
    let walks = shape.walks.max(1) as f64;
    let cpw = n / walks;
    let vpw = shape.visited as f64 / walks;
    let bepw = shape.body_entries as f64 / walks;
    let cepw = (shape.entries - shape.body_entries) as f64 / walks;
    let epw = shape.entries as f64 / walks;
    kernel(
        &mut phases,
        "walk-scan",
        uniform_launch_s(
            spec,
            PIPELINE_GROUP_LOCAL,
            0,
            shape.walks,
            GroupCost {
                flops: BBOX_FLOPS_PER_BODY * cpw + SCAN_FLOPS_PER_VISIT * vpw,
                read_bytes: 24.0 * cpw + 48.0 * vpw + 4.0 * bepw,
                read_transactions: 3.0 * cpw + 2.0 * vpw + cts(4.0 * bepw),
                write_bytes: 12.0,
                write_transactions: cts(12.0),
                barriers: 1,
                ..Default::default()
            },
        ),
    );
    let lens_down = xfer.seconds(12 * shape.walks.max(1));
    phases.push(("lens-readback".into(), lens_down));
    transfer_s += lens_down;
    let ws = shape.walk_size as f64;
    kernel(
        &mut phases,
        "walk-emit",
        uniform_launch_s(
            spec,
            PIPELINE_GROUP_LOCAL,
            0,
            shape.walks,
            GroupCost {
                flops: BBOX_FLOPS_PER_BODY * cpw
                    + SCAN_FLOPS_PER_VISIT * vpw
                    + EMIT_FLOPS_PER_ENTRY * epw,
                read_bytes: 24.0 * cpw + 48.0 * vpw + 4.0 * bepw + 32.0 * bepw + 32.0 * cepw,
                read_transactions: 3.0 * cpw
                    + 2.0 * vpw
                    + cts(4.0 * bepw)
                    + 4.0 * bepw
                    + 2.0 * cepw,
                write_bytes: 16.0 * epw + 4.0 * ws,
                write_transactions: cts(16.0 * epw) + cts(4.0 * ws),
                barriers: 1,
                ..Default::default()
            },
        ),
    );

    PipelineForecast { kernel_s, transfer_s, phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::radeon_hd_5850()
    }

    #[test]
    fn i_parallel_small_n_starves_space() {
        let f = forecast_i_parallel(1024, 256, &spec());
        assert_eq!(f.blocks, 4);
        assert!(f.space_utilization < 0.25);
    }

    #[test]
    fn i_parallel_large_n_fills_space() {
        let f = forecast_i_parallel(65536, 256, &spec());
        assert_eq!(f.blocks, 256);
        assert!(f.space_utilization > 0.9);
    }

    #[test]
    fn j_parallel_beats_i_parallel_at_small_n() {
        let i = forecast_i_parallel(1024, 256, &spec());
        let j = forecast_j_parallel(1024, 256, 54, &spec());
        assert!(j.seconds < i.seconds, "j {} vs i {}", j.seconds, i.seconds);
        assert!(j.space_utilization > i.space_utilization);
    }

    #[test]
    fn j_parallel_with_one_slice_is_i_parallel() {
        let i = forecast_i_parallel(8192, 256, &spec());
        let j = forecast_j_parallel(8192, 256, 1, &spec());
        assert_eq!(i.blocks, j.blocks);
        assert!((i.seconds - j.seconds).abs() < 1e-12);
    }

    #[test]
    fn jw_fixes_w_imbalance() {
        // one monster walk among small ones
        let lists = [5000_usize, 100, 100, 100, 100, 100, 100, 100];
        let w = forecast_w_parallel(&lists, 64, &spec());
        let jw = forecast_jw_parallel(&lists, 64, 256, &spec());
        assert!(jw.seconds < w.seconds, "jw {} vs w {}", jw.seconds, w.seconds);
        assert!(jw.balance > w.balance);
        assert!(jw.blocks > w.blocks);
    }

    #[test]
    fn jw_multiplies_blocks_at_small_walk_counts() {
        let lists = vec![1000_usize; 8];
        let w = forecast_w_parallel(&lists, 64, &spec());
        let jw = forecast_jw_parallel(&lists, 64, 128, &spec());
        assert_eq!(w.blocks, 8);
        assert_eq!(jw.blocks, 8 * 8); // ceil(1000/128) = 8 slices each
        assert!(jw.space_utilization > w.space_utilization);
    }

    #[test]
    fn forecast_flops_conserved_by_slicing() {
        let lists = [777_usize, 123, 456];
        let w = forecast_w_parallel(&lists, 64, &spec());
        let jw = forecast_jw_parallel(&lists, 64, 100, &spec());
        assert!((w.total_flops - jw.total_flops).abs() < 1e-6);
    }

    #[test]
    fn gflops_bounded_by_calibrated_peak() {
        let f = forecast_i_parallel(65536, 256, &spec());
        assert!(f.gflops() <= spec().peak_charged_gflops() * 1.0001);
        assert!(f.gflops() > 0.5 * spec().peak_charged_gflops());
    }

    #[test]
    fn empty_walk_list_forecast_is_zero_time() {
        let f = forecast_w_parallel(&[], 64, &spec());
        assert_eq!(f.blocks, 0);
        assert_eq!(f.seconds, 0.0);
        assert_eq!(f.gflops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "slices must be positive")]
    fn zero_slices_rejected() {
        forecast_j_parallel(1024, 256, 0, &spec());
    }
}
