//! Analytic PTPM forecasts per execution plan.
//!
//! Given only the launch *shape* — how many blocks, how much arithmetic per
//! block — the model predicts kernel time and space utilization without
//! running anything. The paper uses this reasoning to argue jw-parallel's
//! superiority before measuring it; we implement the argument and test that
//! the forecast ranking matches the simulator's measured ranking (see the
//! workspace integration tests).
//!
//! The model deliberately ignores memory traffic: on interaction-bound
//! N-body kernels the ALU term dominates, and keeping one term makes the
//! closed forms legible. The simulator keeps the full cost model; the gap
//! between the two is itself reported by the harness.

use crate::grid::TimeSpaceGrid;
use gpu_sim::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Flops the forecast charges per pairwise interaction (GRAPE convention,
/// matching the device kernels).
pub const FLOPS_PER_INTERACTION: f64 = 38.0;

/// An analytic forecast for one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Forecast {
    /// Work-groups in the launch.
    pub blocks: usize,
    /// Total convention flops.
    pub total_flops: f64,
    /// Predicted kernel seconds.
    pub seconds: f64,
    /// Predicted space utilization in the time-space grid.
    pub space_utilization: f64,
    /// Predicted balance (min/max CU busy time).
    pub balance: f64,
}

impl Forecast {
    /// Predicted GFLOPS.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.total_flops / self.seconds / 1e9
    }
}

/// The time-space grid a launch of the given per-block flop counts is
/// forecast to occupy: blocks placed by the same greedy least-loaded
/// discipline the simulator's scheduler uses, with per-block cycles from the
/// ALU term alone. This *is* the forecast's internal geometry — exposed so
/// it can be diffed cell-by-cell against a grid observed from an execution
/// trace (see [`crate::observed`]).
pub fn forecast_grid(block_flops: &[f64], spec: &DeviceSpec) -> TimeSpaceGrid {
    let per_cu_rate = spec.charged_flops_per_cycle_per_cu;
    let cycles: Vec<f64> = block_flops.iter().map(|f| f / per_cu_rate).collect();
    TimeSpaceGrid::place(&cycles, spec.compute_units as usize)
}

/// Forecasts a launch from per-block flop counts: places blocks on the
/// time-space grid and converts the makespan to seconds.
pub fn forecast_blocks(block_flops: &[f64], spec: &DeviceSpec) -> Forecast {
    let grid = forecast_grid(block_flops, spec);
    let total_flops: f64 = block_flops.iter().sum();
    Forecast {
        blocks: block_flops.len(),
        total_flops,
        seconds: grid.makespan / spec.clock_hz,
        space_utilization: grid.space_utilization(),
        balance: grid.balance(),
    }
}

/// Per-block flop counts of an i-parallel launch: ⌈N/p⌉ equal blocks, each
/// evaluating `p × N_pad` interactions.
pub fn i_parallel_block_flops(n: usize, block_size: usize) -> Vec<f64> {
    let n_pad = n.div_ceil(block_size).max(1) * block_size;
    let blocks = n_pad / block_size;
    vec![(block_size * n_pad) as f64 * FLOPS_PER_INTERACTION; blocks]
}

/// i-parallel: ⌈N/p⌉ blocks, each evaluating `p × N_pad` interactions.
pub fn forecast_i_parallel(n: usize, block_size: usize, spec: &DeviceSpec) -> Forecast {
    forecast_blocks(&i_parallel_block_flops(n, block_size), spec)
}

/// Per-block flop counts of a j-parallel launch: ⌈N/p⌉ × S equal blocks.
///
/// # Panics
/// Panics if `slices == 0`.
pub fn j_parallel_block_flops(n: usize, block_size: usize, slices: usize) -> Vec<f64> {
    assert!(slices > 0, "slices must be positive");
    let n_pad = n.div_ceil(block_size).max(1) * block_size;
    let base = n_pad / block_size;
    let slice_len = n_pad.div_ceil(slices);
    vec![(block_size * slice_len) as f64 * FLOPS_PER_INTERACTION; base * slices]
}

/// j-parallel: ⌈N/p⌉ × S blocks, each evaluating `p × (N_pad / S)`
/// interactions, plus the (ALU-negligible) reduction.
pub fn forecast_j_parallel(
    n: usize,
    block_size: usize,
    slices: usize,
    spec: &DeviceSpec,
) -> Forecast {
    forecast_blocks(&j_parallel_block_flops(n, block_size, slices), spec)
}

/// Per-block flop counts of a w-parallel launch: one block per walk, cost
/// following the (ragged) list lengths.
pub fn w_parallel_block_flops(list_lens: &[usize], walk_size: usize) -> Vec<f64> {
    list_lens.iter().map(|&len| (walk_size * len) as f64 * FLOPS_PER_INTERACTION).collect()
}

/// w-parallel: one block per walk; block cost follows the (ragged) list
/// lengths.
pub fn forecast_w_parallel(list_lens: &[usize], walk_size: usize, spec: &DeviceSpec) -> Forecast {
    forecast_blocks(&w_parallel_block_flops(list_lens, walk_size), spec)
}

/// Per-block flop counts of a jw-parallel launch: every list cut into slices
/// of at most `slice_len` entries, one block per slice (empty walks still
/// get one block — they need their reduction slot zeroed).
///
/// # Panics
/// Panics if `slice_len == 0`.
pub fn jw_parallel_block_flops(
    list_lens: &[usize],
    walk_size: usize,
    slice_len: usize,
) -> Vec<f64> {
    assert!(slice_len > 0, "slice_len must be positive");
    let mut block_flops = Vec::new();
    for &len in list_lens {
        let mut remaining = len.max(1); // empty walks still occupy a block
        while remaining > 0 {
            let this = remaining.min(slice_len);
            block_flops.push((walk_size * this) as f64 * FLOPS_PER_INTERACTION);
            remaining -= this;
        }
    }
    block_flops
}

/// jw-parallel: lists sliced to at most `slice_len` entries; each slice is a
/// block of bounded cost.
pub fn forecast_jw_parallel(
    list_lens: &[usize],
    walk_size: usize,
    slice_len: usize,
    spec: &DeviceSpec,
) -> Forecast {
    forecast_blocks(&jw_parallel_block_flops(list_lens, walk_size, slice_len), spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::radeon_hd_5850()
    }

    #[test]
    fn i_parallel_small_n_starves_space() {
        let f = forecast_i_parallel(1024, 256, &spec());
        assert_eq!(f.blocks, 4);
        assert!(f.space_utilization < 0.25);
    }

    #[test]
    fn i_parallel_large_n_fills_space() {
        let f = forecast_i_parallel(65536, 256, &spec());
        assert_eq!(f.blocks, 256);
        assert!(f.space_utilization > 0.9);
    }

    #[test]
    fn j_parallel_beats_i_parallel_at_small_n() {
        let i = forecast_i_parallel(1024, 256, &spec());
        let j = forecast_j_parallel(1024, 256, 54, &spec());
        assert!(j.seconds < i.seconds, "j {} vs i {}", j.seconds, i.seconds);
        assert!(j.space_utilization > i.space_utilization);
    }

    #[test]
    fn j_parallel_with_one_slice_is_i_parallel() {
        let i = forecast_i_parallel(8192, 256, &spec());
        let j = forecast_j_parallel(8192, 256, 1, &spec());
        assert_eq!(i.blocks, j.blocks);
        assert!((i.seconds - j.seconds).abs() < 1e-12);
    }

    #[test]
    fn jw_fixes_w_imbalance() {
        // one monster walk among small ones
        let lists = [5000_usize, 100, 100, 100, 100, 100, 100, 100];
        let w = forecast_w_parallel(&lists, 64, &spec());
        let jw = forecast_jw_parallel(&lists, 64, 256, &spec());
        assert!(jw.seconds < w.seconds, "jw {} vs w {}", jw.seconds, w.seconds);
        assert!(jw.balance > w.balance);
        assert!(jw.blocks > w.blocks);
    }

    #[test]
    fn jw_multiplies_blocks_at_small_walk_counts() {
        let lists = vec![1000_usize; 8];
        let w = forecast_w_parallel(&lists, 64, &spec());
        let jw = forecast_jw_parallel(&lists, 64, 128, &spec());
        assert_eq!(w.blocks, 8);
        assert_eq!(jw.blocks, 8 * 8); // ceil(1000/128) = 8 slices each
        assert!(jw.space_utilization > w.space_utilization);
    }

    #[test]
    fn forecast_flops_conserved_by_slicing() {
        let lists = [777_usize, 123, 456];
        let w = forecast_w_parallel(&lists, 64, &spec());
        let jw = forecast_jw_parallel(&lists, 64, 100, &spec());
        assert!((w.total_flops - jw.total_flops).abs() < 1e-6);
    }

    #[test]
    fn gflops_bounded_by_calibrated_peak() {
        let f = forecast_i_parallel(65536, 256, &spec());
        assert!(f.gflops() <= spec().peak_charged_gflops() * 1.0001);
        assert!(f.gflops() > 0.5 * spec().peak_charged_gflops());
    }

    #[test]
    fn empty_walk_list_forecast_is_zero_time() {
        let f = forecast_w_parallel(&[], 64, &spec());
        assert_eq!(f.blocks, 0);
        assert_eq!(f.seconds, 0.0);
        assert_eq!(f.gflops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "slices must be positive")]
    fn zero_slices_rejected() {
        forecast_j_parallel(1024, 256, 0, &spec());
    }
}
