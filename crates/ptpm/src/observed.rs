//! Observed time-space grids, reconstructed from execution traces, and the
//! forecast-vs-observed comparison.
//!
//! PTPM's forecasts (the [`model`](crate::model) module) predict where in
//! time-space a plan's work-groups will land *before anything runs*. The
//! simulator's trace subsystem (`gpu_sim::trace`) records where they
//! *actually* landed. This module closes the loop:
//!
//! * [`observed_grid`] lifts one traced launch into a [`TimeSpaceGrid`],
//!   the same structure the forecasts produce — so every grid metric
//!   (space utilization, balance, occupancy timeline) applies to both;
//! * [`compare_grids`] diffs two grids cell-by-cell on a normalized
//!   `CUs × time-buckets` raster, quantifying how well the analytic model
//!   predicted reality.
//!
//! Absolute times differ by construction — the forecast keeps only the ALU
//! term while the simulator charges memory, LDS, and barriers — so the
//! comparison normalizes each grid to its own makespan. What remains is the
//! *shape* of the occupancy: exactly the thing the paper's §3–4 argument is
//! about.

use crate::grid::{Placement, TimeSpaceGrid};
use gpu_sim::trace::{LaunchTrace, Trace};
use serde::{Deserialize, Serialize};

/// Reconstructs the time-space grid a traced launch actually occupied, from
/// its per-work-group CU placements (cycle units).
pub fn observed_grid(launch: &LaunchTrace, cus: usize) -> TimeSpaceGrid {
    let placements = launch
        .groups
        .iter()
        .map(|g| Placement { group: g.group, cu: g.cu, start: g.start_cycle, end: g.end_cycle })
        .collect();
    TimeSpaceGrid::from_placements(placements, cus)
}

/// Observed grids for every launch in a trace, tagged by kernel name.
pub fn observed_grids(trace: &Trace) -> Vec<(String, TimeSpaceGrid)> {
    trace
        .launches
        .iter()
        .map(|l| (l.kernel.clone(), observed_grid(l, trace.compute_units)))
        .collect()
}

/// How closely a forecast grid matched an observed one. All errors are
/// absolute differences of dimensionless quantities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridComparison {
    /// Space utilization of the forecast grid.
    pub forecast_utilization: f64,
    /// Space utilization of the observed grid.
    pub observed_utilization: f64,
    /// Balance (min/max CU busy time) of the forecast grid.
    pub forecast_balance: f64,
    /// Balance of the observed grid.
    pub observed_balance: f64,
    /// Mean absolute difference over the normalized `cus × buckets`
    /// busy-fraction cells.
    pub mean_cell_error: f64,
    /// Largest absolute cell difference.
    pub max_cell_error: f64,
}

impl GridComparison {
    /// |forecast − observed| space utilization.
    pub fn utilization_error(&self) -> f64 {
        (self.forecast_utilization - self.observed_utilization).abs()
    }

    /// |forecast − observed| balance.
    pub fn balance_error(&self) -> f64 {
        (self.forecast_balance - self.observed_balance).abs()
    }
}

/// Diffs a forecast grid against an observed grid on a `cus × buckets`
/// raster, each normalized to its own makespan.
///
/// # Panics
/// Panics if the grids disagree on the CU count or `buckets == 0`.
pub fn compare_grids(
    forecast: &TimeSpaceGrid,
    observed: &TimeSpaceGrid,
    buckets: usize,
) -> GridComparison {
    assert_eq!(
        forecast.cus, observed.cus,
        "grids span different devices ({} vs {} CUs)",
        forecast.cus, observed.cus
    );
    assert!(buckets > 0, "need at least one time bucket");
    let f = forecast.utilization_cells(buckets);
    let o = observed.utilization_cells(buckets);
    let mut sum = 0.0_f64;
    let mut max = 0.0_f64;
    for (fr, or) in f.iter().zip(&o) {
        for (fc, oc) in fr.iter().zip(or) {
            let d = (fc - oc).abs();
            sum += d;
            max = max.max(d);
        }
    }
    GridComparison {
        forecast_utilization: forecast.space_utilization(),
        observed_utilization: observed.space_utilization(),
        forecast_balance: forecast.balance(),
        observed_balance: observed.balance(),
        mean_cell_error: sum / (forecast.cus * buckets) as f64,
        max_cell_error: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_grids_compare_clean() {
        let g = TimeSpaceGrid::place(&[10.0, 20.0, 30.0, 5.0], 3);
        let c = compare_grids(&g, &g, 16);
        assert_eq!(c.utilization_error(), 0.0);
        assert_eq!(c.balance_error(), 0.0);
        assert_eq!(c.mean_cell_error, 0.0);
        assert_eq!(c.max_cell_error, 0.0);
    }

    #[test]
    fn scaled_grids_compare_clean() {
        // same shape, 7x slower clock: normalization cancels the scale
        let costs = [10.0, 20.0, 30.0, 5.0, 12.0];
        let a = TimeSpaceGrid::place(&costs, 3);
        let scaled: Vec<f64> = costs.iter().map(|c| c * 7.0).collect();
        let b = TimeSpaceGrid::place(&scaled, 3);
        let c = compare_grids(&a, &b, 32);
        assert!(c.utilization_error() < 1e-12);
        assert!(c.max_cell_error < 1e-9, "max cell error {}", c.max_cell_error);
    }

    #[test]
    fn disjoint_occupancy_maxes_the_error() {
        // one busy CU vs a different busy CU: cells disagree completely
        let a = TimeSpaceGrid::from_placements(
            vec![Placement { group: 0, cu: 0, start: 0.0, end: 10.0 }],
            2,
        );
        let b = TimeSpaceGrid::from_placements(
            vec![Placement { group: 0, cu: 1, start: 0.0, end: 10.0 }],
            2,
        );
        let c = compare_grids(&a, &b, 8);
        assert_eq!(c.max_cell_error, 1.0);
        assert_eq!(c.mean_cell_error, 1.0);
        // aggregate metrics cannot see the difference — the cells can
        assert_eq!(c.utilization_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different devices")]
    fn mismatched_cus_rejected() {
        let a = TimeSpaceGrid::place(&[1.0], 2);
        let b = TimeSpaceGrid::place(&[1.0], 3);
        compare_grids(&a, &b, 4);
    }
}
