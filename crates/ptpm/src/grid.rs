//! The time-space grid.
//!
//! PTPM views a kernel launch as a rectangle of *space* (compute units) ×
//! *time* (cycles). Work-groups are placed into the rectangle; the questions
//! the paper's §3–4 ask — does the plan fill the space dimension? does a
//! ragged block pin a compute unit long after the others drained? — become
//! geometric properties of the placement:
//!
//! * **space utilization** — busy area / total area up to the makespan;
//! * **balance** — min CU busy time / max CU busy time;
//! * the **occupancy timeline** — how many CUs are busy at each instant.

use serde::{Deserialize, Serialize};

/// One work-group placed on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the work-group (launch order).
    pub group: usize,
    /// Compute unit it ran on.
    pub cu: usize,
    /// Start time in cycles.
    pub start: f64,
    /// End time in cycles.
    pub end: f64,
}

/// A fully placed launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSpaceGrid {
    /// Group placements in launch order.
    pub placements: Vec<Placement>,
    /// Spatial extent (number of compute units).
    pub cus: usize,
    /// Latest end time.
    pub makespan: f64,
}

impl TimeSpaceGrid {
    /// Places groups with the given cycle costs onto `cus` compute units by
    /// greedy least-loaded scheduling (the same discipline as the simulator,
    /// so grid metrics explain simulator timings).
    ///
    /// # Panics
    /// Panics if `cus == 0` or any cost is negative/non-finite.
    pub fn place(group_cycles: &[f64], cus: usize) -> Self {
        assert!(cus > 0, "need at least one compute unit");
        let mut cu_time = vec![0.0_f64; cus];
        let mut placements = Vec::with_capacity(group_cycles.len());
        for (group, &cycles) in group_cycles.iter().enumerate() {
            assert!(cycles.is_finite() && cycles >= 0.0, "group {group} has invalid cost {cycles}");
            let (cu, _) = cu_time
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                .expect("at least one CU");
            let start = cu_time[cu];
            let end = start + cycles;
            cu_time[cu] = end;
            placements.push(Placement { group, cu, start, end });
        }
        let makespan = cu_time.iter().copied().fold(0.0, f64::max);
        Self { placements, cus, makespan }
    }

    /// Busy area / (cus × makespan). 1.0 means no CU ever idled.
    pub fn space_utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.placements.iter().map(|p| p.end - p.start).sum();
        busy / (self.cus as f64 * self.makespan)
    }

    /// min CU busy time / max CU busy time; 1.0 is perfect balance.
    pub fn balance(&self) -> f64 {
        let mut per_cu = vec![0.0_f64; self.cus];
        for p in &self.placements {
            per_cu[p.cu] += p.end - p.start;
        }
        let max = per_cu.iter().copied().fold(0.0, f64::max);
        if max <= 0.0 {
            return 1.0;
        }
        let min = per_cu.iter().copied().fold(f64::INFINITY, f64::min);
        min / max
    }

    /// Builds a grid from already-placed spans (e.g. reconstructed from an
    /// execution trace), computing the makespan from the placements.
    ///
    /// # Panics
    /// Panics if `cus == 0` or any placement lies on a CU `>= cus` or has
    /// `end < start`.
    pub fn from_placements(placements: Vec<Placement>, cus: usize) -> Self {
        assert!(cus > 0, "need at least one compute unit");
        let mut makespan = 0.0_f64;
        for p in &placements {
            assert!(p.cu < cus, "placement on cu {} but grid has {cus}", p.cu);
            assert!(
                p.end >= p.start && p.start.is_finite() && p.end.is_finite(),
                "group {} has invalid span [{}, {}]",
                p.group,
                p.start,
                p.end
            );
            makespan = makespan.max(p.end);
        }
        Self { placements, cus, makespan }
    }

    /// Busy fraction of each (CU, time-bucket) cell: a `cus × buckets`
    /// matrix with entries in `[0, 1]`, where entry `[cu][b]` is the
    /// fraction of bucket `b` during which `cu` was busy. This is the
    /// cell-level view PTPM reasons about, and the basis for comparing a
    /// forecast grid against an observed one whose absolute time scales
    /// differ (both are normalized to their own makespan).
    pub fn utilization_cells(&self, buckets: usize) -> Vec<Vec<f64>> {
        let mut cells = vec![vec![0.0_f64; buckets]; self.cus];
        if buckets == 0 || self.makespan <= 0.0 {
            return cells;
        }
        let dt = self.makespan / buckets as f64;
        for p in &self.placements {
            let first = ((p.start / dt).floor() as usize).min(buckets - 1);
            let last = ((p.end / dt).ceil() as usize).min(buckets);
            for (b, cell) in cells[p.cu].iter_mut().enumerate().take(last).skip(first) {
                let lo = (b as f64) * dt;
                let hi = lo + dt;
                let overlap = (p.end.min(hi) - p.start.max(lo)).max(0.0);
                *cell += overlap / dt;
            }
        }
        for row in &mut cells {
            for cell in row {
                *cell = cell.min(1.0);
            }
        }
        cells
    }

    /// Time-integrated busy CU-time per bucket (cycle units). Summing over
    /// all buckets reproduces the total busy area of the placements
    /// exactly (up to floating-point), unlike the point-sampled
    /// [`occupancy_timeline`](Self::occupancy_timeline).
    pub fn busy_area_timeline(&self, buckets: usize) -> Vec<f64> {
        if buckets == 0 || self.makespan <= 0.0 {
            return vec![0.0; buckets];
        }
        let dt = self.makespan / buckets as f64;
        let cells = self.utilization_cells(buckets);
        (0..buckets).map(|b| cells.iter().map(|row| row[b] * dt).sum()).collect()
    }

    /// Number of busy CUs sampled at `buckets` evenly spaced instants.
    pub fn occupancy_timeline(&self, buckets: usize) -> Vec<usize> {
        if buckets == 0 || self.makespan <= 0.0 {
            return vec![0; buckets];
        }
        (0..buckets)
            .map(|b| {
                let t = (b as f64 + 0.5) / buckets as f64 * self.makespan;
                self.placements.iter().filter(|p| p.start <= t && t < p.end).count()
            })
            .collect()
    }

    /// Renders the grid as a small ASCII chart (one row per CU, time
    /// bucketed into `width` columns), for harness reports.
    pub fn ascii(&self, width: usize) -> String {
        let mut rows = vec![vec![b'.'; width]; self.cus];
        if self.makespan > 0.0 {
            for p in &self.placements {
                let c0 = ((p.start / self.makespan) * width as f64).floor() as usize;
                let c1 = (((p.end / self.makespan) * width as f64).ceil() as usize).min(width);
                let glyph = b'0' + (p.group % 10) as u8;
                for cell in &mut rows[p.cu][c0.min(width.saturating_sub(1))..c1] {
                    *cell = glyph;
                }
            }
        }
        rows.into_iter()
            .enumerate()
            .map(|(cu, row)| format!("cu{cu:02} |{}|", String::from_utf8(row).unwrap()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_balances_equal_groups() {
        let g = TimeSpaceGrid::place(&[10.0; 8], 4);
        assert_eq!(g.makespan, 20.0);
        assert!((g.space_utilization() - 1.0).abs() < 1e-12);
        assert!((g.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fewer_groups_than_cus_leaves_idle_space() {
        let g = TimeSpaceGrid::place(&[10.0, 10.0], 8);
        assert_eq!(g.makespan, 10.0);
        assert!((g.space_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ragged_group_sets_makespan() {
        let g = TimeSpaceGrid::place(&[100.0, 1.0, 1.0, 1.0], 4);
        assert_eq!(g.makespan, 100.0);
        assert!(g.space_utilization() < 0.3);
        assert!(g.balance() < 0.05);
    }

    #[test]
    fn placements_record_start_end() {
        let g = TimeSpaceGrid::place(&[5.0, 7.0, 3.0], 2);
        // group 0 -> cu0 [0,5), group 1 -> cu1 [0,7), group 2 -> cu0 [5,8)
        assert_eq!(g.placements[2].cu, 0);
        assert_eq!(g.placements[2].start, 5.0);
        assert_eq!(g.placements[2].end, 8.0);
        assert_eq!(g.makespan, 8.0);
    }

    #[test]
    fn occupancy_timeline_counts_busy_cus() {
        let g = TimeSpaceGrid::place(&[10.0, 5.0], 2);
        let tl = g.occupancy_timeline(10);
        assert_eq!(tl.len(), 10);
        // first half: both busy; second half: one
        assert_eq!(tl[0], 2);
        assert_eq!(tl[9], 1);
    }

    #[test]
    fn empty_launch_is_degenerate_but_safe() {
        let g = TimeSpaceGrid::place(&[], 4);
        assert_eq!(g.makespan, 0.0);
        assert_eq!(g.space_utilization(), 0.0);
        assert_eq!(g.balance(), 1.0);
        assert_eq!(g.occupancy_timeline(4), vec![0; 4]);
    }

    #[test]
    fn ascii_render_has_one_row_per_cu() {
        let g = TimeSpaceGrid::place(&[4.0, 4.0, 2.0], 3);
        let art = g.ascii(16);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("cu00 |"));
        assert!(art.contains('0'));
    }

    #[test]
    #[should_panic(expected = "invalid cost")]
    fn negative_cost_rejected() {
        TimeSpaceGrid::place(&[-1.0], 2);
    }

    #[test]
    #[should_panic(expected = "at least one compute unit")]
    fn zero_cus_rejected() {
        TimeSpaceGrid::place(&[1.0], 0);
    }
}
