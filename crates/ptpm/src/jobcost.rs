//! Whole-job cost forecasts for admission control.
//!
//! The paper's analytic model forecasts one *launch*; a job-server admission
//! decision needs the cost of a whole job — `steps` force evaluations plus
//! the priming one — before anything runs. [`forecast_job_seconds`] composes
//! the per-plan launch forecasts from [`crate::model`] into that number.
//!
//! For the blocked plans (`i-parallel`, `j-parallel`) the launch geometry is
//! exact. The tree plans (`w-parallel`, `jw-parallel`) have data-dependent
//! interaction lists that do not exist before the job runs, so admission
//! uses a documented synthetic proxy: one walk per `walk` bodies, uniform
//! lists of length `min(N, 32·√N)` — an empirical fit to this repo's
//! walk-bbox MAC geometry (θ = 0.5, walk = 64, seeded Plummer spheres),
//! which tracks the measured mean list length within ~20% over
//! N ∈ [512, 16384]; the textbook `O(log N)` per-*body* scaling does not
//! apply to per-*walk* lists, whose shared bounding box keeps far more of
//! the tree unopened. That is an *admission-grade* estimate (the right
//! order of magnitude, monotone in N and steps), not a promise — the
//! `tests/jobcost_properties.rs` gate holds it to a factor bound of the
//! real-geometry forecast, and the observed/forecast comparison machinery
//! in [`crate::observed`] remains the precision instrument.
//!
//! Load shedding compares the sum of these forecasts over everything queued
//! and running ("queue debt") against a budget; the forecast is
//! deterministic, so shedding decisions are reproducible.

use crate::model::{
    forecast_i_parallel, forecast_j_parallel, forecast_jw_parallel, forecast_pipeline,
    forecast_w_parallel, PipelineShape,
};
use gpu_sim::pcie::TransferModel;
use gpu_sim::spec::DeviceSpec;

/// Default work-group size when the job does not pin a tile.
pub const DEFAULT_BLOCK: usize = 256;
/// Default walk size for the tree plans.
pub const DEFAULT_WALK: usize = 64;
/// Default j-parallel slice count (the paper's sweet spot for the reference
/// device at the N range the admission budgets allow).
pub const DEFAULT_SLICES: usize = 54;
/// Host tree-build cost per body, mirroring the default
/// `plans::common::HostCostModel` (150 ns/body). Admission cannot import
/// `plans` (the dependency points the other way), so the default is pinned
/// here and a workspace test keeps the two in sync.
pub const HOST_TREE_NS_PER_BODY: f64 = 150.0;
/// Host walk-generation cost per interaction-list entry, mirroring the
/// default `plans::common::HostCostModel` (15 ns/entry).
pub const HOST_WALK_NS_PER_ENTRY: f64 = 15.0;

/// Synthetic interaction-list lengths for tree-plan admission forecasts:
/// one walk per `walk` bodies, each list `min(N, 32·√N)` long (see the
/// module docs for where that fit comes from).
fn proxy_list_lens(n: usize, walk: usize) -> Vec<usize> {
    let walks = n.div_ceil(walk.max(1)).max(1);
    let len = n.min((32.0 * (n as f64).sqrt()).round() as usize).max(1);
    vec![len; walks]
}

/// Total proxy interaction-list entries at `n` bodies — the same synthetic
/// fit the admission forecasts use, exposed so admission can also estimate
/// packed-list *bytes* (out-of-core memory budgeting) from one model.
pub fn proxy_entries(n: usize, walk: usize) -> usize {
    proxy_list_lens(n, walk).iter().sum()
}

/// Admission-grade synthetic [`PipelineShape`] for device-tree forecasts:
/// half-full leaves at the repo's default capacity, 8-ary fan-out levels
/// that saturate geometrically, and the same proxy interaction lists as the
/// host-tree forecast. Like [`proxy_list_lens`], this is the right order of
/// magnitude and monotone in N, not a promise.
fn proxy_pipeline_shape(n: usize, walk: usize) -> PipelineShape {
    let lens = proxy_list_lens(n, walk);
    let walks = lens.len();
    let entries: usize = lens.iter().sum();
    let leaves = n.div_ceil(8).max(1);
    let internal = (leaves / 7).max(1);
    let mut levels = Vec::new();
    let mut width = 1_usize;
    let mut remaining = internal;
    while remaining > 0 && levels.len() < 21 {
        let ranges = width.min(remaining);
        levels.push((ranges, n));
        remaining -= ranges;
        width = width.saturating_mul(8);
    }
    PipelineShape {
        n,
        levels,
        nodes: leaves + internal,
        leaf_ranges: leaves,
        leaf_bodies: n,
        walks,
        walk_size: walk,
        entries,
        body_entries: entries / 2,
        visited: 2 * entries,
        fallback_host_build: false,
    }
}

/// One force evaluation's forecast, split into the phases admission and
/// shedding reason about: the device kernel time, the serial host tree
/// build, the host walk generation (which the plans overlap with the
/// kernels), and — for device-tree jobs — the on-device tree pipeline that
/// replaces both host phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPhases {
    /// Force-kernel seconds on the simulated device.
    pub kernel_s: f64,
    /// Serial host tree-build seconds (zero for PP and device-tree jobs).
    pub host_tree_s: f64,
    /// Host walk-generation seconds (overlapped with the kernels).
    pub host_walk_s: f64,
    /// On-device tree-pipeline seconds (zero unless `device_tree`).
    pub pipeline_s: f64,
}

impl EvalPhases {
    /// Critical-path seconds: the tree build and pipeline are serial, walk
    /// generation hides under the kernels (exactly how
    /// `plans::common::PlanOutcome::total_seconds` composes them).
    pub fn seconds(&self) -> f64 {
        self.host_tree_s + self.pipeline_s + self.host_walk_s.max(self.kernel_s)
    }
}

/// Forecast one force evaluation of `plan_id` at `n` bodies, phase by
/// phase. Unknown plan ids fall back to the i-parallel forecast (the most
/// expensive plan — shedding stays conservative). `device_tree` prices the
/// on-device pipeline instead of the host tree/walk phases.
pub fn forecast_eval_phases(
    plan_id: &str,
    n: usize,
    tile: Option<usize>,
    device_tree: bool,
) -> EvalPhases {
    let spec = DeviceSpec::radeon_hd_5850();
    let block = tile.unwrap_or(DEFAULT_BLOCK).max(1);
    let walk = tile.unwrap_or(DEFAULT_WALK).max(1);
    let mut phases =
        EvalPhases { kernel_s: 0.0, host_tree_s: 0.0, host_walk_s: 0.0, pipeline_s: 0.0 };
    let tree_plan = matches!(plan_id, "w-parallel" | "jw-parallel");
    phases.kernel_s = match plan_id {
        "j-parallel" => forecast_j_parallel(n, block, DEFAULT_SLICES, &spec).seconds,
        "w-parallel" => forecast_w_parallel(&proxy_list_lens(n, walk), walk, &spec).seconds,
        "jw-parallel" => {
            forecast_jw_parallel(&proxy_list_lens(n, walk), walk, block, &spec).seconds
        }
        _ => forecast_i_parallel(n, block, &spec).seconds,
    };
    if tree_plan {
        if device_tree {
            let shape = proxy_pipeline_shape(n, walk);
            phases.pipeline_s =
                forecast_pipeline(&shape, &spec, &TransferModel::pcie2_x16()).seconds();
        } else {
            let entries: usize = proxy_list_lens(n, walk).iter().sum();
            phases.host_tree_s = n as f64 * HOST_TREE_NS_PER_BODY * 1e-9;
            phases.host_walk_s = entries as f64 * HOST_WALK_NS_PER_ENTRY * 1e-9;
        }
    }
    phases
}

/// Forecast simulated seconds for one force evaluation of `plan_id` at `n`
/// bodies — the critical path of [`forecast_eval_phases`] with the host
/// tree path (the tree plans' host build/walk phases are now priced
/// explicitly instead of being absorbed into the kernel term).
pub fn forecast_eval_seconds(plan_id: &str, n: usize, tile: Option<usize>) -> f64 {
    forecast_eval_phases(plan_id, n, tile, false).seconds()
}

/// Forecast simulated seconds for a whole job: `steps` integration force
/// evaluations plus the priming one.
pub fn forecast_job_seconds(plan_id: &str, n: usize, steps: usize, tile: Option<usize>) -> f64 {
    forecast_job_seconds_with(plan_id, n, steps, tile, false)
}

/// [`forecast_job_seconds`] with the device-tree pipeline knob exposed:
/// sharded/device-tree jobs admitted under a memory budget forecast the
/// pipeline instead of the host tree phases.
pub fn forecast_job_seconds_with(
    plan_id: &str,
    n: usize,
    steps: usize,
    tile: Option<usize>,
    device_tree: bool,
) -> f64 {
    (steps as f64 + 1.0) * forecast_eval_phases(plan_id, n, tile, device_tree).seconds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecasts_are_positive_finite_and_monotone() {
        for plan in ["i-parallel", "j-parallel", "w-parallel", "jw-parallel"] {
            let small = forecast_job_seconds(plan, 1024, 8, None);
            let big_n = forecast_job_seconds(plan, 8192, 8, None);
            let big_steps = forecast_job_seconds(plan, 1024, 64, None);
            assert!(small.is_finite() && small > 0.0, "{plan}: {small}");
            assert!(big_n > small, "{plan}: more bodies must forecast more time");
            assert!(big_steps > small, "{plan}: more steps must forecast more time");
        }
    }

    #[test]
    fn j_parallel_beats_i_parallel_as_in_the_paper() {
        let i = forecast_job_seconds("i-parallel", 4096, 8, None);
        let j = forecast_job_seconds("j-parallel", 4096, 8, None);
        assert!(j < i, "the paper's central ranking must survive composition: {j} !< {i}");
    }

    #[test]
    fn unknown_plans_shed_conservatively() {
        let unknown = forecast_job_seconds("quantum-parallel", 2048, 4, None);
        let i = forecast_job_seconds("i-parallel", 2048, 4, None);
        assert_eq!(unknown, i, "unknown ids take the most expensive forecast");
    }

    #[test]
    fn tree_phases_are_explicit_and_compose_into_the_total() {
        for plan in ["w-parallel", "jw-parallel"] {
            let p = forecast_eval_phases(plan, 8192, None, false);
            assert!(p.host_tree_s > 0.0, "{plan}: host tree phase must be priced");
            assert!(p.host_walk_s > 0.0, "{plan}: host walk phase must be priced");
            assert_eq!(p.pipeline_s, 0.0, "{plan}: no pipeline on the host tree path");
            assert_eq!(p.seconds(), p.host_tree_s + p.host_walk_s.max(p.kernel_s));
            assert_eq!(forecast_eval_seconds(plan, 8192, None), p.seconds());
        }
        for plan in ["i-parallel", "j-parallel"] {
            let p = forecast_eval_phases(plan, 8192, None, false);
            assert_eq!(p.host_tree_s + p.host_walk_s + p.pipeline_s, 0.0, "{plan}");
            assert_eq!(p.seconds(), p.kernel_s, "{plan}");
        }
    }

    #[test]
    fn device_tree_variant_replaces_host_phases_with_the_pipeline() {
        for plan in ["w-parallel", "jw-parallel"] {
            let host = forecast_eval_phases(plan, 65536, None, false);
            let dev = forecast_eval_phases(plan, 65536, None, true);
            assert_eq!(dev.host_tree_s, 0.0, "{plan}");
            assert_eq!(dev.host_walk_s, 0.0, "{plan}");
            assert!(dev.pipeline_s > 0.0, "{plan}: pipeline must be priced");
            assert_eq!(dev.kernel_s, host.kernel_s, "{plan}: force kernels unchanged");
            let job_host = forecast_job_seconds_with(plan, 65536, 4, None, false);
            let job_dev = forecast_job_seconds_with(plan, 65536, 4, None, true);
            assert!(job_host.is_finite() && job_dev.is_finite());
            assert!(job_dev > 0.0 && job_host > 0.0);
        }
        // PP plans have no tree: the knob is a no-op
        let a = forecast_eval_phases("i-parallel", 4096, None, true);
        let b = forecast_eval_phases("i-parallel", 4096, None, false);
        assert_eq!(a, b);
    }

    #[test]
    fn forecast_is_deterministic() {
        let a = forecast_job_seconds("jw-parallel", 3000, 12, Some(128));
        let b = forecast_job_seconds("jw-parallel", 3000, 12, Some(128));
        assert_eq!(a, b);
    }

    const PLANS: [&str; 4] = ["i-parallel", "j-parallel", "w-parallel", "jw-parallel"];

    /// Tiny deterministic LCG for the seeded property sweeps (no rand shim
    /// in this crate, and the tests must be reproducible anyway).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next() % (hi - lo)
        }
    }

    #[test]
    fn property_forecasts_finite_positive_over_seeded_sweep() {
        let mut rng = Lcg(0x9e3779b97f4a7c15);
        for _ in 0..200 {
            let n = rng.in_range(1, 20_000) as usize;
            let steps = rng.in_range(0, 1_000) as usize;
            let tile = match rng.in_range(0, 4) {
                0 => None,
                t => Some(1usize << (5 + t)), // 64/128/256
            };
            for plan in PLANS {
                let s = forecast_job_seconds(plan, n, steps, tile);
                assert!(s.is_finite() && s > 0.0, "{plan} n={n} steps={steps} tile={tile:?}: {s}");
            }
        }
    }

    #[test]
    fn property_forecast_monotone_nondecreasing_in_n() {
        // non-decreasing, not strict: block padding makes legitimate
        // plateaus (n=250 and n=256 fill the same blocks)
        let mut rng = Lcg(0xdeadbeefcafef00d);
        for _ in 0..100 {
            let n1 = rng.in_range(1, 16_000) as usize;
            let n2 = n1 + rng.in_range(1, 4_000) as usize;
            let steps = rng.in_range(0, 100) as usize;
            let tile = if rng.in_range(0, 2) == 0 { None } else { Some(128) };
            for plan in PLANS {
                let a = forecast_job_seconds(plan, n1, steps, tile);
                let b = forecast_job_seconds(plan, n2, steps, tile);
                assert!(b >= a, "{plan}: f({n2})={b} < f({n1})={a} (steps={steps} tile={tile:?})");
            }
        }
    }

    #[test]
    fn property_forecast_monotone_nondecreasing_in_steps() {
        let mut rng = Lcg(0x0123456789abcdef);
        for _ in 0..100 {
            let n = rng.in_range(1, 16_000) as usize;
            let s1 = rng.in_range(0, 500) as usize;
            let s2 = s1 + rng.in_range(1, 500) as usize;
            for plan in PLANS {
                let a = forecast_job_seconds(plan, n, s1, None);
                let b = forecast_job_seconds(plan, n, s2, None);
                assert!(b >= a, "{plan}: f(steps={s2})={b} < f(steps={s1})={a} (n={n})");
            }
        }
    }
}
