//! Whole-job cost forecasts for admission control.
//!
//! The paper's analytic model forecasts one *launch*; a job-server admission
//! decision needs the cost of a whole job — `steps` force evaluations plus
//! the priming one — before anything runs. [`forecast_job_seconds`] composes
//! the per-plan launch forecasts from [`crate::model`] into that number.
//!
//! For the blocked plans (`i-parallel`, `j-parallel`) the launch geometry is
//! exact. The tree plans (`w-parallel`, `jw-parallel`) have data-dependent
//! interaction lists that do not exist before the job runs, so admission
//! uses a documented synthetic proxy: uniform lists of length
//! `min(N, 8·log₂N)` — the classic Barnes–Hut O(log N) list-length scaling
//! with a small constant — one walk per `walk` bodies. That is an
//! *admission-grade* estimate (the right order of magnitude, monotone in N
//! and steps), not a promise; the observed/forecast comparison machinery in
//! [`crate::observed`] remains the precision instrument.
//!
//! Load shedding compares the sum of these forecasts over everything queued
//! and running ("queue debt") against a budget; the forecast is
//! deterministic, so shedding decisions are reproducible.

use crate::model::{
    forecast_i_parallel, forecast_j_parallel, forecast_jw_parallel, forecast_w_parallel,
};
use gpu_sim::spec::DeviceSpec;

/// Default work-group size when the job does not pin a tile.
pub const DEFAULT_BLOCK: usize = 256;
/// Default walk size for the tree plans.
pub const DEFAULT_WALK: usize = 64;
/// Default j-parallel slice count (the paper's sweet spot for the reference
/// device at the N range the admission budgets allow).
pub const DEFAULT_SLICES: usize = 54;

/// Synthetic interaction-list lengths for tree-plan admission forecasts:
/// one walk per `walk` bodies, each list `min(N, 8·log₂N)` long.
fn proxy_list_lens(n: usize, walk: usize) -> Vec<usize> {
    let walks = n.div_ceil(walk.max(1)).max(1);
    let log2n = (usize::BITS - n.max(2).leading_zeros()) as usize;
    let len = n.min(8 * log2n).max(1);
    vec![len; walks]
}

/// Forecast simulated seconds for one force evaluation of `plan_id` at `n`
/// bodies. Unknown plan ids fall back to the i-parallel forecast (the most
/// expensive plan — shedding stays conservative).
pub fn forecast_eval_seconds(plan_id: &str, n: usize, tile: Option<usize>) -> f64 {
    let spec = DeviceSpec::radeon_hd_5850();
    let block = tile.unwrap_or(DEFAULT_BLOCK).max(1);
    let walk = tile.unwrap_or(DEFAULT_WALK).max(1);
    match plan_id {
        "j-parallel" => forecast_j_parallel(n, block, DEFAULT_SLICES, &spec).seconds,
        "w-parallel" => forecast_w_parallel(&proxy_list_lens(n, walk), walk, &spec).seconds,
        "jw-parallel" => {
            forecast_jw_parallel(&proxy_list_lens(n, walk), walk, block, &spec).seconds
        }
        _ => forecast_i_parallel(n, block, &spec).seconds,
    }
}

/// Forecast simulated seconds for a whole job: `steps` integration force
/// evaluations plus the priming one.
pub fn forecast_job_seconds(plan_id: &str, n: usize, steps: usize, tile: Option<usize>) -> f64 {
    (steps as f64 + 1.0) * forecast_eval_seconds(plan_id, n, tile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecasts_are_positive_finite_and_monotone() {
        for plan in ["i-parallel", "j-parallel", "w-parallel", "jw-parallel"] {
            let small = forecast_job_seconds(plan, 1024, 8, None);
            let big_n = forecast_job_seconds(plan, 8192, 8, None);
            let big_steps = forecast_job_seconds(plan, 1024, 64, None);
            assert!(small.is_finite() && small > 0.0, "{plan}: {small}");
            assert!(big_n > small, "{plan}: more bodies must forecast more time");
            assert!(big_steps > small, "{plan}: more steps must forecast more time");
        }
    }

    #[test]
    fn j_parallel_beats_i_parallel_as_in_the_paper() {
        let i = forecast_job_seconds("i-parallel", 4096, 8, None);
        let j = forecast_job_seconds("j-parallel", 4096, 8, None);
        assert!(j < i, "the paper's central ranking must survive composition: {j} !< {i}");
    }

    #[test]
    fn unknown_plans_shed_conservatively() {
        let unknown = forecast_job_seconds("quantum-parallel", 2048, 4, None);
        let i = forecast_job_seconds("i-parallel", 2048, 4, None);
        assert_eq!(unknown, i, "unknown ids take the most expensive forecast");
    }

    #[test]
    fn forecast_is_deterministic() {
        let a = forecast_job_seconds("jw-parallel", 3000, 12, Some(128));
        let b = forecast_job_seconds("jw-parallel", 3000, 12, Some(128));
        assert_eq!(a, b);
    }
}
