//! # ptpm
//!
//! The **Parallel Time-Space Processing Model** of the paper (§3–4),
//! implemented as a first-class artifact rather than prose: GPU execution is
//! a rectangle of space (compute units) × time (cycles); an execution plan
//! is a placement of work-groups into that rectangle; plan quality is
//! geometry — space utilization, balance, makespan.
//!
//! * [`grid`] — the time-space grid, placements, utilization/balance
//!   metrics, and an ASCII rendering for reports;
//! * [`model`] — closed-form forecasts of each plan's launch shape, used to
//!   *predict* the ranking the simulator then measures;
//! * [`observed`] — grids reconstructed from execution traces, and the
//!   cell-by-cell diff of forecast against observation;
//! * [`jobcost`] — whole-job cost forecasts composed from the launch model,
//!   the admission/load-shedding entry point for the job server.
//!
//! ```
//! use ptpm::prelude::*;
//! use gpu_sim::spec::DeviceSpec;
//!
//! let spec = DeviceSpec::radeon_hd_5850();
//! let i = forecast_i_parallel(1024, 256, &spec);
//! let j = forecast_j_parallel(1024, 256, 54, &spec);
//! assert!(j.seconds < i.seconds); // the paper's argument, as a computation
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod jobcost;
pub mod model;
pub mod observed;

/// Common imports.
pub mod prelude {
    pub use crate::grid::{Placement, TimeSpaceGrid};
    pub use crate::jobcost::{forecast_eval_seconds, forecast_job_seconds};
    pub use crate::model::{
        forecast_blocks, forecast_grid, forecast_i_parallel, forecast_j_parallel,
        forecast_jw_parallel, forecast_w_parallel, i_parallel_block_flops, j_parallel_block_flops,
        jw_parallel_block_flops, w_parallel_block_flops, Forecast,
    };
    pub use crate::observed::{compare_grids, observed_grid, observed_grids, GridComparison};
}

pub use prelude::*;
