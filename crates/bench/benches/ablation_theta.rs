//! Ablation: opening angle θ for jw-parallel — the accuracy/throughput knob
//! of every tree plan (interactions scale steeply with θ).

use bench::{kernel_seconds, simulated, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plans::prelude::{JwParallel, PlanConfig};

fn ablation(c: &mut Criterion) {
    let set = workload(8192);
    let mut group = c.benchmark_group("ablation_theta");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for theta in [0.3_f64, 0.5, 0.8] {
        let plan = JwParallel::new(PlanConfig { theta, ..Default::default() });
        group.bench_with_input(BenchmarkId::from_parameter(format!("{theta}")), &theta, |b, _| {
            b.iter_custom(|iters| simulated(&plan, &set, iters, kernel_seconds))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = ablation
}
criterion_main!(benches);
