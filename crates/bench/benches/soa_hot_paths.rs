//! Microbenches of the PR5 hot paths (real wall time): the cache-blocked
//! SoA PP kernel against the scalar AoS reference, and the incremental
//! Morton re-sort against a full sort, at N = 1024 and 4096.

use bench::{gravity, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody_core::prelude::*;
use treecode::prelude::*;

fn soa_hot_paths(c: &mut Criterion) {
    let params = gravity();

    let mut group = c.benchmark_group("soa_hot_paths");
    group.sample_size(10);

    for n in [1024_usize, 4096] {
        let set = workload(n);
        let mut acc = vec![Vec3::ZERO; n];
        group.bench_with_input(BenchmarkId::new("pp_naive", n), &n, |b, _| {
            b.iter(|| accelerations_pp(&set, &params, &mut acc));
        });
        let mut soa = SoaBodies::new();
        let tile = nbody_core::soa::tile();
        group.bench_with_input(BenchmarkId::new("pp_tiled", n), &n, |b, _| {
            // includes the per-step AoS→SoA packing, as the engine pays it
            b.iter(|| {
                soa.fill_from(&set);
                accelerations_pp_tiled_with(soa.view(), &params, tile, &mut acc);
            });
        });

        // drift the bodies so the previous Morton order is near-sorted —
        // the regime the incremental sort exploits
        let mut drifted = set.clone();
        let order0 = morton_order(&drifted);
        let mut engine = SoaPp::new(params);
        nbody_core::integrator::run(&mut drifted, &mut engine, &LeapfrogKdk, 5e-3, 5);
        group.bench_with_input(BenchmarkId::new("morton_full", n), &n, |b, _| {
            b.iter(|| morton_order(&drifted));
        });
        let mut scratch = par::arena::Scratch::new();
        let mut order: Vec<u32> = Vec::new();
        group.bench_with_input(BenchmarkId::new("morton_incremental", n), &n, |b, _| {
            b.iter(|| {
                order.clear();
                order.extend_from_slice(&order0);
                morton_order_incremental(&drifted, &mut order, &mut scratch);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, soa_hot_paths);
criterion_main!(benches);
