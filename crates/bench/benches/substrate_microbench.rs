//! Microbenches of the substrates themselves (real wall time): octree
//! build, walk generation, CPU BH evaluation, and the functional execution
//! throughput of the simulated device.

use bench::{gravity, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::prelude::*;
use nbody_core::prelude::*;
use plans::prelude::ExecutionPlan;
use plans::prelude::IParallel;
use treecode::prelude::*;

fn substrates(c: &mut Criterion) {
    let params = gravity();

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);

    for n in [1024_usize, 8192] {
        let set = workload(n);
        group.bench_with_input(BenchmarkId::new("octree_build", n), &n, |b, _| {
            b.iter(|| Octree::build(&set, TreeParams::default()));
        });
        let tree = Octree::build(&set, TreeParams::default());
        group.bench_with_input(BenchmarkId::new("walk_generation", n), &n, |b, _| {
            b.iter(|| build_walks(&tree, &set, OpeningAngle::new(0.5), 256));
        });
        group.bench_with_input(BenchmarkId::new("cpu_bh_forces", n), &n, |b, _| {
            let mut acc = vec![Vec3::ZERO; set.len()];
            b.iter(|| accelerations_bh(&tree, &set, OpeningAngle::new(0.5), &params, &mut acc));
        });
    }

    // how fast the *simulator itself* runs (host wall time per simulated eval)
    let set = workload(2048);
    group.bench_function("simulator_functional_throughput_n2048", |b| {
        let mut dev =
            Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free());
        let plan = IParallel::default();
        b.iter(|| plan.evaluate(&mut dev, &set, &params));
    });
    group.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);
