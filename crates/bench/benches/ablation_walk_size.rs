//! Ablation: walk size for the tree plans — bigger walks cut host-side list
//! generation per interaction but inflate the lists themselves (group MAC
//! gets more conservative).

use bench::{simulated, total_seconds, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plans::prelude::{JwParallel, PlanConfig};

fn ablation(c: &mut Criterion) {
    let set = workload(8192);
    let mut group = c.benchmark_group("ablation_walk_size");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for ws in [64_usize, 128, 256] {
        let plan = JwParallel::new(PlanConfig { walk_size: ws, ..Default::default() });
        group.bench_with_input(BenchmarkId::from_parameter(ws), &ws, |b, _| {
            b.iter_custom(|iters| simulated(&plan, &set, iters, total_seconds));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = ablation
}
criterion_main!(benches);
