//! Ablation: strong scaling over compute units. Reruns jw-parallel on
//! hypothetical devices with 4–32 CUs (bandwidth scaled proportionally) —
//! the PTPM question "does the plan keep the space dimension full as the
//! space grows?" answered empirically.

use bench::{gravity, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use plans::prelude::{ExecutionPlan, JwParallel};

fn ablation(c: &mut Criterion) {
    let set = workload(8192);
    let params = gravity();
    let mut group = c.benchmark_group("ablation_compute_units");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(300));
    for cus in [4_u32, 9, 18, 32] {
        let spec = DeviceSpec::radeon_hd_5850().with_compute_units(cus);
        group.bench_with_input(BenchmarkId::from_parameter(cus), &cus, |b, _| {
            b.iter_custom(|iters| {
                let mut dev = Device::with_transfer_model(spec.clone(), TransferModel::pcie2_x16());
                let plan = JwParallel::default();
                let mut seconds = 0.0;
                for _ in 0..iters {
                    seconds += plan.evaluate(&mut dev, &set, &params).kernel_s;
                }
                std::time::Duration::from_secs_f64(seconds)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = ablation
}
criterion_main!(benches);
