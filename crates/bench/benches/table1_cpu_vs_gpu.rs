//! Table 1 bench: the CPU baselines (real wall time on this machine) against
//! the simulated-GPU plans (simulated device time). The CPU rows measure the
//! actual scalar reference code; the paper's E2140 scaling factor is applied
//! by the harness, not here.

use bench::{gravity, simulated, total_seconds, workload};
use criterion::{criterion_group, criterion_main, Criterion};
use nbody_core::prelude::*;
use plans::prelude::{IParallel, JwParallel};
use treecode::prelude::*;

fn table1(c: &mut Criterion) {
    let n = 1024;
    let set = workload(n);
    let params = gravity();
    let mut group = c.benchmark_group("table1_cpu_vs_gpu");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));

    group.bench_function("cpu_pp_scalar", |b| {
        let mut acc = vec![Vec3::ZERO; n];
        b.iter(|| accelerations_pp(&set, &params, &mut acc));
    });
    group.bench_function("cpu_pp_parallel", |b| {
        let mut acc = vec![Vec3::ZERO; n];
        b.iter(|| accelerations_pp_parallel(&set, &params, &mut acc, 8));
    });
    group.bench_function("cpu_barnes_hut", |b| {
        let mut acc = vec![Vec3::ZERO; n];
        b.iter(|| {
            let tree = Octree::build(&set, TreeParams::default());
            accelerations_bh(&tree, &set, OpeningAngle::new(0.5), &params, &mut acc)
        });
    });
    group.bench_function("gpu_pp_i_parallel_simulated", |b| {
        let plan = IParallel::default();
        b.iter_custom(|iters| simulated(&plan, &set, iters, total_seconds));
    });
    group.bench_function("gpu_jw_parallel_simulated", |b| {
        let plan = JwParallel::default();
        b.iter_custom(|iters| simulated(&plan, &set, iters, total_seconds));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = table1
}
criterion_main!(benches);
