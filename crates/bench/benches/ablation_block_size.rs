//! Ablation: i-parallel block (tile) size. The paper's §4.3 design note —
//! threads-per-block trades tile reuse against block count; 256 is the sweet
//! spot on Evergreen.

use bench::{kernel_seconds, simulated, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plans::prelude::{IParallel, PlanConfig};

fn ablation(c: &mut Criterion) {
    let set = workload(4096);
    let mut group = c.benchmark_group("ablation_block_size");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for block in [64_usize, 128, 256] {
        let plan = IParallel::new(PlanConfig { block_size: block, ..Default::default() });
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, _| {
            b.iter_custom(|iters| simulated(&plan, &set, iters, kernel_seconds));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = ablation
}
criterion_main!(benches);
