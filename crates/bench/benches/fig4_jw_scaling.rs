//! Figure 4 bench: jw-parallel simulated kernel time across the N sweep.
//! Criterion reports the *simulated device seconds* per evaluation; dividing
//! the interaction count by the reported time reproduces the paper's GFLOPS
//! curve (the `fig4` harness binary prints the curve directly).

use bench::{kernel_seconds, simulated, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plans::prelude::JwParallel;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_jw_scaling");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for n in [256_usize, 1024, 4096, 16384] {
        let set = workload(n);
        let plan = JwParallel::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_custom(|iters| simulated(&plan, &set, iters, kernel_seconds));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = fig4
}
criterion_main!(benches);
