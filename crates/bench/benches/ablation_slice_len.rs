//! Ablation: jw-parallel slice length L — the paper's core design choice.
//! Small L multiplies blocks (occupancy, balance) but pays per-block
//! overhead; large L degenerates to w-parallel.

use bench::{kernel_seconds, simulated, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plans::prelude::{JwParallel, PlanConfig};

fn ablation(c: &mut Criterion) {
    let set = workload(4096);
    let mut group = c.benchmark_group("ablation_slice_len");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for len in [64_usize, 256, 1024, 8192] {
        let plan = JwParallel::new(PlanConfig { jw_slice_len: Some(len), ..Default::default() });
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter_custom(|iters| simulated(&plan, &set, iters, kernel_seconds));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = ablation
}
criterion_main!(benches);
