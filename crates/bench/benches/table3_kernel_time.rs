//! Table 3 bench: simulated kernel-only time of the four plans.

use bench::{kernel_seconds, simulated, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plans::make_plan;
use plans::prelude::{PlanConfig, PlanKind};

fn table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_kernel_time");
    group.sample_size(10);
    // iter_custom returns *simulated* seconds; keep Criterion's budget small
    // so it does not schedule thousands of (wall-expensive) iterations, and
    // use flat sampling so low-iteration samples don't break the regression
    group.sampling_mode(criterion::SamplingMode::Flat);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(500));
    for n in [1024_usize, 8192] {
        let set = workload(n);
        for kind in PlanKind::all() {
            let plan = make_plan(kind, PlanConfig::default());
            group.bench_with_input(BenchmarkId::new(kind.id(), n), &n, |b, _| {
                b.iter_custom(|iters| simulated(plan.as_ref(), &set, iters, kernel_seconds))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bench::deterministic_criterion();
    targets = table3
}
criterion_main!(benches);
