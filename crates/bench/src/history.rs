//! The committed benchmark trajectory and its regression gate.
//!
//! Every `repro-all --bench-json` run produces a `BENCH_*.json` snapshot —
//! and until this module existed, every snapshot died with its CI run
//! (`BENCH_*.json` is gitignored). `bench/history.jsonl` fixes the
//! trajectory problem: one [`HistoryEntry`] per line, append-only,
//! committed, so "is PR N faster than PR N-1?" has a durable answer.
//!
//! The gate ([`verdict`]) compares the newest entry against the history
//! under a noise band:
//!
//! * **bit-exactness is never waived** — any non-bit-exact row in the
//!   newest entry fails immediately;
//! * speedups are only compared within the same *parallelism class*
//!   (single-core machines genuinely cannot show a speedup, so their
//!   entries would poison multi-core baselines and vice versa);
//! * per gated `(plan, n ≥ min_n)` key, the newest speedup must stay
//!   within `band` of the **median** of the prior same-class entries —
//!   median, not mean, so one noisy CI run cannot drag the baseline;
//! * no comparable baseline (first entry, new machine class, new size)
//!   is an explicit `SKIP`, never a silent pass.
//!
//! Wall-clock numbers are noisy, which is why the default band is wide
//! (35%): the gate is meant to catch *architectural* regressions — a plan
//! losing its parallelism, a lock sneaking into a hot loop — not 3% jitter.

use harness::bench_json::BenchReport;
use serde::{Deserialize, Serialize};

/// Default relative noise band: the newest speedup may fall up to this
/// fraction below the baseline median before the gate fails.
pub const DEFAULT_BAND: f64 = 0.35;

/// Default smallest N whose rows are speedup-gated (smaller workloads have
/// too little work for stable wall-clock ratios — same bar as the
/// `--bench-json` verdict).
pub const DEFAULT_MIN_N: usize = 4096;

/// One line of `bench/history.jsonl`: a labelled, sequenced benchmark
/// snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Monotone sequence number (1-based, assigned at append).
    pub seq: u64,
    /// Where the snapshot came from (`pr9-seed`, `ci`, …).
    pub label: String,
    /// The benchmark report itself.
    pub report: BenchReport,
}

impl HistoryEntry {
    /// True when this entry ran with real parallelism (≥ 2 workers on a
    /// ≥ 2-way machine). Entries are only comparable within one class.
    pub fn is_parallel(&self) -> bool {
        self.report.threads >= 2 && self.report.available_parallelism >= 2
    }
}

/// The whole trajectory, oldest first.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The entries, ascending by `seq`.
    pub entries: Vec<HistoryEntry>,
}

impl History {
    /// Parses the JSONL form. Blank lines are tolerated (trailing
    /// newline); anything unparseable is an error naming the line — a
    /// corrupt committed history should fail loudly, not gate vacuously.
    pub fn parse(text: &str) -> Result<History, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry: HistoryEntry =
                serde_json::from_str(line).map_err(|e| format!("history line {}: {e}", i + 1))?;
            entries.push(entry);
        }
        Ok(History { entries })
    }

    /// Serializes back to JSONL (one compact line per entry).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&serde_json::to_string(entry).expect("history entry serializes"));
            out.push('\n');
        }
        out
    }

    /// Appends a snapshot with the next sequence number, recomputing every
    /// row's speedup from its raw timings first (defense against
    /// hand-edited or stale documents).
    pub fn append(&mut self, label: &str, mut report: BenchReport) -> &HistoryEntry {
        for row in &mut report.rows {
            row.speedup = row.serial_s / row.threaded_s.max(1e-12);
        }
        let seq = self.entries.last().map_or(0, |e| e.seq) + 1;
        self.entries.push(HistoryEntry { seq, label: label.to_string(), report });
        self.entries.last().expect("just pushed")
    }

    /// The per-`(plan, n)` speedup series, rendered for humans.
    pub fn render_trajectory(&self) -> String {
        let mut keys: Vec<(String, usize)> = Vec::new();
        for e in &self.entries {
            for r in &e.report.rows {
                let key = (r.plan.clone(), r.n);
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        let mut out = String::new();
        for (plan, n) in keys {
            out.push_str(&format!("{plan:<12} n={n:<6}"));
            for e in &self.entries {
                if let Some(r) = e.report.rows.iter().find(|r| r.plan == plan && r.n == n) {
                    let class = if e.is_parallel() { "" } else { "*" };
                    out.push_str(&format!(" {}:{:.2}x{}", e.seq, r.speedup, class));
                }
            }
            out.push('\n');
        }
        if !out.is_empty() {
            out.push_str("(speedup per entry seq; * = single-core entry, not gated together)\n");
        }
        out
    }
}

/// Gate knobs.
#[derive(Debug, Clone, Copy)]
pub struct GatePolicy {
    /// Relative noise band ([`DEFAULT_BAND`]).
    pub band: f64,
    /// Smallest gated N ([`DEFAULT_MIN_N`]).
    pub min_n: usize,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy { band: DEFAULT_BAND, min_n: DEFAULT_MIN_N }
    }
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// The trajectory gate: judges the newest entry against the prior history
/// under `policy`. Returns a machine-greppable one-liner starting with
/// `BENCH HISTORY OK`, `BENCH HISTORY SKIP (…)`, or `BENCH HISTORY FAIL (…)`.
pub fn verdict(history: &History, policy: &GatePolicy) -> String {
    let Some(latest) = history.entries.last() else {
        return "BENCH HISTORY SKIP (no history)".into();
    };
    // bit-exactness first: never waived, not even without a baseline
    if let Some(bad) = latest.report.rows.iter().find(|r| !r.bitexact) {
        return format!(
            "BENCH HISTORY FAIL ({} n={} not bit-exact in entry {})",
            bad.plan, bad.n, latest.seq
        );
    }
    let prior = &history.entries[..history.entries.len() - 1];
    if prior.is_empty() {
        return "BENCH HISTORY SKIP (no baseline)".into();
    }
    let comparable: Vec<&HistoryEntry> =
        prior.iter().filter(|e| e.is_parallel() == latest.is_parallel()).collect();
    let gated: Vec<_> = latest.report.rows.iter().filter(|r| r.n >= policy.min_n).collect();
    if gated.is_empty() {
        return format!("BENCH HISTORY SKIP (no benchmark size reaches {})", policy.min_n);
    }
    let mut checked = 0usize;
    let mut worst: Option<(f64, String)> = None;
    for row in &gated {
        let mut baseline: Vec<f64> = comparable
            .iter()
            .flat_map(|e| &e.report.rows)
            .filter(|r| r.plan == row.plan && r.n == row.n)
            .map(|r| r.serial_s / r.threaded_s.max(1e-12))
            .collect();
        if baseline.is_empty() {
            continue;
        }
        checked += 1;
        let base = median(&mut baseline);
        let floor = base * (1.0 - policy.band);
        if row.speedup < floor {
            return format!(
                "BENCH HISTORY FAIL ({} n={} speedup {:.2}x fell below {:.2}x = median {:.2}x - {:.0}% band)",
                row.plan,
                row.n,
                row.speedup,
                floor,
                base,
                policy.band * 100.0
            );
        }
        let ratio = row.speedup / base.max(1e-12);
        let tag = format!("{} n={}", row.plan, row.n);
        if worst.as_ref().is_none_or(|(w, _)| ratio < *w) {
            worst = Some((ratio, tag));
        }
    }
    if checked == 0 {
        return "BENCH HISTORY SKIP (no comparable baseline)".into();
    }
    let (ratio, tag) = worst.expect("checked > 0 implies a worst point");
    format!("BENCH HISTORY OK ({checked} gated points; worst vs median {:.2}x at {tag})", ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::bench_json::BenchRow;

    fn report(speedups: &[(&str, usize, f64)], bitexact: bool) -> BenchReport {
        BenchReport {
            threads: 4,
            available_parallelism: 8,
            rows: speedups
                .iter()
                .map(|&(plan, n, s)| BenchRow {
                    plan: plan.to_string(),
                    n,
                    serial_s: 1.0,
                    threaded_s: 1.0 / s,
                    speedup: s,
                    bitexact,
                })
                .collect(),
        }
    }

    fn history_of(speedups: &[f64]) -> History {
        let mut h = History::default();
        for (i, &s) in speedups.iter().enumerate() {
            h.append(&format!("e{i}"), report(&[("jw-parallel", 8192, s)], true));
        }
        h
    }

    // the four golden verdicts the satellite task specifies

    #[test]
    fn golden_improvement_is_ok() {
        let h = history_of(&[1.5, 1.6, 2.1]);
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY OK"), "{v}");
    }

    #[test]
    fn golden_within_noise_jitter_is_ok() {
        // 1.4 vs median 1.5 is a 6.7% dip — well inside the 35% band
        let h = history_of(&[1.5, 1.55, 1.45, 1.4]);
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY OK"), "{v}");
    }

    #[test]
    fn golden_genuine_regression_is_fail() {
        // 0.6 vs median 1.55 is a 61% collapse — far outside the band
        let h = history_of(&[1.5, 1.6, 1.55, 0.6]);
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY FAIL"), "{v}");
        assert!(v.contains("jw-parallel n=8192"), "regression must be named: {v}");
    }

    #[test]
    fn golden_missing_baseline_is_skip() {
        let h = history_of(&[1.5]);
        let v = verdict(&h, &GatePolicy::default());
        assert_eq!(v, "BENCH HISTORY SKIP (no baseline)");
        let empty = History::default();
        assert_eq!(verdict(&empty, &GatePolicy::default()), "BENCH HISTORY SKIP (no history)");
    }

    #[test]
    fn bitexactness_is_never_waived() {
        // even with no baseline at all, a non-bit-exact row fails
        let mut h = History::default();
        h.append("only", report(&[("jw-parallel", 8192, 2.0)], false));
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY FAIL"), "{v}");
        assert!(v.contains("not bit-exact"), "{v}");
    }

    #[test]
    fn classes_do_not_cross_pollinate() {
        // a multi-core baseline must not gate a single-core latest entry
        let mut h = History::default();
        h.append("fast-box", report(&[("jw-parallel", 8192, 3.0)], true));
        let mut single = report(&[("jw-parallel", 8192, 1.0)], true);
        single.available_parallelism = 1;
        h.append("laptop", single);
        let v = verdict(&h, &GatePolicy::default());
        assert_eq!(v, "BENCH HISTORY SKIP (no comparable baseline)");
        // and same-class single-core entries DO gate each other
        let mut single2 = report(&[("jw-parallel", 8192, 0.98)], true);
        single2.available_parallelism = 1;
        h.append("laptop2", single2);
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY OK"), "{v}");
    }

    #[test]
    fn small_sizes_are_not_gated() {
        let mut h = History::default();
        h.append("a", report(&[("i-parallel", 1024, 1.5)], true));
        h.append("b", report(&[("i-parallel", 1024, 0.2)], true));
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY SKIP (no benchmark size reaches"), "{v}");
        // ... unless the policy lowers the bar
        let v = verdict(&h, &GatePolicy { min_n: 1024, ..GatePolicy::default() });
        assert!(v.starts_with("BENCH HISTORY FAIL"), "{v}");
    }

    #[test]
    fn median_baseline_resists_one_noisy_run() {
        // one absurd 10x outlier must not drag the baseline up to failing
        let h = history_of(&[1.5, 10.0, 1.5, 1.4]);
        let v = verdict(&h, &GatePolicy::default());
        assert!(v.starts_with("BENCH HISTORY OK"), "{v}");
    }

    #[test]
    fn jsonl_round_trips_and_append_renumbers() {
        let mut h = history_of(&[1.5, 1.6]);
        h.append("third", report(&[("w-parallel", 4096, 1.2)], true));
        let text = h.render_jsonl();
        let back = History::parse(&text).unwrap();
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.entries.last().unwrap().seq, 3);
        assert_eq!(back.entries.last().unwrap().label, "third");
        assert_eq!(back.render_jsonl(), text);
        // blank lines tolerated, garbage is a named error
        assert!(History::parse("\n\n").unwrap().entries.is_empty());
        let err = History::parse("not json\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn append_recomputes_speedup_defensively() {
        let mut h = History::default();
        let mut r = report(&[("jw-parallel", 8192, 2.0)], true);
        r.rows[0].speedup = 99.0; // stale/hand-edited field
        h.append("x", r);
        let s = h.entries[0].report.rows[0].speedup;
        assert!((s - 2.0).abs() < 1e-9, "recomputed from timings, got {s}");
    }
}
