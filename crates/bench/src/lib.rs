//! Shared helpers for the Criterion benches.
//!
//! Two measurement styles are used across the bench suite:
//!
//! * **wall time** (`b.iter(..)`) for real host computations — the CPU
//!   baselines of Table 1;
//! * **simulated device time** (`b.iter_custom(..)` + [`simulated`]) for
//!   everything that ran on the simulated HD 5850 — Criterion then reports
//!   the *device model's* seconds, which is what the paper's tables contain,
//!   independent of how fast the machine running the benchmark is.

pub mod history;

use gpu_sim::prelude::{Device, DeviceSpec, TransferModel};
use nbody_core::body::ParticleSet;
use nbody_core::gravity::GravityParams;
use plans::prelude::{ExecutionPlan, PlanOutcome};
use std::time::Duration;
use workloads::prelude::{plummer, PlummerParams};

/// The gravity model every bench uses (paper setup).
pub fn gravity() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

/// A fresh simulated HD 5850 with the paper-era PCIe link.
pub fn device() -> Device {
    Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::pcie2_x16())
}

/// The benchmark workload at one size (seeded Plummer sphere).
pub fn workload(n: usize) -> ParticleSet {
    plummer(n, PlummerParams::default(), 20110101)
}

/// Runs `iters` evaluations of `plan` and returns the accumulated simulated
/// seconds selected by `pick` (kernel-only, total, ...), as a `Duration`
/// suitable for `Bencher::iter_custom`.
pub fn simulated(
    plan: &dyn ExecutionPlan,
    set: &ParticleSet,
    iters: u64,
    pick: fn(&PlanOutcome) -> f64,
) -> Duration {
    let mut dev = device();
    let params = gravity();
    let mut seconds = 0.0;
    for _ in 0..iters {
        let outcome = plan.evaluate(&mut dev, set, &params);
        seconds += pick(&outcome);
    }
    Duration::from_secs_f64(seconds)
}

/// Criterion config for deterministic simulated-time benches: plots are
/// disabled because zero-variance samples (the device model is exactly
/// deterministic) make the KDE plot backend produce NaNs — and a density
/// plot of identical values carries no information anyway.
///
/// Only available with the `bench` feature, which pulls in criterion; the
/// default build keeps the bench-only dependency set out of `cargo test`.
#[cfg(feature = "bench")]
pub fn deterministic_criterion() -> criterion::Criterion {
    criterion::Criterion::default().without_plots()
}

/// Picker: simulated kernel seconds (Table 3 semantics).
pub fn kernel_seconds(o: &PlanOutcome) -> f64 {
    o.kernel_s
}

/// Picker: simulated total seconds (Table 2 semantics).
pub fn total_seconds(o: &PlanOutcome) -> f64 {
    o.total_seconds()
}
