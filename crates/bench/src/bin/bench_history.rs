//! Ingest benchmark snapshots into the committed trajectory and gate on it.
//!
//! ```text
//! cargo run -p bench --release --bin bench-history -- \
//!     --history bench/history.jsonl \
//!     [--ingest BENCH_pr4.json --label ci [--write]] \
//!     [--band 0.35] [--min-n 4096] [--inject-slowdown F]
//! ```
//!
//! Without `--ingest`, renders the per-plan speedup trajectory and judges
//! the newest committed entry. With `--ingest`, appends the given
//! `BENCH_*.json` (in memory; `--write` persists it) and judges the result
//! — that is the ci.sh append-and-verify step.
//!
//! `--inject-slowdown F` multiplies the ingested report's threaded
//! timings by `F` before judging and is **never** written: it exists so CI
//! can prove the gate has teeth (a 10× synthetic slowdown must produce
//! `BENCH HISTORY FAIL`) on any machine, right after appending the genuine
//! entry it regresses against.
//!
//! Exit codes: 0 for `OK`/`SKIP`, 1 for `FAIL`, 2 for usage or corrupt
//! inputs.

use bench::history::{verdict, GatePolicy, History};
use harness::bench_json::BenchReport;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).map(String::as_str)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value for {flag}: {v}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(history_path) = flag_value(&args, "--history") else {
        eprintln!(
            "usage: bench-history --history <jsonl> [--ingest <BENCH.json> --label L [--write]]"
        );
        eprintln!("                     [--band 0.35] [--min-n 4096] [--inject-slowdown F]");
        std::process::exit(2);
    };

    let mut history = match std::fs::read_to_string(history_path) {
        Ok(text) => History::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: corrupt history {history_path}: {e}");
            std::process::exit(2);
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => History::default(),
        Err(e) => {
            eprintln!("error: cannot read {history_path}: {e}");
            std::process::exit(2);
        }
    };

    if let Some(bench_path) = flag_value(&args, "--ingest") {
        let text = std::fs::read_to_string(bench_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {bench_path}: {e}");
            std::process::exit(2);
        });
        let mut report = BenchReport::from_json(&text).unwrap_or_else(|e| {
            eprintln!("error: corrupt bench report {bench_path}: {e}");
            std::process::exit(2);
        });
        let slowdown: f64 = parsed(&args, "--inject-slowdown", 1.0);
        if slowdown != 1.0 {
            for row in &mut report.rows {
                row.threaded_s *= slowdown;
            }
            println!("injected synthetic {slowdown}x slowdown (negative control, never written)");
        }
        let label = flag_value(&args, "--label").unwrap_or("local");
        let entry = history.append(label, report);
        println!("ingested {bench_path} as entry {} ({label})", entry.seq);
        if args.iter().any(|a| a == "--write") {
            if slowdown != 1.0 {
                eprintln!("error: refusing to --write an --inject-slowdown entry");
                std::process::exit(2);
            }
            if let Err(e) = std::fs::write(history_path, history.render_jsonl()) {
                eprintln!("error: cannot write {history_path}: {e}");
                std::process::exit(2);
            }
            println!("wrote {history_path} ({} entries)", history.entries.len());
        }
    }

    print!("{}", history.render_trajectory());
    let policy = GatePolicy {
        band: parsed(&args, "--band", GatePolicy::default().band),
        min_n: parsed(&args, "--min-n", GatePolicy::default().min_n),
    };
    let verdict_line = verdict(&history, &policy);
    println!("{verdict_line}");
    std::process::exit(i32::from(verdict_line.contains("FAIL")));
}
