//! The timing model: from per-group event counts to simulated seconds.
//!
//! The model is deliberately simple, deterministic, and documented — it is a
//! first-order performance model of an AMD Evergreen-class GPU, capturing
//! exactly the effects the paper's Parallel Time-Space Processing Model
//! reasons about:
//!
//! 1. **Space**: work-groups are placed on compute units by greedy
//!    least-loaded list scheduling. With fewer groups than CUs, the spare
//!    CUs idle — this is what starves i-parallel at small N.
//! 2. **Occupancy / latency hiding**: a CU can host `k` resident groups
//!    (limited by LDS and wavefront slots). Global memory latency is divided
//!    by `k`: more resident waves hide more latency.
//! 3. **Per-group cost**: a group occupies its CU for
//!    `max(alu_cycles, lds_cycles, mem_latency_cycles / k) + barrier cost`.
//! 4. **Device-level bandwidth floor**: no launch can finish faster than
//!    `total_bytes / bandwidth`.
//! 5. **Launch overhead**: a fixed host-side cost per kernel launch; this is
//!    what makes many tiny launches (the naive multi-kernel reduction of
//!    j-parallel) expensive at small N.

use crate::cost::GroupCost;
use crate::fault::CuHealth;
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Cycles charged per barrier per group (wavefront re-convergence cost).
pub const BARRIER_CYCLES: f64 = 16.0;

/// Timing of one kernel launch under the device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchTiming {
    /// End-to-end simulated seconds including launch overhead.
    pub seconds: f64,
    /// Compute-side makespan in core cycles (excludes overhead).
    pub compute_cycles: f64,
    /// Seconds implied by the bandwidth floor.
    pub bandwidth_floor_s: f64,
    /// True if the launch was limited by bandwidth rather than compute.
    pub bandwidth_bound: bool,
    /// Resident groups per CU used for latency hiding.
    pub occupancy_groups_per_cu: usize,
    /// Busy cycles accumulated per compute unit.
    pub cu_busy_cycles: Vec<f64>,
    /// Mean CU busy time divided by makespan — 1.0 is perfect balance.
    pub utilization: f64,
    /// Sum of all group costs.
    pub total_cost: GroupCost,
    /// Number of work-groups scheduled.
    pub num_groups: usize,
}

impl LaunchTiming {
    /// GFLOPS achieved by this launch under the charged-flop convention.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.total_cost.flops / self.seconds / 1e9
    }
}

/// Cycles a single group occupies its CU, given `k` resident groups for
/// latency hiding.
///
/// The memory term charges one full DRAM latency per group (the first
/// access of a dependent chain) plus a pipelined per-transaction issue cost:
/// within a wavefront, outstanding transactions overlap (memory-level
/// parallelism), so latency is not paid per transaction. Both components are
/// divided by the resident-group count `k` — co-resident groups hide each
/// other's stalls.
fn group_cycles(cost: &GroupCost, spec: &DeviceSpec, k: f64) -> f64 {
    let alu = cost.flops / spec.charged_flops_per_cycle_per_cu;
    let lds = cost.lds_accesses / spec.lds_words_per_cycle_per_cu;
    let mem_work = if cost.total_transactions() > 0.0 {
        spec.mem_latency_cycles
            + cost.total_transactions() * spec.mem_throughput_cycles_per_transaction
    } else {
        0.0
    };
    let mem = mem_work / k;
    alu.max(lds).max(mem) + cost.barriers as f64 * BARRIER_CYCLES
}

/// Where the scheduler put one work-group: compute unit and busy interval in
/// core cycles from launch start. The raw material of execution traces and
/// observed time-space grids.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupPlacement {
    /// Work-group index (launch order).
    pub group: usize,
    /// Compute unit it ran on.
    pub cu: usize,
    /// Cycle at which the group started.
    pub start_cycle: f64,
    /// Cycle at which the group retired.
    pub end_cycle: f64,
}

/// Times a launch whose groups produced `group_costs`, for work-groups of
/// `local_size` items using `lds_words` words of LDS each.
pub fn schedule_launch(
    spec: &DeviceSpec,
    local_size: usize,
    lds_words: usize,
    group_costs: &[GroupCost],
) -> LaunchTiming {
    schedule_launch_placed(spec, local_size, lds_words, group_costs).0
}

/// [`schedule_launch`] plus the per-group CU placements the greedy scheduler
/// chose. The timing is bit-identical to `schedule_launch`'s — this *is* the
/// scheduling loop, with the intermediate state kept instead of discarded.
pub fn schedule_launch_placed(
    spec: &DeviceSpec,
    local_size: usize,
    lds_words: usize,
    group_costs: &[GroupCost],
) -> (LaunchTiming, Vec<GroupPlacement>) {
    let cus = spec.compute_units as usize;
    // Latency hiding needs groups actually resident, not just capacity for
    // them: a launch with one group per CU exposes full memory latency no
    // matter how much LDS is free. Effective occupancy is therefore the
    // capacity limit clamped by the groups the launch can actually co-locate.
    let capacity = spec.groups_per_cu(local_size, lds_words).max(1);
    let resident = group_costs.len().div_ceil(cus).max(1);
    let k = capacity.min(resident);
    let mut cu_busy = vec![0.0_f64; cus];
    let mut placements = Vec::with_capacity(group_costs.len());

    for (group, cost) in group_costs.iter().enumerate() {
        let cycles = group_cycles(cost, spec, k as f64);
        // least-loaded CU, lowest index on ties: deterministic
        let (idx, _) = cu_busy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("at least one CU");
        let start_cycle = cu_busy[idx];
        cu_busy[idx] += cycles;
        placements.push(GroupPlacement { group, cu: idx, start_cycle, end_cycle: cu_busy[idx] });
    }

    let compute_cycles = cu_busy.iter().copied().fold(0.0, f64::max);
    let total_cost: GroupCost = group_costs.iter().copied().sum();
    let compute_s = compute_cycles / spec.clock_hz;
    let bandwidth_floor_s = total_cost.total_bytes() / spec.global_bandwidth_bytes_per_sec;
    let body_s = compute_s.max(bandwidth_floor_s);
    let seconds = body_s + spec.launch_overhead_s;
    let mean_busy = cu_busy.iter().sum::<f64>() / cus as f64;
    let utilization = if compute_cycles > 0.0 { mean_busy / compute_cycles } else { 0.0 };

    (
        LaunchTiming {
            seconds,
            compute_cycles,
            bandwidth_floor_s,
            bandwidth_bound: bandwidth_floor_s > compute_s,
            occupancy_groups_per_cu: k,
            cu_busy_cycles: cu_busy,
            utilization,
            total_cost,
            num_groups: group_costs.len(),
        },
        placements,
    )
}

/// [`schedule_launch_placed`] on a device whose CUs may be degraded or
/// offline (see [`CuHealth`], rolled by an installed fault plan). Offline
/// CUs receive no work; a degraded CU stretches every group it hosts by
/// `1 / speed`. Groups go to the alive CU with the earliest *finish* time
/// (lowest index on ties) — with all CUs nominal this reduces bit-exactly
/// to the healthy scheduler, since adding the same group cycles to every
/// candidate preserves the least-loaded order.
///
/// Degradation affects timing only, never results: the functional execution
/// has already happened by the time the scheduler runs.
///
/// # Panics
/// Panics if `health` does not cover every CU or no CU is alive.
pub fn schedule_launch_degraded(
    spec: &DeviceSpec,
    local_size: usize,
    lds_words: usize,
    group_costs: &[GroupCost],
    health: &[CuHealth],
) -> (LaunchTiming, Vec<GroupPlacement>) {
    let cus = spec.compute_units as usize;
    assert_eq!(health.len(), cus, "health must describe every CU");
    assert!(health.iter().any(|c| c.alive), "no CU alive — the device is lost, not degraded");
    let capacity = spec.groups_per_cu(local_size, lds_words).max(1);
    let resident = group_costs.len().div_ceil(cus).max(1);
    let k = capacity.min(resident);
    let mut cu_busy = vec![0.0_f64; cus];
    let mut placements = Vec::with_capacity(group_costs.len());

    for (group, cost) in group_costs.iter().enumerate() {
        let cycles = group_cycles(cost, spec, k as f64);
        let (idx, _) = cu_busy
            .iter()
            .enumerate()
            .filter(|&(i, _)| health[i].alive)
            .map(|(i, &busy)| (i, busy + cycles / health[i].speed))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("at least one alive CU");
        let start_cycle = cu_busy[idx];
        cu_busy[idx] += cycles / health[idx].speed;
        placements.push(GroupPlacement { group, cu: idx, start_cycle, end_cycle: cu_busy[idx] });
    }

    let compute_cycles = cu_busy.iter().copied().fold(0.0, f64::max);
    let total_cost: GroupCost = group_costs.iter().copied().sum();
    let compute_s = compute_cycles / spec.clock_hz;
    let bandwidth_floor_s = total_cost.total_bytes() / spec.global_bandwidth_bytes_per_sec;
    let body_s = compute_s.max(bandwidth_floor_s);
    let seconds = body_s + spec.launch_overhead_s;
    let mean_busy = cu_busy.iter().sum::<f64>() / cus as f64;
    let utilization = if compute_cycles > 0.0 { mean_busy / compute_cycles } else { 0.0 };

    (
        LaunchTiming {
            seconds,
            compute_cycles,
            bandwidth_floor_s,
            bandwidth_bound: bandwidth_floor_s > compute_s,
            occupancy_groups_per_cu: k,
            cu_busy_cycles: cu_busy,
            utilization,
            total_cost,
            num_groups: group_costs.len(),
        },
        placements,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::tiny_test_device() // 2 CUs, 1 flop/cycle/CU, 1 MHz clock
    }

    fn flops_group(flops: f64) -> GroupCost {
        GroupCost { flops, ..Default::default() }
    }

    #[test]
    fn single_group_uses_one_cu() {
        let t = schedule_launch(&spec(), 4, 0, &[flops_group(1000.0)]);
        assert_eq!(t.compute_cycles, 1000.0);
        assert_eq!(t.cu_busy_cycles, vec![1000.0, 0.0]);
        // one of two CUs busy -> utilization 0.5
        assert!((t.utilization - 0.5).abs() < 1e-12);
        assert_eq!(t.num_groups, 1);
    }

    #[test]
    fn two_equal_groups_balance_perfectly() {
        let t = schedule_launch(&spec(), 4, 0, &[flops_group(1000.0), flops_group(1000.0)]);
        assert_eq!(t.compute_cycles, 1000.0);
        assert!((t.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalanced_groups_set_makespan() {
        // 3 groups: 1000, 10, 10 -> CU0 gets 1000, CU1 gets 20
        let t = schedule_launch(
            &spec(),
            4,
            0,
            &[flops_group(1000.0), flops_group(10.0), flops_group(10.0)],
        );
        assert_eq!(t.compute_cycles, 1000.0);
        assert!(t.utilization < 0.52);
    }

    #[test]
    fn seconds_from_cycles_and_clock() {
        // 1000 cycles at 1 MHz = 1 ms; no overhead on the tiny device
        let t = schedule_launch(&spec(), 4, 0, &[flops_group(1000.0)]);
        assert!((t.seconds - 1e-3).abs() < 1e-12);
        assert!(!t.bandwidth_bound);
    }

    #[test]
    fn bandwidth_floor_applies() {
        // huge byte traffic, negligible flops: bandwidth-bound
        let cost = GroupCost { read_bytes: 1e9, ..Default::default() }; // 1 GB at 1 GB/s = 1 s
        let t = schedule_launch(&spec(), 4, 0, &[cost]);
        assert!(t.bandwidth_bound);
        assert!((t.seconds - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_hiding_scales_with_occupancy() {
        // memory-dominated groups; 4 groups on 2 CUs -> 2 resident.
        // Tiny device: latency 10, throughput 1 cycle/transaction.
        let cost = GroupCost { read_transactions: 100.0, ..Default::default() };
        // lds_words=0 -> capacity = max_groups_per_cu = 2 on the tiny device
        let t = schedule_launch(&spec(), 4, 0, &[cost; 4]);
        assert_eq!(t.occupancy_groups_per_cu, 2);
        // per group: (10 + 100×1) / 2 = 55; two per CU -> 110
        assert_eq!(t.compute_cycles, 110.0);
        // big LDS use -> capacity 1 -> memory cost fully exposed
        let t1 = schedule_launch(&spec(), 4, 200, &[cost; 4]);
        assert_eq!(t1.occupancy_groups_per_cu, 1);
        assert_eq!(t1.compute_cycles, 220.0);
    }

    #[test]
    fn sparse_launches_get_no_latency_hiding_credit() {
        // one group on a device with plenty of capacity: memory cost is
        // fully exposed because nothing co-resides to hide it
        let cost = GroupCost { read_transactions: 100.0, ..Default::default() };
        let t = schedule_launch(&spec(), 4, 0, &[cost]);
        assert_eq!(t.occupancy_groups_per_cu, 1);
        assert_eq!(t.compute_cycles, 110.0);
    }

    #[test]
    fn groups_without_memory_traffic_pay_no_latency() {
        let t = schedule_launch(&spec(), 4, 0, &[flops_group(100.0)]);
        assert_eq!(t.compute_cycles, 100.0);
    }

    #[test]
    fn barrier_cost_charged() {
        let cost = GroupCost { barriers: 10, ..Default::default() };
        let t = schedule_launch(&spec(), 4, 0, &[cost]);
        assert_eq!(t.compute_cycles, 10.0 * BARRIER_CYCLES);
    }

    #[test]
    fn lds_bound_group() {
        // tiny device serves 1 LDS word/cycle: 500 accesses = 500 cycles > flops
        let cost = GroupCost { flops: 100.0, lds_accesses: 500.0, ..Default::default() };
        let t = schedule_launch(&spec(), 4, 0, &[cost]);
        assert_eq!(t.compute_cycles, 500.0);
    }

    #[test]
    fn launch_overhead_added() {
        let mut s = spec();
        s.launch_overhead_s = 0.25;
        let t = schedule_launch(&s, 4, 0, &[flops_group(1000.0)]);
        assert!((t.seconds - (1e-3 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn gflops_reported() {
        // 1e6 flops in 1 ms (1000 cycles @ 1 MHz * 1 flop/cycle... here
        // flops=1000 -> 1000 cycles -> 1 ms -> 1000 flops / 1e-3 s = 1 Mflops
        let t = schedule_launch(&spec(), 4, 0, &[flops_group(1000.0)]);
        assert!((t.gflops() - 1e6 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn empty_launch_is_free_apart_from_overhead() {
        let t = schedule_launch(&spec(), 4, 0, &[]);
        assert_eq!(t.compute_cycles, 0.0);
        assert_eq!(t.seconds, 0.0);
        assert_eq!(t.utilization, 0.0);
    }

    #[test]
    fn hd5850_saturates_near_calibrated_peak() {
        // many equal ALU-bound groups on the full device should sustain
        // close to the calibrated 430 GFLOPS
        let s = DeviceSpec::radeon_hd_5850();
        let groups = vec![flops_group(1e7); 18 * 8];
        let t = schedule_launch(&s, 256, 1024, &groups);
        let g = t.gflops();
        assert!(g > 0.9 * s.peak_charged_gflops(), "gflops {g}");
        assert!(g <= s.peak_charged_gflops() * 1.001);
    }

    #[test]
    fn nominal_health_reproduces_healthy_schedule_bitexactly() {
        let costs = vec![flops_group(1000.0), flops_group(10.0), flops_group(300.0)];
        let healthy = schedule_launch_placed(&spec(), 4, 0, &costs);
        let nominal = vec![CuHealth::nominal(); 2];
        let degraded = schedule_launch_degraded(&spec(), 4, 0, &costs, &nominal);
        assert_eq!(healthy.0, degraded.0);
        assert_eq!(healthy.1, degraded.1);
    }

    #[test]
    fn lost_cu_receives_no_work() {
        let health = vec![CuHealth { alive: false, speed: 0.0 }, CuHealth::nominal()];
        let costs = vec![flops_group(100.0); 4];
        let (t, placements) = schedule_launch_degraded(&spec(), 4, 0, &costs, &health);
        assert!(placements.iter().all(|p| p.cu == 1));
        // all four groups serialized on the one surviving CU
        assert_eq!(t.compute_cycles, 400.0);
        assert_eq!(t.cu_busy_cycles[0], 0.0);
    }

    #[test]
    fn degraded_cu_stretches_its_groups() {
        let health = vec![CuHealth { alive: true, speed: 0.5 }, CuHealth::nominal()];
        let costs = vec![flops_group(100.0), flops_group(100.0)];
        let (t, placements) = schedule_launch_degraded(&spec(), 4, 0, &costs, &health);
        // first group goes to the fast CU (earliest finish), second to the
        // slow one, which then sets the makespan at 100 / 0.5 = 200
        assert_eq!(placements[0].cu, 1);
        assert_eq!(placements[1].cu, 0);
        assert_eq!(t.compute_cycles, 200.0);
    }

    #[test]
    #[should_panic(expected = "no CU alive")]
    fn all_dead_cus_rejected() {
        let health = vec![CuHealth { alive: false, speed: 0.0 }; 2];
        let _ = schedule_launch_degraded(&spec(), 4, 0, &[flops_group(1.0)], &health);
    }

    #[test]
    fn fewer_groups_than_cus_underutilize_hd5850() {
        let s = DeviceSpec::radeon_hd_5850();
        let groups = vec![flops_group(1e7); 4]; // 4 groups on 18 CUs
        let t = schedule_launch(&s, 256, 1024, &groups);
        assert!(t.gflops() < 0.25 * s.peak_charged_gflops());
    }
}
