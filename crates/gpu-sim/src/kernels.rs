//! Reusable device kernels: the canonical GPU primitives, written against
//! the phase-machine API.
//!
//! These serve two purposes: they are genuinely useful building blocks
//! (the N-body plans could reduce partials with [`SumReduceKernel`]), and
//! they demonstrate that the simulated device is a general OpenCL-style
//! substrate, not a single-purpose N-body fixture — the LDS tree reduction
//! in particular exercises every barrier rule the executor enforces.

use crate::buffer::BufF32;
use crate::exec::ItemCtx;
use crate::kernel::{Control, GroupInfo, Kernel};

/// Block-wise sum reduction: each work-group reduces its `local_size`-sized
/// slice of the input through an LDS binary tree and writes one partial sum
/// per group. Call again on the partials until one value remains (the
/// classic multi-pass reduction).
pub struct SumReduceKernel {
    /// Input values.
    pub input: BufF32,
    /// One output per work-group.
    pub output: BufF32,
    /// Number of valid input elements (tail items contribute zero).
    pub n: usize,
}

/// Per-group registers: the current tree stride.
#[derive(Debug, Default)]
pub struct ReduceGroupRegs {
    stride: usize,
}

impl Kernel for SumReduceKernel {
    type ItemRegs = ();
    type GroupRegs = ReduceGroupRegs;

    fn name(&self) -> &str {
        "sum-reduce"
    }

    fn lds_words(&self) -> usize {
        // the executor checks against the device LDS at launch; the group's
        // local size is bounded by max_workgroup_size ≤ LDS words on every
        // provided spec
        1024
    }

    fn phase_label(&self, phase: usize) -> String {
        match phase {
            0 => "load".into(),
            1 => "tree-reduce".into(),
            _ => "write-partial".into(),
        }
    }

    fn phase(&self, phase: usize, ctx: &mut ItemCtx<'_>, _r: &mut (), group: &ReduceGroupRegs) {
        match phase {
            // load one element per item into LDS (zero for the tail)
            0 => {
                let v = if ctx.global_id < self.n {
                    ctx.read_f32_coalesced(self.input, ctx.global_id)
                } else {
                    0.0
                };
                ctx.lds_write(ctx.local_id, v);
            }
            // one tree level: item i < stride adds element i + stride
            1 => {
                if ctx.local_id < group.stride {
                    let a = ctx.lds_read(ctx.local_id);
                    let b = ctx.lds_read(ctx.local_id + group.stride);
                    ctx.flops(1);
                    ctx.lds_write(ctx.local_id, a + b);
                }
            }
            // item 0 writes the group's partial
            2 => {
                if ctx.local_id == 0 {
                    let sum = ctx.lds_read(0);
                    ctx.write_f32_coalesced(self.output, ctx.group_id, sum);
                }
            }
            _ => unreachable!("sum-reduce has 3 phases"),
        }
    }

    fn control(&self, phase: usize, group: &mut ReduceGroupRegs, info: &GroupInfo) -> Control {
        match phase {
            0 => {
                // local size must be a power of two for the binary tree
                debug_assert!(info.local_size.is_power_of_two());
                group.stride = info.local_size / 2;
                if group.stride == 0 {
                    // single-item groups skip the tree
                    Control::Jump(2)
                } else {
                    Control::Next
                }
            }
            1 => {
                group.stride /= 2;
                if group.stride > 0 {
                    Control::Jump(1)
                } else {
                    Control::Next
                }
            }
            _ => Control::Done,
        }
    }
}

/// Sums a buffer on the device with repeated block reductions; returns the
/// total. `local` must be a power of two.
///
/// # Panics
/// Panics if `local` is not a power of two or exceeds the device limit.
pub fn device_sum(
    device: &mut crate::device::Device,
    input: BufF32,
    n: usize,
    local: usize,
) -> f32 {
    assert!(local.is_power_of_two(), "local size must be a power of two");
    let mut src = input;
    let mut count = n;
    while count > 1 {
        let groups = count.div_ceil(local);
        let dst = device.alloc_f32(groups.max(1));
        let kernel = SumReduceKernel { input: src, output: dst, n: count };
        device.launch(&kernel, crate::kernel::NdRange { global: groups * local, local });
        src = dst;
        count = groups;
    }
    device.debug_pool().f32(src).first().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::pcie::TransferModel;
    use crate::spec::DeviceSpec;

    fn device() -> Device {
        Device::with_transfer_model(DeviceSpec::radeon_hd_5850(), TransferModel::free())
    }

    #[test]
    fn reduces_exactly() {
        let mut dev = device();
        let n = 1000;
        let data: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let expect: f32 = data.iter().sum();
        let buf = dev.alloc_f32(n);
        dev.upload_f32(buf, &data);
        let total = device_sum(&mut dev, buf, n, 256);
        assert_eq!(total, expect);
    }

    #[test]
    fn handles_non_power_of_two_sizes_and_small_inputs() {
        let mut dev = device();
        for n in [1_usize, 2, 3, 63, 64, 65, 257] {
            let data = vec![1.0_f32; n];
            let buf = dev.alloc_f32(n);
            dev.upload_f32(buf, &data);
            let total = device_sum(&mut dev, buf, n, 64);
            assert_eq!(total, n as f32, "n = {n}");
        }
    }

    #[test]
    fn tree_reduction_is_race_free() {
        // the stride-halving tree reads element i+stride written by another
        // item *in a previous phase* — the barrier placement makes it clean,
        // and the detector proves it
        let mut dev = device();
        dev.set_race_checking(true);
        let n = 512;
        let buf = dev.alloc_f32(n);
        dev.upload_f32(buf, &vec![2.0; n]);
        let total = device_sum(&mut dev, buf, n, 128);
        assert_eq!(total, 1024.0);
        assert!(dev.races().is_empty(), "first race: {}", dev.races()[0]);
    }

    #[test]
    fn multi_pass_reduction_launches_logarithmically() {
        let mut dev = device();
        let n = 65536;
        let buf = dev.alloc_f32(n);
        dev.upload_f32(buf, &vec![1.0; n]);
        dev.reset_clocks();
        let total = device_sum(&mut dev, buf, n, 256);
        assert_eq!(total, 65536.0);
        // 65536 -> 256 -> 1: two launches
        assert_eq!(dev.launches().len(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_local_rejected() {
        let mut dev = device();
        let buf = dev.alloc_f32(8);
        device_sum(&mut dev, buf, 8, 96);
    }
}
