//! Host↔device transfer model (PCIe).
//!
//! The paper's Table 2 reports *total* time — kernel time plus transfers and
//! host-side tree work — so transfer costs matter for reproducing the plan
//! ranking. The model is the usual affine one: `latency + bytes / bandwidth`.
//! Defaults approximate a 2010-era PCIe 2.0 ×16 link as seen by OpenCL
//! (effective ≈ 5 GB/s, ≈ 20 µs per transfer call).

use serde::{Deserialize, Serialize};

/// Affine transfer cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-call latency in seconds.
    pub latency_s: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::pcie2_x16()
    }
}

impl TransferModel {
    /// PCIe 2.0 ×16 as effectively seen by OpenCL clEnqueue{Read,Write}Buffer
    /// circa 2010.
    pub fn pcie2_x16() -> Self {
        Self { bandwidth_bytes_per_sec: 5e9, latency_s: 20e-6 }
    }

    /// A free transfer model (for experiments isolating kernel time).
    pub fn free() -> Self {
        Self { bandwidth_bytes_per_sec: f64::INFINITY, latency_s: 0.0 }
    }

    /// Seconds to move `bytes` in one call.
    pub fn seconds(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_cost() {
        let m = TransferModel { bandwidth_bytes_per_sec: 1e9, latency_s: 1e-5 };
        assert!((m.seconds(0) - 1e-5).abs() < 1e-15);
        assert!((m.seconds(1_000_000_000) - (1.0 + 1e-5)).abs() < 1e-12);
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = TransferModel::free();
        assert_eq!(m.seconds(1 << 30), 0.0);
    }

    #[test]
    fn default_is_pcie2() {
        assert_eq!(TransferModel::default(), TransferModel::pcie2_x16());
        // 1 GB at 5 GB/s ≈ 0.2 s
        let t = TransferModel::default().seconds(1 << 30);
        assert!(t > 0.2 && t < 0.22, "{t}");
    }
}
