//! The simulated device: buffers + executor + scheduler + clocks.
//!
//! [`Device`] is what host code (the `plans` crate) programs against. It
//! owns global memory, executes kernels functionally, times them with the
//! scheduler, and keeps two clocks:
//!
//! * the **kernel clock** — simulated seconds the device spent in kernels;
//! * the **transfer clock** — simulated seconds spent on PCIe transfers.
//!
//! Their sum plus any host-side time the caller measures is the "total time"
//! of the paper's Table 2.

use crate::buffer::{BufF32, BufU32, BufferPool};
use crate::exec::{execute_launch, execute_launch_checked, execute_launch_profiled};
use crate::kernel::{Kernel, NdRange};
use crate::pcie::TransferModel;
use crate::race::Race;
use crate::sched::{schedule_launch, schedule_launch_placed, LaunchTiming};
use crate::spec::DeviceSpec;
use crate::trace::{GroupSpan, LaunchTrace, MarkerTrace, PhaseSummary, TraceSink, TransferTrace};
use serde::{Deserialize, Serialize};

/// Summary of one kernel launch kept in the device log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Kernel name.
    pub kernel: String,
    /// Launch geometry.
    pub grid: NdRange,
    /// Timing under the device model.
    pub timing: LaunchTiming,
}

/// Summary of one transfer kept in the device log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Bytes moved.
    pub bytes: usize,
    /// True for host→device.
    pub to_device: bool,
    /// Simulated seconds.
    pub seconds: f64,
}

/// A simulated GPU.
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    transfer_model: TransferModel,
    pool: BufferPool,
    kernel_seconds: f64,
    transfer_seconds: f64,
    launches: Vec<LaunchRecord>,
    transfers: Vec<TransferRecord>,
    race_checking: bool,
    races: Vec<Race>,
    trace: Option<Box<dyn TraceSink>>,
}

impl Device {
    /// Creates a device with the default PCIe model.
    ///
    /// # Panics
    /// Panics if the spec fails validation.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_transfer_model(spec, TransferModel::default())
    }

    /// Creates a device with an explicit transfer model.
    pub fn with_transfer_model(spec: DeviceSpec, transfer_model: TransferModel) -> Self {
        spec.validate().expect("invalid device spec");
        Self {
            spec,
            transfer_model,
            pool: BufferPool::new(),
            kernel_seconds: 0.0,
            transfer_seconds: 0.0,
            launches: Vec::new(),
            transfers: Vec::new(),
            race_checking: false,
            races: Vec::new(),
            trace: None,
        }
    }

    /// Installs a trace sink: subsequent launches, transfers, and
    /// annotations are recorded as structured events (see the [`trace`
    /// module](crate::trace)). While no sink is installed the device runs
    /// the untraced code path — no per-phase profiling, no placement
    /// capture.
    pub fn set_trace_sink(&mut self, mut sink: Box<dyn TraceSink>) {
        sink.begin(&self.spec);
        self.trace = Some(sink);
    }

    /// Removes and returns the current trace sink, if any.
    pub fn clear_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// True if a trace sink is installed.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Emits an instant annotation onto the trace timeline (no-op when
    /// untraced). Plans use this to mark algorithmic stages around the
    /// kernels and transfers they issue.
    pub fn annotate(&mut self, label: &str) {
        let at_s = self.device_seconds();
        if let Some(sink) = self.trace.as_mut() {
            sink.marker(MarkerTrace { label: label.to_string(), at_s });
        }
    }

    /// Enables or disables data-race detection for subsequent launches.
    /// Races found accumulate in [`Device::races`]. Checking slows the
    /// functional execution; use it in tests and debugging, not sweeps.
    pub fn set_race_checking(&mut self, on: bool) {
        self.race_checking = on;
    }

    /// Races detected by checked launches since the last reset.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The transfer model in effect.
    pub fn transfer_model(&self) -> &TransferModel {
        &self.transfer_model
    }

    /// Allocates a zeroed `f32` buffer.
    pub fn alloc_f32(&mut self, len: usize) -> BufF32 {
        self.pool.alloc_f32(len)
    }

    /// Allocates a zeroed `u32` buffer.
    pub fn alloc_u32(&mut self, len: usize) -> BufU32 {
        self.pool.alloc_u32(len)
    }

    /// Host→device copy, charged to the transfer clock.
    ///
    /// # Panics
    /// Panics if `data` is longer than the buffer.
    pub fn upload_f32(&mut self, buf: BufF32, data: &[f32]) {
        self.pool.f32_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 4, true);
    }

    /// Host→device copy of `u32` data, charged to the transfer clock.
    pub fn upload_u32(&mut self, buf: BufU32, data: &[u32]) {
        self.pool.u32_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 4, true);
    }

    /// Device→host copy, charged to the transfer clock.
    pub fn download_f32(&mut self, buf: BufF32) -> Vec<f32> {
        let data = self.pool.f32(buf).to_vec();
        self.record_transfer(data.len() * 4, false);
        data
    }

    /// Device→host copy of `u32` data, charged to the transfer clock.
    pub fn download_u32(&mut self, buf: BufU32) -> Vec<u32> {
        let data = self.pool.u32(buf).to_vec();
        self.record_transfer(data.len() * 4, false);
        data
    }

    /// Untimed host access for test setup and assertions — never use on a
    /// measured path.
    pub fn debug_pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Untimed read-only host access.
    pub fn debug_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Executes `kernel` over `grid`: runs it functionally, times it, and
    /// advances the kernel clock. Honors [`Device::set_race_checking`].
    pub fn launch<K: Kernel>(&mut self, kernel: &K, grid: NdRange) -> LaunchTiming {
        if self.race_checking {
            return self.launch_checked(kernel, grid).0;
        }
        self.launch_inner(kernel, grid, false).0
    }

    /// Like [`Device::launch`], but with intra-phase data-race detection.
    /// Returns the timing plus every race found (see `race` module); racy
    /// kernels still execute (in deterministic local-id order) so the
    /// corrupted output can be inspected.
    pub fn launch_checked<K: Kernel>(
        &mut self,
        kernel: &K,
        grid: NdRange,
    ) -> (LaunchTiming, Vec<Race>) {
        let (timing, races) = self.launch_inner(kernel, grid, true);
        self.races.extend(races.iter().cloned());
        (timing, races)
    }

    /// The one launch path: functional execution, scheduling, clock
    /// accounting, and (when a sink is installed) trace emission. Untraced
    /// launches take the original execute + schedule calls unchanged.
    fn launch_inner<K: Kernel>(
        &mut self,
        kernel: &K,
        grid: NdRange,
        check_races: bool,
    ) -> (LaunchTiming, Vec<Race>) {
        let start_s = self.device_seconds();
        let timing;
        let races;
        if self.trace.is_some() {
            let (outcome, r) =
                execute_launch_profiled(kernel, grid, &self.spec, &mut self.pool, check_races);
            races = r;
            let (t, placements) = schedule_launch_placed(
                &self.spec,
                grid.local,
                kernel.lds_words(),
                &outcome.group_costs,
            );
            let groups = placements
                .iter()
                .map(|p| GroupSpan {
                    group: p.group,
                    cu: p.cu,
                    start_cycle: p.start_cycle,
                    end_cycle: p.end_cycle,
                    cost: outcome.group_costs[p.group],
                    phases: outcome.phase_costs[p.group].clone(),
                })
                .collect();
            let mut phases: Vec<PhaseSummary> = Vec::new();
            for per_group in &outcome.phase_costs {
                for pc in per_group {
                    match phases.iter_mut().find(|s| s.phase == pc.phase) {
                        Some(s) => {
                            s.executions += pc.executions;
                            s.cost += pc.cost;
                        }
                        None => phases.push(PhaseSummary {
                            phase: pc.phase,
                            label: kernel.phase_label(pc.phase),
                            executions: pc.executions,
                            cost: pc.cost,
                        }),
                    }
                }
            }
            phases.sort_by_key(|s| s.phase);
            let wavefronts_per_group = self.spec.waves_per_group(grid.local);
            let wavefront_occupancy = (t.occupancy_groups_per_cu * wavefronts_per_group) as f64
                / f64::from(self.spec.max_waves_per_cu).max(1.0);
            let event = LaunchTrace {
                launch_id: self.launches.len(),
                kernel: kernel.name().to_string(),
                grid,
                lds_words: kernel.lds_words(),
                start_s,
                wavefronts_per_group,
                wavefront_occupancy: wavefront_occupancy.min(1.0),
                timing: t.clone(),
                groups,
                phases,
            };
            if let Some(sink) = self.trace.as_mut() {
                sink.launch(event);
            }
            timing = t;
        } else {
            let (outcome, r) = if check_races {
                execute_launch_checked(kernel, grid, &self.spec, &mut self.pool)
            } else {
                (execute_launch(kernel, grid, &self.spec, &mut self.pool), Vec::new())
            };
            races = r;
            timing =
                schedule_launch(&self.spec, grid.local, kernel.lds_words(), &outcome.group_costs);
        }
        self.kernel_seconds += timing.seconds;
        self.launches.push(LaunchRecord {
            kernel: kernel.name().to_string(),
            grid,
            timing: timing.clone(),
        });
        (timing, races)
    }

    /// Simulated seconds spent in kernels since the last reset.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernel_seconds
    }

    /// Simulated seconds spent in transfers since the last reset.
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_seconds
    }

    /// Kernel + transfer seconds.
    pub fn device_seconds(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds
    }

    /// Clears the clocks and logs (buffers are kept; the race-checking mode
    /// flag is kept too).
    pub fn reset_clocks(&mut self) {
        self.kernel_seconds = 0.0;
        self.transfer_seconds = 0.0;
        self.launches.clear();
        self.transfers.clear();
        self.races.clear();
    }

    /// Launch log since the last reset.
    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    /// Transfer log since the last reset.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.transfers
    }

    fn record_transfer(&mut self, bytes: usize, to_device: bool) {
        let seconds = self.transfer_model.seconds(bytes);
        if let Some(sink) = self.trace.as_mut() {
            sink.transfer(TransferTrace {
                transfer_id: self.transfers.len(),
                bytes,
                to_device,
                start_s: self.kernel_seconds + self.transfer_seconds,
                seconds,
            });
        }
        self.transfer_seconds += seconds;
        self.transfers.push(TransferRecord { bytes, to_device, seconds });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ItemCtx;
    use crate::kernel::{Control, GroupInfo};

    struct AddOne {
        buf: BufF32,
        n: usize,
    }

    impl Kernel for AddOne {
        type ItemRegs = ();
        type GroupRegs = ();
        fn name(&self) -> &str {
            "add-one"
        }
        fn lds_words(&self) -> usize {
            0
        }
        fn phase(&self, _p: usize, ctx: &mut ItemCtx<'_>, _r: &mut (), _g: &()) {
            let i = ctx.global_id;
            if i < self.n {
                let v = ctx.read_f32_coalesced(self.buf, i);
                ctx.flops(1);
                ctx.write_f32_coalesced(self.buf, i, v + 1.0);
            }
        }
        fn control(&self, _p: usize, _g: &mut (), _i: &GroupInfo) -> Control {
            Control::Done
        }
    }

    fn device() -> Device {
        Device::with_transfer_model(DeviceSpec::tiny_test_device(), TransferModel::free())
    }

    #[test]
    fn upload_launch_download_roundtrip() {
        let mut dev = device();
        let buf = dev.alloc_f32(8);
        dev.upload_f32(buf, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        dev.launch(&AddOne { buf, n: 8 }, NdRange { global: 8, local: 4 });
        let out = dev.download_f32(buf);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn clocks_accumulate() {
        let mut dev = Device::with_transfer_model(
            DeviceSpec::tiny_test_device(),
            TransferModel { bandwidth_bytes_per_sec: 1e6, latency_s: 1e-3 },
        );
        let buf = dev.alloc_f32(250);
        dev.upload_f32(buf, &vec![0.0; 250]); // 1000 bytes at 1e6 B/s + 1 ms = 2 ms
        assert!((dev.transfer_seconds() - 2e-3).abs() < 1e-9);
        dev.launch(&AddOne { buf, n: 250 }, NdRange::round_up(250, 8));
        assert!(dev.kernel_seconds() > 0.0);
        assert!(dev.device_seconds() > dev.kernel_seconds());
        assert_eq!(dev.launches().len(), 1);
        assert_eq!(dev.transfers().len(), 1);
        dev.reset_clocks();
        assert_eq!(dev.device_seconds(), 0.0);
        assert!(dev.launches().is_empty());
    }

    #[test]
    fn launch_records_kernel_name_and_grid() {
        let mut dev = device();
        let buf = dev.alloc_f32(4);
        dev.launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        let rec = &dev.launches()[0];
        assert_eq!(rec.kernel, "add-one");
        assert_eq!(rec.grid.num_groups(), 1);
        assert_eq!(rec.timing.total_cost.flops, 4.0);
    }

    #[test]
    fn transfer_directions_logged() {
        let mut dev = device();
        let buf = dev.alloc_f32(4);
        dev.upload_f32(buf, &[1.0; 4]);
        let _ = dev.download_f32(buf);
        assert!(dev.transfers()[0].to_device);
        assert!(!dev.transfers()[1].to_device);
        assert_eq!(dev.transfers()[0].bytes, 16);
    }

    #[test]
    #[should_panic]
    fn invalid_spec_rejected() {
        let mut spec = DeviceSpec::tiny_test_device();
        spec.compute_units = 0;
        let _ = Device::new(spec);
    }

    #[test]
    fn u32_buffers_roundtrip() {
        let mut dev = device();
        let buf = dev.alloc_u32(3);
        dev.upload_u32(buf, &[7, 8, 9]);
        assert_eq!(dev.download_u32(buf), vec![7, 8, 9]);
    }

    #[test]
    fn traced_launch_records_placements_and_phases() {
        use crate::cost::GroupCost;
        use crate::trace::MemoryTraceSink;
        let mut dev = device();
        let sink = MemoryTraceSink::new();
        dev.set_trace_sink(Box::new(sink.clone()));
        assert!(dev.is_tracing());
        let buf = dev.alloc_f32(8);
        dev.upload_f32(buf, &[1.0; 8]);
        dev.annotate("force-eval");
        let timing = dev.launch(&AddOne { buf, n: 8 }, NdRange { global: 8, local: 4 });
        let trace = sink.snapshot();
        assert_eq!(trace.launches.len(), 1);
        assert_eq!(trace.transfers.len(), 1);
        assert_eq!(trace.markers[0].label, "force-eval");
        let lt = &trace.launches[0];
        assert_eq!(lt.kernel, "add-one");
        assert_eq!(lt.groups.len(), 2);
        // spans live inside the launch makespan, on valid CUs
        for g in &lt.groups {
            assert!(g.cu < trace.compute_units);
            assert!(g.start_cycle >= 0.0 && g.end_cycle <= lt.timing.compute_cycles + 1e-9);
            // per-phase deltas recompose the group total
            let phase_sum: GroupCost = g.phases.iter().map(|p| p.cost).sum();
            assert!((phase_sum.flops - g.cost.flops).abs() < 1e-12);
            assert_eq!(phase_sum.barriers, g.cost.barriers);
        }
        assert_eq!(lt.phases.len(), 1); // add-one is a single-phase kernel
        assert_eq!(lt.phases[0].label, "phase0");
        assert_eq!(lt.phases[0].cost.flops, 8.0);
        // the traced timing is identical to the untraced one
        let mut plain = device();
        let buf2 = plain.alloc_f32(8);
        plain.upload_f32(buf2, &[1.0; 8]);
        let t2 = plain.launch(&AddOne { buf: buf2, n: 8 }, NdRange { global: 8, local: 4 });
        assert_eq!(timing, t2);
    }

    #[test]
    fn clearing_the_sink_stops_recording() {
        use crate::trace::MemoryTraceSink;
        let mut dev = device();
        let sink = MemoryTraceSink::new();
        dev.set_trace_sink(Box::new(sink.clone()));
        let buf = dev.alloc_f32(4);
        dev.upload_f32(buf, &[0.0; 4]);
        assert!(dev.clear_trace_sink().is_some());
        assert!(!dev.is_tracing());
        dev.launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        let trace = sink.snapshot();
        assert_eq!(trace.transfers.len(), 1);
        assert!(trace.launches.is_empty());
    }
}
