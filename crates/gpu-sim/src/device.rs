//! The simulated device: buffers + executor + scheduler + clocks.
//!
//! [`Device`] is what host code (the `plans` crate) programs against. It
//! owns global memory, executes kernels functionally, times them with the
//! scheduler, and keeps three clocks:
//!
//! * the **kernel clock** — simulated seconds the device spent in kernels;
//! * the **transfer clock** — simulated seconds spent on PCIe transfers;
//! * the **stall clock** — simulated seconds lost to injected faults and
//!   recovery backoff (zero unless a fault plan is installed; see the
//!   [`fault` module](crate::fault)).
//!
//! Their sum plus any host-side time the caller measures is the "total time"
//! of the paper's Table 2.
//!
//! The fallible API (`try_launch`, `try_upload_*`, `try_download_*`) is
//! where faults fire; the infallible methods are the same operations with
//! faults treated as unrecoverable. With no fault plan installed the
//! fallible methods take the exact pre-existing code path.

use crate::buffer::{BufF32, BufU32, BufU64, BufferPool};
use crate::exec::{execute_launch, execute_launch_checked, execute_launch_profiled};
use crate::fault::{CuHealth, FaultDecision, FaultError, FaultKind, FaultPlan};
use crate::kernel::{Kernel, NdRange};
use crate::pcie::TransferModel;
use crate::race::Race;
use crate::sched::{
    schedule_launch, schedule_launch_degraded, schedule_launch_placed, LaunchTiming,
};
use crate::spec::DeviceSpec;
use crate::trace::{
    FaultTrace, GroupSpan, LaunchTrace, MarkerTrace, PhaseSummary, TraceSink, TransferTrace,
};
use serde::{Deserialize, Serialize};

/// Summary of one kernel launch kept in the device log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Kernel name.
    pub kernel: String,
    /// Launch geometry.
    pub grid: NdRange,
    /// Timing under the device model.
    pub timing: LaunchTiming,
}

/// Summary of one transfer kept in the device log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Bytes moved.
    pub bytes: usize,
    /// True for host→device.
    pub to_device: bool,
    /// Simulated seconds.
    pub seconds: f64,
}

/// A simulated GPU.
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    transfer_model: TransferModel,
    pool: BufferPool,
    kernel_seconds: f64,
    transfer_seconds: f64,
    stall_seconds: f64,
    launches: Vec<LaunchRecord>,
    transfers: Vec<TransferRecord>,
    race_checking: bool,
    races: Vec<Race>,
    trace: Option<Box<dyn TraceSink>>,
    fault: Option<FaultPlan>,
    fault_events: usize,
}

// Multi-device drivers run one device per worker thread; every field,
// including the boxed trace sink (`TraceSink: Send`) and the fault plan
// (plain data), must stay shippable across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Device>();
};

impl Device {
    /// Creates a device with the default PCIe model.
    ///
    /// # Panics
    /// Panics if the spec fails validation.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_transfer_model(spec, TransferModel::default())
    }

    /// Creates a device with an explicit transfer model.
    pub fn with_transfer_model(spec: DeviceSpec, transfer_model: TransferModel) -> Self {
        spec.validate().expect("invalid device spec");
        Self {
            spec,
            transfer_model,
            pool: BufferPool::new(),
            kernel_seconds: 0.0,
            transfer_seconds: 0.0,
            stall_seconds: 0.0,
            launches: Vec::new(),
            transfers: Vec::new(),
            race_checking: false,
            races: Vec::new(),
            trace: None,
            fault: None,
            fault_events: 0,
        }
    }

    /// Installs a fault plan: subsequent fallible operations consult it, in
    /// issue order, and may fail (see the [`fault` module](crate::fault)).
    /// Per-CU health is rolled here, against this device's spec.
    pub fn set_fault_plan(&mut self, mut plan: FaultPlan) {
        plan.install(&self.spec);
        self.fault = Some(plan);
    }

    /// Removes and returns the fault plan, if any.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The installed fault plan, if any (for counts and CU health).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Installs a trace sink: subsequent launches, transfers, and
    /// annotations are recorded as structured events (see the [`trace`
    /// module](crate::trace)). While no sink is installed the device runs
    /// the untraced code path — no per-phase profiling, no placement
    /// capture.
    pub fn set_trace_sink(&mut self, mut sink: Box<dyn TraceSink>) {
        sink.begin(&self.spec);
        self.trace = Some(sink);
    }

    /// Removes and returns the current trace sink, if any.
    pub fn clear_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// True if a trace sink is installed.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Emits an instant annotation onto the trace timeline (no-op when
    /// untraced). Plans use this to mark algorithmic stages around the
    /// kernels and transfers they issue.
    pub fn annotate(&mut self, label: &str) {
        let at_s = self.device_seconds();
        if let Some(sink) = self.trace.as_mut() {
            sink.marker(MarkerTrace { label: label.to_string(), at_s });
        }
    }

    /// Enables or disables data-race detection for subsequent launches.
    /// Races found accumulate in [`Device::races`]. Checking slows the
    /// functional execution; use it in tests and debugging, not sweeps.
    pub fn set_race_checking(&mut self, on: bool) {
        self.race_checking = on;
    }

    /// Races detected by checked launches since the last reset.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The transfer model in effect.
    pub fn transfer_model(&self) -> &TransferModel {
        &self.transfer_model
    }

    /// Allocates a zeroed `f32` buffer.
    pub fn alloc_f32(&mut self, len: usize) -> BufF32 {
        self.pool.alloc_f32(len)
    }

    /// Allocates a zeroed `u32` buffer.
    pub fn alloc_u32(&mut self, len: usize) -> BufU32 {
        self.pool.alloc_u32(len)
    }

    /// Allocates a zeroed `u64` buffer (Morton keys, f64 bit patterns).
    pub fn alloc_u64(&mut self, len: usize) -> BufU64 {
        self.pool.alloc_u64(len)
    }

    /// Host→device copy, charged to the transfer clock.
    ///
    /// # Panics
    /// Panics if `data` is longer than the buffer, or if an injected fault
    /// fires (use [`Device::try_upload_f32`] under fault injection).
    pub fn upload_f32(&mut self, buf: BufF32, data: &[f32]) {
        self.try_upload_f32(buf, data).expect("unrecovered upload fault");
    }

    /// Host→device copy of `u32` data, charged to the transfer clock.
    pub fn upload_u32(&mut self, buf: BufU32, data: &[u32]) {
        self.try_upload_u32(buf, data).expect("unrecovered upload fault");
    }

    /// Device→host copy, charged to the transfer clock.
    pub fn download_f32(&mut self, buf: BufF32) -> Vec<f32> {
        self.try_download_f32(buf).expect("unrecovered download fault")
    }

    /// Device→host copy of `u32` data, charged to the transfer clock.
    pub fn download_u32(&mut self, buf: BufU32) -> Vec<u32> {
        self.try_download_u32(buf).expect("unrecovered download fault")
    }

    /// Host→device copy of `u64` data, charged to the transfer clock.
    pub fn upload_u64(&mut self, buf: BufU64, data: &[u64]) {
        self.try_upload_u64(buf, data).expect("unrecovered upload fault");
    }

    /// Device→host copy of `u64` data, charged to the transfer clock.
    pub fn download_u64(&mut self, buf: BufU64) -> Vec<u64> {
        self.try_download_u64(buf).expect("unrecovered download fault")
    }

    /// Fallible host→device copy: consults the fault plan first. On an
    /// injected fault the attempt's cost is charged to the stall clock and
    /// **no data moves** — device memory is exactly as it was, so a retry
    /// that succeeds is bit-identical to a fault-free upload.
    pub fn try_upload_f32(&mut self, buf: BufF32, data: &[f32]) -> Result<(), FaultError> {
        self.check_transfer(data.len() * 4, true)?;
        self.pool.f32_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 4, true);
        Ok(())
    }

    /// Fallible host→device copy of `u32` data (see
    /// [`Device::try_upload_f32`] for fault semantics).
    pub fn try_upload_u32(&mut self, buf: BufU32, data: &[u32]) -> Result<(), FaultError> {
        self.check_transfer(data.len() * 4, true)?;
        self.pool.u32_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 4, true);
        Ok(())
    }

    /// Fallible device→host copy (see [`Device::try_upload_f32`] for fault
    /// semantics; device memory is read-only here, so retries are trivially
    /// safe).
    pub fn try_download_f32(&mut self, buf: BufF32) -> Result<Vec<f32>, FaultError> {
        self.check_transfer(self.pool.len_f32(buf) * 4, false)?;
        let data = self.pool.f32(buf).to_vec();
        self.record_transfer(data.len() * 4, false);
        Ok(data)
    }

    /// Fallible device→host copy of `u32` data.
    pub fn try_download_u32(&mut self, buf: BufU32) -> Result<Vec<u32>, FaultError> {
        self.check_transfer(self.pool.len_u32(buf) * 4, false)?;
        let data = self.pool.u32(buf).to_vec();
        self.record_transfer(data.len() * 4, false);
        Ok(data)
    }

    /// Fallible host→device copy of `u64` data (see
    /// [`Device::try_upload_f32`] for fault semantics).
    pub fn try_upload_u64(&mut self, buf: BufU64, data: &[u64]) -> Result<(), FaultError> {
        self.check_transfer(data.len() * 8, true)?;
        self.pool.u64_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 8, true);
        Ok(())
    }

    /// Fallible device→host copy of `u64` data.
    pub fn try_download_u64(&mut self, buf: BufU64) -> Result<Vec<u64>, FaultError> {
        self.check_transfer(self.pool.len_u64(buf) * 8, false)?;
        let data = self.pool.u64(buf).to_vec();
        self.record_transfer(data.len() * 8, false);
        Ok(data)
    }

    /// Draws the fault decision for one transfer of `bytes` and, when a
    /// fault fires, charges its cost and records the trace event.
    fn check_transfer(&mut self, bytes: usize, to_device: bool) -> Result<(), FaultError> {
        let Some(plan) = self.fault.as_mut() else { return Ok(()) };
        let decision = plan.decide_transfer();
        let FaultDecision::Inject(kind) = decision else { return Ok(()) };
        let charged_s = match kind {
            // a failed transfer runs to completion before the CRC check
            FaultKind::TransferError => self.transfer_model.seconds(bytes),
            FaultKind::TransferTimeout => plan.config().transfer_timeout_s,
            _ => 0.0,
        };
        let op = if to_device { "h2d" } else { "d2h" };
        let at_s = self.device_seconds();
        Err(self.emit_fault(kind, op, at_s, charged_s, charged_s))
    }

    /// Records a fault trace event, charges `stall_s` to the stall clock,
    /// and returns the error the operation should propagate. `charged_s` is
    /// what the attempt cost in total — for corruption that time already
    /// landed on the kernel clock, so its `stall_s` is zero.
    fn emit_fault(
        &mut self,
        kind: FaultKind,
        op: &str,
        at_s: f64,
        charged_s: f64,
        stall_s: f64,
    ) -> FaultError {
        self.stall_seconds += stall_s;
        let event =
            FaultTrace { fault_id: self.fault_events, kind, op: op.to_string(), at_s, charged_s };
        self.fault_events += 1;
        if let Some(sink) = self.trace.as_mut() {
            sink.fault(event);
        }
        FaultError { kind, charged_s }
    }

    /// Untimed host access for test setup and assertions — never use on a
    /// measured path.
    pub fn debug_pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Untimed read-only host access.
    pub fn debug_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Executes `kernel` over `grid`: runs it functionally, times it, and
    /// advances the kernel clock. Honors [`Device::set_race_checking`].
    ///
    /// # Panics
    /// Panics if an injected fault fires (use [`Device::try_launch`] under
    /// fault injection).
    pub fn launch<K: Kernel>(&mut self, kernel: &K, grid: NdRange) -> LaunchTiming {
        self.try_launch(kernel, grid).expect("unrecovered launch fault")
    }

    /// Fallible launch: consults the fault plan first. Fault semantics
    /// preserve bit-exactness of any later successful attempt:
    ///
    /// * [`FaultKind::LaunchFail`] — the kernel never executes; a fixed
    ///   penalty goes on the stall clock and device memory is untouched.
    /// * [`FaultKind::ResultCorruption`] — the kernel runs (its time is
    ///   charged to the kernel clock) but its writes are rolled back.
    /// * [`FaultKind::DeviceLost`] — permanent; every later operation fails.
    pub fn try_launch<K: Kernel>(
        &mut self,
        kernel: &K,
        grid: NdRange,
    ) -> Result<LaunchTiming, FaultError> {
        let decision = match self.fault.as_mut() {
            Some(plan) => plan.decide_launch(),
            None => FaultDecision::None,
        };
        let check = self.race_checking;
        match decision {
            FaultDecision::None => Ok(self.launch_dispatch(kernel, grid, check)),
            FaultDecision::Inject(FaultKind::LaunchFail) => {
                let penalty = self.fault.as_ref().map_or(0.0, |p| p.config().launch_fail_penalty_s);
                let at_s = self.device_seconds();
                Err(self.emit_fault(FaultKind::LaunchFail, kernel.name(), at_s, penalty, penalty))
            }
            FaultDecision::Inject(FaultKind::ResultCorruption) => {
                let at_s = self.device_seconds();
                let saved = self.pool.clone();
                let timing = self.launch_dispatch(kernel, grid, check);
                self.pool = saved;
                // the wasted time already landed on the kernel clock
                Err(self.emit_fault(
                    FaultKind::ResultCorruption,
                    kernel.name(),
                    at_s,
                    timing.seconds,
                    0.0,
                ))
            }
            FaultDecision::Inject(kind) => {
                let at_s = self.device_seconds();
                Err(self.emit_fault(kind, kernel.name(), at_s, 0.0, 0.0))
            }
        }
    }

    /// Routes a decided-to-run launch through the race-checked or plain
    /// path.
    fn launch_dispatch<K: Kernel>(
        &mut self,
        kernel: &K,
        grid: NdRange,
        check_races: bool,
    ) -> LaunchTiming {
        if check_races {
            let (timing, races) = self.launch_inner(kernel, grid, true);
            self.races.extend(races);
            timing
        } else {
            self.launch_inner(kernel, grid, false).0
        }
    }

    /// Like [`Device::launch`], but with intra-phase data-race detection.
    /// Returns the timing plus every race found (see `race` module); racy
    /// kernels still execute (in deterministic local-id order) so the
    /// corrupted output can be inspected.
    pub fn launch_checked<K: Kernel>(
        &mut self,
        kernel: &K,
        grid: NdRange,
    ) -> (LaunchTiming, Vec<Race>) {
        let (timing, races) = self.launch_inner(kernel, grid, true);
        self.races.extend(races.iter().cloned());
        (timing, races)
    }

    /// The one launch path: functional execution, scheduling, clock
    /// accounting, and (when a sink is installed) trace emission. Untraced
    /// launches take the original execute + schedule calls unchanged.
    fn launch_inner<K: Kernel>(
        &mut self,
        kernel: &K,
        grid: NdRange,
        check_races: bool,
    ) -> (LaunchTiming, Vec<Race>) {
        let start_s = self.device_seconds();
        let timing;
        let races;
        if self.trace.is_some() {
            let (outcome, r) =
                execute_launch_profiled(kernel, grid, &self.spec, &mut self.pool, check_races);
            races = r;
            let (t, placements) = match self.degraded_health() {
                Some(health) => schedule_launch_degraded(
                    &self.spec,
                    grid.local,
                    kernel.lds_words(),
                    &outcome.group_costs,
                    health,
                ),
                None => schedule_launch_placed(
                    &self.spec,
                    grid.local,
                    kernel.lds_words(),
                    &outcome.group_costs,
                ),
            };
            let groups = placements
                .iter()
                .map(|p| GroupSpan {
                    group: p.group,
                    cu: p.cu,
                    start_cycle: p.start_cycle,
                    end_cycle: p.end_cycle,
                    cost: outcome.group_costs[p.group],
                    phases: outcome.phase_costs[p.group].clone(),
                })
                .collect();
            let mut phases: Vec<PhaseSummary> = Vec::new();
            for per_group in &outcome.phase_costs {
                for pc in per_group {
                    match phases.iter_mut().find(|s| s.phase == pc.phase) {
                        Some(s) => {
                            s.executions += pc.executions;
                            s.cost += pc.cost;
                        }
                        None => phases.push(PhaseSummary {
                            phase: pc.phase,
                            label: kernel.phase_label(pc.phase),
                            executions: pc.executions,
                            cost: pc.cost,
                        }),
                    }
                }
            }
            phases.sort_by_key(|s| s.phase);
            let wavefronts_per_group = self.spec.waves_per_group(grid.local);
            let wavefront_occupancy = (t.occupancy_groups_per_cu * wavefronts_per_group) as f64
                / f64::from(self.spec.max_waves_per_cu).max(1.0);
            let event = LaunchTrace {
                launch_id: self.launches.len(),
                kernel: kernel.name().to_string(),
                grid,
                lds_words: kernel.lds_words(),
                start_s,
                wavefronts_per_group,
                wavefront_occupancy: wavefront_occupancy.min(1.0),
                timing: t.clone(),
                groups,
                phases,
            };
            if let Some(sink) = self.trace.as_mut() {
                sink.launch(event);
            }
            timing = t;
        } else {
            let (outcome, r) = if check_races {
                execute_launch_checked(kernel, grid, &self.spec, &mut self.pool)
            } else {
                (execute_launch(kernel, grid, &self.spec, &mut self.pool), Vec::new())
            };
            races = r;
            timing = match self.degraded_health() {
                Some(health) => {
                    schedule_launch_degraded(
                        &self.spec,
                        grid.local,
                        kernel.lds_words(),
                        &outcome.group_costs,
                        health,
                    )
                    .0
                }
                None => schedule_launch(
                    &self.spec,
                    grid.local,
                    kernel.lds_words(),
                    &outcome.group_costs,
                ),
            };
        }
        self.kernel_seconds += timing.seconds;
        self.launches.push(LaunchRecord {
            kernel: kernel.name().to_string(),
            grid,
            timing: timing.clone(),
        });
        (timing, races)
    }

    /// Simulated seconds spent in kernels since the last reset.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernel_seconds
    }

    /// Simulated seconds spent in transfers since the last reset.
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_seconds
    }

    /// Simulated seconds lost to injected faults and recovery backoff since
    /// the last reset (zero unless a fault plan is installed).
    pub fn stall_seconds(&self) -> f64 {
        self.stall_seconds
    }

    /// Charges simulated seconds to the stall clock. Recovery layers use
    /// this for retry backoff, so recovery overhead shows up in total device
    /// time, traces, and the PTPM observed grid.
    pub fn charge_stall(&mut self, seconds: f64) {
        self.stall_seconds += seconds;
    }

    /// Kernel + transfer + stall seconds.
    pub fn device_seconds(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds + self.stall_seconds
    }

    /// Clears the clocks and logs (buffers, the race-checking mode flag, and
    /// any installed fault plan are kept; the plan's RNG stream is *not*
    /// rewound).
    pub fn reset_clocks(&mut self) {
        self.kernel_seconds = 0.0;
        self.transfer_seconds = 0.0;
        self.stall_seconds = 0.0;
        self.launches.clear();
        self.transfers.clear();
        self.races.clear();
        self.fault_events = 0;
    }

    /// CU health to schedule against, when the fault plan degrades any CU.
    fn degraded_health(&self) -> Option<&[CuHealth]> {
        self.fault.as_ref().filter(|f| f.degrades_scheduling()).map(FaultPlan::cu_health)
    }

    /// Launch log since the last reset.
    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    /// Transfer log since the last reset.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.transfers
    }

    fn record_transfer(&mut self, bytes: usize, to_device: bool) {
        let seconds = self.transfer_model.seconds(bytes);
        let start_s = self.device_seconds();
        if let Some(sink) = self.trace.as_mut() {
            sink.transfer(TransferTrace {
                transfer_id: self.transfers.len(),
                bytes,
                to_device,
                start_s,
                seconds,
            });
        }
        self.transfer_seconds += seconds;
        self.transfers.push(TransferRecord { bytes, to_device, seconds });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ItemCtx;
    use crate::kernel::{Control, GroupInfo};

    struct AddOne {
        buf: BufF32,
        n: usize,
    }

    impl Kernel for AddOne {
        type ItemRegs = ();
        type GroupRegs = ();
        fn name(&self) -> &str {
            "add-one"
        }
        fn lds_words(&self) -> usize {
            0
        }
        fn phase(&self, _p: usize, ctx: &mut ItemCtx<'_>, _r: &mut (), _g: &()) {
            let i = ctx.global_id;
            if i < self.n {
                let v = ctx.read_f32_coalesced(self.buf, i);
                ctx.flops(1);
                ctx.write_f32_coalesced(self.buf, i, v + 1.0);
            }
        }
        fn control(&self, _p: usize, _g: &mut (), _i: &GroupInfo) -> Control {
            Control::Done
        }
    }

    fn device() -> Device {
        Device::with_transfer_model(DeviceSpec::tiny_test_device(), TransferModel::free())
    }

    #[test]
    fn upload_launch_download_roundtrip() {
        let mut dev = device();
        let buf = dev.alloc_f32(8);
        dev.upload_f32(buf, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        dev.launch(&AddOne { buf, n: 8 }, NdRange { global: 8, local: 4 });
        let out = dev.download_f32(buf);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn clocks_accumulate() {
        let mut dev = Device::with_transfer_model(
            DeviceSpec::tiny_test_device(),
            TransferModel { bandwidth_bytes_per_sec: 1e6, latency_s: 1e-3 },
        );
        let buf = dev.alloc_f32(250);
        dev.upload_f32(buf, &vec![0.0; 250]); // 1000 bytes at 1e6 B/s + 1 ms = 2 ms
        assert!((dev.transfer_seconds() - 2e-3).abs() < 1e-9);
        dev.launch(&AddOne { buf, n: 250 }, NdRange::round_up(250, 8));
        assert!(dev.kernel_seconds() > 0.0);
        assert!(dev.device_seconds() > dev.kernel_seconds());
        assert_eq!(dev.launches().len(), 1);
        assert_eq!(dev.transfers().len(), 1);
        dev.reset_clocks();
        assert_eq!(dev.device_seconds(), 0.0);
        assert!(dev.launches().is_empty());
    }

    #[test]
    fn launch_records_kernel_name_and_grid() {
        let mut dev = device();
        let buf = dev.alloc_f32(4);
        dev.launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        let rec = &dev.launches()[0];
        assert_eq!(rec.kernel, "add-one");
        assert_eq!(rec.grid.num_groups(), 1);
        assert_eq!(rec.timing.total_cost.flops, 4.0);
    }

    #[test]
    fn transfer_directions_logged() {
        let mut dev = device();
        let buf = dev.alloc_f32(4);
        dev.upload_f32(buf, &[1.0; 4]);
        let _ = dev.download_f32(buf);
        assert!(dev.transfers()[0].to_device);
        assert!(!dev.transfers()[1].to_device);
        assert_eq!(dev.transfers()[0].bytes, 16);
    }

    #[test]
    #[should_panic]
    fn invalid_spec_rejected() {
        let mut spec = DeviceSpec::tiny_test_device();
        spec.compute_units = 0;
        let _ = Device::new(spec);
    }

    #[test]
    fn u32_buffers_roundtrip() {
        let mut dev = device();
        let buf = dev.alloc_u32(3);
        dev.upload_u32(buf, &[7, 8, 9]);
        assert_eq!(dev.download_u32(buf), vec![7, 8, 9]);
    }

    #[test]
    fn u64_buffers_roundtrip_and_charge_eight_bytes() {
        let model = TransferModel { bandwidth_bytes_per_sec: 1e6, latency_s: 0.0 };
        let mut dev = Device::with_transfer_model(DeviceSpec::tiny_test_device(), model);
        let buf = dev.alloc_u64(3);
        dev.upload_u64(buf, &[u64::MAX, 1, 2]);
        assert_eq!(dev.download_u64(buf), vec![u64::MAX, 1, 2]);
        assert_eq!(dev.transfers()[0].bytes, 24);
        assert_eq!(dev.transfers()[1].bytes, 24);
    }

    #[test]
    fn traced_launch_records_placements_and_phases() {
        use crate::cost::GroupCost;
        use crate::trace::MemoryTraceSink;
        let mut dev = device();
        let sink = MemoryTraceSink::new();
        dev.set_trace_sink(Box::new(sink.clone()));
        assert!(dev.is_tracing());
        let buf = dev.alloc_f32(8);
        dev.upload_f32(buf, &[1.0; 8]);
        dev.annotate("force-eval");
        let timing = dev.launch(&AddOne { buf, n: 8 }, NdRange { global: 8, local: 4 });
        let trace = sink.snapshot();
        assert_eq!(trace.launches.len(), 1);
        assert_eq!(trace.transfers.len(), 1);
        assert_eq!(trace.markers[0].label, "force-eval");
        let lt = &trace.launches[0];
        assert_eq!(lt.kernel, "add-one");
        assert_eq!(lt.groups.len(), 2);
        // spans live inside the launch makespan, on valid CUs
        for g in &lt.groups {
            assert!(g.cu < trace.compute_units);
            assert!(g.start_cycle >= 0.0 && g.end_cycle <= lt.timing.compute_cycles + 1e-9);
            // per-phase deltas recompose the group total
            let phase_sum: GroupCost = g.phases.iter().map(|p| p.cost).sum();
            assert!((phase_sum.flops - g.cost.flops).abs() < 1e-12);
            assert_eq!(phase_sum.barriers, g.cost.barriers);
        }
        assert_eq!(lt.phases.len(), 1); // add-one is a single-phase kernel
        assert_eq!(lt.phases[0].label, "phase0");
        assert_eq!(lt.phases[0].cost.flops, 8.0);
        // the traced timing is identical to the untraced one
        let mut plain = device();
        let buf2 = plain.alloc_f32(8);
        plain.upload_f32(buf2, &[1.0; 8]);
        let t2 = plain.launch(&AddOne { buf: buf2, n: 8 }, NdRange { global: 8, local: 4 });
        assert_eq!(timing, t2);
    }

    #[test]
    fn zero_prob_fault_plan_changes_nothing() {
        use crate::fault::{FaultConfig, FaultPlan};
        let model = TransferModel { bandwidth_bytes_per_sec: 1e6, latency_s: 1e-3 };
        let mut plain = Device::with_transfer_model(DeviceSpec::tiny_test_device(), model);
        let mut faulty = Device::with_transfer_model(DeviceSpec::tiny_test_device(), model);
        faulty.set_fault_plan(FaultPlan::new(42, FaultConfig::default()));
        for dev in [&mut plain, &mut faulty] {
            let buf = dev.alloc_f32(8);
            dev.try_upload_f32(buf, &[1.0; 8]).unwrap();
            dev.try_launch(&AddOne { buf, n: 8 }, NdRange { global: 8, local: 4 }).unwrap();
            let out = dev.try_download_f32(buf).unwrap();
            assert_eq!(out, vec![2.0; 8]);
        }
        assert_eq!(plain.kernel_seconds(), faulty.kernel_seconds());
        assert_eq!(plain.transfer_seconds(), faulty.transfer_seconds());
        assert_eq!(faulty.stall_seconds(), 0.0);
        assert_eq!(faulty.fault_plan().unwrap().counts().total(), 0);
    }

    #[test]
    fn launch_fail_charges_stall_and_leaves_memory() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let mut dev = device();
        let cfg = FaultConfig { launch_fail_prob: 1.0, ..FaultConfig::default() };
        dev.set_fault_plan(FaultPlan::new(1, cfg));
        let buf = dev.alloc_f32(4);
        dev.try_upload_f32(buf, &[5.0; 4]).unwrap();
        let err = dev.try_launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        let err = err.unwrap_err();
        assert_eq!(err.kind, FaultKind::LaunchFail);
        assert!(err.is_transient());
        assert_eq!(dev.kernel_seconds(), 0.0, "the kernel never executed");
        assert_eq!(dev.stall_seconds(), cfg.launch_fail_penalty_s);
        assert!(dev.launches().is_empty());
        assert_eq!(dev.debug_pool().f32(buf), &[5.0; 4]);
    }

    #[test]
    fn corruption_rolls_back_writes_but_charges_kernel_time() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let mut dev = device();
        let cfg = FaultConfig { launch_corrupt_prob: 1.0, ..FaultConfig::default() };
        dev.set_fault_plan(FaultPlan::new(2, cfg));
        let buf = dev.alloc_f32(4);
        dev.try_upload_f32(buf, &[5.0; 4]).unwrap();
        let err =
            dev.try_launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 }).unwrap_err();
        assert_eq!(err.kind, FaultKind::ResultCorruption);
        assert!(dev.kernel_seconds() > 0.0, "the wasted run is charged");
        assert_eq!(err.charged_s, dev.kernel_seconds());
        assert_eq!(dev.stall_seconds(), 0.0);
        assert_eq!(dev.debug_pool().f32(buf), &[5.0; 4], "writes rolled back");
    }

    #[test]
    fn transfer_fault_moves_no_data() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let model = TransferModel { bandwidth_bytes_per_sec: 1e6, latency_s: 1e-3 };
        let mut dev = Device::with_transfer_model(DeviceSpec::tiny_test_device(), model);
        let cfg = FaultConfig { transfer_error_prob: 1.0, ..FaultConfig::default() };
        dev.set_fault_plan(FaultPlan::new(3, cfg));
        let buf = dev.alloc_f32(4);
        let err = dev.try_upload_f32(buf, &[9.0; 4]).unwrap_err();
        assert_eq!(err.kind, FaultKind::TransferError);
        assert_eq!(dev.debug_pool().f32(buf), &[0.0; 4], "no data moved");
        assert_eq!(dev.transfer_seconds(), 0.0);
        assert!(dev.transfers().is_empty());
        // the failed attempt still ran on the wire: full transfer time stalls
        assert_eq!(dev.stall_seconds(), model.seconds(16));
    }

    #[test]
    fn lost_device_fails_every_operation() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let mut dev = device();
        dev.set_fault_plan(FaultPlan::new(4, FaultConfig::default().with_device_loss(1.0)));
        let buf = dev.alloc_f32(4);
        let e1 = dev.try_upload_f32(buf, &[1.0; 4]).unwrap_err();
        assert_eq!(e1.kind, FaultKind::DeviceLost);
        assert!(!e1.is_transient());
        let e2 = dev.try_launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        assert_eq!(e2.unwrap_err().kind, FaultKind::DeviceLost);
        let e3 = dev.try_download_f32(buf).unwrap_err();
        assert_eq!(e3.kind, FaultKind::DeviceLost);
        assert!(dev.fault_plan().unwrap().device_lost());
    }

    #[test]
    fn stall_clock_counts_toward_device_seconds_and_resets() {
        let mut dev = device();
        dev.charge_stall(0.5);
        assert_eq!(dev.stall_seconds(), 0.5);
        assert_eq!(dev.device_seconds(), 0.5);
        dev.reset_clocks();
        assert_eq!(dev.stall_seconds(), 0.0);
        assert_eq!(dev.device_seconds(), 0.0);
    }

    #[test]
    fn degraded_plan_slows_timing_but_preserves_results() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut healthy = device();
        let mut degraded = device();
        degraded.set_fault_plan(FaultPlan::new(6, FaultConfig::default().with_cu_faults(1.0, 0.0)));
        assert!(degraded.fault_plan().unwrap().degrades_scheduling());
        let grid = NdRange { global: 16, local: 4 };
        let bh = healthy.alloc_f32(16);
        let bd = degraded.alloc_f32(16);
        healthy.upload_f32(bh, &[3.0; 16]);
        degraded.try_upload_f32(bd, &[3.0; 16]).unwrap();
        let th = healthy.launch(&AddOne { buf: bh, n: 16 }, grid);
        let td = degraded.try_launch(&AddOne { buf: bd, n: 16 }, grid).unwrap();
        assert_eq!(healthy.download_f32(bh), degraded.try_download_f32(bd).unwrap());
        assert!(td.seconds > th.seconds, "every CU degraded must slow the launch");
    }

    #[test]
    fn fault_events_reach_trace_sink() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        use crate::trace::MemoryTraceSink;
        let mut dev = device();
        let sink = MemoryTraceSink::new();
        dev.set_trace_sink(Box::new(sink.clone()));
        let cfg = FaultConfig { transfer_timeout_prob: 1.0, ..FaultConfig::default() };
        dev.set_fault_plan(FaultPlan::new(7, cfg));
        let buf = dev.alloc_f32(4);
        let _ = dev.try_upload_f32(buf, &[1.0; 4]).unwrap_err();
        let trace = sink.snapshot();
        assert_eq!(trace.faults.len(), 1);
        assert_eq!(trace.faults[0].kind, FaultKind::TransferTimeout);
        assert_eq!(trace.faults[0].op, "h2d");
        assert_eq!(trace.faults[0].fault_id, 0);
        assert_eq!(trace.faults[0].charged_s, cfg.transfer_timeout_s);
    }

    #[test]
    fn clearing_the_sink_stops_recording() {
        use crate::trace::MemoryTraceSink;
        let mut dev = device();
        let sink = MemoryTraceSink::new();
        dev.set_trace_sink(Box::new(sink.clone()));
        let buf = dev.alloc_f32(4);
        dev.upload_f32(buf, &[0.0; 4]);
        assert!(dev.clear_trace_sink().is_some());
        assert!(!dev.is_tracing());
        dev.launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        let trace = sink.snapshot();
        assert_eq!(trace.transfers.len(), 1);
        assert!(trace.launches.is_empty());
    }
}
