//! The simulated device: buffers + executor + scheduler + clocks.
//!
//! [`Device`] is what host code (the `plans` crate) programs against. It
//! owns global memory, executes kernels functionally, times them with the
//! scheduler, and keeps two clocks:
//!
//! * the **kernel clock** — simulated seconds the device spent in kernels;
//! * the **transfer clock** — simulated seconds spent on PCIe transfers.
//!
//! Their sum plus any host-side time the caller measures is the "total time"
//! of the paper's Table 2.

use crate::buffer::{BufF32, BufU32, BufferPool};
use crate::exec::{execute_launch, execute_launch_checked};
use crate::kernel::{Kernel, NdRange};
use crate::race::Race;
use crate::pcie::TransferModel;
use crate::sched::{schedule_launch, LaunchTiming};
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Summary of one kernel launch kept in the device log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Kernel name.
    pub kernel: String,
    /// Launch geometry.
    pub grid: NdRange,
    /// Timing under the device model.
    pub timing: LaunchTiming,
}

/// Summary of one transfer kept in the device log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// Bytes moved.
    pub bytes: usize,
    /// True for host→device.
    pub to_device: bool,
    /// Simulated seconds.
    pub seconds: f64,
}

/// A simulated GPU.
#[derive(Debug)]
pub struct Device {
    spec: DeviceSpec,
    transfer_model: TransferModel,
    pool: BufferPool,
    kernel_seconds: f64,
    transfer_seconds: f64,
    launches: Vec<LaunchRecord>,
    transfers: Vec<TransferRecord>,
    race_checking: bool,
    races: Vec<Race>,
}

impl Device {
    /// Creates a device with the default PCIe model.
    ///
    /// # Panics
    /// Panics if the spec fails validation.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_transfer_model(spec, TransferModel::default())
    }

    /// Creates a device with an explicit transfer model.
    pub fn with_transfer_model(spec: DeviceSpec, transfer_model: TransferModel) -> Self {
        spec.validate().expect("invalid device spec");
        Self {
            spec,
            transfer_model,
            pool: BufferPool::new(),
            kernel_seconds: 0.0,
            transfer_seconds: 0.0,
            launches: Vec::new(),
            transfers: Vec::new(),
            race_checking: false,
            races: Vec::new(),
        }
    }

    /// Enables or disables data-race detection for subsequent launches.
    /// Races found accumulate in [`Device::races`]. Checking slows the
    /// functional execution; use it in tests and debugging, not sweeps.
    pub fn set_race_checking(&mut self, on: bool) {
        self.race_checking = on;
    }

    /// Races detected by checked launches since the last reset.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The transfer model in effect.
    pub fn transfer_model(&self) -> &TransferModel {
        &self.transfer_model
    }

    /// Allocates a zeroed `f32` buffer.
    pub fn alloc_f32(&mut self, len: usize) -> BufF32 {
        self.pool.alloc_f32(len)
    }

    /// Allocates a zeroed `u32` buffer.
    pub fn alloc_u32(&mut self, len: usize) -> BufU32 {
        self.pool.alloc_u32(len)
    }

    /// Host→device copy, charged to the transfer clock.
    ///
    /// # Panics
    /// Panics if `data` is longer than the buffer.
    pub fn upload_f32(&mut self, buf: BufF32, data: &[f32]) {
        self.pool.f32_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 4, true);
    }

    /// Host→device copy of `u32` data, charged to the transfer clock.
    pub fn upload_u32(&mut self, buf: BufU32, data: &[u32]) {
        self.pool.u32_mut(buf)[..data.len()].copy_from_slice(data);
        self.record_transfer(data.len() * 4, true);
    }

    /// Device→host copy, charged to the transfer clock.
    pub fn download_f32(&mut self, buf: BufF32) -> Vec<f32> {
        let data = self.pool.f32(buf).to_vec();
        self.record_transfer(data.len() * 4, false);
        data
    }

    /// Device→host copy of `u32` data, charged to the transfer clock.
    pub fn download_u32(&mut self, buf: BufU32) -> Vec<u32> {
        let data = self.pool.u32(buf).to_vec();
        self.record_transfer(data.len() * 4, false);
        data
    }

    /// Untimed host access for test setup and assertions — never use on a
    /// measured path.
    pub fn debug_pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Untimed read-only host access.
    pub fn debug_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Executes `kernel` over `grid`: runs it functionally, times it, and
    /// advances the kernel clock. Honors [`Device::set_race_checking`].
    pub fn launch<K: Kernel>(&mut self, kernel: &K, grid: NdRange) -> LaunchTiming {
        if self.race_checking {
            return self.launch_checked(kernel, grid).0;
        }
        let outcome = execute_launch(kernel, grid, &self.spec, &mut self.pool);
        let timing = schedule_launch(&self.spec, grid.local, kernel.lds_words(), &outcome.group_costs);
        self.kernel_seconds += timing.seconds;
        self.launches.push(LaunchRecord {
            kernel: kernel.name().to_string(),
            grid,
            timing: timing.clone(),
        });
        timing
    }

    /// Like [`Device::launch`], but with intra-phase data-race detection.
    /// Returns the timing plus every race found (see `race` module); racy
    /// kernels still execute (in deterministic local-id order) so the
    /// corrupted output can be inspected.
    pub fn launch_checked<K: Kernel>(&mut self, kernel: &K, grid: NdRange) -> (LaunchTiming, Vec<Race>) {
        let (outcome, races) =
            execute_launch_checked(kernel, grid, &self.spec, &mut self.pool);
        let timing =
            schedule_launch(&self.spec, grid.local, kernel.lds_words(), &outcome.group_costs);
        self.kernel_seconds += timing.seconds;
        self.launches.push(LaunchRecord {
            kernel: kernel.name().to_string(),
            grid,
            timing: timing.clone(),
        });
        self.races.extend(races.iter().cloned());
        (timing, races)
    }

    /// Simulated seconds spent in kernels since the last reset.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernel_seconds
    }

    /// Simulated seconds spent in transfers since the last reset.
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_seconds
    }

    /// Kernel + transfer seconds.
    pub fn device_seconds(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds
    }

    /// Clears the clocks and logs (buffers are kept; the race-checking mode
    /// flag is kept too).
    pub fn reset_clocks(&mut self) {
        self.kernel_seconds = 0.0;
        self.transfer_seconds = 0.0;
        self.launches.clear();
        self.transfers.clear();
        self.races.clear();
    }

    /// Launch log since the last reset.
    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    /// Transfer log since the last reset.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.transfers
    }

    fn record_transfer(&mut self, bytes: usize, to_device: bool) {
        let seconds = self.transfer_model.seconds(bytes);
        self.transfer_seconds += seconds;
        self.transfers.push(TransferRecord { bytes, to_device, seconds });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ItemCtx;
    use crate::kernel::{Control, GroupInfo};

    struct AddOne {
        buf: BufF32,
        n: usize,
    }

    impl Kernel for AddOne {
        type ItemRegs = ();
        type GroupRegs = ();
        fn name(&self) -> &str {
            "add-one"
        }
        fn lds_words(&self) -> usize {
            0
        }
        fn phase(&self, _p: usize, ctx: &mut ItemCtx<'_>, _r: &mut (), _g: &()) {
            let i = ctx.global_id;
            if i < self.n {
                let v = ctx.read_f32_coalesced(self.buf, i);
                ctx.flops(1);
                ctx.write_f32_coalesced(self.buf, i, v + 1.0);
            }
        }
        fn control(&self, _p: usize, _g: &mut (), _i: &GroupInfo) -> Control {
            Control::Done
        }
    }

    fn device() -> Device {
        Device::with_transfer_model(DeviceSpec::tiny_test_device(), TransferModel::free())
    }

    #[test]
    fn upload_launch_download_roundtrip() {
        let mut dev = device();
        let buf = dev.alloc_f32(8);
        dev.upload_f32(buf, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        dev.launch(&AddOne { buf, n: 8 }, NdRange { global: 8, local: 4 });
        let out = dev.download_f32(buf);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn clocks_accumulate() {
        let mut dev = Device::with_transfer_model(
            DeviceSpec::tiny_test_device(),
            TransferModel { bandwidth_bytes_per_sec: 1e6, latency_s: 1e-3 },
        );
        let buf = dev.alloc_f32(250);
        dev.upload_f32(buf, &vec![0.0; 250]); // 1000 bytes at 1e6 B/s + 1 ms = 2 ms
        assert!((dev.transfer_seconds() - 2e-3).abs() < 1e-9);
        dev.launch(&AddOne { buf, n: 250 }, NdRange::round_up(250, 8));
        assert!(dev.kernel_seconds() > 0.0);
        assert!(dev.device_seconds() > dev.kernel_seconds());
        assert_eq!(dev.launches().len(), 1);
        assert_eq!(dev.transfers().len(), 1);
        dev.reset_clocks();
        assert_eq!(dev.device_seconds(), 0.0);
        assert!(dev.launches().is_empty());
    }

    #[test]
    fn launch_records_kernel_name_and_grid() {
        let mut dev = device();
        let buf = dev.alloc_f32(4);
        dev.launch(&AddOne { buf, n: 4 }, NdRange { global: 4, local: 4 });
        let rec = &dev.launches()[0];
        assert_eq!(rec.kernel, "add-one");
        assert_eq!(rec.grid.num_groups(), 1);
        assert_eq!(rec.timing.total_cost.flops, 4.0);
    }

    #[test]
    fn transfer_directions_logged() {
        let mut dev = device();
        let buf = dev.alloc_f32(4);
        dev.upload_f32(buf, &[1.0; 4]);
        let _ = dev.download_f32(buf);
        assert!(dev.transfers()[0].to_device);
        assert!(!dev.transfers()[1].to_device);
        assert_eq!(dev.transfers()[0].bytes, 16);
    }

    #[test]
    #[should_panic]
    fn invalid_spec_rejected() {
        let mut spec = DeviceSpec::tiny_test_device();
        spec.compute_units = 0;
        let _ = Device::new(spec);
    }

    #[test]
    fn u32_buffers_roundtrip() {
        let mut dev = device();
        let buf = dev.alloc_u32(3);
        dev.upload_u32(buf, &[7, 8, 9]);
        assert_eq!(dev.download_u32(buf), vec![7, 8, 9]);
    }
}
