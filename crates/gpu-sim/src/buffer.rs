//! Device buffers.
//!
//! The simulated device owns all global memory. Host code refers to buffers
//! through typed handles ([`BufF32`], [`BufU32`], [`BufU64`]) issued by the
//! [`BufferPool`]; kernels access them through the execution context so that
//! every access is cost-accounted. Three element types cover everything the
//! N-body plans need: `f32` for positions/masses/accelerations (the device
//! works in single precision like the real HD 5850), `u32` for interaction
//! lists and walk offsets, and `u64` for Morton keys and f64 bit patterns in
//! the on-device tree pipeline.

use serde::{Deserialize, Serialize};

/// Handle to an `f32` device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufF32(pub(crate) u32);

impl BufF32 {
    /// Raw handle index (used by the race detector's reports).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Handle to a `u32` device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufU32(pub(crate) u32);

impl BufU32 {
    /// Raw handle index (used by the race detector's reports).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Handle to a `u64` device buffer (Morton keys, f64 bit patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufU64(pub(crate) u32);

impl BufU64 {
    /// Raw handle index (used by the race detector's reports).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// All global memory of one simulated device.
#[derive(Debug, Default, Clone)]
pub struct BufferPool {
    f32_bufs: Vec<Vec<f32>>,
    u32_bufs: Vec<Vec<u32>>,
    u64_bufs: Vec<Vec<u64>>,
    peak_bytes: usize,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialized `f32` buffer of `len` elements.
    pub fn alloc_f32(&mut self, len: usize) -> BufF32 {
        let id = BufF32(self.f32_bufs.len() as u32);
        self.f32_bufs.push(vec![0.0; len]);
        self.note_peak();
        id
    }

    /// Allocates a zero-initialized `u32` buffer of `len` elements.
    pub fn alloc_u32(&mut self, len: usize) -> BufU32 {
        let id = BufU32(self.u32_bufs.len() as u32);
        self.u32_bufs.push(vec![0; len]);
        self.note_peak();
        id
    }

    /// Allocates a zero-initialized `u64` buffer of `len` elements.
    pub fn alloc_u64(&mut self, len: usize) -> BufU64 {
        let id = BufU64(self.u64_bufs.len() as u32);
        self.u64_bufs.push(vec![0; len]);
        self.note_peak();
        id
    }

    /// Read-only view of an `f32` buffer.
    pub fn f32(&self, id: BufF32) -> &[f32] {
        &self.f32_bufs[id.0 as usize]
    }

    /// Mutable view of an `f32` buffer.
    pub fn f32_mut(&mut self, id: BufF32) -> &mut [f32] {
        &mut self.f32_bufs[id.0 as usize]
    }

    /// Read-only view of a `u32` buffer.
    pub fn u32(&self, id: BufU32) -> &[u32] {
        &self.u32_bufs[id.0 as usize]
    }

    /// Mutable view of a `u32` buffer.
    pub fn u32_mut(&mut self, id: BufU32) -> &mut [u32] {
        &mut self.u32_bufs[id.0 as usize]
    }

    /// Read-only view of a `u64` buffer.
    pub fn u64(&self, id: BufU64) -> &[u64] {
        &self.u64_bufs[id.0 as usize]
    }

    /// Mutable view of a `u64` buffer.
    pub fn u64_mut(&mut self, id: BufU64) -> &mut [u64] {
        &mut self.u64_bufs[id.0 as usize]
    }

    /// Length in elements of an `f32` buffer.
    pub fn len_f32(&self, id: BufF32) -> usize {
        self.f32_bufs[id.0 as usize].len()
    }

    /// Length in elements of a `u32` buffer.
    pub fn len_u32(&self, id: BufU32) -> usize {
        self.u32_bufs[id.0 as usize].len()
    }

    /// Length in elements of a `u64` buffer.
    pub fn len_u64(&self, id: BufU64) -> usize {
        self.u64_bufs[id.0 as usize].len()
    }

    /// Total allocated bytes across all buffers.
    pub fn total_bytes(&self) -> usize {
        let f: usize = self.f32_bufs.iter().map(|b| b.len() * 4).sum();
        let u: usize = self.u32_bufs.iter().map(|b| b.len() * 4).sum();
        let w: usize = self.u64_bufs.iter().map(|b| b.len() * 8).sum();
        f + u + w
    }

    /// High-water mark of [`BufferPool::total_bytes`] over this pool's
    /// lifetime — the device-memory footprint an out-of-core shard plan is
    /// budgeted against.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    fn note_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.total_bytes());
    }

    /// Number of live buffers (all types).
    pub fn buffer_count(&self) -> usize {
        self.f32_bufs.len() + self.u32_bufs.len() + self.u64_bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zero_initialized() {
        let mut p = BufferPool::new();
        let a = p.alloc_f32(8);
        let b = p.alloc_u32(4);
        assert_eq!(p.f32(a), &[0.0; 8]);
        assert_eq!(p.u32(b), &[0; 4]);
        assert_eq!(p.len_f32(a), 8);
        assert_eq!(p.len_u32(b), 4);
    }

    #[test]
    fn handles_are_independent() {
        let mut p = BufferPool::new();
        let a = p.alloc_f32(2);
        let b = p.alloc_f32(2);
        p.f32_mut(a)[0] = 1.0;
        p.f32_mut(b)[1] = 2.0;
        assert_eq!(p.f32(a), &[1.0, 0.0]);
        assert_eq!(p.f32(b), &[0.0, 2.0]);
    }

    #[test]
    fn accounting() {
        let mut p = BufferPool::new();
        p.alloc_f32(100);
        p.alloc_u32(50);
        assert_eq!(p.total_bytes(), 600);
        assert_eq!(p.buffer_count(), 2);
        p.alloc_u64(25);
        assert_eq!(p.total_bytes(), 800);
        assert_eq!(p.buffer_count(), 3);
        assert_eq!(p.peak_bytes(), 800);
    }

    #[test]
    fn u64_buffers_roundtrip() {
        let mut p = BufferPool::new();
        let k = p.alloc_u64(4);
        assert_eq!(p.u64(k), &[0; 4]);
        assert_eq!(p.len_u64(k), 4);
        p.u64_mut(k)[2] = u64::MAX;
        assert_eq!(p.u64(k)[2], u64::MAX);
        assert_eq!(k.raw(), 0);
    }
}
