//! Device buffers.
//!
//! The simulated device owns all global memory. Host code refers to buffers
//! through typed handles ([`BufF32`], [`BufU32`]) issued by the
//! [`BufferPool`]; kernels access them through the execution context so that
//! every access is cost-accounted. Two element types cover everything the
//! N-body plans need: `f32` for positions/masses/accelerations (the device
//! works in single precision like the real HD 5850) and `u32` for
//! interaction lists and walk offsets.

use serde::{Deserialize, Serialize};

/// Handle to an `f32` device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufF32(pub(crate) u32);

impl BufF32 {
    /// Raw handle index (used by the race detector's reports).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Handle to a `u32` device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufU32(pub(crate) u32);

impl BufU32 {
    /// Raw handle index (used by the race detector's reports).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// All global memory of one simulated device.
#[derive(Debug, Default, Clone)]
pub struct BufferPool {
    f32_bufs: Vec<Vec<f32>>,
    u32_bufs: Vec<Vec<u32>>,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialized `f32` buffer of `len` elements.
    pub fn alloc_f32(&mut self, len: usize) -> BufF32 {
        let id = BufF32(self.f32_bufs.len() as u32);
        self.f32_bufs.push(vec![0.0; len]);
        id
    }

    /// Allocates a zero-initialized `u32` buffer of `len` elements.
    pub fn alloc_u32(&mut self, len: usize) -> BufU32 {
        let id = BufU32(self.u32_bufs.len() as u32);
        self.u32_bufs.push(vec![0; len]);
        id
    }

    /// Read-only view of an `f32` buffer.
    pub fn f32(&self, id: BufF32) -> &[f32] {
        &self.f32_bufs[id.0 as usize]
    }

    /// Mutable view of an `f32` buffer.
    pub fn f32_mut(&mut self, id: BufF32) -> &mut [f32] {
        &mut self.f32_bufs[id.0 as usize]
    }

    /// Read-only view of a `u32` buffer.
    pub fn u32(&self, id: BufU32) -> &[u32] {
        &self.u32_bufs[id.0 as usize]
    }

    /// Mutable view of a `u32` buffer.
    pub fn u32_mut(&mut self, id: BufU32) -> &mut [u32] {
        &mut self.u32_bufs[id.0 as usize]
    }

    /// Length in elements of an `f32` buffer.
    pub fn len_f32(&self, id: BufF32) -> usize {
        self.f32_bufs[id.0 as usize].len()
    }

    /// Length in elements of a `u32` buffer.
    pub fn len_u32(&self, id: BufU32) -> usize {
        self.u32_bufs[id.0 as usize].len()
    }

    /// Total allocated bytes across all buffers.
    pub fn total_bytes(&self) -> usize {
        let f: usize = self.f32_bufs.iter().map(|b| b.len() * 4).sum();
        let u: usize = self.u32_bufs.iter().map(|b| b.len() * 4).sum();
        f + u
    }

    /// Number of live buffers (both types).
    pub fn buffer_count(&self) -> usize {
        self.f32_bufs.len() + self.u32_bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zero_initialized() {
        let mut p = BufferPool::new();
        let a = p.alloc_f32(8);
        let b = p.alloc_u32(4);
        assert_eq!(p.f32(a), &[0.0; 8]);
        assert_eq!(p.u32(b), &[0; 4]);
        assert_eq!(p.len_f32(a), 8);
        assert_eq!(p.len_u32(b), 4);
    }

    #[test]
    fn handles_are_independent() {
        let mut p = BufferPool::new();
        let a = p.alloc_f32(2);
        let b = p.alloc_f32(2);
        p.f32_mut(a)[0] = 1.0;
        p.f32_mut(b)[1] = 2.0;
        assert_eq!(p.f32(a), &[1.0, 0.0]);
        assert_eq!(p.f32(b), &[0.0, 2.0]);
    }

    #[test]
    fn accounting() {
        let mut p = BufferPool::new();
        p.alloc_f32(100);
        p.alloc_u32(50);
        assert_eq!(p.total_bytes(), 600);
        assert_eq!(p.buffer_count(), 2);
    }
}
