//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is installed on a device with
//! [`Device::set_fault_plan`](crate::device::Device::set_fault_plan). From
//! then on every *fallible* operation — `try_launch`, `try_upload_*`,
//! `try_download_*` — consults the plan, in issue order, against a private
//! xorshift64* stream. With a fixed seed the fault schedule is a pure
//! function of the operation sequence: the same program sees the same
//! faults, the same recovery path, and the same simulated timings on every
//! run, which is what makes recovery *testable*.
//!
//! What can be injected (see [`FaultKind`]):
//!
//! * **launch failures** — the kernel never executes; device memory is
//!   untouched and a fixed penalty is charged to the stall clock;
//! * **detectable result corruption** — the kernel runs (its full time is
//!   charged) but its writes are rolled back, modelling an ECC-detected
//!   corrupt result that must be recomputed;
//! * **PCIe transfer errors and timeouts** — the transfer time (or a fixed
//!   timeout) is charged but no data moves, modelling a CRC-failed
//!   detect-and-retry cycle;
//! * **per-CU degradation/loss** — rolled once per device at install time;
//!   degraded CUs run slower and lost CUs receive no work (timing changes
//!   only, never results — see `sched::schedule_launch_degraded`);
//! * **device loss** — permanent; every subsequent operation fails with
//!   [`FaultKind::DeviceLost`]. Multi-device drivers redistribute the dead
//!   device's work.
//!
//! The correctness contract: injected faults never silently alter
//! functional state. A faulted operation either leaves memory exactly as it
//! was (launch failure, transfer faults) or rolls it back (corruption), so a
//! retry that eventually succeeds reproduces the fault-free result
//! **bit-exactly**; only the clocks differ.

use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// The kinds of injected fault. Serialized into traces as unit variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A kernel launch was rejected before executing.
    LaunchFail,
    /// A kernel executed but its result was detected as corrupt and rolled
    /// back.
    ResultCorruption,
    /// A PCIe transfer failed its integrity check; no data moved.
    TransferError,
    /// A PCIe transfer timed out; no data moved.
    TransferTimeout,
    /// The device dropped off the bus permanently.
    DeviceLost,
}

impl FaultKind {
    /// Stable identifier used in trace exports.
    pub fn id(self) -> &'static str {
        match self {
            FaultKind::LaunchFail => "launch-fail",
            FaultKind::ResultCorruption => "result-corruption",
            FaultKind::TransferError => "transfer-error",
            FaultKind::TransferTimeout => "transfer-timeout",
            FaultKind::DeviceLost => "device-lost",
        }
    }
}

/// The error a fallible device operation returns when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultError {
    /// What happened.
    pub kind: FaultKind,
    /// Simulated seconds the failed attempt cost (already charged).
    pub charged_s: f64,
}

impl FaultError {
    /// True if retrying the operation can succeed (everything but a lost
    /// device is transient).
    pub fn is_transient(&self) -> bool {
        self.kind != FaultKind::DeviceLost
    }
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault: {} (cost {:.3e} s)", self.kind.id(), self.charged_s)
    }
}

impl std::error::Error for FaultError {}

/// Per-operation fault probabilities and penalty costs. All probabilities
/// are in `[0, 1]` and independent; `Default` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a launch is rejected before executing.
    pub launch_fail_prob: f64,
    /// Probability a launch's result is detected corrupt and rolled back.
    pub launch_corrupt_prob: f64,
    /// Probability a transfer fails its integrity check.
    pub transfer_error_prob: f64,
    /// Probability a transfer times out.
    pub transfer_timeout_prob: f64,
    /// Per-operation probability the device is lost for good.
    pub device_loss_prob: f64,
    /// Per-CU probability (rolled once at install) of running degraded.
    pub cu_degrade_prob: f64,
    /// Per-CU probability (rolled once at install) of being offline.
    pub cu_loss_prob: f64,
    /// Stall seconds charged for a rejected launch.
    pub launch_fail_penalty_s: f64,
    /// Stall seconds charged for a timed-out transfer.
    pub transfer_timeout_s: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            launch_fail_prob: 0.0,
            launch_corrupt_prob: 0.0,
            transfer_error_prob: 0.0,
            transfer_timeout_prob: 0.0,
            device_loss_prob: 0.0,
            cu_degrade_prob: 0.0,
            cu_loss_prob: 0.0,
            launch_fail_penalty_s: 50e-6,
            transfer_timeout_s: 1e-3,
        }
    }
}

impl FaultConfig {
    /// Transient faults only: each launch fails or corrupts with probability
    /// `p`, each transfer errors or times out with probability `p`. Always
    /// recoverable by retry.
    pub fn transient(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        Self {
            launch_fail_prob: p,
            launch_corrupt_prob: p,
            transfer_error_prob: p,
            transfer_timeout_prob: p,
            ..Self::default()
        }
    }

    /// Adds per-CU degradation/loss on top of this configuration.
    pub fn with_cu_faults(mut self, degrade_prob: f64, loss_prob: f64) -> Self {
        self.cu_degrade_prob = degrade_prob;
        self.cu_loss_prob = loss_prob;
        self
    }

    /// Adds a per-operation device-loss probability.
    pub fn with_device_loss(mut self, p: f64) -> Self {
        self.device_loss_prob = p;
        self
    }

    /// Checks the configuration is usable: every probability in `[0, 1]`,
    /// every penalty finite and non-negative. Admission layers call this on
    /// *deserialized* configs, which bypass the asserting constructors.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("launch_fail_prob", self.launch_fail_prob),
            ("launch_corrupt_prob", self.launch_corrupt_prob),
            ("transfer_error_prob", self.transfer_error_prob),
            ("transfer_timeout_prob", self.transfer_timeout_prob),
            ("device_loss_prob", self.device_loss_prob),
            ("cu_degrade_prob", self.cu_degrade_prob),
            ("cu_loss_prob", self.cu_loss_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        for (name, s) in [
            ("launch_fail_penalty_s", self.launch_fail_penalty_s),
            ("transfer_timeout_s", self.transfer_timeout_s),
        ] {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("{name} {s} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

/// Health of one compute unit, rolled once when the plan is installed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CuHealth {
    /// False once the CU is offline; it receives no work.
    pub alive: bool,
    /// Relative speed in `(0, 1]`; 1.0 is nominal.
    pub speed: f64,
}

impl CuHealth {
    /// A fully healthy CU.
    pub fn nominal() -> Self {
        Self { alive: true, speed: 1.0 }
    }

    /// True when the CU runs at full speed.
    pub fn is_nominal(&self) -> bool {
        self.alive && self.speed >= 1.0
    }
}

/// What a fault decision resolved to (internal to the device hooks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Proceed normally.
    None,
    /// Inject the given fault.
    Inject(FaultKind),
}

/// xorshift64* stream, private to the fault plan. Mirrors
/// `nbody_core::testutil::XorShift64` (same shifts 12/25/27 and multiplier)
/// so fault schedules share the repo-wide PRNG family without `gpu-sim`
/// gaining a dependency.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Running totals of what a plan injected, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Rejected launches.
    pub launch_fails: usize,
    /// Rolled-back corrupt results.
    pub corruptions: usize,
    /// Failed transfers.
    pub transfer_errors: usize,
    /// Timed-out transfers.
    pub transfer_timeouts: usize,
    /// 1 if the device was lost.
    pub device_losses: usize,
}

impl FaultCounts {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> usize {
        self.launch_fails
            + self.corruptions
            + self.transfer_errors
            + self.transfer_timeouts
            + self.device_losses
    }
}

/// A seeded fault schedule bound to one device.
///
/// Create with [`FaultPlan::new`]; the device rolls per-CU health when the
/// plan is installed (the spec is known only then). Decisions are drawn
/// lazily, one operation at a time, so the schedule is deterministic in
/// `(seed, config, operation sequence)`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
    rng: XorShift64,
    cu_health: Vec<CuHealth>,
    device_lost: bool,
    counts: FaultCounts,
}

impl FaultPlan {
    /// A fault plan for `config`, fully determined by `seed`.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        Self {
            config,
            seed,
            rng: XorShift64::new(seed),
            cu_health: Vec::new(),
            device_lost: false,
            counts: FaultCounts::default(),
        }
    }

    /// The seed the plan was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Rolls per-CU health for `spec`. Called by the device on install;
    /// idempotent only in the sense that re-installing re-rolls.
    pub fn install(&mut self, spec: &DeviceSpec) {
        self.cu_health = (0..spec.compute_units)
            .map(|_| {
                let lost = self.rng.next_f64() < self.config.cu_loss_prob;
                let degraded = self.rng.next_f64() < self.config.cu_degrade_prob;
                // always draw the factor so the stream advances uniformly
                let factor = 0.25 + 0.5 * self.rng.next_f64();
                if lost {
                    CuHealth { alive: false, speed: 0.0 }
                } else if degraded {
                    CuHealth { alive: true, speed: factor }
                } else {
                    CuHealth::nominal()
                }
            })
            .collect();
        // a device whose every CU is offline is a lost device
        if !self.cu_health.is_empty() && self.cu_health.iter().all(|c| !c.alive) {
            self.device_lost = true;
            self.counts.device_losses = 1;
        }
    }

    /// Per-CU health rolled at install time (empty before install).
    pub fn cu_health(&self) -> &[CuHealth] {
        &self.cu_health
    }

    /// True if any CU is degraded or offline — launches must use the
    /// degraded scheduler.
    pub fn degrades_scheduling(&self) -> bool {
        self.cu_health.iter().any(|c| !c.is_nominal())
    }

    /// True once the device has been lost.
    pub fn device_lost(&self) -> bool {
        self.device_lost
    }

    /// Injection totals so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn roll_device_loss(&mut self) -> bool {
        if self.device_lost {
            return true;
        }
        if self.rng.next_f64() < self.config.device_loss_prob {
            self.device_lost = true;
            self.counts.device_losses = 1;
            return true;
        }
        false
    }

    /// Decides the fate of the next kernel launch.
    pub fn decide_launch(&mut self) -> FaultDecision {
        if self.roll_device_loss() {
            return FaultDecision::Inject(FaultKind::DeviceLost);
        }
        if self.rng.next_f64() < self.config.launch_fail_prob {
            self.counts.launch_fails += 1;
            return FaultDecision::Inject(FaultKind::LaunchFail);
        }
        if self.rng.next_f64() < self.config.launch_corrupt_prob {
            self.counts.corruptions += 1;
            return FaultDecision::Inject(FaultKind::ResultCorruption);
        }
        FaultDecision::None
    }

    /// Decides the fate of the next PCIe transfer.
    pub fn decide_transfer(&mut self) -> FaultDecision {
        if self.roll_device_loss() {
            return FaultDecision::Inject(FaultKind::DeviceLost);
        }
        if self.rng.next_f64() < self.config.transfer_error_prob {
            self.counts.transfer_errors += 1;
            return FaultDecision::Inject(FaultKind::TransferError);
        }
        if self.rng.next_f64() < self.config.transfer_timeout_prob {
            self.counts.transfer_timeouts += 1;
            return FaultDecision::Inject(FaultKind::TransferTimeout);
        }
        FaultDecision::None
    }
}

/// Bounded retry with deterministic exponential backoff. The backoff is
/// *simulated* time: recovery layers charge it to the device's stall clock
/// so recovery overhead shows up in traces and the PTPM observed grid, not
/// in wall time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts including the first (so `1` means no retry).
    pub max_attempts: usize,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Backoff multiplier per further retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 8, base_backoff_s: 100e-6, multiplier: 2.0 }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `retry` (1-based): deterministic
    /// exponential.
    pub fn backoff_s(&self, retry: usize) -> f64 {
        debug_assert!(retry >= 1);
        self.base_backoff_s * self.multiplier.powi(retry as i32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_constructors_and_rejects_garbage() {
        assert!(FaultConfig::default().validate().is_ok());
        assert!(FaultConfig::transient(0.3).with_device_loss(0.01).validate().is_ok());
        let bad = FaultConfig { transfer_error_prob: 1.5, ..FaultConfig::default() };
        assert!(bad.validate().unwrap_err().contains("transfer_error_prob"));
        let bad = FaultConfig { device_loss_prob: -0.1, ..FaultConfig::default() };
        assert!(bad.validate().unwrap_err().contains("device_loss_prob"));
        let bad = FaultConfig { transfer_timeout_s: f64::NAN, ..FaultConfig::default() };
        assert!(bad.validate().unwrap_err().contains("transfer_timeout_s"));
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let cfg = FaultConfig::transient(0.3);
        let mut a = FaultPlan::new(7, cfg);
        let mut b = FaultPlan::new(7, cfg);
        a.install(&DeviceSpec::tiny_test_device());
        b.install(&DeviceSpec::tiny_test_device());
        for _ in 0..200 {
            assert_eq!(a.decide_launch(), b.decide_launch());
            assert_eq!(a.decide_transfer(), b.decide_transfer());
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "p=0.3 over 400 ops must inject something");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultConfig::transient(0.3);
        let mut a = FaultPlan::new(1, cfg);
        let mut b = FaultPlan::new(2, cfg);
        let da: Vec<_> = (0..100).map(|_| a.decide_launch()).collect();
        let db: Vec<_> = (0..100).map(|_| b.decide_launch()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let mut plan = FaultPlan::new(9, FaultConfig::default());
        plan.install(&DeviceSpec::tiny_test_device());
        for _ in 0..100 {
            assert_eq!(plan.decide_launch(), FaultDecision::None);
            assert_eq!(plan.decide_transfer(), FaultDecision::None);
        }
        assert_eq!(plan.counts().total(), 0);
        assert!(!plan.degrades_scheduling());
        assert!(!plan.device_lost());
    }

    #[test]
    fn device_loss_is_permanent() {
        let cfg = FaultConfig::default().with_device_loss(1.0);
        let mut plan = FaultPlan::new(3, cfg);
        plan.install(&DeviceSpec::tiny_test_device());
        assert_eq!(plan.decide_launch(), FaultDecision::Inject(FaultKind::DeviceLost));
        assert!(plan.device_lost());
        // and every later op fails the same way without advancing counts
        assert_eq!(plan.decide_transfer(), FaultDecision::Inject(FaultKind::DeviceLost));
        assert_eq!(plan.counts().device_losses, 1);
    }

    #[test]
    fn cu_health_rolled_from_seed() {
        let cfg = FaultConfig::default().with_cu_faults(0.5, 0.25);
        let spec = DeviceSpec::radeon_hd_5850();
        let mut a = FaultPlan::new(11, cfg);
        let mut b = FaultPlan::new(11, cfg);
        a.install(&spec);
        b.install(&spec);
        assert_eq!(a.cu_health(), b.cu_health());
        assert_eq!(a.cu_health().len(), spec.compute_units as usize);
        assert!(a.degrades_scheduling(), "p=0.5 over 18 CUs should hit");
        for c in a.cu_health() {
            if c.alive {
                assert!(c.speed > 0.0 && c.speed <= 1.0);
            } else {
                assert_eq!(c.speed, 0.0);
            }
        }
    }

    #[test]
    fn all_cus_lost_means_device_lost() {
        let cfg = FaultConfig::default().with_cu_faults(0.0, 1.0);
        let mut plan = FaultPlan::new(5, cfg);
        plan.install(&DeviceSpec::tiny_test_device());
        assert!(plan.device_lost());
    }

    #[test]
    fn retry_backoff_is_exponential() {
        let p = RetryPolicy { max_attempts: 5, base_backoff_s: 1e-4, multiplier: 2.0 };
        assert!((p.backoff_s(1) - 1e-4).abs() < 1e-18);
        assert!((p.backoff_s(2) - 2e-4).abs() < 1e-18);
        assert!((p.backoff_s(4) - 8e-4).abs() < 1e-18);
    }

    #[test]
    fn transient_errors_are_retryable() {
        let e = FaultError { kind: FaultKind::TransferError, charged_s: 0.0 };
        assert!(e.is_transient());
        let lost = FaultError { kind: FaultKind::DeviceLost, charged_s: 0.0 };
        assert!(!lost.is_transient());
        assert!(lost.to_string().contains("device-lost"));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn transient_rejects_bad_probability() {
        let _ = FaultConfig::transient(1.5);
    }
}
