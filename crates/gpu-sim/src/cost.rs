//! Event counters.
//!
//! Functional kernel execution records *events* — flops, LDS traffic, global
//! memory traffic split into coalesced and gathered accesses, barriers. The
//! scheduler (`sched`) later converts the per-group event counts into cycles
//! and seconds. Keeping counting separate from timing lets the same
//! functional run be re-timed under different device specs (used by the
//! ablation benches).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// Events recorded by one work-group over one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupCost {
    /// Floating-point operations charged by the kernel (convention flops).
    pub flops: f64,
    /// LDS words read or written.
    pub lds_accesses: f64,
    /// Bytes read from global memory.
    pub read_bytes: f64,
    /// Bytes written to global memory.
    pub write_bytes: f64,
    /// Read transactions issued (fractional: coalesced accesses amortize a
    /// transaction over the lanes that share it).
    pub read_transactions: f64,
    /// Write transactions issued.
    pub write_transactions: f64,
    /// Barriers executed (phase boundaries).
    pub barriers: u64,
    /// Work-items that executed at least one phase.
    pub items: u64,
}

impl GroupCost {
    /// All global memory bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes
    }

    /// All global transactions issued.
    pub fn total_transactions(&self) -> f64 {
        self.read_transactions + self.write_transactions
    }

    /// True if no event of any kind was recorded.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

impl Add for GroupCost {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            flops: self.flops + rhs.flops,
            lds_accesses: self.lds_accesses + rhs.lds_accesses,
            read_bytes: self.read_bytes + rhs.read_bytes,
            write_bytes: self.write_bytes + rhs.write_bytes,
            read_transactions: self.read_transactions + rhs.read_transactions,
            write_transactions: self.write_transactions + rhs.write_transactions,
            barriers: self.barriers + rhs.barriers,
            items: self.items + rhs.items,
        }
    }
}

impl AddAssign for GroupCost {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// Componentwise difference, used to carve a snapshot delta out of a running
/// counter (phase profiling). Counters only grow, so `u64` fields saturate
/// rather than wrap if misused.
impl Sub for GroupCost {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            flops: self.flops - rhs.flops,
            lds_accesses: self.lds_accesses - rhs.lds_accesses,
            read_bytes: self.read_bytes - rhs.read_bytes,
            write_bytes: self.write_bytes - rhs.write_bytes,
            read_transactions: self.read_transactions - rhs.read_transactions,
            write_transactions: self.write_transactions - rhs.write_transactions,
            barriers: self.barriers.saturating_sub(rhs.barriers),
            items: self.items.saturating_sub(rhs.items),
        }
    }
}

impl std::iter::Sum for GroupCost {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_zero() {
        let c = GroupCost {
            flops: 10.0,
            lds_accesses: 5.0,
            read_bytes: 100.0,
            write_bytes: 50.0,
            read_transactions: 2.0,
            write_transactions: 1.0,
            barriers: 3,
            items: 4,
        };
        assert_eq!(c.total_bytes(), 150.0);
        assert_eq!(c.total_transactions(), 3.0);
        assert!(!c.is_zero());
        assert!(GroupCost::default().is_zero());
    }

    #[test]
    fn addition_is_componentwise() {
        let a = GroupCost { flops: 1.0, barriers: 2, ..Default::default() };
        let b = GroupCost { flops: 3.0, read_bytes: 8.0, ..Default::default() };
        let s = a + b;
        assert_eq!(s.flops, 4.0);
        assert_eq!(s.barriers, 2);
        assert_eq!(s.read_bytes, 8.0);
    }

    #[test]
    fn sum_over_iterator() {
        let costs = vec![
            GroupCost { flops: 1.0, ..Default::default() },
            GroupCost { flops: 2.0, ..Default::default() },
        ];
        let total: GroupCost = costs.into_iter().sum();
        assert_eq!(total.flops, 3.0);
    }
}
