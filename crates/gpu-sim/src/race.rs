//! Data-race detection for kernel validation.
//!
//! Between two barriers, OpenCL gives no ordering among the work-items of a
//! group: if item A writes an LDS (or global) word and item B reads or
//! writes the same word *in the same phase*, the kernel is racy — it only
//! appears correct under this executor because items run in local-id order.
//! The checked execution mode records, per phase, which items touched each
//! word and reports conflicts instead of silently producing
//! order-dependent results.
//!
//! The detector is exact for the access patterns the tracked API can
//! express (word-granular, per-phase), and is intended for tests and
//! debugging: it allocates shadow state per LDS/global word touched.

use std::collections::HashMap;
use std::fmt;

/// Which memory space an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Work-group local memory.
    Lds,
    /// A global `f32` buffer (by handle index).
    GlobalF32(u32),
    /// A global `u32` buffer (by handle index).
    GlobalU32(u32),
    /// A global `u64` buffer (by handle index).
    GlobalU64(u32),
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Lds => write!(f, "LDS"),
            Space::GlobalF32(b) => write!(f, "global f32 buffer #{b}"),
            Space::GlobalU32(b) => write!(f, "global u32 buffer #{b}"),
            Space::GlobalU64(b) => write!(f, "global u64 buffer #{b}"),
        }
    }
}

/// A detected conflict between two work-items in one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Group in which the race occurred.
    pub group_id: usize,
    /// Phase (barrier interval) of the race.
    pub phase: usize,
    /// Memory space.
    pub space: Space,
    /// Word index within the space.
    pub index: usize,
    /// Local id of the earlier-writing item.
    pub writer: usize,
    /// Local id of the conflicting item.
    pub other: usize,
    /// True if the conflicting access was also a write.
    pub other_is_write: bool,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group {} phase {}: item {} wrote {}[{}], item {} {} it in the same phase",
            self.group_id,
            self.phase,
            self.writer,
            self.space,
            self.index,
            self.other,
            if self.other_is_write { "also wrote" } else { "read" }
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct WordState {
    writer: Option<usize>,
    readers_except_writer: bool,
    first_reader: usize,
}

/// Per-phase shadow memory. Cleared at every barrier.
#[derive(Debug, Default)]
pub struct RaceDetector {
    words: HashMap<(Space, usize), WordState>,
    races: Vec<Race>,
    group_id: usize,
    phase: usize,
    /// Hard cap so a hopelessly racy kernel doesn't accumulate unbounded
    /// reports.
    max_races: usize,
}

impl RaceDetector {
    /// Creates a detector reporting at most `max_races` conflicts.
    pub fn new(max_races: usize) -> Self {
        Self { max_races, ..Default::default() }
    }

    /// Begins a new phase of `group_id` (clears shadow state).
    pub fn begin_phase(&mut self, group_id: usize, phase: usize) {
        self.words.clear();
        self.group_id = group_id;
        self.phase = phase;
    }

    /// Records a read of one word by `item`.
    pub fn read(&mut self, item: usize, space: Space, index: usize) {
        let state = self.words.entry((space, index)).or_insert(WordState {
            writer: None,
            readers_except_writer: false,
            first_reader: item,
        });
        if let Some(writer) = state.writer {
            if writer != item {
                self.push_race(space, index, writer, item, false);
            }
        } else if !state.readers_except_writer && state.first_reader != item {
            state.readers_except_writer = true;
        }
    }

    /// Records a write of one word by `item`.
    pub fn write(&mut self, item: usize, space: Space, index: usize) {
        let state = self.words.entry((space, index)).or_insert(WordState {
            writer: None,
            readers_except_writer: false,
            first_reader: item,
        });
        match state.writer {
            Some(writer) if writer != item => {
                self.push_race(space, index, writer, item, true);
            }
            Some(_) => {}
            None => {
                // write-after-read by a different item is also a race
                let conflicting_reader = (state.first_reader != item
                    || state.readers_except_writer)
                    .then_some(state.first_reader);
                state.writer = Some(item);
                if let Some(reader) = conflicting_reader {
                    self.push_race(space, index, item, reader, false);
                }
            }
        }
    }

    fn push_race(&mut self, space: Space, index: usize, writer: usize, other: usize, w: bool) {
        if self.races.len() < self.max_races {
            self.races.push(Race {
                group_id: self.group_id,
                phase: self.phase,
                space,
                index,
                writer,
                other,
                other_is_write: w,
            });
        }
    }

    /// Races found so far.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// True if any race was found.
    pub fn is_racy(&self) -> bool {
        !self.races.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_accesses_are_clean() {
        let mut d = RaceDetector::new(16);
        d.begin_phase(0, 0);
        d.write(0, Space::Lds, 0);
        d.write(1, Space::Lds, 1);
        d.read(0, Space::Lds, 0); // own word
        d.read(2, Space::GlobalF32(0), 5);
        d.read(3, Space::GlobalF32(0), 5); // shared reads are fine
        assert!(!d.is_racy());
    }

    #[test]
    fn write_then_foreign_read_is_a_race() {
        let mut d = RaceDetector::new(16);
        d.begin_phase(3, 1);
        d.write(0, Space::Lds, 7);
        d.read(1, Space::Lds, 7);
        assert!(d.is_racy());
        let r = &d.races()[0];
        assert_eq!(r.group_id, 3);
        assert_eq!(r.phase, 1);
        assert_eq!(r.writer, 0);
        assert_eq!(r.other, 1);
        assert!(!r.other_is_write);
        assert!(r.to_string().contains("read"));
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut d = RaceDetector::new(16);
        d.begin_phase(0, 0);
        d.write(0, Space::GlobalF32(2), 4);
        d.write(5, Space::GlobalF32(2), 4);
        assert!(d.is_racy());
        assert!(d.races()[0].other_is_write);
    }

    #[test]
    fn read_then_foreign_write_is_a_race() {
        let mut d = RaceDetector::new(16);
        d.begin_phase(0, 0);
        d.read(2, Space::Lds, 9);
        d.write(3, Space::Lds, 9);
        assert!(d.is_racy());
    }

    #[test]
    fn barrier_clears_shadow_state() {
        let mut d = RaceDetector::new(16);
        d.begin_phase(0, 0);
        d.write(0, Space::Lds, 1);
        d.begin_phase(0, 1);
        d.read(1, Space::Lds, 1); // previous phase's write is now safe
        assert!(!d.is_racy());
    }

    #[test]
    fn race_cap_respected() {
        let mut d = RaceDetector::new(2);
        d.begin_phase(0, 0);
        for i in 0..10 {
            d.write(0, Space::Lds, i);
            d.write(1, Space::Lds, i);
        }
        assert_eq!(d.races().len(), 2);
    }

    #[test]
    fn same_item_rewrites_are_fine() {
        let mut d = RaceDetector::new(16);
        d.begin_phase(0, 0);
        d.write(4, Space::Lds, 0);
        d.write(4, Space::Lds, 0);
        d.read(4, Space::Lds, 0);
        assert!(!d.is_racy());
    }
}
