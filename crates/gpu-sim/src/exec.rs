//! Functional execution of kernels, with event accounting.
//!
//! [`ItemCtx`] is the device-side API surface a kernel phase sees: work-item
//! ids, LDS, and global buffers. Every access goes through a method that
//! both performs the operation and records its cost. Global accesses come in
//! two flavours mirroring how one reasons about OpenCL memory:
//!
//! * `*_coalesced` — the wavefront accesses consecutive addresses, so a
//!   128-byte transaction is amortized over the lanes that share it
//!   (charged as `4 / transaction_bytes` transactions per element);
//! * plain (gather/scatter) — each lane pays a full transaction.
//!
//! Execution is deterministic regardless of host thread count: groups run
//! in index order (serially, or chunked over `par` worker threads with the
//! per-chunk global-memory write logs replayed in chunk order), items in
//! local-id order, phases separated by implicit barriers. The parallel
//! schedule is bit-exact against the serial one because work-groups are
//! independent within a launch — the OpenCL contract the kernels in this
//! workspace already obey: a group reads pre-launch global memory plus its
//! own writes, never another group's.

use crate::buffer::{BufF32, BufU32, BufU64, BufferPool};
use crate::cost::GroupCost;
use crate::kernel::{Control, GroupInfo, Kernel, NdRange};
use crate::race::{Race, RaceDetector, Space};
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Hard cap on phases executed per group — an infinite `Jump` loop in a
/// kernel panics instead of hanging the process.
const MAX_PHASES_PER_GROUP: usize = 1 << 24;

/// The device-side view one work-item has during one phase.
pub struct ItemCtx<'a> {
    /// Flat work-item index across the launch.
    pub global_id: usize,
    /// Index within the work-group.
    pub local_id: usize,
    /// Work-group index.
    pub group_id: usize,
    /// Items per group.
    pub local_size: usize,
    /// Total items in the launch.
    pub global_size: usize,
    lds: &'a mut [f32],
    pool: &'a mut BufferPool,
    cost: &'a mut GroupCost,
    inv_transaction_bytes: f64,
    race: Option<&'a mut RaceDetector>,
    log: Option<&'a mut WriteLog>,
}

/// Global-memory writes of one chunk of groups, in execution order. Replayed
/// into the master pool in chunk order, this reproduces the serial schedule's
/// final memory byte-for-byte (chunks are contiguous group ranges, so chunk
/// order *is* group order).
#[derive(Debug, Default)]
struct WriteLog {
    f32s: Vec<(BufF32, usize, f32)>,
    u32s: Vec<(BufU32, usize, u32)>,
    u64s: Vec<(BufU64, usize, u64)>,
}

impl WriteLog {
    fn replay(&self, pool: &mut BufferPool) {
        for &(buf, idx, v) in &self.f32s {
            pool.f32_mut(buf)[idx] = v;
        }
        for &(buf, idx, v) in &self.u32s {
            pool.u32_mut(buf)[idx] = v;
        }
        for &(buf, idx, v) in &self.u64s {
            pool.u64_mut(buf)[idx] = v;
        }
    }
}

impl<'a> ItemCtx<'a> {
    /// Charges `n` convention flops to this group.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.cost.flops += n as f64;
    }

    /// Reads a word of LDS.
    #[inline]
    pub fn lds_read(&mut self, idx: usize) -> f32 {
        self.cost.lds_accesses += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::Lds, idx);
        }
        self.lds[idx]
    }

    /// Writes a word of LDS.
    #[inline]
    pub fn lds_write(&mut self, idx: usize, v: f32) {
        self.cost.lds_accesses += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.write(self.local_id, Space::Lds, idx);
        }
        self.lds[idx] = v;
    }

    /// Writes `data.len()` consecutive LDS words (charged and race-tracked
    /// per word) — the staple of tile staging.
    #[inline]
    pub fn lds_write_slice(&mut self, base: usize, data: &[f32]) {
        self.cost.lds_accesses += data.len() as f64;
        if let Some(d) = self.race.as_deref_mut() {
            for i in base..base + data.len() {
                d.write(self.local_id, Space::Lds, i);
            }
        }
        self.lds[base..base + data.len()].copy_from_slice(data);
    }

    /// Reads `len` consecutive LDS words as a slice (charged and
    /// race-tracked per word). Charge happens up front, so the returned
    /// borrow can feed a tight inner loop.
    #[inline]
    pub fn lds_read_slice(&mut self, base: usize, len: usize) -> &[f32] {
        self.cost.lds_accesses += len as f64;
        if let Some(d) = self.race.as_deref_mut() {
            for i in base..base + len {
                d.read(self.local_id, Space::Lds, i);
            }
        }
        &self.lds[base..base + len]
    }

    /// Reads `COUNT` consecutive LDS words (charged per word); the staple of
    /// tile-processing inner loops.
    #[inline]
    pub fn lds_read_vec<const COUNT: usize>(&mut self, base: usize) -> [f32; COUNT] {
        self.cost.lds_accesses += COUNT as f64;
        let mut out = [0.0; COUNT];
        out.copy_from_slice(&self.lds[base..base + COUNT]);
        out
    }

    /// Reads one `f32` with wavefront-coalesced addressing.
    #[inline]
    pub fn read_f32_coalesced(&mut self, buf: BufF32, idx: usize) -> f32 {
        self.cost.read_bytes += 4.0;
        self.cost.read_transactions += 4.0 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::GlobalF32(buf.raw()), idx);
        }
        self.pool.f32(buf)[idx]
    }

    /// Reads one `f32` with gather (uncoalesced) addressing.
    #[inline]
    pub fn read_f32(&mut self, buf: BufF32, idx: usize) -> f32 {
        self.cost.read_bytes += 4.0;
        self.cost.read_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::GlobalF32(buf.raw()), idx);
        }
        self.pool.f32(buf)[idx]
    }

    /// Reads `COUNT` consecutive `f32` (a float2/float4 load), coalesced.
    #[inline]
    pub fn read_f32_vec_coalesced<const COUNT: usize>(
        &mut self,
        buf: BufF32,
        base: usize,
    ) -> [f32; COUNT] {
        self.cost.read_bytes += 4.0 * COUNT as f64;
        self.cost.read_transactions += 4.0 * COUNT as f64 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            for i in base..base + COUNT {
                d.read(self.local_id, Space::GlobalF32(buf.raw()), i);
            }
        }
        let mut out = [0.0; COUNT];
        out.copy_from_slice(&self.pool.f32(buf)[base..base + COUNT]);
        out
    }

    /// Reads `COUNT` consecutive `f32` as a gather (one transaction, since
    /// consecutive words of one lane share a burst).
    #[inline]
    pub fn read_f32_vec<const COUNT: usize>(&mut self, buf: BufF32, base: usize) -> [f32; COUNT] {
        self.cost.read_bytes += 4.0 * COUNT as f64;
        self.cost.read_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            for i in base..base + COUNT {
                d.read(self.local_id, Space::GlobalF32(buf.raw()), i);
            }
        }
        let mut out = [0.0; COUNT];
        out.copy_from_slice(&self.pool.f32(buf)[base..base + COUNT]);
        out
    }

    /// Writes one `f32`, coalesced.
    #[inline]
    pub fn write_f32_coalesced(&mut self, buf: BufF32, idx: usize, v: f32) {
        self.cost.write_bytes += 4.0;
        self.cost.write_transactions += 4.0 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            d.write(self.local_id, Space::GlobalF32(buf.raw()), idx);
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.f32s.push((buf, idx, v));
        }
        self.pool.f32_mut(buf)[idx] = v;
    }

    /// Writes one `f32` as a scatter.
    #[inline]
    pub fn write_f32(&mut self, buf: BufF32, idx: usize, v: f32) {
        self.cost.write_bytes += 4.0;
        self.cost.write_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.write(self.local_id, Space::GlobalF32(buf.raw()), idx);
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.f32s.push((buf, idx, v));
        }
        self.pool.f32_mut(buf)[idx] = v;
    }

    /// Writes `COUNT` consecutive `f32`, coalesced.
    #[inline]
    pub fn write_f32_vec_coalesced<const COUNT: usize>(
        &mut self,
        buf: BufF32,
        base: usize,
        v: [f32; COUNT],
    ) {
        self.cost.write_bytes += 4.0 * COUNT as f64;
        self.cost.write_transactions += 4.0 * COUNT as f64 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            for i in base..base + COUNT {
                d.write(self.local_id, Space::GlobalF32(buf.raw()), i);
            }
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.f32s.extend((0..COUNT).map(|k| (buf, base + k, v[k])));
        }
        self.pool.f32_mut(buf)[base..base + COUNT].copy_from_slice(&v);
    }

    /// Writes `COUNT` consecutive `f32` as a scatter (one transaction: one
    /// lane's consecutive words share a burst).
    #[inline]
    pub fn write_f32_vec<const COUNT: usize>(&mut self, buf: BufF32, base: usize, v: [f32; COUNT]) {
        self.cost.write_bytes += 4.0 * COUNT as f64;
        self.cost.write_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            for i in base..base + COUNT {
                d.write(self.local_id, Space::GlobalF32(buf.raw()), i);
            }
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.f32s.extend((0..COUNT).map(|k| (buf, base + k, v[k])));
        }
        self.pool.f32_mut(buf)[base..base + COUNT].copy_from_slice(&v);
    }

    /// Reads one `u32`, coalesced.
    #[inline]
    pub fn read_u32_coalesced(&mut self, buf: BufU32, idx: usize) -> u32 {
        self.cost.read_bytes += 4.0;
        self.cost.read_transactions += 4.0 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::GlobalU32(buf.raw()), idx);
        }
        self.pool.u32(buf)[idx]
    }

    /// Reads one `u32` as a gather.
    #[inline]
    pub fn read_u32(&mut self, buf: BufU32, idx: usize) -> u32 {
        self.cost.read_bytes += 4.0;
        self.cost.read_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::GlobalU32(buf.raw()), idx);
        }
        self.pool.u32(buf)[idx]
    }

    /// Writes one `u32`, coalesced.
    #[inline]
    pub fn write_u32_coalesced(&mut self, buf: BufU32, idx: usize, v: u32) {
        self.cost.write_bytes += 4.0;
        self.cost.write_transactions += 4.0 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            d.write(self.local_id, Space::GlobalU32(buf.raw()), idx);
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.u32s.push((buf, idx, v));
        }
        self.pool.u32_mut(buf)[idx] = v;
    }

    /// Reads one `u64` (a Morton key or f64 bit pattern), coalesced.
    #[inline]
    pub fn read_u64_coalesced(&mut self, buf: BufU64, idx: usize) -> u64 {
        self.cost.read_bytes += 8.0;
        self.cost.read_transactions += 8.0 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::GlobalU64(buf.raw()), idx);
        }
        self.pool.u64(buf)[idx]
    }

    /// Reads one `u64` as a gather.
    #[inline]
    pub fn read_u64(&mut self, buf: BufU64, idx: usize) -> u64 {
        self.cost.read_bytes += 8.0;
        self.cost.read_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.read(self.local_id, Space::GlobalU64(buf.raw()), idx);
        }
        self.pool.u64(buf)[idx]
    }

    /// Writes one `u64`, coalesced.
    #[inline]
    pub fn write_u64_coalesced(&mut self, buf: BufU64, idx: usize, v: u64) {
        self.cost.write_bytes += 8.0;
        self.cost.write_transactions += 8.0 * self.inv_transaction_bytes;
        if let Some(d) = self.race.as_deref_mut() {
            d.write(self.local_id, Space::GlobalU64(buf.raw()), idx);
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.u64s.push((buf, idx, v));
        }
        self.pool.u64_mut(buf)[idx] = v;
    }

    /// Writes one `u64` as a scatter.
    #[inline]
    pub fn write_u64(&mut self, buf: BufU64, idx: usize, v: u64) {
        self.cost.write_bytes += 8.0;
        self.cost.write_transactions += 1.0;
        if let Some(d) = self.race.as_deref_mut() {
            d.write(self.local_id, Space::GlobalU64(buf.raw()), idx);
        }
        if let Some(log) = self.log.as_deref_mut() {
            log.u64s.push((buf, idx, v));
        }
        self.pool.u64_mut(buf)[idx] = v;
    }

    /// Length of an `f32` buffer (free: lengths are kernel arguments on real
    /// devices).
    #[inline]
    pub fn len_f32(&self, buf: BufF32) -> usize {
        self.pool.len_f32(buf)
    }

    /// Length of a `u32` buffer (free, as with [`ItemCtx::len_f32`]).
    #[inline]
    pub fn len_u32(&self, buf: BufU32) -> usize {
        self.pool.len_u32(buf)
    }

    /// Length of a `u64` buffer (free, as with [`ItemCtx::len_f32`]).
    #[inline]
    pub fn len_u64(&self, buf: BufU64) -> usize {
        self.pool.len_u64(buf)
    }

    // --- Bulk accessors for hot inner loops -------------------------------
    //
    // The per-access methods above cost one counter update per element; a
    // tile loop evaluating hundreds of interactions per phase call wants a
    // tight slice loop instead. These accessors are *uncounted*: the kernel
    // must charge the equivalent events explicitly with `charge_*`. Misuse
    // shows up immediately in the cost-model tests, which compare charged
    // totals against analytic expectations.

    /// Uncounted, race-untracked read-only view of LDS. Pair with
    /// [`ItemCtx::charge_lds`]; prefer [`ItemCtx::lds_read_slice`], which is
    /// charged and visible to the race detector.
    #[inline]
    pub fn lds(&self) -> &[f32] {
        self.lds
    }

    /// Uncounted, race-untracked mutable view of LDS. Pair with
    /// [`ItemCtx::charge_lds`]; prefer [`ItemCtx::lds_write_slice`].
    #[inline]
    pub fn lds_mut(&mut self) -> &mut [f32] {
        self.lds
    }

    /// Charges `words` LDS accesses without touching memory.
    #[inline]
    pub fn charge_lds(&mut self, words: f64) {
        self.cost.lds_accesses += words;
    }

    /// Charges `n` convention flops (alias of [`ItemCtx::flops`] taking
    /// fractional counts for amortized charging).
    #[inline]
    pub fn charge_flops(&mut self, n: f64) {
        self.cost.flops += n;
    }

    /// Charges a bulk global-memory read of `bytes` bytes in `transactions`
    /// memory transactions, without touching memory. Pair with the uncounted
    /// `global_*` views below; a coalesced stream of `b` bytes costs
    /// `b / transaction_bytes` transactions, a gather costs one per access.
    #[inline]
    pub fn charge_global_read(&mut self, bytes: f64, transactions: f64) {
        self.cost.read_bytes += bytes;
        self.cost.read_transactions += transactions;
    }

    /// Charges a bulk global-memory write, as [`ItemCtx::charge_global_read`].
    #[inline]
    pub fn charge_global_write(&mut self, bytes: f64, transactions: f64) {
        self.cost.write_bytes += bytes;
        self.cost.write_transactions += transactions;
    }

    /// Transaction granularity helper: transactions for a coalesced stream of
    /// `bytes` bytes on this device.
    #[inline]
    pub fn coalesced_transactions(&self, bytes: f64) -> f64 {
        bytes * self.inv_transaction_bytes
    }

    /// Uncounted, race-untracked read-only view of a global `f32` buffer.
    /// Pair with [`ItemCtx::charge_global_read`].
    #[inline]
    pub fn global_f32(&self, buf: BufF32) -> &[f32] {
        self.pool.f32(buf)
    }

    /// Uncounted, race-untracked read-only view of a global `u32` buffer.
    /// Pair with [`ItemCtx::charge_global_read`].
    #[inline]
    pub fn global_u32(&self, buf: BufU32) -> &[u32] {
        self.pool.u32(buf)
    }

    /// Uncounted, race-untracked read-only view of a global `u64` buffer.
    /// Pair with [`ItemCtx::charge_global_read`].
    #[inline]
    pub fn global_u64(&self, buf: BufU64) -> &[u64] {
        self.pool.u64(buf)
    }

    /// Uncounted bulk store of `src` into a global `f32` buffer at `offset`.
    /// Pair with [`ItemCtx::charge_global_write`]. Writes are logged so the
    /// parallel executor replays them deterministically, but they are not
    /// visible to the race detector.
    #[inline]
    pub fn store_f32_slice(&mut self, buf: BufF32, offset: usize, src: &[f32]) {
        if let Some(log) = self.log.as_deref_mut() {
            for (i, &v) in src.iter().enumerate() {
                log.f32s.push((buf, offset + i, v));
            }
        }
        self.pool.f32_mut(buf)[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Uncounted bulk store into a global `u32` buffer, as
    /// [`ItemCtx::store_f32_slice`].
    #[inline]
    pub fn store_u32_slice(&mut self, buf: BufU32, offset: usize, src: &[u32]) {
        if let Some(log) = self.log.as_deref_mut() {
            for (i, &v) in src.iter().enumerate() {
                log.u32s.push((buf, offset + i, v));
            }
        }
        self.pool.u32_mut(buf)[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Uncounted bulk store into a global `u64` buffer, as
    /// [`ItemCtx::store_f32_slice`].
    #[inline]
    pub fn store_u64_slice(&mut self, buf: BufU64, offset: usize, src: &[u64]) {
        if let Some(log) = self.log.as_deref_mut() {
            for (i, &v) in src.iter().enumerate() {
                log.u64s.push((buf, offset + i, v));
            }
        }
        self.pool.u64_mut(buf)[offset..offset + src.len()].copy_from_slice(src);
    }
}

/// Aggregated cost of one phase index within one group, recorded only when
/// phase profiling is on (see [`execute_launch_profiled`]). A phase inside a
/// `Jump` loop executes many times; `executions` counts them and `cost` sums
/// their charges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Phase index in the kernel's phase machine.
    pub phase: usize,
    /// Times this phase executed in the group.
    pub executions: u64,
    /// Events charged across all executions (includes the implicit barrier
    /// after each execution).
    pub cost: GroupCost,
}

/// Result of functionally executing a full launch: one cost per group, in
/// group order.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Per-group event counts.
    pub group_costs: Vec<GroupCost>,
    /// Phases executed per group (same order).
    pub group_phases: Vec<u64>,
    /// Per-group phase breakdowns, ordered by phase index within each group.
    /// Empty unless the launch was profiled.
    pub phase_costs: Vec<Vec<PhaseCost>>,
}

impl ExecOutcome {
    /// Sum of all group costs.
    pub fn total(&self) -> GroupCost {
        self.group_costs.iter().copied().sum()
    }
}

/// Functionally executes every work-group of `grid` and records costs.
///
/// # Panics
/// Panics if the grid is invalid, the local size exceeds the device limit,
/// the kernel's LDS request exceeds the device LDS, or a group exceeds the
/// phase budget (runaway loop).
pub fn execute_launch<K: Kernel>(
    kernel: &K,
    grid: NdRange,
    spec: &DeviceSpec,
    pool: &mut BufferPool,
) -> ExecOutcome {
    let (outcome, _races) = execute_launch_opts(kernel, grid, spec, pool, false, false);
    outcome
}

/// Like [`execute_launch`], but with intra-phase data-race detection: every
/// tracked access is checked against the rule that no two work-items may
/// touch the same word between barriers unless all accesses are reads.
/// Returns the outcome plus all detected races (capped at 64).
pub fn execute_launch_checked<K: Kernel>(
    kernel: &K,
    grid: NdRange,
    spec: &DeviceSpec,
    pool: &mut BufferPool,
) -> (ExecOutcome, Vec<Race>) {
    execute_launch_opts(kernel, grid, spec, pool, true, false)
}

/// Like [`execute_launch`], but additionally records a per-group, per-phase
/// cost breakdown in [`ExecOutcome::phase_costs`] (what the execution-trace
/// subsystem consumes). Race checking composes via `check_races`.
pub fn execute_launch_profiled<K: Kernel>(
    kernel: &K,
    grid: NdRange,
    spec: &DeviceSpec,
    pool: &mut BufferPool,
    check_races: bool,
) -> (ExecOutcome, Vec<Race>) {
    execute_launch_opts(kernel, grid, spec, pool, check_races, true)
}

fn execute_launch_opts<K: Kernel>(
    kernel: &K,
    grid: NdRange,
    spec: &DeviceSpec,
    pool: &mut BufferPool,
    check_races: bool,
    profile: bool,
) -> (ExecOutcome, Vec<Race>) {
    grid.validate().unwrap_or_else(|e| panic!("kernel `{}`: {e}", kernel.name()));
    assert!(
        grid.local <= spec.max_workgroup_size as usize,
        "kernel `{}`: local size {} exceeds device max {}",
        kernel.name(),
        grid.local,
        spec.max_workgroup_size
    );
    assert!(
        kernel.lds_words() <= spec.lds_words_per_cu as usize,
        "kernel `{}`: LDS request {} words exceeds device LDS {} words",
        kernel.name(),
        kernel.lds_words(),
        spec.lds_words_per_cu
    );

    let num_groups = grid.num_groups();
    let inv_tb = 1.0 / f64::from(spec.transaction_bytes);

    // Race checking keeps the serial schedule: the detector's value is its
    // byte-stable report, and checked launches are cold paths anyway.
    if par::threads() == 1 || num_groups < 2 || check_races {
        let mut detector = check_races.then(|| RaceDetector::new(64));
        let batch =
            run_groups(kernel, grid, pool, 0..num_groups, inv_tb, profile, detector.as_mut(), None);
        let races = detector.map(|d| d.races().to_vec()).unwrap_or_default();
        let GroupBatch { group_costs, group_phases, phase_costs } = batch;
        return (ExecOutcome { group_costs, group_phases, phase_costs }, races);
    }

    // Parallel schedule: contiguous chunks of groups execute on worker
    // threads, each against a private clone of global memory, logging its
    // writes. Replaying the logs in chunk order reproduces the serial
    // schedule's final memory byte-for-byte.
    let chunks = {
        let pool_ref: &BufferPool = pool;
        par::map_chunks(num_groups, |range| {
            let mut local_pool = pool_ref.clone();
            let mut log = WriteLog::default();
            let batch = run_groups(
                kernel,
                grid,
                &mut local_pool,
                range,
                inv_tb,
                profile,
                None,
                Some(&mut log),
            );
            (batch, log)
        })
    };

    let mut group_costs = Vec::with_capacity(num_groups);
    let mut group_phases = Vec::with_capacity(num_groups);
    let mut phase_costs: Vec<Vec<PhaseCost>> =
        if profile { Vec::with_capacity(num_groups) } else { Vec::new() };
    for (batch, log) in chunks {
        log.replay(pool);
        group_costs.extend(batch.group_costs);
        group_phases.extend(batch.group_phases);
        phase_costs.extend(batch.phase_costs);
    }
    (ExecOutcome { group_costs, group_phases, phase_costs }, Vec::new())
}

/// Per-chunk slice of an [`ExecOutcome`], in group order within the chunk.
struct GroupBatch {
    group_costs: Vec<GroupCost>,
    group_phases: Vec<u64>,
    phase_costs: Vec<Vec<PhaseCost>>,
}

/// Executes the contiguous `groups` range of the launch against `pool`.
#[allow(clippy::too_many_arguments)]
fn run_groups<K: Kernel>(
    kernel: &K,
    grid: NdRange,
    pool: &mut BufferPool,
    groups: std::ops::Range<usize>,
    inv_tb: f64,
    profile: bool,
    mut detector: Option<&mut RaceDetector>,
    mut log: Option<&mut WriteLog>,
) -> GroupBatch {
    let num_groups = grid.num_groups();
    let mut group_costs = Vec::with_capacity(groups.len());
    let mut group_phases = Vec::with_capacity(groups.len());
    let mut phase_costs: Vec<Vec<PhaseCost>> =
        if profile { Vec::with_capacity(groups.len()) } else { Vec::new() };
    let mut lds = vec![0.0_f32; kernel.lds_words()];

    for group_id in groups {
        lds.iter_mut().for_each(|w| *w = 0.0);
        let mut cost = GroupCost { items: grid.local as u64, ..Default::default() };
        let mut group_regs = K::GroupRegs::default();
        let mut item_regs = vec![K::ItemRegs::default(); grid.local];
        let info =
            GroupInfo { group_id, local_size: grid.local, global_size: grid.global, num_groups };

        let mut phase = 0_usize;
        let mut executed = 0_u64;
        let mut profile_acc: Vec<PhaseCost> = Vec::new();
        loop {
            if let Some(d) = detector.as_deref_mut() {
                d.begin_phase(group_id, phase);
            }
            let cost_before = profile.then_some(cost);
            for (local_id, regs) in item_regs.iter_mut().enumerate() {
                let mut ctx = ItemCtx {
                    global_id: group_id * grid.local + local_id,
                    local_id,
                    group_id,
                    local_size: grid.local,
                    global_size: grid.global,
                    lds: &mut lds,
                    pool,
                    cost: &mut cost,
                    inv_transaction_bytes: inv_tb,
                    race: detector.as_deref_mut(),
                    log: log.as_deref_mut(),
                };
                kernel.phase(phase, &mut ctx, regs, &group_regs);
            }
            cost.barriers += 1;
            executed += 1;
            if let Some(before) = cost_before {
                let delta = cost - before;
                match profile_acc.iter_mut().find(|pc| pc.phase == phase) {
                    Some(pc) => {
                        pc.executions += 1;
                        pc.cost += delta;
                    }
                    None => profile_acc.push(PhaseCost { phase, executions: 1, cost: delta }),
                }
            }
            assert!(
                (executed as usize) < MAX_PHASES_PER_GROUP,
                "kernel `{}` group {group_id}: phase budget exhausted (runaway loop?)",
                kernel.name()
            );
            match kernel.control(phase, &mut group_regs, &info) {
                Control::Next => phase += 1,
                Control::Jump(p) => phase = p,
                Control::Done => break,
            }
        }
        group_costs.push(cost);
        group_phases.push(executed);
        if profile {
            profile_acc.sort_by_key(|pc| pc.phase);
            phase_costs.push(profile_acc);
        }
    }

    GroupBatch { group_costs, group_phases, phase_costs }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every element: out[i] = 2 * in[i]. Single phase.
    struct DoubleKernel {
        input: BufF32,
        output: BufF32,
        n: usize,
    }

    impl Kernel for DoubleKernel {
        type ItemRegs = ();
        type GroupRegs = ();

        fn name(&self) -> &str {
            "double"
        }

        fn lds_words(&self) -> usize {
            0
        }

        fn phase(&self, _phase: usize, ctx: &mut ItemCtx<'_>, _regs: &mut (), _group: &()) {
            let i = ctx.global_id;
            if i < self.n {
                let v = ctx.read_f32_coalesced(self.input, i);
                ctx.flops(1);
                ctx.write_f32_coalesced(self.output, i, 2.0 * v);
            }
        }

        fn control(&self, _phase: usize, _group: &mut (), _info: &GroupInfo) -> Control {
            Control::Done
        }
    }

    /// Group-wide LDS reduction over `rounds` tiles, exercising Jump loops:
    /// each item writes its id to LDS, then item 0 sums the tile.
    struct LoopKernel {
        output: BufF32,
        rounds: usize,
    }

    #[derive(Default)]
    struct LoopGroupRegs {
        round: usize,
    }

    impl Kernel for LoopKernel {
        type ItemRegs = ();
        type GroupRegs = LoopGroupRegs;

        fn name(&self) -> &str {
            "loop"
        }

        fn lds_words(&self) -> usize {
            8
        }

        fn phase(
            &self,
            phase: usize,
            ctx: &mut ItemCtx<'_>,
            _regs: &mut (),
            group: &LoopGroupRegs,
        ) {
            match phase {
                0 => ctx.lds_write(ctx.local_id, (group.round + 1) as f32),
                1 => {
                    if ctx.local_id == 0 {
                        let mut sum = 0.0;
                        for k in 0..ctx.local_size {
                            sum += ctx.lds_read(k);
                        }
                        let prev = ctx.read_f32(self.output, ctx.group_id);
                        ctx.write_f32(self.output, ctx.group_id, prev + sum);
                    }
                }
                _ => unreachable!("loop kernel has two phases"),
            }
        }

        fn control(&self, phase: usize, group: &mut LoopGroupRegs, _info: &GroupInfo) -> Control {
            match phase {
                0 => Control::Next,
                1 => {
                    group.round += 1;
                    if group.round < self.rounds {
                        Control::Jump(0)
                    } else {
                        Control::Done
                    }
                }
                _ => Control::Done,
            }
        }
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::tiny_test_device()
    }

    #[test]
    fn functional_correctness_simple() {
        let spec = spec();
        let mut pool = BufferPool::new();
        let input = pool.alloc_f32(10);
        let output = pool.alloc_f32(10);
        for i in 0..10 {
            pool.f32_mut(input)[i] = i as f32;
        }
        let k = DoubleKernel { input, output, n: 10 };
        let grid = NdRange::round_up(10, 4);
        let out = execute_launch(&k, grid, &spec, &mut pool);
        for i in 0..10 {
            assert_eq!(pool.f32(output)[i], 2.0 * i as f32);
        }
        assert_eq!(out.group_costs.len(), 3); // ceil(10/4) groups
    }

    #[test]
    fn cost_accounting_simple() {
        let spec = spec();
        let mut pool = BufferPool::new();
        let input = pool.alloc_f32(8);
        let output = pool.alloc_f32(8);
        let k = DoubleKernel { input, output, n: 8 };
        let out = execute_launch(&k, NdRange { global: 8, local: 4 }, &spec, &mut pool);
        let total = out.total();
        assert_eq!(total.flops, 8.0);
        assert_eq!(total.read_bytes, 32.0);
        assert_eq!(total.write_bytes, 32.0);
        // coalesced: 4 bytes / 64-byte transaction each
        assert!((total.read_transactions - 32.0 / 64.0).abs() < 1e-12);
        assert_eq!(total.barriers, 2); // one phase per group, 2 groups
        assert_eq!(total.items, 8);
    }

    #[test]
    fn tail_items_guarded_by_kernel() {
        let spec = spec();
        let mut pool = BufferPool::new();
        let input = pool.alloc_f32(5);
        let output = pool.alloc_f32(5);
        let k = DoubleKernel { input, output, n: 5 };
        // rounded up to 8 items; items 5..8 must not touch the buffers
        let grid = NdRange::round_up(5, 4);
        assert_eq!(grid.global, 8);
        let out = execute_launch(&k, grid, &spec, &mut pool);
        assert_eq!(out.total().flops, 5.0);
    }

    #[test]
    fn jump_loops_and_lds() {
        let spec = spec();
        let mut pool = BufferPool::new();
        let output = pool.alloc_f32(2);
        let k = LoopKernel { output, rounds: 3 };
        let out = execute_launch(&k, NdRange { global: 8, local: 4 }, &spec, &mut pool);
        // each round: 4 items write round+1 -> sum = 4*(round+1); 3 rounds: 4*(1+2+3)=24
        assert_eq!(pool.f32(output), &[24.0, 24.0]);
        // each group executed 2 phases × 3 rounds = 6 barriers
        assert_eq!(out.group_costs[0].barriers, 6);
        assert_eq!(out.group_phases[0], 6);
        // LDS traffic: per round 4 writes + 4 reads = 8, ×3 rounds
        assert_eq!(out.group_costs[0].lds_accesses, 24.0);
    }

    #[test]
    fn lds_cleared_between_groups() {
        // LoopKernel sums whatever is in LDS; if LDS leaked across groups the
        // second group's output would differ.
        let spec = spec();
        let mut pool = BufferPool::new();
        let output = pool.alloc_f32(2);
        let k = LoopKernel { output, rounds: 1 };
        execute_launch(&k, NdRange { global: 8, local: 4 }, &spec, &mut pool);
        assert_eq!(pool.f32(output)[0], pool.f32(output)[1]);
    }

    #[test]
    #[should_panic(expected = "local size")]
    fn oversized_group_rejected() {
        let spec = spec();
        let mut pool = BufferPool::new();
        let input = pool.alloc_f32(1);
        let output = pool.alloc_f32(1);
        let k = DoubleKernel { input, output, n: 1 };
        execute_launch(&k, NdRange { global: 32, local: 16 }, &spec, &mut pool);
    }

    #[test]
    #[should_panic(expected = "LDS request")]
    fn oversized_lds_rejected() {
        struct Greedy;
        impl Kernel for Greedy {
            type ItemRegs = ();
            type GroupRegs = ();
            fn name(&self) -> &str {
                "greedy"
            }
            fn lds_words(&self) -> usize {
                1 << 20
            }
            fn phase(&self, _: usize, _: &mut ItemCtx<'_>, _: &mut (), _: &()) {}
            fn control(&self, _: usize, _: &mut (), _: &GroupInfo) -> Control {
                Control::Done
            }
        }
        let spec = spec();
        let mut pool = BufferPool::new();
        execute_launch(&Greedy, NdRange { global: 4, local: 4 }, &spec, &mut pool);
    }

    #[test]
    fn parallel_chunks_match_serial_bitexactly() {
        // Run the same launches under several thread counts; outputs and
        // per-group costs must be identical, including the Jump-loop kernel
        // whose groups re-read their own prior writes.
        let spec = spec();
        let capture = |threads: usize| {
            par::set_threads(threads);
            let mut pool = BufferPool::new();
            let input = pool.alloc_f32(64);
            let output = pool.alloc_f32(64);
            for i in 0..64 {
                pool.f32_mut(input)[i] = (i as f32).sin();
            }
            let d = DoubleKernel { input, output, n: 64 };
            let out_d = execute_launch(&d, NdRange { global: 64, local: 4 }, &spec, &mut pool);
            let loop_out = pool.alloc_f32(16);
            let l = LoopKernel { output: loop_out, rounds: 3 };
            let out_l = execute_launch(&l, NdRange { global: 64, local: 4 }, &spec, &mut pool);
            (
                pool.f32(output).to_vec(),
                pool.f32(loop_out).to_vec(),
                out_d.group_costs,
                out_l.group_costs,
                out_l.group_phases,
            )
        };
        let serial = capture(1);
        for threads in [2, 3, 8] {
            assert_eq!(capture(threads), serial, "threads={threads} diverged from serial");
        }
        par::set_threads(1);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn invalid_grid_rejected() {
        let spec = spec();
        let mut pool = BufferPool::new();
        let input = pool.alloc_f32(1);
        let output = pool.alloc_f32(1);
        let k = DoubleKernel { input, output, n: 1 };
        execute_launch(&k, NdRange { global: 5, local: 4 }, &spec, &mut pool);
    }
}
