//! The kernel programming model.
//!
//! A simulated kernel is written as a **phase machine**: the body between two
//! consecutive barriers is one *phase*. The executor runs phase `k` for every
//! work-item of a group, then consults the kernel's [`Kernel::control`] to
//! decide what follows the implicit barrier — proceed, loop back, or finish.
//!
//! This encodes OpenCL's rule that barriers must be reached uniformly by all
//! work-items of a group: control flow across barriers lives in *group*
//! state ([`Kernel::GroupRegs`]), while divergent per-item state lives in
//! *item* registers ([`Kernel::ItemRegs`]). A kernel that would deadlock on
//! real hardware (non-uniform barrier) simply cannot be expressed.
//!
//! Example: the tile loop of the paper's PP kernels is
//!
//! ```text
//! phase 0: load my j-body into LDS           // barrier
//! phase 1: accumulate p interactions from LDS // barrier
//! control after 1: more tiles? Jump(0) : Next
//! phase 2: write accumulated acceleration     // Done
//! ```

use serde::{Deserialize, Serialize};

/// What the group does after finishing a phase (at the implicit barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Advance to the next phase index.
    Next,
    /// Jump to an arbitrary phase (loops).
    Jump(usize),
    /// The group has finished the kernel.
    Done,
}

/// One-dimensional launch geometry (sufficient for every kernel in the
/// paper; OpenCL's 2D/3D ranges linearize to this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NdRange {
    /// Total work-items.
    pub global: usize,
    /// Work-items per work-group. Must divide `global`.
    pub local: usize,
}

impl NdRange {
    /// Creates a range, rounding `global` up to a multiple of `local`
    /// (kernels guard with `global_id < n` exactly as OpenCL code does).
    pub fn round_up(work_items: usize, local: usize) -> Self {
        assert!(local > 0, "local size must be positive");
        let global = work_items.div_ceil(local).max(1) * local;
        Self { global, local }
    }

    /// Number of work-groups.
    pub fn num_groups(&self) -> usize {
        self.global / self.local
    }

    /// Validates divisibility and non-emptiness.
    pub fn validate(&self) -> Result<(), String> {
        if self.local == 0 || self.global == 0 {
            return Err("NdRange sizes must be positive".into());
        }
        if !self.global.is_multiple_of(self.local) {
            return Err(format!(
                "global size {} not a multiple of local size {}",
                self.global, self.local
            ));
        }
        Ok(())
    }
}

/// Static facts about the group being executed, available to
/// [`Kernel::control`].
#[derive(Debug, Clone, Copy)]
pub struct GroupInfo {
    /// This group's index.
    pub group_id: usize,
    /// Work-items per group.
    pub local_size: usize,
    /// Total work-items in the launch.
    pub global_size: usize,
    /// Total groups in the launch.
    pub num_groups: usize,
}

/// A simulated GPU kernel.
///
/// Implementations are pure policies: all mutable state lives in the
/// executor-owned registers and device buffers, so a single kernel value can
/// be launched many times. The `Sync` bound lets the executor run disjoint
/// work-group chunks of one launch on host worker threads sharing `&self`;
/// kernels are plain parameter blocks (buffer handles, sizes), so the bound
/// is automatic in practice.
pub trait Kernel: Sync {
    /// Per-work-item registers (divergent state).
    type ItemRegs: Default + Clone;
    /// Per-work-group registers (uniform state: loop counters etc.).
    type GroupRegs: Default;

    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// LDS words this kernel allocates per group.
    fn lds_words(&self) -> usize;

    /// Human-readable label for a phase index, used by execution traces
    /// (e.g. `"tile-load"`, `"force-eval"`). The default is the bare index.
    fn phase_label(&self, phase: usize) -> String {
        format!("phase{phase}")
    }

    /// Executes one phase for one work-item.
    fn phase(
        &self,
        phase: usize,
        ctx: &mut crate::exec::ItemCtx<'_>,
        regs: &mut Self::ItemRegs,
        group: &Self::GroupRegs,
    );

    /// Decides, after all items finished `phase`, what the group does next.
    /// May mutate the group registers (advance loop counters).
    fn control(&self, phase: usize, group: &mut Self::GroupRegs, info: &GroupInfo) -> Control;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndrange_round_up() {
        let r = NdRange::round_up(100, 32);
        assert_eq!(r.global, 128);
        assert_eq!(r.local, 32);
        assert_eq!(r.num_groups(), 4);
        assert!(r.validate().is_ok());
        // exact multiple stays
        assert_eq!(NdRange::round_up(64, 32).global, 64);
        // zero items still yields one group
        assert_eq!(NdRange::round_up(0, 16).global, 16);
    }

    #[test]
    fn ndrange_validation() {
        assert!(NdRange { global: 64, local: 32 }.validate().is_ok());
        assert!(NdRange { global: 65, local: 32 }.validate().is_err());
        assert!(NdRange { global: 0, local: 32 }.validate().is_err());
        assert!(NdRange { global: 32, local: 0 }.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "local size must be positive")]
    fn round_up_zero_local_panics() {
        NdRange::round_up(10, 0);
    }
}
