//! Device specifications.
//!
//! A [`DeviceSpec`] is the static description of a simulated GPU: geometry
//! (compute units, wavefront width, work-group limits), memory system (LDS
//! size, global bandwidth, transaction size), and calibrated throughput
//! constants. The preset [`DeviceSpec::radeon_hd_5850`] models the AMD
//! "Cypress" board the paper evaluates on.
//!
//! ## Calibration note
//!
//! The HD 5850's theoretical peak is 1440 ALUs × 725 MHz × 2 = 2.088 TFLOPS.
//! Real N-body kernels sustain a fraction of that: VLIW5 packing is imperfect,
//! the reciprocal square root occupies the transcendental slot, and LDS reads
//! share issue bandwidth. The paper's best kernel reports 431 GFLOPS under
//! the 38-flop GRAPE convention. We therefore calibrate
//! `charged_flops_per_cycle_per_cu` so that a fully occupied, ALU-bound
//! device sustains ≈ 430 "convention" GFLOPS:
//! `18 CU × 33 flops/cycle × 725 MHz ≈ 430.7 GFLOPS`.
//! This constant affects only the absolute time scale, never the *relative*
//! behaviour of the four execution plans.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of compute units (OpenCL CUs / AMD SIMD engines).
    pub compute_units: u32,
    /// Work-items that execute in lockstep (AMD wavefront = 64).
    pub wavefront_size: u32,
    /// Maximum work-items per work-group.
    pub max_workgroup_size: u32,
    /// Maximum wavefronts resident per CU (occupancy ceiling).
    pub max_waves_per_cu: u32,
    /// Maximum work-groups resident per CU regardless of other limits.
    pub max_groups_per_cu: u32,
    /// Local data share per CU, in 4-byte words.
    pub lds_words_per_cu: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Sustained "convention" flops per cycle per CU (see module docs).
    pub charged_flops_per_cycle_per_cu: f64,
    /// LDS words served per cycle per CU.
    pub lds_words_per_cycle_per_cu: f64,
    /// Global memory bandwidth in bytes/second.
    pub global_bandwidth_bytes_per_sec: f64,
    /// Size of one global memory transaction in bytes (cache line / burst).
    pub transaction_bytes: u32,
    /// Latency of one global transaction in core cycles (hidden by
    /// multi-wavefront occupancy). Charged once per group: within a
    /// wavefront, outstanding transactions pipeline.
    pub mem_latency_cycles: f64,
    /// Per-CU issue/occupancy cost of one pipelined global transaction, in
    /// core cycles. Roughly `transaction_bytes / (per-CU share of device
    /// bandwidth per cycle)`.
    pub mem_throughput_cycles_per_transaction: f64,
    /// Fixed host-side cost of one kernel launch, in seconds.
    pub launch_overhead_s: f64,
}

impl DeviceSpec {
    /// The AMD Radeon HD 5850 ("Cypress") used in the paper's evaluation:
    /// 1440 ALUs = 18 CUs × 16 lanes × VLIW5, 725 MHz, 32 KB LDS per CU,
    /// 128 GB/s GDDR5.
    pub fn radeon_hd_5850() -> Self {
        Self {
            name: "AMD Radeon HD 5850 (simulated)".to_string(),
            compute_units: 18,
            wavefront_size: 64,
            max_workgroup_size: 256,
            max_waves_per_cu: 24,
            max_groups_per_cu: 8,
            lds_words_per_cu: 32 * 1024 / 4,
            clock_hz: 725e6,
            charged_flops_per_cycle_per_cu: 33.0,
            lds_words_per_cycle_per_cu: 32.0,
            global_bandwidth_bytes_per_sec: 128e9,
            transaction_bytes: 128,
            mem_latency_cycles: 350.0,
            mem_throughput_cycles_per_transaction: 13.0,
            launch_overhead_s: 12e-6,
        }
    }

    /// The AMD Radeon HD 5870, Cypress XT: the HD 5850's bigger sibling
    /// (20 CUs, 850 MHz, 153.6 GB/s). Used by the what-if device ablation.
    pub fn radeon_hd_5870() -> Self {
        Self {
            name: "AMD Radeon HD 5870 (simulated)".to_string(),
            compute_units: 20,
            clock_hz: 850e6,
            global_bandwidth_bytes_per_sec: 153.6e9,
            ..Self::radeon_hd_5850()
        }
    }

    /// A copy of this spec with a different compute-unit count and
    /// proportionally scaled bandwidth — the strong-scaling ablation knob.
    pub fn with_compute_units(&self, cus: u32) -> Self {
        assert!(cus > 0, "need at least one CU");
        Self {
            name: format!("{} [{} CUs]", self.name, cus),
            compute_units: cus,
            global_bandwidth_bytes_per_sec: self.global_bandwidth_bytes_per_sec * f64::from(cus)
                / f64::from(self.compute_units),
            ..self.clone()
        }
    }

    /// A deliberately tiny device for unit tests: 2 CUs, wavefront 4,
    /// work-groups up to 8, small LDS. Costs are round numbers so tests can
    /// assert exact cycle counts.
    pub fn tiny_test_device() -> Self {
        Self {
            name: "tiny-test-device".to_string(),
            compute_units: 2,
            wavefront_size: 4,
            max_workgroup_size: 8,
            max_waves_per_cu: 4,
            max_groups_per_cu: 2,
            lds_words_per_cu: 256,
            clock_hz: 1e6,
            charged_flops_per_cycle_per_cu: 1.0,
            lds_words_per_cycle_per_cu: 1.0,
            global_bandwidth_bytes_per_sec: 1e9,
            transaction_bytes: 64,
            mem_latency_cycles: 10.0,
            mem_throughput_cycles_per_transaction: 1.0,
            launch_overhead_s: 0.0,
        }
    }

    /// Theoretical peak under the charged-flop calibration, in GFLOPS.
    pub fn peak_charged_gflops(&self) -> f64 {
        f64::from(self.compute_units) * self.charged_flops_per_cycle_per_cu * self.clock_hz / 1e9
    }

    /// Wavefronts needed to cover a work-group of `local_size` items.
    pub fn waves_per_group(&self, local_size: usize) -> usize {
        local_size.div_ceil(self.wavefront_size as usize)
    }

    /// How many groups of `local_size` items using `lds_words` words of LDS
    /// can be resident on one CU simultaneously.
    pub fn groups_per_cu(&self, local_size: usize, lds_words: usize) -> usize {
        let by_lds = (self.lds_words_per_cu as usize).checked_div(lds_words).unwrap_or(usize::MAX);
        let waves = self.waves_per_group(local_size).max(1);
        let by_waves = (self.max_waves_per_cu as usize) / waves;
        by_lds.min(by_waves).min(self.max_groups_per_cu as usize)
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.compute_units == 0 {
            return Err("compute_units must be > 0".into());
        }
        if self.wavefront_size == 0 {
            return Err("wavefront_size must be > 0".into());
        }
        if self.max_workgroup_size == 0
            || !self.max_workgroup_size.is_multiple_of(self.wavefront_size)
        {
            return Err(format!(
                "max_workgroup_size {} must be a positive multiple of wavefront_size {}",
                self.max_workgroup_size, self.wavefront_size
            ));
        }
        if self.clock_hz <= 0.0 {
            return Err("clock_hz must be positive".into());
        }
        if self.charged_flops_per_cycle_per_cu <= 0.0 {
            return Err("charged_flops_per_cycle_per_cu must be positive".into());
        }
        if self.global_bandwidth_bytes_per_sec <= 0.0 {
            return Err("global_bandwidth_bytes_per_sec must be positive".into());
        }
        if self.transaction_bytes == 0 {
            return Err("transaction_bytes must be > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hd5850_matches_paper_hardware() {
        let s = DeviceSpec::radeon_hd_5850();
        assert_eq!(s.compute_units, 18);
        assert_eq!(s.wavefront_size, 64);
        assert_eq!(s.lds_words_per_cu * 4, 32 * 1024);
        assert!(s.validate().is_ok());
        // calibration: saturated convention throughput near the paper's 431
        let peak = s.peak_charged_gflops();
        assert!((peak - 430.65).abs() < 1.0, "peak {peak}");
    }

    #[test]
    fn waves_per_group_rounds_up() {
        let s = DeviceSpec::radeon_hd_5850();
        assert_eq!(s.waves_per_group(64), 1);
        assert_eq!(s.waves_per_group(65), 2);
        assert_eq!(s.waves_per_group(256), 4);
        assert_eq!(s.waves_per_group(1), 1);
    }

    #[test]
    fn groups_per_cu_limited_by_lds() {
        let s = DeviceSpec::radeon_hd_5850();
        // group uses half the LDS -> at most 2 resident
        let half = (s.lds_words_per_cu / 2) as usize;
        assert_eq!(s.groups_per_cu(64, half), 2);
        // tiny LDS use -> limited by wave slots or group cap
        let g = s.groups_per_cu(256, 16);
        assert_eq!(g, 6); // 24 wave slots / 4 waves = 6 (< max_groups 8)
    }

    #[test]
    fn groups_per_cu_zero_lds_ok() {
        let s = DeviceSpec::radeon_hd_5850();
        assert_eq!(s.groups_per_cu(64, 0), 8); // capped by max_groups_per_cu
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = DeviceSpec::tiny_test_device();
        s.compute_units = 0;
        assert!(s.validate().is_err());

        let mut s = DeviceSpec::tiny_test_device();
        s.max_workgroup_size = 6; // not a multiple of wavefront 4
        assert!(s.validate().is_err());

        let mut s = DeviceSpec::tiny_test_device();
        s.clock_hz = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn tiny_device_is_valid() {
        assert!(DeviceSpec::tiny_test_device().validate().is_ok());
    }

    #[test]
    fn hd5870_is_a_bigger_5850() {
        let a = DeviceSpec::radeon_hd_5850();
        let b = DeviceSpec::radeon_hd_5870();
        assert!(b.validate().is_ok());
        assert!(b.compute_units > a.compute_units);
        assert!(b.clock_hz > a.clock_hz);
        assert!(b.peak_charged_gflops() > a.peak_charged_gflops());
        assert_eq!(b.wavefront_size, a.wavefront_size);
    }

    #[test]
    fn cu_scaling_scales_bandwidth_proportionally() {
        let base = DeviceSpec::radeon_hd_5850();
        let half = base.with_compute_units(9);
        assert_eq!(half.compute_units, 9);
        assert!((half.global_bandwidth_bytes_per_sec - 64e9).abs() < 1e6);
        assert!(half.validate().is_ok());
        assert!((half.peak_charged_gflops() - base.peak_charged_gflops() / 2.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn zero_cu_scaling_rejected() {
        DeviceSpec::radeon_hd_5850().with_compute_units(0);
    }
}
