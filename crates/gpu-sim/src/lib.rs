//! # gpu-sim
//!
//! A software model of an OpenCL-class GPU, standing in for the AMD Radeon
//! HD 5850 the PTPM N-body paper evaluates on (see DESIGN.md §2 for the
//! substitution argument).
//!
//! The crate separates three concerns:
//!
//! * **Functional execution** ([`exec`]) — kernels written as phase machines
//!   really compute their results on device buffers, with work-group
//!   barriers and LDS semantics enforced by construction;
//! * **Event accounting** ([`cost`]) — each access/flop records events;
//! * **Timing** ([`sched`]) — a deterministic first-order performance model
//!   turns per-group events into simulated seconds, capturing occupancy,
//!   latency hiding, load balance, bandwidth floors, and launch overhead.
//!
//! [`device::Device`] ties them together behind an API that reads like an
//! OpenCL host program:
//!
//! ```
//! use gpu_sim::prelude::*;
//!
//! struct Scale(BufF32, f32);
//! impl Kernel for Scale {
//!     type ItemRegs = ();
//!     type GroupRegs = ();
//!     fn name(&self) -> &str { "scale" }
//!     fn lds_words(&self) -> usize { 0 }
//!     fn phase(&self, _p: usize, ctx: &mut ItemCtx<'_>, _r: &mut (), _g: &()) {
//!         let i = ctx.global_id;
//!         if i < ctx.len_f32(self.0) {
//!             let v = ctx.read_f32_coalesced(self.0, i);
//!             ctx.flops(1);
//!             ctx.write_f32_coalesced(self.0, i, v * self.1);
//!         }
//!     }
//!     fn control(&self, _p: usize, _g: &mut (), _i: &GroupInfo) -> Control {
//!         Control::Done
//!     }
//! }
//!
//! let mut dev = Device::new(DeviceSpec::radeon_hd_5850());
//! let buf = dev.alloc_f32(128);
//! dev.upload_f32(buf, &vec![2.0; 128]);
//! let timing = dev.launch(&Scale(buf, 3.0), NdRange::round_up(128, 64));
//! assert!(timing.seconds > 0.0);
//! assert_eq!(dev.download_f32(buf)[0], 6.0);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod cost;
pub mod device;
pub mod exec;
pub mod fault;
pub mod kernel;
pub mod kernels;
pub mod pcie;
pub mod race;
pub mod sched;
pub mod spec;
pub mod trace;

/// Common imports for writing and launching kernels.
pub mod prelude {
    pub use crate::buffer::{BufF32, BufU32, BufU64, BufferPool};
    pub use crate::cost::GroupCost;
    pub use crate::device::{Device, LaunchRecord, TransferRecord};
    pub use crate::exec::ItemCtx;
    pub use crate::fault::{
        CuHealth, FaultConfig, FaultCounts, FaultError, FaultKind, FaultPlan, RetryPolicy,
    };
    pub use crate::kernel::{Control, GroupInfo, Kernel, NdRange};
    pub use crate::kernels::{device_sum, SumReduceKernel};
    pub use crate::pcie::TransferModel;
    pub use crate::race::{Race, RaceDetector, Space};
    pub use crate::sched::{
        schedule_launch, schedule_launch_degraded, schedule_launch_placed, GroupPlacement,
        LaunchTiming,
    };
    pub use crate::spec::DeviceSpec;
    pub use crate::trace::{FaultTrace, LaunchTrace, MemoryTraceSink, Trace, TraceSink};
}

pub use prelude::*;
