//! Execution traces: structured timeline events recorded by the device.
//!
//! The simulator already *computes* a full schedule for every launch — which
//! compute unit each work-group lands on, when it starts and ends, what it
//! charged per phase — but the default launch path throws that structure
//! away, keeping only aggregate [`LaunchTiming`]s. This module captures it:
//!
//! * [`TraceSink`] — the hook the device drives. When no sink is installed
//!   the device takes the exact pre-existing code path (no per-phase
//!   profiling, no placement capture), so tracing is zero-cost when
//!   disabled.
//! * [`LaunchTrace`] / [`GroupSpan`] / [`PhaseSummary`] — one kernel launch
//!   with its per-work-group CU placements (start/end cycles) and per-phase
//!   cost breakdown (flops, LDS and global traffic, barriers), as labelled
//!   by [`Kernel::phase_label`](crate::kernel::Kernel::phase_label).
//! * [`TransferTrace`] / [`MarkerTrace`] — PCIe transfers and host-issued
//!   annotations on the same timeline.
//! * [`MemoryTraceSink`] — the standard sink: accumulates a [`Trace`] in
//!   memory behind a shared handle, so the caller keeps access while the
//!   device owns the sink.
//!
//! All event times are simulated: seconds on the device timeline
//! (`kernel_seconds + transfer_seconds` at the moment the event began) and
//! core cycles within a launch. Converting cycles to the shared timeline is
//! `start_s + cycle / clock_hz`; the harness's exporters do exactly that.

use crate::cost::GroupCost;
use crate::exec::PhaseCost;
use crate::fault::FaultKind;
use crate::kernel::NdRange;
use crate::sched::LaunchTiming;
use crate::spec::DeviceSpec;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One work-group's stay on its compute unit, with its phase breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSpan {
    /// Work-group index (launch order).
    pub group: usize,
    /// Compute unit the scheduler placed it on.
    pub cu: usize,
    /// Start of the span in core cycles from launch start.
    pub start_cycle: f64,
    /// End of the span in core cycles from launch start.
    pub end_cycle: f64,
    /// Everything the group charged.
    pub cost: GroupCost,
    /// Per-phase cost breakdown, ordered by phase index.
    pub phases: Vec<PhaseCost>,
}

/// Launch-wide aggregate of one phase index across all groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase index in the kernel's phase machine.
    pub phase: usize,
    /// Label from [`Kernel::phase_label`](crate::kernel::Kernel::phase_label)
    /// (e.g. `"tile-load"`, `"force-eval"`).
    pub label: String,
    /// Phase executions summed over groups (loops execute a phase many
    /// times).
    pub executions: u64,
    /// Cost summed over all executions in all groups.
    pub cost: GroupCost,
}

/// One kernel launch: geometry, timing, placements, phase breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchTrace {
    /// Sequence number on this device since the last clock reset.
    pub launch_id: usize,
    /// Kernel name.
    pub kernel: String,
    /// Launch geometry.
    pub grid: NdRange,
    /// LDS words per group.
    pub lds_words: usize,
    /// Device-timeline seconds at which the launch began.
    pub start_s: f64,
    /// Wavefronts each work-group occupies.
    pub wavefronts_per_group: usize,
    /// Resident wavefront slots used / available, per CU, in `[0, 1]`.
    pub wavefront_occupancy: f64,
    /// Timing under the device model.
    pub timing: LaunchTiming,
    /// Per-work-group placements, in group order.
    pub groups: Vec<GroupSpan>,
    /// Launch-wide per-phase aggregates, ordered by phase index.
    pub phases: Vec<PhaseSummary>,
}

impl LaunchTrace {
    /// Device-timeline seconds at which the launch retired.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.timing.seconds
    }

    /// Bytes moved per charged flop — the memory-vs-compute character of
    /// the launch (pair with [`LaunchTiming::bandwidth_bound`] for the
    /// model's own verdict).
    pub fn bytes_per_flop(&self) -> f64 {
        if self.timing.total_cost.flops <= 0.0 {
            return 0.0;
        }
        self.timing.total_cost.total_bytes() / self.timing.total_cost.flops
    }
}

/// One PCIe transfer on the device timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferTrace {
    /// Sequence number on this device since the last clock reset.
    pub transfer_id: usize,
    /// Bytes moved.
    pub bytes: usize,
    /// True for host→device.
    pub to_device: bool,
    /// Device-timeline seconds at which the transfer began.
    pub start_s: f64,
    /// Simulated transfer seconds.
    pub seconds: f64,
}

/// A host-issued instant annotation (e.g. a plan marking `"force-eval"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkerTrace {
    /// Annotation text.
    pub label: String,
    /// Device-timeline seconds at which it was issued.
    pub at_s: f64,
}

/// One injected fault on the device timeline (see the `fault` module). The
/// fault-free golden traces never contain these rows, so enabling fault
/// injection cannot perturb existing exports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTrace {
    /// Sequence number on this device since the last clock reset.
    pub fault_id: usize,
    /// What was injected.
    pub kind: FaultKind,
    /// The operation it hit (kernel name, `"h2d"`, or `"d2h"`).
    pub op: String,
    /// Device-timeline seconds at which the faulted operation began.
    pub at_s: f64,
    /// Simulated seconds the failed attempt cost.
    pub charged_s: f64,
}

/// A complete recorded trace: device identity plus every event in issue
/// order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Device name from the spec.
    pub device: String,
    /// Core clock, for converting cycles to seconds.
    pub clock_hz: f64,
    /// Compute units — the spatial extent of the time-space grid.
    pub compute_units: usize,
    /// Kernel launches.
    pub launches: Vec<LaunchTrace>,
    /// PCIe transfers.
    pub transfers: Vec<TransferTrace>,
    /// Host annotations.
    pub markers: Vec<MarkerTrace>,
    /// Injected faults (empty on fault-free runs).
    pub faults: Vec<FaultTrace>,
}

impl Trace {
    /// True if no event of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
            && self.transfers.is_empty()
            && self.markers.is_empty()
            && self.faults.is_empty()
    }

    /// Seconds from the first event to the last retirement.
    pub fn span_s(&self) -> f64 {
        let end = self
            .launches
            .iter()
            .map(LaunchTrace::end_s)
            .chain(self.transfers.iter().map(|t| t.start_s + t.seconds))
            .fold(0.0_f64, f64::max);
        end
    }
}

/// Receives trace events from a device. Install with
/// [`Device::set_trace_sink`](crate::device::Device::set_trace_sink);
/// while no sink is installed the device skips all collection work.
///
/// The `Send` bound keeps whole devices `Send`, so multi-device drivers can
/// run one device per worker thread. Events still arrive from a single
/// thread at a time — the device serializes its own issue order — so a sink
/// needs interior synchronization only if its handles are shared across
/// devices (as [`MemoryTraceSink`]'s mutex provides).
pub trait TraceSink: std::fmt::Debug + Send {
    /// Called once when the sink is installed, with the device spec.
    fn begin(&mut self, spec: &DeviceSpec) {
        let _ = spec;
    }

    /// A kernel launch retired.
    fn launch(&mut self, event: LaunchTrace);

    /// A PCIe transfer completed.
    fn transfer(&mut self, event: TransferTrace);

    /// The host annotated the timeline.
    fn marker(&mut self, event: MarkerTrace);

    /// A fault was injected. Default no-op so pre-existing sinks keep
    /// compiling and fault-free traces stay byte-identical.
    fn fault(&mut self, event: FaultTrace) {
        let _ = event;
    }
}

/// The standard sink: accumulates a [`Trace`] in memory. Cloning produces a
/// handle onto the *same* trace, so the caller can keep one handle and give
/// the device the other:
///
/// ```
/// use gpu_sim::prelude::*;
///
/// let mut dev = Device::new(DeviceSpec::tiny_test_device());
/// let sink = MemoryTraceSink::new();
/// dev.set_trace_sink(Box::new(sink.clone()));
/// let buf = dev.alloc_f32(8);
/// dev.upload_f32(buf, &[1.0; 8]);
/// let trace = sink.snapshot();
/// assert_eq!(trace.transfers.len(), 1);
/// assert_eq!(trace.device, "tiny-test-device");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryTraceSink {
    trace: Arc<Mutex<Trace>>,
}

impl MemoryTraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        self.trace.lock().expect("trace sink poisoned").clone()
    }

    /// Takes the recorded trace, leaving the sink recording into an empty
    /// one (device identity is preserved).
    pub fn take(&self) -> Trace {
        let mut t = self.trace.lock().expect("trace sink poisoned");
        let taken = t.clone();
        t.launches.clear();
        t.transfers.clear();
        t.markers.clear();
        t.faults.clear();
        taken
    }
}

impl TraceSink for MemoryTraceSink {
    fn begin(&mut self, spec: &DeviceSpec) {
        let mut t = self.trace.lock().expect("trace sink poisoned");
        t.device = spec.name.clone();
        t.clock_hz = spec.clock_hz;
        t.compute_units = spec.compute_units as usize;
    }

    fn launch(&mut self, event: LaunchTrace) {
        self.trace.lock().expect("trace sink poisoned").launches.push(event);
    }

    fn transfer(&mut self, event: TransferTrace) {
        self.trace.lock().expect("trace sink poisoned").transfers.push(event);
    }

    fn marker(&mut self, event: MarkerTrace) {
        self.trace.lock().expect("trace sink poisoned").markers.push(event);
    }

    fn fault(&mut self, event: FaultTrace) {
        self.trace.lock().expect("trace sink poisoned").faults.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_handles_share_one_trace() {
        let a = MemoryTraceSink::new();
        let mut b = a.clone();
        b.marker(MarkerTrace { label: "x".into(), at_s: 0.5 });
        assert_eq!(a.snapshot().markers.len(), 1);
        let taken = a.take();
        assert_eq!(taken.markers.len(), 1);
        assert!(a.snapshot().is_empty());
    }

    #[test]
    fn fault_events_recorded_and_taken() {
        let mut sink = MemoryTraceSink::new();
        sink.fault(FaultTrace {
            fault_id: 0,
            kind: FaultKind::TransferError,
            op: "h2d".into(),
            at_s: 0.25,
            charged_s: 1e-5,
        });
        let t = sink.snapshot();
        assert_eq!(t.faults.len(), 1);
        assert_eq!(t.faults[0].kind, FaultKind::TransferError);
        assert!(!t.is_empty());
        sink.take();
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn trace_span_covers_latest_event() {
        let mut t = Trace::default();
        t.transfers.push(TransferTrace {
            transfer_id: 0,
            bytes: 4,
            to_device: true,
            start_s: 1.0,
            seconds: 0.5,
        });
        assert!((t.span_s() - 1.5).abs() < 1e-12);
    }
}
