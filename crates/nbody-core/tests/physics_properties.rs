//! Property-based tests of the physical symmetries the force law must obey:
//! translation and rotation invariance, Newton's third law, mass linearity,
//! softening monotonicity, energy extensivity, and leapfrog reversibility.
//!
//! Driven by the dependency-free `XorShift64` generator from
//! `nbody_core::testutil` (the build environment has no crates registry,
//! so proptest is unavailable); each property runs a fixed number of seeded
//! random cases, which keeps failures exactly reproducible by seed.

use nbody_core::prelude::*;
use nbody_core::testutil::XorShift64;

/// 2..=max_n bodies with positions in [-5, 5)³, velocities in [-1, 1)³,
/// and masses in [0.1, 3).
fn arb_cloud(rng: &mut XorShift64, max_n: usize) -> ParticleSet {
    let n = 2 + (rng.next_u64() as usize) % (max_n - 1);
    (0..n)
        .map(|_| {
            Body::new(
                rng.uniform_vec3(-5.0, 5.0),
                rng.uniform_vec3(-1.0, 1.0),
                rng.uniform(0.1, 3.0),
            )
        })
        .collect()
}

fn forces(set: &ParticleSet, params: &GravityParams) -> Vec<Vec3> {
    let mut acc = vec![Vec3::ZERO; set.len()];
    accelerations_pp(set, params, &mut acc);
    acc
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

#[test]
fn translation_invariance() {
    let mut rng = XorShift64::new(0xB1);
    for _ in 0..48 {
        let set = arb_cloud(&mut rng, 40);
        let shift = rng.uniform_vec3(-10.0, 10.0);
        let p = params();
        let base = forces(&set, &p);
        let mut moved = set.clone();
        for pos in moved.pos_mut() {
            *pos += shift;
        }
        let shifted = forces(&moved, &p);
        for (a, b) in base.iter().zip(&shifted) {
            let scale = a.norm().max(1.0);
            assert!((*a - *b).norm() < 1e-9 * scale);
        }
    }
}

#[test]
fn rotation_equivariance() {
    // rotate positions about z: forces rotate with them
    let mut rng = XorShift64::new(0xB2);
    for _ in 0..48 {
        let set = arb_cloud(&mut rng, 30);
        let angle = rng.uniform(0.0, std::f64::consts::TAU);
        let p = params();
        let base = forces(&set, &p);
        let (s, c) = angle.sin_cos();
        let rot = |v: Vec3| Vec3::new(c * v.x - s * v.y, s * v.x + c * v.y, v.z);
        let mut turned = set.clone();
        for pos in turned.pos_mut() {
            *pos = rot(*pos);
        }
        let rotated = forces(&turned, &p);
        for (a, b) in base.iter().zip(&rotated) {
            let expect = rot(*a);
            let scale = a.norm().max(1.0);
            assert!((expect - *b).norm() < 1e-9 * scale, "{expect:?} vs {b:?}");
        }
    }
}

#[test]
fn newtons_third_law() {
    let mut rng = XorShift64::new(0xB3);
    for _ in 0..48 {
        let set = arb_cloud(&mut rng, 40);
        let p = params();
        let acc = forces(&set, &p);
        let net: Vec3 = acc.iter().zip(set.mass()).map(|(&a, &m)| a * m).sum();
        let scale: f64 = acc.iter().zip(set.mass()).map(|(a, m)| a.norm() * m).sum();
        assert!(net.norm() < 1e-10 * scale.max(1.0));
    }
}

#[test]
fn g_linearity() {
    let mut rng = XorShift64::new(0xB4);
    for _ in 0..48 {
        let set = arb_cloud(&mut rng, 25);
        let g = rng.uniform(0.1, 10.0);
        let base = forces(&set, &GravityParams { g: 1.0, softening: 0.05 });
        let scaled = forces(&set, &GravityParams { g, softening: 0.05 });
        for (a, b) in base.iter().zip(&scaled) {
            let scale = (a.norm() * g).max(1e-9);
            assert!((*a * g - *b).norm() < 1e-9 * scale);
        }
    }
}

#[test]
fn softening_only_weakens_close_forces() {
    // larger ε never increases any |acceleration| contribution sum by
    // much — compare magnitudes statistically (total field energy-ish)
    let mut rng = XorShift64::new(0xB5);
    for _ in 0..48 {
        let set = arb_cloud(&mut rng, 25);
        let soft = forces(&set, &GravityParams { g: 1.0, softening: 0.5 });
        let hard = forces(&set, &GravityParams { g: 1.0, softening: 1e-6 });
        let soft_sum: f64 = soft.iter().map(|v| v.norm()).sum();
        let hard_sum: f64 = hard.iter().map(|v| v.norm()).sum();
        assert!(soft_sum <= hard_sum * 1.0001, "{soft_sum} vs {hard_sum}");
    }
}

#[test]
fn energy_is_extensive_in_mass() {
    // scaling every mass by k scales U by k² and T by k
    let mut rng = XorShift64::new(0xB6);
    for _ in 0..48 {
        let set = arb_cloud(&mut rng, 20);
        let k = rng.uniform(0.5, 4.0);
        let p = GravityParams { g: 1.0, softening: 0.05 };
        let u1 = nbody_core::gravity::potential_energy(&set, &p);
        let t1 = nbody_core::energy::kinetic_energy(&set);
        let scaled: ParticleSet =
            set.to_bodies().iter().map(|b| Body::new(b.pos, b.vel, b.mass * k)).collect();
        let u2 = nbody_core::gravity::potential_energy(&scaled, &p);
        let t2 = nbody_core::energy::kinetic_energy(&scaled);
        assert!((u2 - k * k * u1).abs() < 1e-9 * u1.abs().max(1.0));
        assert!((t2 - k * t1).abs() < 1e-9 * t1.abs().max(1.0));
    }
}

#[test]
fn leapfrog_is_time_reversible() {
    // integrate forward n steps, flip velocities, integrate n more:
    // positions return (leapfrog is symmetric)
    let mut rng = XorShift64::new(0xB7);
    for _ in 0..16 {
        let set = arb_cloud(&mut rng, 15);
        let p = GravityParams { g: 1.0, softening: 0.1 };
        let mut sim = set.clone();
        let mut engine = DirectPp::new(p);
        run(&mut sim, &mut engine, &LeapfrogKdk, 1e-3, 20);
        for v in sim.vel_mut() {
            *v = -*v;
        }
        run(&mut sim, &mut engine, &LeapfrogKdk, 1e-3, 20);
        for (a, b) in set.pos().iter().zip(sim.pos()) {
            assert!(a.distance(*b) < 1e-9, "{a:?} vs {b:?}");
        }
    }
}
