//! Property-based tests of the physical symmetries the force law must obey:
//! translation and rotation invariance, Newton's third law, mass linearity,
//! and the inverse-square scaling law.

use nbody_core::prelude::*;
use proptest::prelude::*;

fn arb_cloud(max_n: usize) -> impl Strategy<Value = ParticleSet> {
    prop::collection::vec(
        (
            (-5.0_f64..5.0, -5.0_f64..5.0, -5.0_f64..5.0),
            (-1.0_f64..1.0, -1.0_f64..1.0, -1.0_f64..1.0),
            0.1_f64..3.0,
        ),
        2..max_n,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|((x, y, z), (vx, vy, vz), m)| {
                Body::new(Vec3::new(x, y, z), Vec3::new(vx, vy, vz), m)
            })
            .collect()
    })
}

fn forces(set: &ParticleSet, params: &GravityParams) -> Vec<Vec3> {
    let mut acc = vec![Vec3::ZERO; set.len()];
    accelerations_pp(set, params, &mut acc);
    acc
}

fn params() -> GravityParams {
    GravityParams { g: 1.0, softening: 0.05 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translation_invariance(set in arb_cloud(40), shift in (-10.0_f64..10.0, -10.0_f64..10.0, -10.0_f64..10.0)) {
        let p = params();
        let base = forces(&set, &p);
        let shift = Vec3::new(shift.0, shift.1, shift.2);
        let mut moved = set.clone();
        for pos in moved.pos_mut() {
            *pos += shift;
        }
        let shifted = forces(&moved, &p);
        for (a, b) in base.iter().zip(&shifted) {
            let scale = a.norm().max(1.0);
            prop_assert!((*a - *b).norm() < 1e-9 * scale);
        }
    }

    #[test]
    fn rotation_equivariance(set in arb_cloud(30), angle in 0.0_f64..std::f64::consts::TAU) {
        // rotate positions about z: forces rotate with them
        let p = params();
        let base = forces(&set, &p);
        let (s, c) = angle.sin_cos();
        let rot = |v: Vec3| Vec3::new(c * v.x - s * v.y, s * v.x + c * v.y, v.z);
        let mut turned = set.clone();
        for pos in turned.pos_mut() {
            *pos = rot(*pos);
        }
        let rotated = forces(&turned, &p);
        for (a, b) in base.iter().zip(&rotated) {
            let expect = rot(*a);
            let scale = a.norm().max(1.0);
            prop_assert!((expect - *b).norm() < 1e-9 * scale, "{expect:?} vs {b:?}");
        }
    }

    #[test]
    fn newtons_third_law(set in arb_cloud(40)) {
        let p = params();
        let acc = forces(&set, &p);
        let net: Vec3 = acc.iter().zip(set.mass()).map(|(&a, &m)| a * m).sum();
        let scale: f64 = acc.iter().zip(set.mass()).map(|(a, m)| a.norm() * m).sum();
        prop_assert!(net.norm() < 1e-10 * scale.max(1.0));
    }

    #[test]
    fn g_linearity(set in arb_cloud(25), g in 0.1_f64..10.0) {
        let base = forces(&set, &GravityParams { g: 1.0, softening: 0.05 });
        let scaled = forces(&set, &GravityParams { g, softening: 0.05 });
        for (a, b) in base.iter().zip(&scaled) {
            let scale = (a.norm() * g).max(1e-9);
            prop_assert!((*a * g - *b).norm() < 1e-9 * scale);
        }
    }

    #[test]
    fn softening_only_weakens_close_forces(set in arb_cloud(25)) {
        // larger ε never increases any |acceleration| contribution sum by
        // much — compare magnitudes statistically (total field energy-ish)
        let soft = forces(&set, &GravityParams { g: 1.0, softening: 0.5 });
        let hard = forces(&set, &GravityParams { g: 1.0, softening: 1e-6 });
        let soft_sum: f64 = soft.iter().map(|v| v.norm()).sum();
        let hard_sum: f64 = hard.iter().map(|v| v.norm()).sum();
        prop_assert!(soft_sum <= hard_sum * 1.0001, "{soft_sum} vs {hard_sum}");
    }

    #[test]
    fn energy_is_extensive_in_mass(set in arb_cloud(20), k in 0.5_f64..4.0) {
        // scaling every mass by k scales U by k² and T by k
        let p = GravityParams { g: 1.0, softening: 0.05 };
        let u1 = nbody_core::gravity::potential_energy(&set, &p);
        let t1 = nbody_core::energy::kinetic_energy(&set);
        let scaled: ParticleSet = set
            .to_bodies()
            .iter()
            .map(|b| Body::new(b.pos, b.vel, b.mass * k))
            .collect();
        let u2 = nbody_core::gravity::potential_energy(&scaled, &p);
        let t2 = nbody_core::energy::kinetic_energy(&scaled);
        prop_assert!((u2 - k * k * u1).abs() < 1e-9 * u1.abs().max(1.0));
        prop_assert!((t2 - k * t1).abs() < 1e-9 * t1.abs().max(1.0));
    }

    #[test]
    fn leapfrog_is_time_reversible(set in arb_cloud(15)) {
        // integrate forward n steps, flip velocities, integrate n more:
        // positions return (leapfrog is symmetric)
        let p = GravityParams { g: 1.0, softening: 0.1 };
        let mut sim = set.clone();
        let mut engine = DirectPp::new(p);
        run(&mut sim, &mut engine, &LeapfrogKdk, 1e-3, 20);
        for v in sim.vel_mut() {
            *v = -*v;
        }
        run(&mut sim, &mut engine, &LeapfrogKdk, 1e-3, 20);
        for (a, b) in set.pos().iter().zip(sim.pos()) {
            prop_assert!(a.distance(*b) < 1e-9, "{a:?} vs {b:?}");
        }
    }
}
