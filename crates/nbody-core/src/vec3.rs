//! Three-component vectors in `f64` ([`Vec3`]) and `f32` ([`Vec3f`]).
//!
//! The host-side reference computations use `f64` throughout; the simulated
//! GPU kernels operate on `f32`, matching the single-precision arithmetic of
//! the AMD Radeon HD 5850 the paper evaluates on. Both types provide the same
//! surface so code can be written generically where useful.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

macro_rules! define_vec3 {
    ($name:ident, $t:ty, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
        pub struct $name {
            /// x component.
            pub x: $t,
            /// y component.
            pub y: $t,
            /// z component.
            pub z: $t,
        }

        impl $name {
            /// The zero vector.
            pub const ZERO: Self = Self { x: 0.0, y: 0.0, z: 0.0 };
            /// The all-ones vector.
            pub const ONE: Self = Self { x: 1.0, y: 1.0, z: 1.0 };
            /// Unit vector along x.
            pub const X: Self = Self { x: 1.0, y: 0.0, z: 0.0 };
            /// Unit vector along y.
            pub const Y: Self = Self { x: 0.0, y: 1.0, z: 0.0 };
            /// Unit vector along z.
            pub const Z: Self = Self { x: 0.0, y: 0.0, z: 1.0 };

            /// Creates a vector from components.
            #[inline]
            pub const fn new(x: $t, y: $t, z: $t) -> Self {
                Self { x, y, z }
            }

            /// Creates a vector with all components equal to `v`.
            #[inline]
            pub const fn splat(v: $t) -> Self {
                Self { x: v, y: v, z: v }
            }

            /// Dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> $t {
                self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
            }

            /// Cross product.
            #[inline]
            pub fn cross(self, rhs: Self) -> Self {
                Self {
                    x: self.y * rhs.z - self.z * rhs.y,
                    y: self.z * rhs.x - self.x * rhs.z,
                    z: self.x * rhs.y - self.y * rhs.x,
                }
            }

            /// Squared Euclidean norm.
            #[inline]
            pub fn norm_sq(self) -> $t {
                self.dot(self)
            }

            /// Euclidean norm.
            #[inline]
            pub fn norm(self) -> $t {
                self.norm_sq().sqrt()
            }

            /// Euclidean distance to `rhs`.
            #[inline]
            pub fn distance(self, rhs: Self) -> $t {
                (self - rhs).norm()
            }

            /// Squared Euclidean distance to `rhs`.
            #[inline]
            pub fn distance_sq(self, rhs: Self) -> $t {
                (self - rhs).norm_sq()
            }

            /// Returns the unit vector in this direction, or zero if the
            /// vector has zero norm.
            #[inline]
            pub fn normalized(self) -> Self {
                let n = self.norm();
                if n > 0.0 {
                    self / n
                } else {
                    Self::ZERO
                }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self {
                Self { x: self.x.min(rhs.x), y: self.y.min(rhs.y), z: self.z.min(rhs.z) }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self {
                Self { x: self.x.max(rhs.x), y: self.y.max(rhs.y), z: self.z.max(rhs.z) }
            }

            /// Largest component.
            #[inline]
            pub fn max_component(self) -> $t {
                self.x.max(self.y).max(self.z)
            }

            /// Smallest component.
            #[inline]
            pub fn min_component(self) -> $t {
                self.x.min(self.y).min(self.z)
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { x: self.x.abs(), y: self.y.abs(), z: self.z.abs() }
            }

            /// True if all components are finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
            }

            /// Linear interpolation: `self + t * (rhs - self)`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: $t) -> Self {
                self + (rhs - self) * t
            }

            /// Components as an array `[x, y, z]`.
            #[inline]
            pub fn to_array(self) -> [$t; 3] {
                [self.x, self.y, self.z]
            }

            /// Builds a vector from an array `[x, y, z]`.
            #[inline]
            pub fn from_array(a: [$t; 3]) -> Self {
                Self { x: a[0], y: a[1], z: a[2] }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { x: self.x + rhs.x, y: self.y + rhs.y, z: self.z + rhs.z }
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { x: self.x - rhs.x, y: self.y - rhs.y, z: self.z - rhs.z }
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Mul<$t> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: $t) -> Self {
                Self { x: self.x * rhs, y: self.y * rhs, z: self.z * rhs }
            }
        }

        impl Mul<$name> for $t {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl MulAssign<$t> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: $t) {
                *self = *self * rhs;
            }
        }

        impl Div<$t> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: $t) -> Self {
                Self { x: self.x / rhs, y: self.y / rhs, z: self.z / rhs }
            }
        }

        impl DivAssign<$t> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: $t) {
                *self = *self / rhs;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { x: -self.x, y: -self.y, z: -self.z }
            }
        }

        impl Sum for $name {
            #[inline]
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }

        impl Index<usize> for $name {
            type Output = $t;
            #[inline]
            fn index(&self, i: usize) -> &$t {
                match i {
                    0 => &self.x,
                    1 => &self.y,
                    2 => &self.z,
                    _ => panic!("Vec3 index out of range: {i}"),
                }
            }
        }

        impl IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut $t {
                match i {
                    0 => &mut self.x,
                    1 => &mut self.y,
                    2 => &mut self.z,
                    _ => panic!("Vec3 index out of range: {i}"),
                }
            }
        }

        impl From<[$t; 3]> for $name {
            #[inline]
            fn from(a: [$t; 3]) -> Self {
                Self::from_array(a)
            }
        }

        impl From<$name> for [$t; 3] {
            #[inline]
            fn from(v: $name) -> [$t; 3] {
                v.to_array()
            }
        }
    };
}

define_vec3!(Vec3, f64, "A 3-vector of `f64`, used for host-side reference computation.");
define_vec3!(Vec3f, f32, "A 3-vector of `f32`, used inside simulated GPU kernels.");

impl Vec3 {
    /// Narrows to single precision (the device representation).
    #[inline]
    pub fn to_f32(self) -> Vec3f {
        Vec3f { x: self.x as f32, y: self.y as f32, z: self.z as f32 }
    }
}

impl Vec3f {
    /// Widens to double precision (the host representation).
    #[inline]
    pub fn to_f64(self) -> Vec3 {
        Vec3 { x: self.x as f64, y: self.y as f64, z: self.z as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn construction_and_accessors() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.x, 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from_array([1.0, 2.0, 3.0]), v);
        assert_eq!(Vec3::splat(4.0), Vec3::new(4.0, 4.0, 4.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        v -= Vec3::X;
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(1.5, 3.0, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        // cross product is perpendicular to both operands
        let u = Vec3::new(1.0, 2.0, 3.0);
        let w = Vec3::new(-2.0, 0.5, 4.0);
        let c = u.cross(w);
        assert!(approx(c.dot(u), 0.0));
        assert!(approx(c.dot(w), 0.0));
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.distance(Vec3::ZERO), 5.0);
        assert_eq!(v.distance_sq(Vec3::new(3.0, 0.0, 0.0)), 16.0);
        assert!(approx(v.normalized().norm(), 1.0));
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(-2.0, 4.0, 3.5);
        assert_eq!(a.min(b), Vec3::new(-2.0, -5.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 4.0, 3.5));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 3.0);
        assert_eq!(a.min_component(), -5.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::X, Vec3::Y, Vec3::Z, Vec3::ONE];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn precision_conversions_roundtrip() {
        let v = Vec3::new(1.5, -2.25, 3.125); // exactly representable in f32
        assert_eq!(v.to_f32().to_f64(), v);
        let f = Vec3f::new(0.5, 0.25, -8.0);
        assert_eq!(f.to_f64().to_f32(), f);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn f32_variant_basics() {
        let a = Vec3f::new(1.0, 2.0, 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.dot(Vec3f::ONE), 5.0);
        assert_eq!(a + Vec3f::ONE, Vec3f::new(2.0, 3.0, 3.0));
    }
}
