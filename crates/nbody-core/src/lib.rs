//! # nbody-core
//!
//! Core primitives for the PTPM fast N-body reproduction: vector math,
//! particle storage, softened Newtonian gravity with the direct
//! particle–particle (PP) method, symplectic integrators, and conserved-
//! quantity diagnostics.
//!
//! This crate is the ground truth of the workspace: every faster method —
//! the Barnes-Hut treecode (`treecode` crate) and the four simulated-GPU
//! execution plans (`plans` crate) — is validated against
//! [`gravity::accelerations_pp`].
//!
//! ## Quick start
//!
//! ```
//! use nbody_core::prelude::*;
//!
//! // a circular two-body orbit
//! let v = (1.0_f64 / 2.0).sqrt() / 2.0 * 2.0_f64.sqrt(); // speed per body
//! let mut set = ParticleSet::from_bodies(&[
//!     Body::new(Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0),
//!     Body::new(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0),
//! ]);
//! let params = GravityParams { g: 1.0, softening: 0.0 };
//! let mut engine = DirectPp::new(params);
//! run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 100);
//! assert!(set.all_finite());
//! let _ = v;
//! ```

#![warn(missing_docs)]

pub mod body;
pub mod energy;
pub mod flops;
pub mod gravity;
pub mod hermite;
pub mod integrator;
pub mod simulation;
pub mod soa;
pub mod testutil;
pub mod units;
pub mod vec3;

/// The most commonly used items, re-exported.
pub mod prelude {
    pub use crate::body::{Body, ParticleSet};
    pub use crate::energy::{total_energy, Diagnostics};
    pub use crate::flops::{FlopConvention, Throughput};
    pub use crate::gravity::{
        accelerations_pp, accelerations_pp_parallel, accelerations_pp_symmetric, GravityParams,
    };
    pub use crate::hermite::{accelerations_and_jerks_pp, Hermite4};
    pub use crate::integrator::{
        prime, run, DirectPp, ForceEngine, Integrator, LeapfrogDkd, LeapfrogKdk, SymplecticEuler,
    };
    pub use crate::simulation::{Sample, Simulation};
    pub use crate::soa::{
        accelerations_pp_tiled, accelerations_pp_tiled_parallel, accelerations_pp_tiled_with,
        SoaBodies, SoaPp, SoaView,
    };
    pub use crate::units::{to_standard_units, UnitsTransform};
    pub use crate::vec3::{Vec3, Vec3f};
}

pub use prelude::*;
