//! Packed SoA views and the cache-blocked tiled PP kernel.
//!
//! [`ParticleSet`] already stores components in parallel vectors, but its
//! positions are `Vec<Vec3>` — an array of 24-byte structs. The O(N²) force
//! loop wants *flat* `f64` lanes (`xs/ys/zs/ms`) so the compiler can keep
//! one SIMD stream per component, exactly like the float4 buffers the
//! paper's kernels stage through GPU local memory. [`SoaBodies`] is that
//! packed copy, derived once per step and reused across steps without
//! reallocating.
//!
//! ## Tiling and the bit-exactness contract
//!
//! [`pp_rows_tiled`] processes a block of `tile` consecutive rows (the
//! *i*-tile) against the full body list, sweeping `j` in ascending order and
//! accumulating into one scalar chain per row — the same `j`-ascending
//! summation order as [`crate::gravity::accelerations_pp`], with the same
//! per-interaction expression tree. IEEE-754 ops are deterministic and Rust
//! never contracts `a*b + c` into an FMA on its own, so the tiled kernel is
//! **bit-identical** to the scalar reference for every tile size and thread
//! count; tiles change only the order rows are *visited*, never the order
//! any row's contributions are *summed* (see DESIGN.md §9). The payoff is
//! that the inner loop runs across the rows of the tile — independent
//! accumulator lanes — so the sqrt/div pipeline vectorizes while each row's
//! chain stays sequential.
//!
//! The tile size is a pure performance knob resolved by [`tile`]: an
//! explicit [`set_tile`], else the `NBODY_TILE` environment variable, else a
//! small one-time auto-probe ([`auto_probe_tile`]) that times the candidates
//! on a synthetic workload.

use crate::body::ParticleSet;
use crate::gravity::GravityParams;
use crate::integrator::ForceEngine;
use crate::vec3::Vec3;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest permitted tile (bounds the stack accumulators of the kernel).
pub const MAX_TILE: usize = 512;

/// Tile sizes tried by [`auto_probe_tile`] (all within [`MAX_TILE`]).
pub const TILE_CANDIDATES: [usize; 5] = [16, 32, 64, 128, 256];

/// Packed struct-of-arrays body storage: flat `x/y/z/mass` lanes.
///
/// Owns its buffers; [`SoaBodies::fill_from`] repacks a [`ParticleSet`]
/// reusing capacity, so after the first call a steady-state refill performs
/// no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SoaBodies {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    ms: Vec<f64>,
}

impl SoaBodies {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Repacks `set` into the flat lanes, reusing existing capacity.
    pub fn fill_from(&mut self, set: &ParticleSet) {
        let pos = set.pos();
        self.xs.clear();
        self.xs.extend(pos.iter().map(|p| p.x));
        self.ys.clear();
        self.ys.extend(pos.iter().map(|p| p.y));
        self.zs.clear();
        self.zs.extend(pos.iter().map(|p| p.z));
        self.ms.clear();
        self.ms.extend_from_slice(set.mass());
    }

    /// Number of packed bodies.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if no bodies are packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Borrowed view of the lanes.
    #[inline]
    pub fn view(&self) -> SoaView<'_> {
        SoaView { xs: &self.xs, ys: &self.ys, zs: &self.zs, ms: &self.ms }
    }
}

/// Borrowed SoA view: one flat slice per component, all the same length.
#[derive(Debug, Clone, Copy)]
pub struct SoaView<'a> {
    /// x positions.
    pub xs: &'a [f64],
    /// y positions.
    pub ys: &'a [f64],
    /// z positions.
    pub zs: &'a [f64],
    /// masses.
    pub ms: &'a [f64],
}

impl<'a> SoaView<'a> {
    /// Builds a view from component slices.
    ///
    /// # Panics
    /// Panics if the slices disagree in length.
    #[inline]
    pub fn new(xs: &'a [f64], ys: &'a [f64], zs: &'a [f64], ms: &'a [f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "SoA lane length mismatch");
        assert_eq!(xs.len(), zs.len(), "SoA lane length mismatch");
        assert_eq!(xs.len(), ms.len(), "SoA lane length mismatch");
        Self { xs, ys, zs, ms }
    }

    /// Number of bodies in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// 0 = not yet resolved; anything else is the configured tile size.
static TILE: AtomicUsize = AtomicUsize::new(0);

/// Pins the process-wide tile size used by [`tile`].
///
/// # Panics
/// Panics unless `1 <= t <= MAX_TILE`.
pub fn set_tile(t: usize) {
    assert!((1..=MAX_TILE).contains(&t), "tile size must be in 1..={MAX_TILE}, got {t}");
    TILE.store(t, Ordering::Relaxed);
}

/// The tile size in effect: the last [`set_tile`] value, else `NBODY_TILE`,
/// else the result of a one-time [`auto_probe_tile`]. Never affects results,
/// only wall-clock.
pub fn tile() -> usize {
    let t = TILE.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = resolve_tile();
    // first caller wins; any later set_tile still overrides
    let _ = TILE.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    TILE.load(Ordering::Relaxed)
}

fn resolve_tile() -> usize {
    if let Ok(v) = std::env::var("NBODY_TILE") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if (1..=MAX_TILE).contains(&t) {
                return t;
            }
        }
    }
    auto_probe_tile()
}

/// Times each [`TILE_CANDIDATES`] entry on a small synthetic workload and
/// returns the fastest. Runs in a few milliseconds; called at most once per
/// process by [`tile`]. Deterministic in *results* (tile size never changes
/// forces) though the winning size depends on the machine.
pub fn auto_probe_tile() -> usize {
    let set = crate::testutil::random_set(1024, 0x5eed);
    let mut soa = SoaBodies::new();
    soa.fill_from(&set);
    let params = GravityParams::default();
    let mut acc = vec![Vec3::ZERO; set.len()];
    let mut best = (f64::INFINITY, TILE_CANDIDATES[0]);
    for &t in &TILE_CANDIDATES {
        // one warmup, then best-of-two timed evals
        pp_rows_tiled(soa.view(), 0..set.len(), &params, t, &mut acc);
        let mut fastest = f64::INFINITY;
        for _ in 0..2 {
            let start = std::time::Instant::now();
            pp_rows_tiled(soa.view(), 0..set.len(), &params, t, &mut acc);
            fastest = fastest.min(start.elapsed().as_secs_f64());
        }
        if fastest < best.0 {
            best = (fastest, t);
        }
    }
    best.1
}

/// Accumulates the contributions of sources `0..n` (skipping `j == i`) onto
/// the rows `row0..row0 + rb`, in ascending-`j` order per row.
///
/// The inner loop runs over the rows of the tile — independent accumulator
/// lanes, so it vectorizes — while each row keeps one sequential summation
/// chain across the whole `j` sweep, which is what makes the result
/// bit-identical to the scalar reference. The `i == j` self-interaction is
/// excluded by a lane select (the discarded lane may compute a NaN at zero
/// softening; it is never merged).
///
/// `inline(never)`: inlined into the caller's tile loop LLVM stops
/// auto-vectorizing the lane sweeps (verified on the emitted asm — scalar
/// `sqrtsd` only); as a standalone function the pure ranges compile to
/// packed `sqrtpd`/`divpd`. One call per tile block is noise next to the
/// `rb * n` interactions inside.
#[inline(never)]
fn pp_tile_block(
    view: SoaView<'_>,
    row0: usize,
    eps_sq: f64,
    axs: &mut [f64],
    ays: &mut [f64],
    azs: &mut [f64],
) {
    let rb = axs.len();
    let n = view.len();
    let xs = &view.xs[..n];
    let ys = &view.ys[..n];
    let zs = &view.zs[..n];
    let ms = &view.ms[..n];
    let ix = &xs[row0..row0 + rb];
    let iy = &ys[row0..row0 + rb];
    let iz = &zs[row0..row0 + rb];
    // The j sweep splits at the diagonal: sources j ∈ [row0, row0+rb) are
    // the only ones that can coincide with a tile row, so only that narrow
    // middle range pays the self-interaction lane select. The two outer
    // ranges run the branch-free lane loop, which the compiler vectorizes
    // (sqrt/div across independent rows). Each row still accumulates its
    // sources in one strictly j-ascending chain across all three ranges —
    // the order that makes the result bit-identical to the scalar kernel.
    let mid0 = row0.min(n);
    let mid1 = (row0 + rb).min(n);
    for j in 0..mid0 {
        lanes_accumulate(ix, iy, iz, axs, ays, azs, xs[j], ys[j], zs[j], ms[j], eps_sq);
    }
    for j in mid0..mid1 {
        let (xj, yj, zj, mj) = (xs[j], ys[j], zs[j], ms[j]);
        let ays = &mut ays[..rb];
        let azs = &mut azs[..rb];
        for k in 0..rb {
            // identical expression tree to gravity::pair_acceleration
            let dx = xj - ix[k];
            let dy = yj - iy[k];
            let dz = zj - iz[k];
            let r2 = ((dx * dx + dy * dy) + dz * dz) + eps_sq;
            let inv_r = 1.0 / r2.sqrt();
            let inv_r3 = (inv_r * inv_r) * inv_r;
            let s = mj * inv_r3;
            // the self-pair is excluded by a select on the accumulator, not
            // by adding a masked 0.0: `-0.0 + 0.0` would flip the sign, and
            // at eps = 0 the discarded lane holds a NaN that must never be
            // merged into the sum
            let keep = row0 + k != j;
            axs[k] = if keep { axs[k] + dx * s } else { axs[k] };
            ays[k] = if keep { ays[k] + dy * s } else { ays[k] };
            azs[k] = if keep { azs[k] + dz * s } else { azs[k] };
        }
    }
    for j in mid1..n {
        lanes_accumulate(ix, iy, iz, axs, ays, azs, xs[j], ys[j], zs[j], ms[j], eps_sq);
    }
}

/// One branch-free source-j sweep over the tile's row lanes: every index is
/// provably in bounds and there is no select, so the loop auto-vectorizes.
/// Callers guarantee source `j` is not one of the tile rows.
#[allow(clippy::too_many_arguments)]
#[inline]
fn lanes_accumulate(
    ix: &[f64],
    iy: &[f64],
    iz: &[f64],
    axs: &mut [f64],
    ays: &mut [f64],
    azs: &mut [f64],
    xj: f64,
    yj: f64,
    zj: f64,
    mj: f64,
    eps_sq: f64,
) {
    let rb = axs.len();
    let ix = &ix[..rb];
    let iy = &iy[..rb];
    let iz = &iz[..rb];
    let ays = &mut ays[..rb];
    let azs = &mut azs[..rb];
    for k in 0..rb {
        // identical expression tree to gravity::pair_acceleration
        let dx = xj - ix[k];
        let dy = yj - iy[k];
        let dz = zj - iz[k];
        let r2 = ((dx * dx + dy * dy) + dz * dz) + eps_sq;
        let inv_r = 1.0 / r2.sqrt();
        let inv_r3 = (inv_r * inv_r) * inv_r;
        let s = mj * inv_r3;
        axs[k] += dx * s;
        ays[k] += dy * s;
        azs[k] += dz * s;
    }
}

/// Fills `out` with the accelerations of rows `rows` using `tile`-row
/// blocks. Bit-identical to [`crate::gravity::accelerations_pp`] restricted
/// to those rows, for any tile size.
///
/// # Panics
/// Panics if `out.len() != rows.len()`, if `rows` exceeds the view, or if
/// `tile` is 0 or above [`MAX_TILE`].
pub fn pp_rows_tiled(
    view: SoaView<'_>,
    rows: Range<usize>,
    params: &GravityParams,
    tile: usize,
    out: &mut [Vec3],
) {
    assert_eq!(out.len(), rows.len(), "output buffer length mismatch");
    assert!(rows.end <= view.len(), "row range exceeds view");
    assert!((1..=MAX_TILE).contains(&tile), "tile size must be in 1..={MAX_TILE}, got {tile}");
    let eps_sq = params.eps_sq();
    let g = params.g;
    let mut axs = [0.0_f64; MAX_TILE];
    let mut ays = [0.0_f64; MAX_TILE];
    let mut azs = [0.0_f64; MAX_TILE];
    let mut row = rows.start;
    let mut written = 0;
    while row < rows.end {
        let rb = tile.min(rows.end - row);
        axs[..rb].fill(0.0);
        ays[..rb].fill(0.0);
        azs[..rb].fill(0.0);
        pp_tile_block(view, row, eps_sq, &mut axs[..rb], &mut ays[..rb], &mut azs[..rb]);
        for k in 0..rb {
            out[written + k] = Vec3::new(axs[k] * g, ays[k] * g, azs[k] * g);
        }
        row += rb;
        written += rb;
    }
}

/// Tiled PP over all rows with the globally resolved [`tile`] size.
///
/// # Panics
/// Panics if `acc.len() != view.len()`.
pub fn accelerations_pp_tiled(view: SoaView<'_>, params: &GravityParams, acc: &mut [Vec3]) {
    accelerations_pp_tiled_with(view, params, tile(), acc)
}

/// Tiled PP over all rows with an explicit tile size.
pub fn accelerations_pp_tiled_with(
    view: SoaView<'_>,
    params: &GravityParams,
    tile: usize,
    acc: &mut [Vec3],
) {
    assert_eq!(acc.len(), view.len(), "acceleration buffer length mismatch");
    pp_rows_tiled(view, 0..view.len(), params, tile, acc);
}

/// Multithreaded tiled PP over row chunks (same fixed chunking as
/// [`crate::gravity::accelerations_pp_parallel`]). Per-row summation order
/// is unchanged, so results are bit-identical to the serial tiled kernel —
/// and hence to the scalar reference — at any thread count.
pub fn accelerations_pp_tiled_parallel(
    view: SoaView<'_>,
    params: &GravityParams,
    tile: usize,
    threads: usize,
    acc: &mut [Vec3],
) {
    assert_eq!(acc.len(), view.len(), "acceleration buffer length mismatch");
    let n = view.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 64 {
        pp_rows_tiled(view, 0..n, params, tile, acc);
        return;
    }
    let ranges = par::chunk_ranges(n, threads);
    std::thread::scope(|scope| {
        let mut rest = acc;
        for range in ranges {
            let (rows, tail) = rest.split_at_mut(range.len());
            rest = tail;
            scope.spawn(move || pp_rows_tiled(view, range, params, tile, rows));
        }
    });
}

/// Zero-allocation direct-PP force engine on the tiled SoA kernel.
///
/// Owns its packed [`SoaBodies`]; every evaluation repacks into the same
/// buffers and runs the tiled kernel serially or chunked over
/// [`par::threads`]. Results are bit-identical to [`crate::integrator::DirectPp`]
/// at every thread count and tile size; after the first evaluation,
/// steady-state evaluations perform no heap allocation at `threads == 1`.
#[derive(Debug, Clone)]
pub struct SoaPp {
    /// Gravity model used for every evaluation.
    pub params: GravityParams,
    soa: SoaBodies,
}

impl SoaPp {
    /// Creates the engine with the given gravity model.
    pub fn new(params: GravityParams) -> Self {
        Self { params, soa: SoaBodies::new() }
    }
}

impl ForceEngine for SoaPp {
    fn accelerations(&mut self, set: &ParticleSet, acc: &mut [Vec3]) {
        self.soa.fill_from(set);
        let view = self.soa.view();
        let threads = par::threads();
        if threads <= 1 {
            accelerations_pp_tiled_with(view, &self.params, tile(), acc);
        } else {
            accelerations_pp_tiled_parallel(view, &self.params, tile(), threads, acc);
        }
    }

    fn name(&self) -> &str {
        "soa-pp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gravity::accelerations_pp;
    use crate::testutil::random_set;

    #[test]
    fn fill_from_packs_lanes() {
        let set = random_set(17, 1);
        let mut soa = SoaBodies::new();
        soa.fill_from(&set);
        assert_eq!(soa.len(), 17);
        let v = soa.view();
        for i in 0..set.len() {
            assert_eq!(v.xs[i], set.pos()[i].x);
            assert_eq!(v.ys[i], set.pos()[i].y);
            assert_eq!(v.zs[i], set.pos()[i].z);
            assert_eq!(v.ms[i], set.mass()[i]);
        }
    }

    #[test]
    fn refill_reuses_capacity() {
        let set = random_set(100, 2);
        let mut soa = SoaBodies::new();
        soa.fill_from(&set);
        let cap = soa.xs.capacity();
        soa.fill_from(&set);
        assert_eq!(soa.xs.capacity(), cap);
    }

    #[test]
    fn tiled_matches_reference_bitwise_across_tile_sizes() {
        let set = random_set(130, 3);
        let params = GravityParams::default();
        let mut reference = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut reference);
        let mut soa = SoaBodies::new();
        soa.fill_from(&set);
        for t in [1, 2, 7, 64, 130, MAX_TILE] {
            let mut acc = vec![Vec3::ZERO; set.len()];
            accelerations_pp_tiled_with(soa.view(), &params, t, &mut acc);
            assert_eq!(acc, reference, "tile {t} diverged from scalar reference");
        }
    }

    #[test]
    fn tiled_exact_at_zero_softening() {
        // the self-interaction lane computes NaN at eps = 0; the select must
        // discard it
        let set = random_set(33, 4);
        let params = GravityParams { g: 1.0, softening: 0.0 };
        let mut reference = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut reference);
        let mut soa = SoaBodies::new();
        soa.fill_from(&set);
        let mut acc = vec![Vec3::ZERO; set.len()];
        accelerations_pp_tiled(soa.view(), &params, &mut acc);
        assert_eq!(acc, reference);
        assert!(acc.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn parallel_tiled_matches_serial_bitwise() {
        let set = random_set(257, 5);
        let params = GravityParams::default();
        let mut soa = SoaBodies::new();
        soa.fill_from(&set);
        let mut serial = vec![Vec3::ZERO; set.len()];
        accelerations_pp_tiled_with(soa.view(), &params, 64, &mut serial);
        for threads in [2, 3, 8] {
            let mut acc = vec![Vec3::ZERO; set.len()];
            accelerations_pp_tiled_parallel(soa.view(), &params, 64, threads, &mut acc);
            assert_eq!(acc, serial, "threads {threads} diverged");
        }
    }

    #[test]
    fn engine_matches_direct_pp() {
        use crate::integrator::{DirectPp, ForceEngine};
        let set = random_set(96, 6);
        let params = GravityParams::default();
        let mut a = vec![Vec3::ZERO; set.len()];
        let mut b = vec![Vec3::ZERO; set.len()];
        DirectPp::new(params).accelerations(&set, &mut a);
        SoaPp::new(params).accelerations(&set, &mut b);
        assert_eq!(a, b);
        assert_eq!(SoaPp::new(params).name(), "soa-pp");
    }

    #[test]
    fn empty_and_single_body() {
        let params = GravityParams::default();
        let empty = SoaBodies::new();
        let mut none: Vec<Vec3> = Vec::new();
        accelerations_pp_tiled_with(empty.view(), &params, 8, &mut none);
        let one = random_set(1, 7);
        let mut soa = SoaBodies::new();
        soa.fill_from(&one);
        let mut acc = vec![Vec3::ONE; 1];
        accelerations_pp_tiled_with(soa.view(), &params, 8, &mut acc);
        assert_eq!(acc[0], Vec3::ZERO, "lone body feels no force");
    }

    #[test]
    fn probe_returns_candidate() {
        let t = auto_probe_tile();
        assert!(TILE_CANDIDATES.contains(&t));
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_rejected() {
        set_tile(0);
    }
}
