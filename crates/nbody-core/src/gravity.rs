//! Softened Newtonian gravity and the direct particle–particle (PP) method.
//!
//! Implements the paper's Eq. (1)–(2): the force on body *i* is
//!
//! ```text
//! F_i = G Σ_{j≠i} m_i m_j (x_j − x_i) / (|x_j − x_i|² + ε²)^{3/2}
//! ```
//!
//! with Plummer softening `ε` to regularize close encounters, exactly as the
//! GPU kernels in Nyland et al. (GPU Gems 3) and in the paper do. All
//! reference implementations are `O(N²)`:
//!
//! * [`accelerations_pp`] — the scalar reference every other method is
//!   validated against (fixed summation order, deterministic);
//! * [`accelerations_pp_symmetric`] — Newton's-third-law variant doing each
//!   pair once (different rounding, same physics);
//! * [`accelerations_pp_parallel`] — multithreaded over chunks of `i`, used
//!   to keep large validation runs fast on the host.

use crate::body::ParticleSet;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Physical and numerical constants of a gravity model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GravityParams {
    /// Gravitational constant. Simulation units default to `G = 1`.
    pub g: f64,
    /// Plummer softening length `ε`.
    pub softening: f64,
}

impl Default for GravityParams {
    fn default() -> Self {
        Self { g: 1.0, softening: 1e-2 }
    }
}

impl GravityParams {
    /// Creates parameters with `G = 1` and the given softening.
    pub fn with_softening(softening: f64) -> Self {
        Self { g: 1.0, softening }
    }

    /// Squared softening length.
    #[inline]
    pub fn eps_sq(&self) -> f64 {
        self.softening * self.softening
    }
}

/// Acceleration contribution on a body at `xi` from a point mass `mj` at
/// `xj` (Eq. 1 divided by `m_i`, times `G` applied by the caller if desired).
///
/// Returns `G = 1` units; multiply by `params.g` for physical units. The
/// softened kernel never divides by zero, so `xi == xj` contributes a finite
/// (zero-direction) value.
#[inline]
pub fn pair_acceleration(xi: Vec3, xj: Vec3, mj: f64, eps_sq: f64) -> Vec3 {
    let d = xj - xi;
    let r2 = d.norm_sq() + eps_sq;
    let inv_r = 1.0 / r2.sqrt();
    let inv_r3 = inv_r * inv_r * inv_r;
    d * (mj * inv_r3)
}

/// Softened pair potential energy `−G m_i m_j / sqrt(r² + ε²)` in `G = 1`
/// units.
#[inline]
pub fn pair_potential(xi: Vec3, xj: Vec3, mi: f64, mj: f64, eps_sq: f64) -> f64 {
    let r2 = xi.distance_sq(xj) + eps_sq;
    -mi * mj / r2.sqrt()
}

/// Scalar reference PP: fills `acc[i] = G Σ_j a(i, j)` with a fixed `j`
/// ascending summation order. This is the ground truth all GPU plans are
/// validated against.
///
/// # Panics
/// Panics if `acc.len() != set.len()`.
pub fn accelerations_pp(set: &ParticleSet, params: &GravityParams, acc: &mut [Vec3]) {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    let pos = set.pos();
    let mass = set.mass();
    let eps_sq = params.eps_sq();
    for (i, ai) in acc.iter_mut().enumerate() {
        let xi = pos[i];
        let mut a = Vec3::ZERO;
        for j in 0..pos.len() {
            if j != i {
                a += pair_acceleration(xi, pos[j], mass[j], eps_sq);
            }
        }
        *ai = a * params.g;
    }
}

/// PP with Newton's third law: each unordered pair is evaluated once and
/// applied with opposite signs. Half the interactions of
/// [`accelerations_pp`]; rounding differs but physics agrees to fp tolerance.
pub fn accelerations_pp_symmetric(set: &ParticleSet, params: &GravityParams, acc: &mut [Vec3]) {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    let pos = set.pos();
    let mass = set.mass();
    let eps_sq = params.eps_sq();
    acc.iter_mut().for_each(|a| *a = Vec3::ZERO);
    for i in 0..pos.len() {
        for j in (i + 1)..pos.len() {
            let d = pos[j] - pos[i];
            let r2 = d.norm_sq() + eps_sq;
            let inv_r = 1.0 / r2.sqrt();
            let inv_r3 = inv_r * inv_r * inv_r;
            // acceleration on i from j and vice versa
            acc[i] += d * (mass[j] * inv_r3);
            acc[j] -= d * (mass[i] * inv_r3);
        }
    }
    for a in acc.iter_mut() {
        *a *= params.g;
    }
}

/// Multithreaded PP over row chunks (`par`'s fixed chunking on scoped
/// threads). Identical summation order per row as [`accelerations_pp`], so
/// results match it bit-for-bit at any thread count. Pass `par::threads()`
/// to follow the workspace-wide `--threads` setting.
///
/// Since PR 5 the rows run through the cache-blocked SoA tile kernel
/// ([`crate::soa::pp_rows_tiled`]), which preserves the per-row summation
/// order exactly — this helper packs a fresh SoA copy per call; use
/// [`crate::soa::SoaPp`] to amortize the packing across steps.
pub fn accelerations_pp_parallel(
    set: &ParticleSet,
    params: &GravityParams,
    acc: &mut [Vec3],
    threads: usize,
) {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    let n = set.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 64 {
        accelerations_pp(set, params, acc);
        return;
    }
    let mut soa = crate::soa::SoaBodies::new();
    soa.fill_from(set);
    crate::soa::accelerations_pp_tiled_parallel(
        soa.view(),
        params,
        crate::soa::tile(),
        threads,
        acc,
    );
}

/// Total potential energy, `O(N²)` over unordered pairs.
pub fn potential_energy(set: &ParticleSet, params: &GravityParams) -> f64 {
    let pos = set.pos();
    let mass = set.mass();
    let eps_sq = params.eps_sq();
    let mut u = 0.0;
    for i in 0..pos.len() {
        for j in (i + 1)..pos.len() {
            u += pair_potential(pos[i], pos[j], mass[i], mass[j], eps_sq);
        }
    }
    u * params.g
}

/// Maximum relative error between two acceleration fields, using the scale
/// of the reference field (plus a small floor) as the denominator.
pub fn max_relative_error(reference: &[Vec3], candidate: &[Vec3]) -> f64 {
    assert_eq!(reference.len(), candidate.len(), "field length mismatch");
    let scale = reference.iter().map(|a| a.norm()).fold(0.0_f64, f64::max).max(1e-30);
    reference.iter().zip(candidate).map(|(r, c)| (*r - *c).norm() / scale).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;

    fn two_body_set() -> ParticleSet {
        ParticleSet::from_bodies(&[
            Body::at_rest(Vec3::new(-0.5, 0.0, 0.0), 1.0),
            Body::at_rest(Vec3::new(0.5, 0.0, 0.0), 1.0),
        ])
    }

    #[test]
    fn pair_acceleration_inverse_square() {
        // unit mass at distance 2, no softening: |a| = 1/4, toward the source
        let a = pair_acceleration(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 1.0, 0.0);
        assert!((a - Vec3::new(0.25, 0.0, 0.0)).norm() < 1e-15);
    }

    #[test]
    fn softening_regularizes_coincident_points() {
        let a = pair_acceleration(Vec3::ZERO, Vec3::ZERO, 1.0, 1e-4);
        assert!(a.is_finite());
        assert_eq!(a, Vec3::ZERO); // zero direction
                                   // nearly coincident: finite and bounded by 1/eps²-ish
        let b = pair_acceleration(Vec3::ZERO, Vec3::new(1e-12, 0.0, 0.0), 1.0, 1e-4);
        assert!(b.is_finite());
    }

    #[test]
    fn two_bodies_attract_equally() {
        let set = two_body_set();
        let params = GravityParams { g: 1.0, softening: 0.0 };
        let mut acc = vec![Vec3::ZERO; 2];
        accelerations_pp(&set, &params, &mut acc);
        // separation 1, masses 1: |a| = 1 each, pointing at each other
        assert!((acc[0] - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-14);
        assert!((acc[1] - Vec3::new(-1.0, 0.0, 0.0)).norm() < 1e-14);
    }

    #[test]
    fn g_scales_linearly() {
        let set = two_body_set();
        let mut a1 = vec![Vec3::ZERO; 2];
        let mut a2 = vec![Vec3::ZERO; 2];
        accelerations_pp(&set, &GravityParams { g: 1.0, softening: 0.0 }, &mut a1);
        accelerations_pp(&set, &GravityParams { g: 6.5, softening: 0.0 }, &mut a2);
        for i in 0..2 {
            assert!((a2[i] - a1[i] * 6.5).norm() < 1e-12);
        }
    }

    #[test]
    fn symmetric_matches_reference() {
        let set = crate::testutil::random_set(64, 42);
        let params = GravityParams::default();
        let mut a = vec![Vec3::ZERO; set.len()];
        let mut b = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut a);
        accelerations_pp_symmetric(&set, &params, &mut b);
        assert!(max_relative_error(&a, &b) < 1e-12);
    }

    #[test]
    fn parallel_matches_reference_bitwise() {
        let set = crate::testutil::random_set(200, 7);
        let params = GravityParams::default();
        let mut a = vec![Vec3::ZERO; set.len()];
        let mut b = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut a);
        accelerations_pp_parallel(&set, &params, &mut b, 4);
        assert_eq!(a, b, "row-wise parallel PP must be bitwise identical");
    }

    #[test]
    fn parallel_small_n_falls_back() {
        let set = two_body_set();
        let params = GravityParams::default();
        let mut a = vec![Vec3::ZERO; 2];
        accelerations_pp_parallel(&set, &params, &mut a, 8);
        assert!(a[0].norm() > 0.0);
    }

    #[test]
    fn momentum_conservation_in_forces() {
        // Σ m_i a_i = 0 for internal forces
        let set = crate::testutil::random_set(50, 3);
        let params = GravityParams::default();
        let mut acc = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut acc);
        let net: Vec3 = acc.iter().zip(set.mass()).map(|(&a, &m)| a * m).sum();
        let scale: f64 = acc.iter().zip(set.mass()).map(|(a, m)| a.norm() * m).sum();
        assert!(net.norm() < 1e-11 * scale.max(1.0), "net force {net:?}");
    }

    #[test]
    fn potential_energy_two_bodies() {
        let set = two_body_set();
        let params = GravityParams { g: 2.0, softening: 0.0 };
        // U = -G m1 m2 / r = -2
        assert!((potential_energy(&set, &params) + 2.0).abs() < 1e-14);
    }

    #[test]
    fn potential_is_negative_for_clustered_masses() {
        let set = crate::testutil::random_set(30, 11);
        assert!(potential_energy(&set, &GravityParams::default()) < 0.0);
    }

    #[test]
    fn max_relative_error_basics() {
        let a = vec![Vec3::X, Vec3::Y];
        let b = vec![Vec3::X, Vec3::Y];
        assert_eq!(max_relative_error(&a, &b), 0.0);
        let c = vec![Vec3::X * 1.1, Vec3::Y];
        let e = max_relative_error(&a, &c);
        assert!((e - 0.1).abs() < 1e-12, "{e}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_acc_buffer_panics() {
        let set = two_body_set();
        let mut acc = vec![Vec3::ZERO; 1];
        accelerations_pp(&set, &GravityParams::default(), &mut acc);
    }
}
