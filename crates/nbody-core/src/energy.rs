//! Conserved-quantity diagnostics: energy, momentum, angular momentum,
//! virial ratio. Used by tests and the experiment harness to check that a
//! force engine + integrator pair behaves physically.

use crate::body::ParticleSet;
use crate::gravity::{potential_energy, GravityParams};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Total kinetic energy `Σ m v² / 2`.
pub fn kinetic_energy(set: &ParticleSet) -> f64 {
    set.vel().iter().zip(set.mass()).map(|(v, &m)| 0.5 * m * v.norm_sq()).sum()
}

/// Total energy `T + U` (the potential is `O(N²)`).
pub fn total_energy(set: &ParticleSet, params: &GravityParams) -> f64 {
    kinetic_energy(set) + potential_energy(set, params)
}

/// Net linear momentum `Σ m v`.
pub fn linear_momentum(set: &ParticleSet) -> Vec3 {
    set.vel().iter().zip(set.mass()).map(|(&v, &m)| v * m).sum()
}

/// Net angular momentum about the origin `Σ m (x × v)`.
pub fn angular_momentum(set: &ParticleSet) -> Vec3 {
    set.pos().iter().zip(set.vel()).zip(set.mass()).map(|((&x, &v), &m)| x.cross(v) * m).sum()
}

/// Virial ratio `−2T/U`; ≈ 1 for a system in virial equilibrium (such as a
/// Plummer sphere sampled with its equilibrium velocity distribution).
pub fn virial_ratio(set: &ParticleSet, params: &GravityParams) -> f64 {
    let u = potential_energy(set, params);
    if u == 0.0 {
        return f64::INFINITY;
    }
    -2.0 * kinetic_energy(set) / u
}

/// A snapshot of every conserved quantity at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Kinetic energy.
    pub kinetic: f64,
    /// Potential energy.
    pub potential: f64,
    /// Total energy.
    pub total: f64,
    /// Net linear momentum.
    pub momentum: Vec3,
    /// Net angular momentum about the origin.
    pub angular_momentum: Vec3,
    /// Virial ratio −2T/U.
    pub virial: f64,
}

impl Diagnostics {
    /// Measures all quantities for `set`.
    pub fn measure(set: &ParticleSet, params: &GravityParams) -> Self {
        let kinetic = kinetic_energy(set);
        let potential = potential_energy(set, params);
        Self {
            kinetic,
            potential,
            total: kinetic + potential,
            momentum: linear_momentum(set),
            angular_momentum: angular_momentum(set),
            virial: if potential == 0.0 { f64::INFINITY } else { -2.0 * kinetic / potential },
        }
    }

    /// Relative energy drift of `later` with respect to `self`.
    pub fn energy_drift(&self, later: &Diagnostics) -> f64 {
        if self.total == 0.0 {
            (later.total - self.total).abs()
        } else {
            ((later.total - self.total) / self.total).abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;

    #[test]
    fn kinetic_energy_simple() {
        let set = ParticleSet::from_bodies(&[Body::new(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0), 2.0)]);
        assert_eq!(kinetic_energy(&set), 25.0);
    }

    #[test]
    fn momentum_sums_over_bodies() {
        let set = ParticleSet::from_bodies(&[
            Body::new(Vec3::ZERO, Vec3::X, 2.0),
            Body::new(Vec3::ZERO, -Vec3::X, 1.0),
        ]);
        assert_eq!(linear_momentum(&set), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn angular_momentum_of_circular_motion() {
        // body at (1,0,0) moving in +y: L = m (x × v) = m ẑ
        let set = ParticleSet::from_bodies(&[Body::new(Vec3::X, Vec3::Y, 3.0)]);
        assert_eq!(angular_momentum(&set), Vec3::new(0.0, 0.0, 3.0));
    }

    #[test]
    fn total_energy_of_bound_pair_is_negative() {
        // circular binary is bound: E < 0
        let v = (1.0_f64 / 2.0).sqrt();
        let set = ParticleSet::from_bodies(&[
            Body::new(Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.0, -v / 2.0, 0.0), 1.0),
            Body::new(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, v / 2.0, 0.0), 1.0),
        ]);
        let params = GravityParams { g: 1.0, softening: 0.0 };
        assert!(total_energy(&set, &params) < 0.0);
    }

    #[test]
    fn diagnostics_consistency() {
        let set = crate::testutil::random_set(20, 13);
        let params = GravityParams::default();
        let d = Diagnostics::measure(&set, &params);
        assert!((d.total - (d.kinetic + d.potential)).abs() < 1e-12);
        assert_eq!(d.momentum, linear_momentum(&set));
        assert!((d.virial - virial_ratio(&set, &params)).abs() < 1e-12);
    }

    #[test]
    fn energy_drift_relative() {
        let a = Diagnostics {
            kinetic: 1.0,
            potential: -3.0,
            total: -2.0,
            momentum: Vec3::ZERO,
            angular_momentum: Vec3::ZERO,
            virial: 2.0 / 3.0,
        };
        let mut b = a;
        b.total = -2.2;
        assert!((a.energy_drift(&b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn virial_of_cold_system_is_zero() {
        let set = crate::testutil::equal_mass_set(10, 2); // zero velocities
        assert_eq!(virial_ratio(&set, &GravityParams::default()), 0.0);
    }
}
