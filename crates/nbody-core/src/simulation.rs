//! [`Simulation`]: a convenience driver tying a particle set, a force
//! engine, and an integrator together with simulation time, step counting,
//! and an optional diagnostics history — the loop every example and
//! experiment otherwise re-writes by hand.

use crate::body::ParticleSet;
use crate::energy::Diagnostics;
use crate::gravity::GravityParams;
use crate::integrator::{prime, ForceEngine, Integrator};
use serde::{Deserialize, Serialize};

/// One recorded diagnostics sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulation time of the sample.
    pub time: f64,
    /// Step index of the sample.
    pub step: u64,
    /// Measured conserved quantities.
    pub diagnostics: Diagnostics,
}

/// A running N-body simulation.
pub struct Simulation<E: ForceEngine, I: Integrator> {
    /// Current system state.
    pub set: ParticleSet,
    /// Force engine in use.
    pub engine: E,
    /// Integration scheme.
    pub integrator: I,
    /// Step size.
    pub dt: f64,
    /// Gravity model (for diagnostics; the engine carries its own copy).
    pub params: GravityParams,
    time: f64,
    steps: u64,
    primed: bool,
    history: Vec<Sample>,
    record_every: Option<u64>,
}

impl<E: ForceEngine, I: Integrator> Simulation<E, I> {
    /// Creates a simulation; forces are evaluated lazily on the first step.
    pub fn new(set: ParticleSet, engine: E, integrator: I, dt: f64, params: GravityParams) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive, got {dt}");
        Self {
            set,
            engine,
            integrator,
            dt,
            params,
            time: 0.0,
            steps: 0,
            primed: false,
            history: Vec::new(),
            record_every: None,
        }
    }

    /// Records diagnostics every `k` steps (and at step 0). Diagnostics cost
    /// an `O(N²)` potential evaluation, so pick `k` accordingly.
    pub fn with_recording(mut self, k: u64) -> Self {
        assert!(k >= 1, "recording interval must be >= 1");
        self.record_every = Some(k);
        self
    }

    /// Elapsed simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Recorded samples (empty unless recording is on).
    pub fn history(&self) -> &[Sample] {
        &self.history
    }

    /// Advances one step.
    pub fn step(&mut self) {
        if !self.primed {
            prime(&mut self.set, &mut self.engine);
            self.primed = true;
            self.maybe_record();
        }
        self.integrator.step(&mut self.set, &mut self.engine, self.dt);
        self.steps += 1;
        self.time += self.dt;
        self.maybe_record();
    }

    /// Advances `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Relative energy drift between the first and last recorded samples,
    /// or `None` with fewer than two samples.
    pub fn energy_drift(&self) -> Option<f64> {
        let first = self.history.first()?;
        let last = self.history.last()?;
        if self.history.len() < 2 {
            return None;
        }
        Some(first.diagnostics.energy_drift(&last.diagnostics))
    }

    fn maybe_record(&mut self) {
        let Some(k) = self.record_every else { return };
        if self.steps.is_multiple_of(k) {
            self.history.push(Sample {
                time: self.time,
                step: self.steps,
                diagnostics: Diagnostics::measure(&self.set, &self.params),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{DirectPp, LeapfrogKdk};
    use crate::testutil::random_set;

    fn sim() -> Simulation<DirectPp, LeapfrogKdk> {
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let mut set = random_set(60, 1);
        set.recenter();
        Simulation::new(set, DirectPp::new(params), LeapfrogKdk, 1e-3, params)
    }

    #[test]
    fn stepping_advances_time() {
        let mut s = sim();
        assert_eq!(s.time(), 0.0);
        s.run(10);
        assert_eq!(s.steps(), 10);
        assert!((s.time() - 0.01).abs() < 1e-12);
        assert!(s.set.all_finite());
    }

    #[test]
    fn recording_samples_at_interval() {
        let mut s = sim().with_recording(5);
        s.run(20);
        // step 0 (after prime) + steps 5, 10, 15, 20
        assert_eq!(s.history().len(), 5);
        assert_eq!(s.history()[0].step, 0);
        assert_eq!(s.history()[4].step, 20);
        let drift = s.energy_drift().unwrap();
        assert!(drift < 1e-3, "drift {drift}");
    }

    #[test]
    fn no_recording_no_history() {
        let mut s = sim();
        s.run(5);
        assert!(s.history().is_empty());
        assert!(s.energy_drift().is_none());
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn bad_dt_rejected() {
        let params = GravityParams::default();
        let _ = Simulation::new(random_set(4, 2), DirectPp::new(params), LeapfrogKdk, 0.0, params);
    }

    #[test]
    #[should_panic(expected = "recording interval")]
    fn zero_recording_interval_rejected() {
        let _ = sim().with_recording(0);
    }
}
