//! Time integrators.
//!
//! The paper integrates the system over many steps (its Table 1 reports the
//! time of 100 steps); the force evaluation dominates, but a correct
//! symplectic integrator is what makes long runs meaningful. Provided:
//!
//! * [`SymplecticEuler`] — first order, cheapest;
//! * [`LeapfrogKdk`] — kick-drift-kick leapfrog (velocity Verlet), second
//!   order and symplectic: the standard choice in collisionless N-body work;
//! * [`LeapfrogDkd`] — drift-kick-drift variant.
//!
//! An integrator advances a [`ParticleSet`] using any force engine through
//! the [`ForceEngine`] abstraction, so the same stepping code drives the CPU
//! reference, the treecode, and every simulated-GPU plan.

use crate::body::ParticleSet;
use crate::gravity::{accelerations_pp, GravityParams};
use crate::vec3::Vec3;

/// Anything that can fill the acceleration field for a particle set.
///
/// Implementations: direct PP (this crate), Barnes-Hut (`treecode` crate),
/// and the four simulated-GPU execution plans (`plans` crate).
pub trait ForceEngine {
    /// Computes accelerations for `set` into `acc` (same length as the set).
    fn accelerations(&mut self, set: &ParticleSet, acc: &mut [Vec3]);

    /// Human-readable engine name, for reports.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// Direct PP force engine wrapping [`accelerations_pp`].
#[derive(Debug, Clone)]
pub struct DirectPp {
    /// Gravity model used for every evaluation.
    pub params: GravityParams,
}

impl DirectPp {
    /// Creates the engine with the given gravity model.
    pub fn new(params: GravityParams) -> Self {
        Self { params }
    }
}

impl ForceEngine for DirectPp {
    fn accelerations(&mut self, set: &ParticleSet, acc: &mut [Vec3]) {
        accelerations_pp(set, &self.params, acc);
    }

    fn name(&self) -> &str {
        "direct-pp"
    }
}

/// A time integration scheme.
pub trait Integrator {
    /// Advances `set` by one step of size `dt` using `engine` for forces.
    ///
    /// On entry `set.acc()` must hold the accelerations at the current
    /// positions (as left by a previous `step` or by [`prime`]).
    fn step(&self, set: &mut ParticleSet, engine: &mut dyn ForceEngine, dt: f64);

    /// Scheme name for reports.
    fn name(&self) -> &str;

    /// Formal order of accuracy.
    fn order(&self) -> u32;
}

/// Fills the acceleration field for the initial state. Call once before the
/// first [`Integrator::step`].
pub fn prime(set: &mut ParticleSet, engine: &mut dyn ForceEngine) {
    refresh_acc(set, engine);
}

/// Symplectic (semi-implicit) Euler: kick then drift. First order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymplecticEuler;

impl Integrator for SymplecticEuler {
    fn step(&self, set: &mut ParticleSet, engine: &mut dyn ForceEngine, dt: f64) {
        {
            let (vel, acc) = set.vel_mut_acc();
            for (v, a) in vel.iter_mut().zip(acc) {
                *v += *a * dt;
            }
        }
        {
            let (pos, vel) = set.pos_vel_mut();
            for (p, v) in pos.iter_mut().zip(vel.iter()) {
                *p += *v * dt;
            }
        }
        refresh_acc(set, engine);
    }

    fn name(&self) -> &str {
        "symplectic-euler"
    }

    fn order(&self) -> u32 {
        1
    }
}

/// Kick-drift-kick leapfrog (velocity Verlet). Second order, symplectic.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeapfrogKdk;

impl Integrator for LeapfrogKdk {
    fn step(&self, set: &mut ParticleSet, engine: &mut dyn ForceEngine, dt: f64) {
        let half = 0.5 * dt;
        {
            let (vel, acc) = set.vel_mut_acc();
            for (v, a) in vel.iter_mut().zip(acc) {
                *v += *a * half;
            }
        }
        {
            let (pos, vel) = set.pos_vel_mut();
            for (p, v) in pos.iter_mut().zip(vel.iter()) {
                *p += *v * dt;
            }
        }
        refresh_acc(set, engine);
        {
            let (vel, acc) = set.vel_mut_acc();
            for (v, a) in vel.iter_mut().zip(acc) {
                *v += *a * half;
            }
        }
    }

    fn name(&self) -> &str {
        "leapfrog-kdk"
    }

    fn order(&self) -> u32 {
        2
    }
}

/// Drift-kick-drift leapfrog. Second order, symplectic; one force evaluation
/// per step like KDK but with drifts on the outside.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeapfrogDkd;

impl Integrator for LeapfrogDkd {
    fn step(&self, set: &mut ParticleSet, engine: &mut dyn ForceEngine, dt: f64) {
        let half = 0.5 * dt;
        {
            let (pos, vel) = set.pos_vel_mut();
            for (p, v) in pos.iter_mut().zip(vel.iter()) {
                *p += *v * half;
            }
        }
        refresh_acc(set, engine);
        {
            let (vel, acc) = set.vel_mut_acc();
            for (v, a) in vel.iter_mut().zip(acc) {
                *v += *a * dt;
            }
        }
        {
            let (pos, vel) = set.pos_vel_mut();
            for (p, v) in pos.iter_mut().zip(vel.iter()) {
                *p += *v * half;
            }
        }
    }

    fn name(&self) -> &str {
        "leapfrog-dkd"
    }

    fn order(&self) -> u32 {
        2
    }
}

/// Refreshes `set.acc()` in place by temporarily moving the set's own
/// acceleration buffer out ([`ParticleSet::take_acc`]) and handing it to the
/// engine — no per-step allocation, no copy-back. Engines only read
/// positions and masses, so the momentarily empty `acc` field is never
/// observed.
fn refresh_acc(set: &mut ParticleSet, engine: &mut dyn ForceEngine) {
    let mut acc = set.take_acc();
    engine.accelerations(set, &mut acc);
    set.restore_acc(acc);
}

/// Convenience driver: primes, then advances `steps` steps of size `dt`.
pub fn run(
    set: &mut ParticleSet,
    engine: &mut dyn ForceEngine,
    integrator: &dyn Integrator,
    dt: f64,
    steps: usize,
) {
    prime(set, engine);
    for _ in 0..steps {
        integrator.step(set, engine, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::energy::total_energy;

    /// Circular two-body orbit: equal masses m at distance d, G=1.
    /// Orbital speed of each body around the barycenter: v = sqrt(G m / (2 d)).
    fn binary() -> (ParticleSet, GravityParams) {
        let d = 1.0_f64;
        let m = 1.0_f64;
        let v = (m / (2.0 * d)).sqrt();
        let set = ParticleSet::from_bodies(&[
            Body::new(Vec3::new(-d / 2.0, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m),
            Body::new(Vec3::new(d / 2.0, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m),
        ]);
        (set, GravityParams { g: 1.0, softening: 0.0 })
    }

    fn orbit_period(d: f64, m_total: f64) -> f64 {
        // Kepler: T = 2π sqrt(d³ / (G M))
        2.0 * std::f64::consts::PI * (d * d * d / m_total).sqrt()
    }

    #[test]
    fn prime_fills_acc() {
        let (mut set, params) = binary();
        let mut engine = DirectPp::new(params);
        assert_eq!(set.acc()[0], Vec3::ZERO);
        prime(&mut set, &mut engine);
        assert!(set.acc()[0].norm() > 0.0);
    }

    #[test]
    fn leapfrog_conserves_energy_on_binary() {
        let (mut set, params) = binary();
        let mut engine = DirectPp::new(params);
        let e0 = total_energy(&set, &params);
        let t = orbit_period(1.0, 2.0);
        let steps = 2000;
        run(&mut set, &mut engine, &LeapfrogKdk, t / steps as f64, steps);
        let e1 = total_energy(&set, &params);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 1e-5, "energy drift {drift}");
    }

    #[test]
    fn leapfrog_closes_orbit() {
        let (mut set, params) = binary();
        let start = set.pos()[0];
        let mut engine = DirectPp::new(params);
        let t = orbit_period(1.0, 2.0);
        let steps = 4000;
        run(&mut set, &mut engine, &LeapfrogKdk, t / steps as f64, steps);
        // after one full period the body returns near its start
        assert!(
            set.pos()[0].distance(start) < 1e-2,
            "orbit did not close: {:?} vs {:?}",
            set.pos()[0],
            start
        );
    }

    #[test]
    fn dkd_also_second_order() {
        let (mut set, params) = binary();
        let start = set.pos()[0];
        let mut engine = DirectPp::new(params);
        let t = orbit_period(1.0, 2.0);
        run(&mut set, &mut engine, &LeapfrogDkd, t / 4000.0, 4000);
        assert!(set.pos()[0].distance(start) < 1e-2);
    }

    #[test]
    fn euler_is_less_accurate_than_leapfrog() {
        let (s0, params) = binary();
        let t = orbit_period(1.0, 2.0);
        let steps = 500;
        let dt = t / steps as f64;

        let mut s_euler = s0.clone();
        let mut s_kdk = s0.clone();
        let start = s0.pos()[0];
        let mut engine = DirectPp::new(params);
        run(&mut s_euler, &mut engine, &SymplecticEuler, dt, steps);
        run(&mut s_kdk, &mut engine, &LeapfrogKdk, dt, steps);
        let err_euler = s_euler.pos()[0].distance(start);
        let err_kdk = s_kdk.pos()[0].distance(start);
        assert!(err_kdk < err_euler, "leapfrog ({err_kdk}) should beat Euler ({err_euler})");
    }

    #[test]
    fn leapfrog_convergence_order() {
        // halving dt should cut the position error ~4x for a 2nd-order scheme
        let (s0, params) = binary();
        let t = orbit_period(1.0, 2.0);
        let run_err = |steps: usize| {
            let mut s = s0.clone();
            let mut engine = DirectPp::new(params);
            run(&mut s, &mut engine, &LeapfrogKdk, t / steps as f64, steps);
            s.pos()[0].distance(s0.pos()[0])
        };
        let e1 = run_err(400);
        let e2 = run_err(800);
        let ratio = e1 / e2;
        assert!(
            ratio > 3.0 && ratio < 5.5,
            "expected ~4x error reduction, got {ratio} ({e1} -> {e2})"
        );
    }

    #[test]
    fn momentum_conserved_over_many_steps() {
        let mut set = crate::testutil::random_set(40, 9);
        set.recenter();
        let params = GravityParams::default();
        let mut engine = DirectPp::new(params);
        run(&mut set, &mut engine, &LeapfrogKdk, 1e-3, 200);
        let p = set.center_of_mass_velocity().unwrap() * set.total_mass();
        assert!(p.norm() < 1e-9, "net momentum {p:?}");
    }

    #[test]
    fn names_and_orders() {
        assert_eq!(LeapfrogKdk.order(), 2);
        assert_eq!(LeapfrogDkd.order(), 2);
        assert_eq!(SymplecticEuler.order(), 1);
        assert_eq!(LeapfrogKdk.name(), "leapfrog-kdk");
        assert_eq!(DirectPp::new(GravityParams::default()).name(), "direct-pp");
    }
}
