//! Fourth-order Hermite integration (Makino & Aarseth).
//!
//! The standard high-accuracy scheme of collisional N-body work — and of
//! the GRAPE hardware tradition this paper's flop conventions come from.
//! It needs the **jerk** (time derivative of acceleration) alongside the
//! acceleration:
//!
//! ```text
//! j_i = G Σ m_j [ v_ij / r³ − 3 (r_ij · v_ij) r_ij / r⁵ ]   (softened)
//! ```
//!
//! One step is predict (Taylor to 3rd order) → evaluate at the prediction →
//! Hermite correct. Compared with leapfrog it buys two orders of accuracy
//! for roughly twice the flops per interaction.

use crate::body::ParticleSet;
use crate::gravity::GravityParams;
use crate::vec3::Vec3;

/// Acceleration and jerk on a target at `xi`, `vi` from a source at `xj`,
/// `vj` with mass `mj` (G = 1 units, Plummer-softened).
#[inline]
pub fn pair_acceleration_jerk(
    xi: Vec3,
    vi: Vec3,
    xj: Vec3,
    vj: Vec3,
    mj: f64,
    eps_sq: f64,
) -> (Vec3, Vec3) {
    let d = xj - xi;
    let dv = vj - vi;
    let r2 = d.norm_sq() + eps_sq;
    let inv_r = 1.0 / r2.sqrt();
    let inv_r3 = inv_r * inv_r * inv_r;
    let rv = d.dot(dv);
    let acc = d * (mj * inv_r3);
    let jerk = (dv - d * (3.0 * rv / r2)) * (mj * inv_r3);
    (acc, jerk)
}

/// Fills accelerations and jerks for every body, `O(N²)`.
///
/// # Panics
/// Panics if the buffer lengths differ from the set length.
pub fn accelerations_and_jerks_pp(
    set: &ParticleSet,
    params: &GravityParams,
    acc: &mut [Vec3],
    jerk: &mut [Vec3],
) {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    assert_eq!(jerk.len(), set.len(), "jerk buffer length mismatch");
    let pos = set.pos();
    let vel = set.vel();
    let mass = set.mass();
    let eps_sq = params.eps_sq();
    for i in 0..set.len() {
        let mut a = Vec3::ZERO;
        let mut j = Vec3::ZERO;
        for k in 0..set.len() {
            if k != i {
                let (ak, jk) =
                    pair_acceleration_jerk(pos[i], vel[i], pos[k], vel[k], mass[k], eps_sq);
                a += ak;
                j += jk;
            }
        }
        acc[i] = a * params.g;
        jerk[i] = j * params.g;
    }
}

/// The 4th-order Hermite predictor-corrector. Owns its acceleration/jerk
/// state; call [`Hermite4::prime`] once, then [`Hermite4::step`] repeatedly.
#[derive(Debug, Clone)]
pub struct Hermite4 {
    /// Gravity model.
    pub params: GravityParams,
    acc: Vec<Vec3>,
    jerk: Vec<Vec3>,
}

impl Hermite4 {
    /// Creates an integrator for a system of `n` bodies.
    pub fn new(params: GravityParams, n: usize) -> Self {
        Self { params, acc: vec![Vec3::ZERO; n], jerk: vec![Vec3::ZERO; n] }
    }

    /// Evaluates forces at the current state (call once before stepping).
    pub fn prime(&mut self, set: &ParticleSet) {
        accelerations_and_jerks_pp(set, &self.params, &mut self.acc, &mut self.jerk);
    }

    /// Current accelerations (after prime/step).
    pub fn acc(&self) -> &[Vec3] {
        &self.acc
    }

    /// Current jerks.
    pub fn jerk(&self) -> &[Vec3] {
        &self.jerk
    }

    /// Advances the system by `dt`.
    pub fn step(&mut self, set: &mut ParticleSet, dt: f64) {
        let n = set.len();
        assert_eq!(self.acc.len(), n, "integrator sized for a different system");
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;

        // keep old state
        let x0: Vec<Vec3> = set.pos().to_vec();
        let v0: Vec<Vec3> = set.vel().to_vec();
        let a0 = self.acc.clone();
        let j0 = self.jerk.clone();

        // predict
        {
            let (pos, vel) = set.pos_vel_mut();
            for i in 0..n {
                pos[i] = x0[i] + v0[i] * dt + a0[i] * (dt2 / 2.0) + j0[i] * (dt3 / 6.0);
                vel[i] = v0[i] + a0[i] * dt + j0[i] * (dt2 / 2.0);
            }
        }

        // evaluate at prediction
        accelerations_and_jerks_pp(set, &self.params, &mut self.acc, &mut self.jerk);
        let a1 = &self.acc;
        let j1 = &self.jerk;

        // correct (Hermite 4th order)
        {
            let (pos, vel) = set.pos_vel_mut();
            for i in 0..n {
                let v_corr = v0[i] + (a0[i] + a1[i]) * (dt / 2.0) + (j0[i] - j1[i]) * (dt2 / 12.0);
                let x_corr = x0[i] + (v0[i] + v_corr) * (dt / 2.0) + (a0[i] - a1[i]) * (dt2 / 12.0);
                pos[i] = x_corr;
                vel[i] = v_corr;
            }
        }

        // refresh derivatives at the corrected state for the next step
        accelerations_and_jerks_pp(set, &self.params, &mut self.acc, &mut self.jerk);
    }

    /// Primes and advances `steps` steps of size `dt`.
    pub fn run(&mut self, set: &mut ParticleSet, dt: f64, steps: usize) {
        self.prime(set);
        for _ in 0..steps {
            self.step(set, dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Body;
    use crate::energy::total_energy;
    use crate::gravity::accelerations_pp;
    use crate::integrator::{run as leapfrog_run, DirectPp, LeapfrogKdk};

    fn binary() -> (ParticleSet, GravityParams) {
        // equal masses m = 1 at separation d = 1: each body circles the
        // barycenter at speed √(G m / (2 d)) = √0.5
        let speed = (1.0_f64 / 2.0).sqrt();
        let set = ParticleSet::from_bodies(&[
            Body::new(Vec3::new(-0.5, 0.0, 0.0), Vec3::new(0.0, -speed, 0.0), 1.0),
            Body::new(Vec3::new(0.5, 0.0, 0.0), Vec3::new(0.0, speed, 0.0), 1.0),
        ]);
        (set, GravityParams { g: 1.0, softening: 0.0 })
    }

    #[test]
    fn jerk_matches_finite_difference_of_acceleration() {
        let set = crate::testutil::random_set(30, 3);
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let n = set.len();
        let mut acc = vec![Vec3::ZERO; n];
        let mut jerk = vec![Vec3::ZERO; n];
        accelerations_and_jerks_pp(&set, &params, &mut acc, &mut jerk);

        // drift positions by v*h and compare (a(t+h) - a(t)) / h to jerk
        let h = 1e-7;
        let mut drifted = set.clone();
        {
            let (pos, vel) = drifted.pos_vel_mut();
            for i in 0..n {
                pos[i] += vel[i] * h;
            }
        }
        let mut acc_h = vec![Vec3::ZERO; n];
        accelerations_pp(&drifted, &params, &mut acc_h);
        for i in 0..n {
            let fd = (acc_h[i] - acc[i]) / h;
            let err = (fd - jerk[i]).norm();
            let scale = jerk[i].norm().max(1.0);
            assert!(err < 1e-4 * scale, "body {i}: fd {fd:?} vs jerk {:?}", jerk[i]);
        }
    }

    #[test]
    fn acceleration_part_matches_reference() {
        let set = crate::testutil::random_set(40, 4);
        let params = GravityParams::default();
        let n = set.len();
        let mut acc = vec![Vec3::ZERO; n];
        let mut jerk = vec![Vec3::ZERO; n];
        let mut reference = vec![Vec3::ZERO; n];
        accelerations_and_jerks_pp(&set, &params, &mut acc, &mut jerk);
        accelerations_pp(&set, &params, &mut reference);
        for i in 0..n {
            assert!((acc[i] - reference[i]).norm() < 1e-12);
        }
    }

    #[test]
    fn static_equal_pair_has_zero_jerk() {
        // bodies at rest: dv = 0 and rv = 0 -> jerk vanishes
        let (a, j) = pair_acceleration_jerk(Vec3::ZERO, Vec3::ZERO, Vec3::X, Vec3::ZERO, 1.0, 0.0);
        assert!(a.norm() > 0.0);
        assert_eq!(j, Vec3::ZERO);
    }

    #[test]
    fn hermite_tracks_the_orbit_far_better_than_leapfrog() {
        // Leapfrog, being symplectic, keeps *energy* bounded better over
        // long runs; Hermite's 4th order wins on *trajectory* accuracy at
        // the same dt — the property collisional codes buy it for.
        let (set0, params) = binary();
        let period = 2.0 * std::f64::consts::PI * (1.0_f64 / 2.0).sqrt(); // T = 2π√(d³/M)
        let steps = 200;
        let dt = period / steps as f64;

        let mut hermite_set = set0.clone();
        let mut hermite = Hermite4::new(params, hermite_set.len());
        hermite.run(&mut hermite_set, dt, steps);

        let mut lf_set = set0.clone();
        let mut engine = DirectPp::new(params);
        leapfrog_run(&mut lf_set, &mut engine, &LeapfrogKdk, dt, steps);

        // after one full period both bodies should be back at the start
        let start = set0.pos()[0];
        let err_h = hermite_set.pos()[0].distance(start);
        let err_l = lf_set.pos()[0].distance(start);
        assert!(err_h < err_l / 20.0, "Hermite orbit error {err_h} should crush leapfrog {err_l}");
        // and its energy drift over this horizon is still excellent
        let e0 = total_energy(&set0, &params);
        let drift_h = ((total_energy(&hermite_set, &params) - e0) / e0).abs();
        assert!(drift_h < 1e-6, "Hermite drift {drift_h}");
    }

    #[test]
    fn hermite_is_fourth_order() {
        // halving dt should shrink the position error ~16x
        let (set0, params) = binary();
        let t_total = 1.0;
        let err_for = |steps: usize| {
            let mut coarse = set0.clone();
            let mut h = Hermite4::new(params, coarse.len());
            h.run(&mut coarse, t_total / steps as f64, steps);
            // reference: much finer Hermite run
            let mut fine = set0.clone();
            let mut hf = Hermite4::new(params, fine.len());
            hf.run(&mut fine, t_total / (steps * 16) as f64, steps * 16);
            coarse.pos()[0].distance(fine.pos()[0])
        };
        let e1 = err_for(50);
        let e2 = err_for(100);
        let ratio = e1 / e2;
        assert!(
            ratio > 10.0 && ratio < 24.0,
            "expected ~16x error reduction, got {ratio} ({e1} -> {e2})"
        );
    }

    #[test]
    fn run_primes_automatically() {
        let set0 = crate::testutil::random_set(20, 5);
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let mut set = set0.clone();
        let mut h = Hermite4::new(params, set.len());
        h.run(&mut set, 1e-3, 3);
        assert!(set.all_finite());
        assert_ne!(set.pos(), set0.pos());
        assert!(h.acc().iter().any(|a| a.norm() > 0.0));
        assert_eq!(h.jerk().len(), set.len());
    }

    #[test]
    #[should_panic(expected = "different system")]
    fn size_mismatch_panics() {
        let mut set = crate::testutil::random_set(10, 6);
        let mut h = Hermite4::new(GravityParams::default(), 5);
        h.step(&mut set, 1e-3);
    }
}
