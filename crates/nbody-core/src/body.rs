//! Particle storage.
//!
//! [`Body`] is the convenient array-of-structs view used at API boundaries;
//! [`ParticleSet`] is the struct-of-arrays storage every hot loop runs on.
//! SoA matters here for the same reason it matters on the GPU the paper
//! targets: the force kernels stream positions and masses with unit stride.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A single gravitating body (AoS view).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Body {
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
    /// Mass (must be non-negative).
    pub mass: f64,
}

impl Body {
    /// Creates a body at rest.
    #[inline]
    pub fn at_rest(pos: Vec3, mass: f64) -> Self {
        Self { pos, vel: Vec3::ZERO, mass }
    }

    /// Creates a body with position, velocity and mass.
    #[inline]
    pub fn new(pos: Vec3, vel: Vec3, mass: f64) -> Self {
        Self { pos, vel, mass }
    }

    /// Momentum `m v`.
    #[inline]
    pub fn momentum(&self) -> Vec3 {
        self.vel * self.mass
    }

    /// Kinetic energy `m v² / 2`.
    #[inline]
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.mass * self.vel.norm_sq()
    }
}

/// Struct-of-arrays particle storage: the canonical in-memory system state.
///
/// Invariants maintained by all constructors and mutators:
/// * `pos`, `vel`, `acc`, `mass` all have the same length;
/// * every mass is finite and non-negative.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParticleSet {
    pos: Vec<Vec3>,
    vel: Vec<Vec3>,
    acc: Vec<Vec3>,
    mass: Vec<f64>,
}

impl ParticleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with capacity reserved for `n` particles.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            acc: Vec::with_capacity(n),
            mass: Vec::with_capacity(n),
        }
    }

    /// Builds a set from an AoS slice of bodies.
    pub fn from_bodies(bodies: &[Body]) -> Self {
        let mut set = Self::with_capacity(bodies.len());
        for b in bodies {
            set.push(*b);
        }
        set
    }

    /// Builds a set from parallel component vectors.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths or any mass is negative
    /// or non-finite.
    pub fn from_parts(pos: Vec<Vec3>, vel: Vec<Vec3>, mass: Vec<f64>) -> Self {
        assert_eq!(pos.len(), vel.len(), "pos/vel length mismatch");
        assert_eq!(pos.len(), mass.len(), "pos/mass length mismatch");
        for (i, &m) in mass.iter().enumerate() {
            assert!(m.is_finite() && m >= 0.0, "invalid mass {m} at index {i}");
        }
        let n = pos.len();
        Self { pos, vel, acc: vec![Vec3::ZERO; n], mass }
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True if the set holds no particles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Appends one body.
    ///
    /// # Panics
    /// Panics if the body's mass is negative or non-finite.
    pub fn push(&mut self, b: Body) {
        assert!(b.mass.is_finite() && b.mass >= 0.0, "invalid mass {}", b.mass);
        self.pos.push(b.pos);
        self.vel.push(b.vel);
        self.acc.push(Vec3::ZERO);
        self.mass.push(b.mass);
    }

    /// Extracts the AoS view (allocates).
    pub fn to_bodies(&self) -> Vec<Body> {
        (0..self.len())
            .map(|i| Body { pos: self.pos[i], vel: self.vel[i], mass: self.mass[i] })
            .collect()
    }

    /// Positions, read-only.
    #[inline]
    pub fn pos(&self) -> &[Vec3] {
        &self.pos
    }

    /// Velocities, read-only.
    #[inline]
    pub fn vel(&self) -> &[Vec3] {
        &self.vel
    }

    /// Accelerations, read-only.
    #[inline]
    pub fn acc(&self) -> &[Vec3] {
        &self.acc
    }

    /// Masses, read-only.
    #[inline]
    pub fn mass(&self) -> &[f64] {
        &self.mass
    }

    /// Positions, mutable.
    #[inline]
    pub fn pos_mut(&mut self) -> &mut [Vec3] {
        &mut self.pos
    }

    /// Velocities, mutable.
    #[inline]
    pub fn vel_mut(&mut self) -> &mut [Vec3] {
        &mut self.vel
    }

    /// Accelerations, mutable.
    #[inline]
    pub fn acc_mut(&mut self) -> &mut [Vec3] {
        &mut self.acc
    }

    /// Simultaneous mutable access to positions and velocities (the drift
    /// step of an integrator needs both).
    #[inline]
    pub fn pos_vel_mut(&mut self) -> (&mut [Vec3], &mut [Vec3]) {
        (&mut self.pos, &mut self.vel)
    }

    /// Simultaneous access to velocities (mutable) and accelerations (read),
    /// for the kick step.
    #[inline]
    pub fn vel_mut_acc(&mut self) -> (&mut [Vec3], &[Vec3]) {
        (&mut self.vel, &self.acc)
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Center of mass, or `None` if total mass is zero.
    pub fn center_of_mass(&self) -> Option<Vec3> {
        let m = self.total_mass();
        if m <= 0.0 {
            return None;
        }
        let weighted: Vec3 = self.pos.iter().zip(&self.mass).map(|(&p, &mi)| p * mi).sum();
        Some(weighted / m)
    }

    /// Mass-weighted mean velocity, or `None` if total mass is zero.
    pub fn center_of_mass_velocity(&self) -> Option<Vec3> {
        let m = self.total_mass();
        if m <= 0.0 {
            return None;
        }
        let weighted: Vec3 = self.vel.iter().zip(&self.mass).map(|(&v, &mi)| v * mi).sum();
        Some(weighted / m)
    }

    /// Shifts positions and velocities so the center of mass sits at the
    /// origin with zero net momentum. No-op on a massless set.
    pub fn recenter(&mut self) {
        let (Some(com), Some(cov)) = (self.center_of_mass(), self.center_of_mass_velocity()) else {
            return;
        };
        for p in &mut self.pos {
            *p -= com;
        }
        for v in &mut self.vel {
            *v -= cov;
        }
    }

    /// Moves the acceleration buffer out of the set (leaving it empty) so a
    /// force engine can fill it without a second allocation; pair with
    /// [`ParticleSet::restore_acc`]. While taken, [`ParticleSet::acc`] is
    /// empty — force engines only read positions and masses, so the
    /// integrator's refresh step can hand the set and its own acceleration
    /// buffer to the engine simultaneously, allocation-free.
    #[inline]
    pub fn take_acc(&mut self) -> Vec<Vec3> {
        std::mem::take(&mut self.acc)
    }

    /// Returns a buffer taken by [`ParticleSet::take_acc`].
    ///
    /// # Panics
    /// Panics if `acc.len() != self.len()` (the length invariant must hold
    /// again once restored).
    #[inline]
    pub fn restore_acc(&mut self, acc: Vec<Vec3>) {
        assert_eq!(acc.len(), self.len(), "restored acceleration buffer length mismatch");
        self.acc = acc;
    }

    /// Zeroes the acceleration buffer.
    pub fn clear_acc(&mut self) {
        self.acc.iter_mut().for_each(|a| *a = Vec3::ZERO);
    }

    /// Axis-aligned bounding box of all positions, or `None` if empty.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let first = *self.pos.first()?;
        let mut lo = first;
        let mut hi = first;
        for &p in &self.pos[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some((lo, hi))
    }

    /// True if every stored component is finite.
    pub fn all_finite(&self) -> bool {
        self.pos.iter().all(|p| p.is_finite())
            && self.vel.iter().all(|v| v.is_finite())
            && self.acc.iter().all(|a| a.is_finite())
            && self.mass.iter().all(|m| m.is_finite())
    }

    /// Packs positions and masses as `[x, y, z, m]` quadruples of `f32` —
    /// the layout the simulated GPU buffers use (float4, as in the paper's
    /// OpenCL kernels).
    pub fn pack_pos_mass_f32(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len() * 4);
        for i in 0..self.len() {
            let p = self.pos[i];
            out.push(p.x as f32);
            out.push(p.y as f32);
            out.push(p.z as f32);
            out.push(self.mass[i] as f32);
        }
        out
    }
}

impl FromIterator<Body> for ParticleSet {
    fn from_iter<I: IntoIterator<Item = Body>>(iter: I) -> Self {
        let mut set = Self::new();
        for b in iter {
            set.push(b);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ParticleSet {
        ParticleSet::from_bodies(&[
            Body::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 2.0),
            Body::new(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -1.0, 0.0), 2.0),
            Body::new(Vec3::new(0.0, 3.0, 0.0), Vec3::ZERO, 1.0),
        ])
    }

    #[test]
    fn body_helpers() {
        let b = Body::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 3.0);
        assert_eq!(b.momentum(), Vec3::new(6.0, 0.0, 0.0));
        assert_eq!(b.kinetic_energy(), 6.0);
        assert_eq!(Body::at_rest(Vec3::X, 1.0).vel, Vec3::ZERO);
    }

    #[test]
    fn roundtrip_bodies() {
        let set = sample_set();
        let bodies = set.to_bodies();
        assert_eq!(ParticleSet::from_bodies(&bodies), set);
    }

    #[test]
    fn from_parts_validates_lengths() {
        let r = std::panic::catch_unwind(|| {
            ParticleSet::from_parts(vec![Vec3::ZERO], vec![], vec![1.0])
        });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "invalid mass")]
    fn negative_mass_rejected() {
        let mut s = ParticleSet::new();
        s.push(Body::at_rest(Vec3::ZERO, -1.0));
    }

    #[test]
    fn center_of_mass_weighted() {
        let set = sample_set();
        // masses 2,2,1 at x=1,-1 and y=3: com = (0, 3/5, 0)
        let com = set.center_of_mass().unwrap();
        assert!((com - Vec3::new(0.0, 0.6, 0.0)).norm() < 1e-12);
        assert_eq!(set.total_mass(), 5.0);
    }

    #[test]
    fn com_of_massless_set_is_none() {
        let set = ParticleSet::from_bodies(&[Body::at_rest(Vec3::X, 0.0)]);
        assert!(set.center_of_mass().is_none());
        assert!(set.center_of_mass_velocity().is_none());
    }

    #[test]
    fn recenter_zeroes_com_and_momentum() {
        let mut set = sample_set();
        // give it net drift
        for v in set.vel_mut() {
            *v += Vec3::new(5.0, 0.0, 0.0);
        }
        set.recenter();
        let com = set.center_of_mass().unwrap();
        let cov = set.center_of_mass_velocity().unwrap();
        assert!(com.norm() < 1e-12);
        assert!(cov.norm() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_all() {
        let set = sample_set();
        let (lo, hi) = set.bounding_box().unwrap();
        assert_eq!(lo, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(hi, Vec3::new(1.0, 3.0, 0.0));
        assert!(ParticleSet::new().bounding_box().is_none());
    }

    #[test]
    fn clear_acc_resets() {
        let mut set = sample_set();
        set.acc_mut()[0] = Vec3::ONE;
        set.clear_acc();
        assert!(set.acc().iter().all(|a| *a == Vec3::ZERO));
    }

    #[test]
    fn pack_layout_is_float4() {
        let set = sample_set();
        let packed = set.pack_pos_mass_f32();
        assert_eq!(packed.len(), set.len() * 4);
        assert_eq!(packed[0], 1.0); // x of particle 0
        assert_eq!(packed[3], 2.0); // mass of particle 0
        assert_eq!(packed[4], -1.0); // x of particle 1
        assert_eq!(packed[11], 1.0); // mass of particle 2
    }

    #[test]
    fn from_iterator_collects() {
        let set: ParticleSet = (0..4).map(|i| Body::at_rest(Vec3::splat(i as f64), 1.0)).collect();
        assert_eq!(set.len(), 4);
        assert_eq!(set.pos()[3], Vec3::splat(3.0));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut set = sample_set();
        assert!(set.all_finite());
        set.pos_mut()[0].x = f64::NAN;
        assert!(!set.all_finite());
    }
}
