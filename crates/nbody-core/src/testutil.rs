//! Deterministic helpers for tests and examples.
//!
//! Uses a small embedded xorshift generator instead of the `rand` crate so
//! that downstream crates can build fixtures without extra dependencies and
//! with bit-identical results everywhere. Real workload generation (Plummer
//! spheres etc.) lives in the `workloads` crate.

use crate::body::{Body, ParticleSet};
use crate::vec3::Vec3;

/// A tiny xorshift64* PRNG: deterministic, seedable, dependency-free.
///
/// Not cryptographic; adequate for scattering test particles.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // take the top 53 bits for a uniform double
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform vector in the cube `[lo, hi)³`.
    pub fn uniform_vec3(&mut self, lo: f64, hi: f64) -> Vec3 {
        Vec3::new(self.uniform(lo, hi), self.uniform(lo, hi), self.uniform(lo, hi))
    }
}

/// A deterministic cloud of `n` particles in the unit cube with masses in
/// `[0.5, 1.5)` and small random velocities. Fully determined by `seed`.
pub fn random_set(n: usize, seed: u64) -> ParticleSet {
    let mut rng = XorShift64::new(seed);
    (0..n)
        .map(|_| {
            Body::new(
                rng.uniform_vec3(-0.5, 0.5),
                rng.uniform_vec3(-0.05, 0.05),
                rng.uniform(0.5, 1.5),
            )
        })
        .collect()
}

/// A deterministic equal-mass cloud; total mass is exactly `n as f64`.
pub fn equal_mass_set(n: usize, seed: u64) -> ParticleSet {
    let mut rng = XorShift64::new(seed);
    (0..n).map(|_| Body::new(rng.uniform_vec3(-0.5, 0.5), Vec3::ZERO, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = XorShift64::new(99);
        let mut b = XorShift64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_zero_seed_ok() {
        let mut r = XorShift64::new(0);
        // must not get stuck at zero
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = XorShift64::new(5);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn random_set_shape() {
        let s = random_set(17, 1);
        assert_eq!(s.len(), 17);
        assert!(s.all_finite());
        assert!(s.mass().iter().all(|&m| (0.5..1.5).contains(&m)));
        // determinism
        assert_eq!(random_set(17, 1), s);
        assert_ne!(random_set(17, 2), s);
    }

    #[test]
    fn equal_mass_total() {
        let s = equal_mass_set(32, 4);
        assert!((s.total_mass() - 32.0).abs() < 1e-12);
    }
}
