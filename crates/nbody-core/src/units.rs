//! Standard N-body (Hénon) units.
//!
//! The stellar-dynamics convention (Heggie & Mathieu): `G = 1`, total mass
//! `M = 1`, total energy `E = −1/4` (so the virial radius is 1 and the
//! crossing time is `2√2`). Normalizing every workload to these units makes
//! time steps, softening lengths, and energy drifts comparable across
//! initial conditions — which is why production N-body codes do it on input.

use crate::body::ParticleSet;
use crate::energy::{kinetic_energy, virial_ratio};
use crate::gravity::{potential_energy, GravityParams};
use serde::{Deserialize, Serialize};

/// Target total energy of the standard units.
pub const STANDARD_ENERGY: f64 = -0.25;

/// The scale factors applied by [`to_standard_units`], kept so results can
/// be mapped back to the original units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitsTransform {
    /// Mass scale: new mass = old mass / `mass_scale`.
    pub mass_scale: f64,
    /// Length scale: new position = old position / `length_scale`.
    pub length_scale: f64,
    /// Velocity scale: new velocity = old velocity / `velocity_scale`.
    pub velocity_scale: f64,
}

impl UnitsTransform {
    /// Time scale implied by the length and velocity scales.
    pub fn time_scale(&self) -> f64 {
        self.length_scale / self.velocity_scale
    }
}

/// Errors from unit normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitsError {
    /// The system has no mass.
    Massless,
    /// The system is unbound (E ≥ 0): no bound-units normalization exists.
    Unbound,
}

impl std::fmt::Display for UnitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitsError::Massless => write!(f, "cannot normalize a massless system"),
            UnitsError::Unbound => write!(f, "cannot normalize an unbound system (E >= 0)"),
        }
    }
}

impl std::error::Error for UnitsError {}

/// Rescales `set` in place to standard units (`M = 1`, `E = −1/4`, `G = 1`),
/// preserving the virial ratio. The caller's softening must be rescaled by
/// the returned length scale too.
///
/// Uses unsoftened potential for the energy bookkeeping (the convention).
pub fn to_standard_units(set: &mut ParticleSet) -> Result<UnitsTransform, UnitsError> {
    let m_total = set.total_mass();
    if m_total <= 0.0 {
        return Err(UnitsError::Massless);
    }
    // 1. mass normalization
    let mass_scale = m_total;
    let bodies: Vec<_> = set
        .to_bodies()
        .iter()
        .map(|b| crate::body::Body::new(b.pos, b.vel, b.mass / mass_scale))
        .collect();
    *set = ParticleSet::from_bodies(&bodies);

    // 2. energy normalization preserving the virial ratio Q = -2T/U:
    //    E = U (1 − Q/2) ⇒ U' = E₀ / (1 − Q/2), T' = E₀ − U'
    let params = GravityParams { g: 1.0, softening: 0.0 };
    let u = potential_energy(set, &params);
    let t = kinetic_energy(set);
    let e = u + t;
    if e >= 0.0 {
        return Err(UnitsError::Unbound);
    }
    let q = virial_ratio(set, &params);
    let u_target = STANDARD_ENERGY / (1.0 - q / 2.0);
    // U scales as 1/length: dividing positions by λ multiplies U by λ
    let length_scale = u_target / u; // λ⁻¹... careful: U' = U * λ where r' = r/λ ⇒ λ = U'/U
    let lambda = length_scale; // positions divided by 1/λ... keep algebra explicit below
    let t_target = STANDARD_ENERGY - u_target;
    let mu_sq = if t > 0.0 { t_target / t } else { 0.0 };
    let mu = mu_sq.max(0.0).sqrt();

    // apply: r' = r * (U/U') ... since U' = U λ with r' = r / λ, we need
    // r' = r * (U / U') i.e. division by (U'/U)
    let pos_div = lambda; // r' = r / lambda
    for p in set.pos_mut() {
        *p /= pos_div;
    }
    for v in set.vel_mut() {
        *v *= mu;
    }

    Ok(UnitsTransform {
        mass_scale,
        length_scale: pos_div,
        velocity_scale: if mu > 0.0 { 1.0 / mu } else { f64::INFINITY },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::total_energy;
    use crate::testutil::random_set;

    fn params() -> GravityParams {
        GravityParams { g: 1.0, softening: 0.0 }
    }

    #[test]
    fn normalizes_mass_and_energy() {
        let mut set = random_set(100, 1);
        // give it some motion so T > 0
        for v in set.vel_mut() {
            *v *= 3.0;
        }
        // the virial ratio that must be preserved is the one of the
        // mass-normalized system (Q is not invariant under mass scaling:
        // T ~ m, U ~ m²)
        let q_expected = {
            let m = set.total_mass();
            let normalized: ParticleSet = set
                .to_bodies()
                .iter()
                .map(|b| crate::body::Body::new(b.pos, b.vel, b.mass / m))
                .collect();
            virial_ratio(&normalized, &params())
        };
        let tf = to_standard_units(&mut set).unwrap();
        assert!((set.total_mass() - 1.0).abs() < 1e-12);
        let e = total_energy(&set, &params());
        assert!((e - STANDARD_ENERGY).abs() < 1e-9, "E = {e}");
        let q_after = virial_ratio(&set, &params());
        assert!((q_after - q_expected).abs() < 1e-9, "{q_expected} -> {q_after}");
        assert!(tf.time_scale().is_finite());
    }

    #[test]
    fn plummer_like_cloud_lands_in_standard_units() {
        let mut set = random_set(200, 2);
        to_standard_units(&mut set).unwrap();
        let e = total_energy(&set, &params());
        assert!((e - STANDARD_ENERGY).abs() < 1e-9);
        // idempotent up to numerics
        let tf2 = to_standard_units(&mut set).unwrap();
        assert!((tf2.mass_scale - 1.0).abs() < 1e-9);
        assert!((tf2.length_scale - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cold_system_normalizes_with_zero_velocities() {
        let set0 = crate::testutil::equal_mass_set(50, 3); // v = 0 everywhere
        let mut set = set0;
        let tf = to_standard_units(&mut set).unwrap();
        let e = total_energy(&set, &params());
        assert!((e - STANDARD_ENERGY).abs() < 1e-9);
        assert!(tf.velocity_scale.is_infinite()); // no velocities to scale
    }

    #[test]
    fn massless_rejected() {
        let mut set =
            ParticleSet::from_bodies(&[crate::body::Body::at_rest(crate::vec3::Vec3::X, 0.0)]);
        assert_eq!(to_standard_units(&mut set).unwrap_err(), UnitsError::Massless);
    }

    #[test]
    fn unbound_rejected() {
        // two bodies flying apart fast: E > 0
        let mut set = ParticleSet::from_bodies(&[
            crate::body::Body::new(
                crate::vec3::Vec3::new(-1.0, 0.0, 0.0),
                crate::vec3::Vec3::new(-10.0, 0.0, 0.0),
                1.0,
            ),
            crate::body::Body::new(
                crate::vec3::Vec3::new(1.0, 0.0, 0.0),
                crate::vec3::Vec3::new(10.0, 0.0, 0.0),
                1.0,
            ),
        ]);
        let err = to_standard_units(&mut set).unwrap_err();
        assert_eq!(err, UnitsError::Unbound);
        assert!(err.to_string().contains("unbound"));
    }

    use crate::body::ParticleSet;
}
