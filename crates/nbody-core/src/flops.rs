//! Flop-count conventions and GFLOPS arithmetic.
//!
//! GPU N-body papers disagree on how many floating-point operations one
//! body-body interaction "costs": Nyland et al. count **20** flops for the
//! arithmetic actually executed, while the GRAPE tradition (followed by
//! Hamada and by this paper's 431 GFLOPS figure) counts **38** flops,
//! charging the reciprocal square root at its classical polynomial-evaluation
//! cost. The paper quotes both ("300 GFLOPS, 408/431 with the 38-flop
//! convention"); the harness therefore reports both conventions explicitly.

use serde::{Deserialize, Serialize};

/// Flops charged per pairwise interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlopConvention {
    /// 20 flops/interaction — arithmetic-as-executed (Nyland, GPU Gems 3).
    Executed20,
    /// 38 flops/interaction — GRAPE convention charging rsqrt at ~10 flops
    /// (Hamada; the convention behind the paper's 431 GFLOPS).
    #[default]
    Grape38,
    /// A custom per-interaction cost.
    Custom(u32),
}

impl FlopConvention {
    /// Flops per interaction under this convention.
    pub fn flops_per_interaction(self) -> u64 {
        match self {
            FlopConvention::Executed20 => 20,
            FlopConvention::Grape38 => 38,
            FlopConvention::Custom(f) => u64::from(f),
        }
    }
}

/// Total interactions of a direct PP evaluation on `n` bodies (self
/// interactions excluded on the host; GPU kernels include the softened
/// self-term like the original CUDA kernel, which is why device counters may
/// report `n²`).
pub fn pp_interactions(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1)
}

/// Interactions counted by a device-style kernel that does not skip `i == j`
/// (the softened kernel makes the self term harmlessly zero).
pub fn pp_interactions_with_self(n: usize) -> u64 {
    let n = n as u64;
    n * n
}

/// GFLOPS given an interaction count, a convention, and elapsed seconds.
pub fn gflops(interactions: u64, convention: FlopConvention, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    (interactions as f64) * (convention.flops_per_interaction() as f64) / seconds / 1e9
}

/// A labelled throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Pairwise interactions evaluated.
    pub interactions: u64,
    /// Wall (or simulated-device) seconds.
    pub seconds: f64,
}

impl Throughput {
    /// GFLOPS under `convention`.
    pub fn gflops(&self, convention: FlopConvention) -> f64 {
        gflops(self.interactions, convention, self.seconds)
    }

    /// Interactions per second.
    pub fn interactions_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.interactions as f64 / self.seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convention_values() {
        assert_eq!(FlopConvention::Executed20.flops_per_interaction(), 20);
        assert_eq!(FlopConvention::Grape38.flops_per_interaction(), 38);
        assert_eq!(FlopConvention::Custom(25).flops_per_interaction(), 25);
        assert_eq!(FlopConvention::default(), FlopConvention::Grape38);
    }

    #[test]
    fn interaction_counts() {
        assert_eq!(pp_interactions(0), 0);
        assert_eq!(pp_interactions(1), 0);
        assert_eq!(pp_interactions(4), 12);
        assert_eq!(pp_interactions_with_self(4), 16);
        assert_eq!(pp_interactions(1024), 1024 * 1023);
    }

    #[test]
    fn gflops_arithmetic() {
        // 1e9 interactions * 38 flops in 1 s = 38 GFLOPS
        assert!((gflops(1_000_000_000, FlopConvention::Grape38, 1.0) - 38.0).abs() < 1e-9);
        // 20-flop convention scaled
        assert!((gflops(1_000_000_000, FlopConvention::Executed20, 2.0) - 10.0).abs() < 1e-9);
        assert!(gflops(10, FlopConvention::Grape38, 0.0).is_infinite());
    }

    #[test]
    fn throughput_helpers() {
        let t = Throughput { interactions: 2_000_000, seconds: 0.5 };
        assert!((t.interactions_per_second() - 4e6).abs() < 1e-3);
        let g38 = t.gflops(FlopConvention::Grape38);
        let g20 = t.gflops(FlopConvention::Executed20);
        assert!((g38 / g20 - 38.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn paper_peak_figure_sanity() {
        // The paper's 431 GFLOPS at 38 flops/interaction implies ~11.3 G
        // interactions/s. Check the arithmetic is mutually consistent.
        let ips = 431e9 / 38.0;
        let t = Throughput { interactions: ips as u64, seconds: 1.0 };
        assert!((t.gflops(FlopConvention::Grape38) - 431.0).abs() < 0.5);
    }
}
