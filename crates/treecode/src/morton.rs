//! Morton (Z-order) codes.
//!
//! The multiple-walk method needs spatially coherent groups of bodies. The
//! default grouping uses octree order (each node owns a contiguous range of
//! the permutation), which is itself a Morton order induced by the tree.
//! This module provides explicit 63-bit Morton codes (21 bits per axis) as
//! an alternative: they allow grouping *without* building the tree first
//! (useful when the tree and the walks are produced by different pipeline
//! stages) and are the standard tool for linearizing octrees in GPU tree
//! builds (future-work direction of the paper's lineage).

use nbody_core::body::ParticleSet;
use nbody_core::vec3::Vec3;

/// Bits per axis in a Morton code.
pub const BITS_PER_AXIS: u32 = 21;

/// Spreads the low 21 bits of `v` so consecutive bits land 3 apart — the
/// classic magic-constant cascade.
#[inline]
fn spread(v: u64) -> u64 {
    let mut y = v & 0x1F_FFFF; // 21 bits
    y = (y | (y << 32)) & 0x001F_0000_0000_FFFF;
    y = (y | (y << 16)) & 0x001F_0000_FF00_00FF;
    y = (y | (y << 8)) & 0x100F_00F0_0F00_F00F;
    y = (y | (y << 4)) & 0x10C3_0C30_C30C_30C3;
    y = (y | (y << 2)) & 0x1249_2492_4924_9249;
    y
}

/// Interleaves three 21-bit coordinates into a 63-bit Morton code
/// (x in the lowest interleaved position).
#[inline]
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << BITS_PER_AXIS));
    debug_assert!(y < (1 << BITS_PER_AXIS));
    debug_assert!(z < (1 << BITS_PER_AXIS));
    spread(u64::from(x)) | (spread(u64::from(y)) << 1) | (spread(u64::from(z)) << 2)
}

/// Inverse of [`spread`].
#[inline]
fn compact(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x as u32
}

/// Decodes a Morton code back to its three 21-bit coordinates.
#[inline]
pub fn demorton3(code: u64) -> (u32, u32, u32) {
    (compact(code), compact(code >> 1), compact(code >> 2))
}

/// Quantizes a position inside `(lo, hi)` to the 21-bit grid of each axis.
/// Positions outside the box are clamped.
pub fn quantize(p: Vec3, lo: Vec3, hi: Vec3) -> (u32, u32, u32) {
    let scale = (1_u64 << BITS_PER_AXIS) as f64 - 1.0;
    let q = |v: f64, l: f64, h: f64| -> u32 {
        if h <= l {
            return 0;
        }
        let t = ((v - l) / (h - l)).clamp(0.0, 1.0);
        (t * scale) as u32
    };
    (q(p.x, lo.x, hi.x), q(p.y, lo.y, hi.y), q(p.z, lo.z, hi.z))
}

/// Morton code of a position within a bounding box.
pub fn morton_of(p: Vec3, lo: Vec3, hi: Vec3) -> u64 {
    let (x, y, z) = quantize(p, lo, hi);
    morton3(x, y, z)
}

/// Particle indices sorted by Morton code over the set's bounding box.
/// Stable for equal codes (original index breaks ties), hence fully
/// deterministic — and thread-count invariant: `(code, index)` pairs are
/// unique, so sorted chunks merged by that total order reproduce the serial
/// full sort exactly, no matter how the chunks were cut.
pub fn morton_order(set: &ParticleSet) -> Vec<u32> {
    let n = set.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let Some((lo, hi)) = set.bounding_box() else {
        return order;
    };
    let pos = set.pos();
    let mut runs: Vec<Vec<(u64, u32)>> = par::map_chunks(n, |range| {
        let mut keyed: Vec<(u64, u32)> =
            range.map(|i| (morton_of(pos[i], lo, hi), i as u32)).collect();
        keyed.sort_unstable();
        keyed
    });
    while runs.len() > 1 {
        let mut pairs = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            let b = it.next();
            pairs.push((a, b));
        }
        runs = par::run_tasks(
            pairs
                .into_iter()
                .map(|(a, b)| move || if let Some(b) = b { merge_runs(a, b) } else { a })
                .collect(),
        );
    }
    if let Some(keyed) = runs.pop() {
        for (slot, (_, i)) in keyed.into_iter().enumerate() {
            order[slot] = i;
        }
    }
    order
}

/// Incrementally re-sorts a Morton order **in place**, reusing the previous
/// step's permutation and pooled key buffers from `scratch`.
///
/// Bodies barely move between integrator steps, so keying the *previous*
/// order leaves a near-sorted sequence — a handful of long ascending runs.
/// An adaptive natural merge sort ([`natural_merge_sort`]) then costs
/// `O(n log r)` for `r` runs (one verification pass when the order is still
/// sorted) instead of a full `O(n log n)` sort, and no heap allocation once
/// the buffers are warm.
///
/// The `(code, index)` keys are unique, so any correct sort yields the same
/// permutation: the result is always identical to a fresh
/// [`morton_order`]. If `order` does not match the set's population (first
/// call, or bodies added/removed), it is reset to the identity before
/// keying, which degenerates to a full sort.
pub fn morton_order_incremental(
    set: &ParticleSet,
    order: &mut Vec<u32>,
    scratch: &mut par::arena::Scratch,
) {
    let n = set.len();
    if order.len() != n {
        order.clear();
        order.extend(0..n as u32);
    }
    let Some((lo, hi)) = set.bounding_box() else {
        return;
    };
    let pos = set.pos();
    let mut keyed: Vec<(u64, u32)> = scratch.take("morton-keyed");
    let mut tmp: Vec<(u64, u32)> = scratch.take("morton-tmp");
    keyed.extend(order.iter().map(|&i| (morton_of(pos[i as usize], lo, hi), i)));
    natural_merge_sort(&mut keyed, &mut tmp);
    for (slot, &(_, i)) in keyed.iter().enumerate() {
        order[slot] = i;
    }
    scratch.put("morton-keyed", keyed);
    scratch.put("morton-tmp", tmp);
}

/// Bottom-up natural merge sort: detects the existing ascending runs and
/// merges adjacent pairs until one run remains. Already-sorted input costs a
/// single scan; `k` runs cost `⌈log₂ k⌉` passes. `tmp` is resized (not
/// reallocated, once warm) to serve as the ping-pong buffer.
fn natural_merge_sort(keys: &mut Vec<(u64, u32)>, tmp: &mut Vec<(u64, u32)>) {
    let n = keys.len();
    if n < 2 {
        return;
    }
    tmp.clear();
    tmp.resize(n, (0, 0));
    while !keys.windows(2).all(|w| w[0] <= w[1]) {
        // one pass: merge adjacent runs of `keys` into `tmp`
        let mut out = 0;
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && keys[j - 1] <= keys[j] {
                j += 1;
            }
            if j == n {
                // trailing lone run: copy through
                tmp[out..out + (n - i)].copy_from_slice(&keys[i..n]);
                break;
            }
            let mut k = j + 1;
            while k < n && keys[k - 1] <= keys[k] {
                k += 1;
            }
            let (mut a, mut b) = (i, j);
            while a < j && b < k {
                if keys[a] <= keys[b] {
                    tmp[out] = keys[a];
                    a += 1;
                } else {
                    tmp[out] = keys[b];
                    b += 1;
                }
                out += 1;
            }
            tmp[out..out + (j - a)].copy_from_slice(&keys[a..j]);
            out += j - a;
            tmp[out..out + (k - b)].copy_from_slice(&keys[b..k]);
            out += k - b;
            i = k;
        }
        std::mem::swap(keys, tmp);
    }
}

/// Morton keys of the bodies of `set` listed in `order` (typically a tree
/// order or a [`morton_order`]), over the set's bounding box. Duplicate and
/// clamped positions produce *equal* keys — the shard decomposition treats
/// equal-key runs as atomic (see [`eligible_walk_splits`]).
pub fn keys_in_order(set: &ParticleSet, order: &[u32]) -> Vec<u64> {
    let Some((lo, hi)) = set.bounding_box() else {
        return vec![0; order.len()];
    };
    let pos = set.pos();
    order.iter().map(|&i| morton_of(pos[i as usize], lo, hi)).collect()
}

/// Walk-grid positions where a shard boundary may be cut.
///
/// A split at walk boundary `w` (body position `w * walk_size`) is eligible
/// only when the Morton keys on either side differ: bodies with identical
/// (duplicate or clamped) keys must land in one shard, so an equal-key run
/// is never divided. Within such a run the ordering is already deterministic
/// — both [`morton_order`] and the octree's stable bucketing tie-break on
/// the original body index — so shard contents are a pure function of the
/// key sequence. The degenerate all-same-position workload has no eligible
/// split at all and collapses to a single shard regardless of the requested
/// shard count.
///
/// Returns eligible split positions in *walk indices* (exclusive prefix
/// ends), strictly between `0` and `num_walks`.
pub fn eligible_walk_splits(keys: &[u64], walk_size: usize) -> Vec<usize> {
    assert!(walk_size > 0, "walk_size must be positive");
    let num_walks = keys.len().div_ceil(walk_size);
    (1..num_walks)
        .filter(|&w| {
            let p = w * walk_size;
            keys[p - 1] != keys[p]
        })
        .collect()
}

/// Merges two sorted runs of unique `(code, index)` pairs.
fn merge_runs(a: Vec<(u64, u32)>, b: Vec<(u64, u32)>) -> Vec<(u64, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia] <= b[ib] {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::testutil::random_set;

    #[test]
    fn encode_decode_roundtrip() {
        for &(x, y, z) in &[
            (0_u32, 0, 0),
            (1, 2, 3),
            (0x1F_FFFF, 0x1F_FFFF, 0x1F_FFFF),
            (0x15_5555, 0x0A_AAAA, 0x10_0001),
        ] {
            let code = morton3(x, y, z);
            assert_eq!(demorton3(code), (x, y, z), "({x},{y},{z})");
        }
    }

    #[test]
    fn roundtrip_many_random_codes() {
        let mut rng = nbody_core::testutil::XorShift64::new(7);
        for _ in 0..10_000 {
            let x = (rng.next_u64() as u32) & 0x1F_FFFF;
            let y = (rng.next_u64() as u32) & 0x1F_FFFF;
            let z = (rng.next_u64() as u32) & 0x1F_FFFF;
            assert_eq!(demorton3(morton3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn morton_orders_by_top_octant_first() {
        // the most significant interleaved bits are the root octant: all
        // codes of the low half of z sort before the high half
        let lo = morton3(0x1F_FFFF, 0x1F_FFFF, 0x0F_FFFF); // z high bit 0
        let hi = morton3(0, 0, 0x10_0000); // z high bit 1
        assert!(lo < hi);
    }

    #[test]
    fn quantization_clamps_and_scales() {
        let lo = Vec3::ZERO;
        let hi = Vec3::ONE;
        assert_eq!(quantize(Vec3::ZERO, lo, hi).0, 0);
        let (qx, _, _) = quantize(Vec3::ONE, lo, hi);
        assert_eq!(qx, (1 << BITS_PER_AXIS) - 1);
        // out-of-box clamps
        assert_eq!(quantize(Vec3::splat(-5.0), lo, hi), (0, 0, 0));
        // degenerate box is safe
        assert_eq!(quantize(Vec3::X, Vec3::ZERO, Vec3::ZERO), (0, 0, 0));
    }

    #[test]
    fn morton_order_is_a_permutation() {
        let set = random_set(500, 3);
        let order = morton_order(&set);
        let mut seen = vec![false; 500];
        for &i in &order {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn morton_order_groups_are_spatially_tight() {
        // chunks of the Morton order must be much tighter than random chunks
        let set = random_set(4096, 9);
        let order = morton_order(&set);
        let pos = set.pos();
        let chunk_extent = |ids: &[u32]| -> f64 {
            let mut lo = pos[ids[0] as usize];
            let mut hi = lo;
            for &i in ids {
                lo = lo.min(pos[i as usize]);
                hi = hi.max(pos[i as usize]);
            }
            (hi - lo).max_component()
        };
        let morton_avg: f64 =
            order.chunks(64).map(chunk_extent).sum::<f64>() / order.chunks(64).count() as f64;
        let naive: Vec<u32> = (0..4096).collect();
        let naive_avg: f64 =
            naive.chunks(64).map(chunk_extent).sum::<f64>() / naive.chunks(64).count() as f64;
        assert!(
            morton_avg < naive_avg * 0.5,
            "morton chunks {morton_avg} should be much tighter than naive {naive_avg}"
        );
    }

    #[test]
    fn empty_set_orders_trivially() {
        let set = ParticleSet::new();
        assert!(morton_order(&set).is_empty());
        let mut order = Vec::new();
        let mut scratch = par::arena::Scratch::new();
        morton_order_incremental(&set, &mut order, &mut scratch);
        assert!(order.is_empty());
    }

    #[test]
    fn incremental_matches_full_sort_from_cold_start() {
        let set = random_set(777, 21);
        let mut order = Vec::new();
        let mut scratch = par::arena::Scratch::new();
        morton_order_incremental(&set, &mut order, &mut scratch);
        assert_eq!(order, morton_order(&set));
    }

    #[test]
    fn incremental_matches_full_sort_after_drift() {
        let mut set = random_set(1000, 22);
        let mut order = Vec::new();
        let mut scratch = par::arena::Scratch::new();
        morton_order_incremental(&set, &mut order, &mut scratch);
        let mut rng = nbody_core::testutil::XorShift64::new(23);
        for _ in 0..5 {
            for p in set.pos_mut() {
                *p += rng.uniform_vec3(-1e-3, 1e-3);
            }
            morton_order_incremental(&set, &mut order, &mut scratch);
            assert_eq!(order, morton_order(&set), "incremental re-sort diverged from full sort");
        }
    }

    #[test]
    fn natural_merge_sorts_adversarial_inputs() {
        let mut rng = nbody_core::testutil::XorShift64::new(24);
        for n in [0_usize, 1, 2, 3, 17, 256, 1000] {
            // reverse-sorted (maximal run count) and random
            for reverse in [true, false] {
                let mut keys: Vec<(u64, u32)> = (0..n)
                    .map(|i| {
                        if reverse {
                            ((n - i) as u64, i as u32)
                        } else {
                            (rng.next_u64() % 64, i as u32) // many duplicate codes
                        }
                    })
                    .collect();
                let mut expected = keys.clone();
                expected.sort_unstable();
                let mut tmp = Vec::new();
                natural_merge_sort(&mut keys, &mut tmp);
                assert_eq!(keys, expected, "n={n} reverse={reverse}");
            }
        }
    }

    #[test]
    fn eligible_splits_skip_equal_key_runs() {
        // keys: [1,1,1,1, 2,2,2,2, 2,2,3,3] with walk_size 4:
        // boundary 1 (pos 4): 1 != 2 eligible; boundary 2 (pos 8): 2 == 2 not
        let keys = vec![1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3];
        assert_eq!(eligible_walk_splits(&keys, 4), vec![1]);
        // walk_size 2: boundaries at 2,4,6,8,10 → eligible at 4 (1|2), 10 (2|3)
        assert_eq!(eligible_walk_splits(&keys, 2), vec![2, 5]);
    }

    #[test]
    fn all_same_position_has_no_eligible_split() {
        let bodies: Vec<nbody_core::body::Body> =
            (0..64).map(|_| nbody_core::body::Body::at_rest(Vec3::ONE, 1.0)).collect();
        let set = ParticleSet::from_bodies(&bodies);
        let order: Vec<u32> = (0..64).collect();
        let keys = keys_in_order(&set, &order);
        assert!(keys.windows(2).all(|w| w[0] == w[1]), "coincident points share a key");
        assert!(eligible_walk_splits(&keys, 8).is_empty());
    }

    #[test]
    fn keys_in_order_follow_the_permutation() {
        let set = random_set(128, 30);
        let order = morton_order(&set);
        let keys = keys_in_order(&set, &order);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "morton order sorts keys");
        // equal keys keep ascending body index: (key, index) pairs are sorted
        let pairs: Vec<(u64, u32)> = keys.iter().copied().zip(order.iter().copied()).collect();
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "tie-break on body index");
        // empty set degenerates safely
        assert!(keys_in_order(&ParticleSet::new(), &[]).is_empty());
    }

    use nbody_core::body::ParticleSet;
}
