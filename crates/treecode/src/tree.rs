//! Octree construction and center-of-mass multipoles.
//!
//! The Barnes-Hut tree (paper §2.2): space is recursively cut into octants
//! until each cell holds at most `leaf_capacity` bodies; every cell stores
//! its total mass and center of mass, which stand in for the bodies it
//! contains whenever the multipole acceptance criterion passes.
//!
//! The tree is stored as a flat node vector (children always appear after
//! their parent, so a single reverse sweep computes multipoles bottom-up),
//! and particle indices are reordered so each node owns a *contiguous* range
//! of the [`Octree::order`] permutation — that contiguity is what the
//! multiple-walk grouping exploits later.

use nbody_core::body::ParticleSet;
use nbody_core::vec3::Vec3;

/// Sentinel for "no child".
pub const NO_CHILD: u32 = u32::MAX;

/// Hard depth cap: guards against coincident points producing unbounded
/// recursion. 2^-64 of the root cube is far below f64 resolution anyway.
const MAX_DEPTH: u32 = 64;

/// One octree cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Geometric center of the cell.
    pub center: Vec3,
    /// Half the side length of the (cubic) cell.
    pub half: f64,
    /// Center of mass of the bodies in the cell.
    pub com: Vec3,
    /// Total mass of the bodies in the cell.
    pub mass: f64,
    /// Start of this cell's range in [`Octree::order`].
    pub body_start: u32,
    /// Number of bodies in the cell.
    pub body_count: u32,
    /// Child node indices per octant, [`NO_CHILD`] where empty.
    pub children: [u32; 8],
    /// True if the node stores bodies directly.
    pub is_leaf: bool,
    /// Depth in the tree (root = 0).
    pub depth: u32,
}

impl Node {
    /// Side length of the cell (the `l` of the paper's Eq. 3).
    #[inline]
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Iterator over present children.
    pub fn child_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.children.iter().copied().filter(|&c| c != NO_CHILD)
    }
}

/// Build parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum bodies per leaf. The paper's GPU walks favour bigger leaves
    /// than a classic CPU treecode; 8–32 are typical.
    pub leaf_capacity: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { leaf_capacity: 16 }
    }
}

/// A built Barnes-Hut octree over one snapshot of a particle set.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    order: Vec<u32>,
    params: TreeParams,
}

impl Octree {
    /// Builds the tree for the current positions of `set`.
    ///
    /// An empty set produces a tree with a single empty root.
    pub fn build(set: &ParticleSet, params: TreeParams) -> Self {
        assert!(params.leaf_capacity >= 1, "leaf capacity must be >= 1");
        let n = set.len();
        let mut tree =
            Self { nodes: Vec::with_capacity(2 * n.max(1)), order: Vec::with_capacity(n), params };
        let mut scratch = par::arena::Scratch::new();
        tree.rebuild(set, &mut scratch);
        tree
    }

    /// Assembles a tree from an externally produced node array and body
    /// permutation — the handoff point for alternative builders (the GPU
    /// tree pipeline constructs nodes level by level over Morton-sorted keys
    /// and materializes its host mirror through here). Callers own the
    /// invariants: `nodes` must be in DFS preorder with index 0 the root,
    /// and `order` a permutation of `0..n` consistent with the node body
    /// ranges. [`Octree::check_invariants`] verifies both in tests.
    pub fn from_parts(nodes: Vec<Node>, order: Vec<u32>, params: TreeParams) -> Self {
        assert!(!nodes.is_empty(), "a tree needs at least a root node");
        Self { nodes, order, params }
    }

    /// Rebuilds the tree **in place** for the current positions of `set`,
    /// reusing the node pool, the permutation buffer, and the bucketing
    /// scratch from `scratch` — after a warmup build, a steady-state rebuild
    /// of a same-sized set performs no heap allocation at one thread.
    ///
    /// The result is identical to a fresh [`Octree::build`] with the same
    /// parameters (same algorithm, same DFS preorder node numbering); only
    /// the allocation behavior differs. With more than one `par` thread the
    /// parallel octant fan-out is used, whose task-local buffers still
    /// allocate (the zero-allocation invariant is scoped to serial steps;
    /// see DESIGN.md §9).
    pub fn rebuild(&mut self, set: &ParticleSet, scratch: &mut par::arena::Scratch) {
        let n = set.len();
        self.order.clear();
        self.order.extend(0..n as u32);
        self.nodes.clear();

        let (center, half) = root_cube(set);
        self.nodes.push(Node {
            center,
            half,
            com: Vec3::ZERO,
            mass: 0.0,
            body_start: 0,
            body_count: n as u32,
            children: [NO_CHILD; 8],
            is_leaf: true,
            depth: 0,
        });

        if n > self.params.leaf_capacity {
            if par::threads() == 1 {
                let mut bucket = scratch.take::<u32>("octree-bucket");
                subdivide(0, &mut self.nodes, &mut self.order, 0, set, &self.params, &mut bucket);
                scratch.put("octree-bucket", bucket);
            } else {
                subdivide_root_parallel(&mut self.nodes, &mut self.order, set, &self.params);
            }
        }

        self.compute_multipoles(set);
    }

    /// All nodes; index 0 is the root.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Particle indices in tree order: every node's bodies are the
    /// contiguous slice `order[body_start .. body_start + body_count]`.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Build parameters used.
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// Bodies of `node` as original particle indices.
    pub fn bodies_of(&self, node: &Node) -> &[u32] {
        let s = node.body_start as usize;
        &self.order[s..s + node.body_count as usize]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Refits the tree to moved positions **without rebuilding topology**:
    /// recomputes every node's mass and center of mass bottom-up while
    /// keeping the cell geometry and the body partition.
    ///
    /// Valid while bodies have not drifted far across cell boundaries —
    /// the standard cheap-update between full rebuilds (tree *update* in
    /// the N-body literature). [`Octree::check_invariants`] may fail on a
    /// refitted tree (bodies can sit slightly outside their original cell);
    /// the force error grows smoothly with the drift.
    ///
    /// # Panics
    /// Panics if `set` has a different body count than the tree was built
    /// for.
    pub fn refit(&mut self, set: &ParticleSet) {
        assert_eq!(
            self.order.len(),
            set.len(),
            "refit requires the same body count the tree was built with"
        );
        self.compute_multipoles(set);
    }

    fn compute_multipoles(&mut self, set: &ParticleSet) {
        let pos = set.pos();
        let mass = set.mass();
        // children are created after parents, so reverse order is bottom-up
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].is_leaf {
                let node = &self.nodes[i];
                let mut m = 0.0;
                let mut weighted = Vec3::ZERO;
                for &b in self.bodies_of(node) {
                    let b = b as usize;
                    m += mass[b];
                    weighted += pos[b] * mass[b];
                }
                let node = &mut self.nodes[i];
                node.mass = m;
                node.com = if m > 0.0 { weighted / m } else { node.center };
            } else {
                let mut m = 0.0;
                let mut weighted = Vec3::ZERO;
                for c in 0..8 {
                    let ci = self.nodes[i].children[c];
                    if ci != NO_CHILD {
                        let child = &self.nodes[ci as usize];
                        m += child.mass;
                        weighted += child.com * child.mass;
                    }
                }
                let node = &mut self.nodes[i];
                node.mass = m;
                node.com = if m > 0.0 { weighted / m } else { node.center };
            }
        }
    }

    /// Structural invariant check, used by tests and property tests:
    /// ranges partition correctly, bodies lie inside their cells, multipoles
    /// sum up, children nest geometrically.
    pub fn check_invariants(&self, set: &ParticleSet) -> Result<(), String> {
        let pos = set.pos();
        if self.order.len() != set.len() {
            return Err("order length mismatch".into());
        }
        let mut seen = vec![false; set.len()];
        for &b in &self.order {
            let b = b as usize;
            if seen[b] {
                return Err(format!("particle {b} appears twice in order"));
            }
            seen[b] = true;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let slack = node.half * 1e-9 + 1e-12;
            for &b in self.bodies_of(node) {
                let p = pos[b as usize];
                let d = (p - node.center).abs();
                if d.max_component() > node.half + slack {
                    return Err(format!(
                        "particle {b} outside node {i}: offset {d:?}, half {}",
                        node.half
                    ));
                }
            }
            if !node.is_leaf {
                let mut child_count = 0;
                let mut child_mass = 0.0;
                for ci in node.child_indices() {
                    let child = &self.nodes[ci as usize];
                    child_count += child.body_count;
                    child_mass += child.mass;
                    if child.depth != node.depth + 1 {
                        return Err(format!("child {ci} depth mismatch"));
                    }
                    if child.half > node.half * 0.5 + slack {
                        return Err(format!("child {ci} does not nest in parent {i}"));
                    }
                }
                if child_count != node.body_count {
                    return Err(format!(
                        "node {i}: children hold {child_count} bodies, node claims {}",
                        node.body_count
                    ));
                }
                let scale = node.mass.abs().max(1.0);
                if (child_mass - node.mass).abs() > 1e-9 * scale {
                    return Err(format!("node {i}: mass mismatch"));
                }
            }
        }
        Ok(())
    }
}

/// Smallest cube (center, half-side) covering all positions, slightly
/// inflated so boundary points fall strictly inside. Public so alternative
/// builders (the GPU tree pipeline) start from bit-identical root geometry.
pub fn root_cube(set: &ParticleSet) -> (Vec3, f64) {
    match set.bounding_box() {
        None => (Vec3::ZERO, 1.0),
        Some((lo, hi)) => {
            let center = (lo + hi) * 0.5;
            let half = ((hi - lo).max_component() * 0.5).max(1e-12) * (1.0 + 1e-9);
            (center, half)
        }
    }
}

/// Octant index of `p` relative to `center`: bit 0 = x ≥ cx, bit 1 = y,
/// bit 2 = z. Public for builders that must reproduce the exact predicate.
#[inline]
pub fn octant(p: Vec3, center: Vec3) -> usize {
    (usize::from(p.x >= center.x))
        | (usize::from(p.y >= center.y) << 1)
        | (usize::from(p.z >= center.z) << 2)
}

/// Buckets `slice` (the bodies of one node, as indices into the particle
/// set) by octant around `center` with a stable counting sort, staging
/// through `scratch` (cleared and resized as needed; a pooled buffer makes
/// repeated builds allocation-free). Returns the per-octant counts and start
/// offsets within the slice.
fn bucket_by_octant(
    slice: &mut [u32],
    center: Vec3,
    set: &ParticleSet,
    scratch: &mut Vec<u32>,
) -> ([usize; 8], [usize; 8]) {
    let pos = set.pos();
    let mut counts = [0_usize; 8];
    for &b in slice.iter() {
        counts[octant(pos[b as usize], center)] += 1;
    }
    let mut starts = [0_usize; 8];
    let mut acc = 0;
    for (o, &c) in counts.iter().enumerate() {
        starts[o] = acc;
        acc += c;
    }
    let mut cursor = starts;
    scratch.clear();
    scratch.resize(slice.len(), 0);
    for &b in slice.iter() {
        let o = octant(pos[b as usize], center);
        scratch[cursor[o]] = b;
        cursor[o] += 1;
    }
    slice.copy_from_slice(scratch);
    (counts, starts)
}

/// Geometric center offset of octant `o` within a cell of half-side `half`.
/// Public alongside [`octant`] for exact-geometry builders.
#[inline]
pub fn octant_offset(o: usize, quarter: f64) -> Vec3 {
    Vec3::new(
        if o & 1 != 0 { quarter } else { -quarter },
        if o & 2 != 0 { quarter } else { -quarter },
        if o & 4 != 0 { quarter } else { -quarter },
    )
}

/// Recursive DFS-preorder subdivision. `order` covers the bodies from
/// permutation index `base` onward (the full permutation in the serial
/// build, one octant's sub-slice in a parallel subtree task); node
/// `body_start` values are always absolute.
fn subdivide(
    node_idx: usize,
    nodes: &mut Vec<Node>,
    order: &mut [u32],
    base: usize,
    set: &ParticleSet,
    params: &TreeParams,
    scratch: &mut Vec<u32>,
) {
    let (center, half, start, count, depth) = {
        let n = &nodes[node_idx];
        (n.center, n.half, n.body_start as usize, n.body_count as usize, n.depth)
    };
    if count <= params.leaf_capacity || depth >= MAX_DEPTH {
        return;
    }

    let rel = start - base;
    // the parent's staging completes before any child recurses, so one
    // shared scratch buffer serves the whole DFS
    let (counts, starts) = bucket_by_octant(&mut order[rel..rel + count], center, set, scratch);

    nodes[node_idx].is_leaf = false;
    let quarter = half * 0.5;
    for o in 0..8 {
        if counts[o] == 0 {
            continue;
        }
        let child_idx = nodes.len();
        nodes.push(Node {
            center: center + octant_offset(o, quarter),
            half: quarter,
            com: Vec3::ZERO,
            mass: 0.0,
            body_start: (start + starts[o]) as u32,
            body_count: counts[o] as u32,
            children: [NO_CHILD; 8],
            is_leaf: true,
            depth: depth + 1,
        });
        nodes[node_idx].children[o] = child_idx as u32;
        subdivide(child_idx, nodes, order, base, set, params, scratch);
    }
}

/// Parallel build entry: splits the root one level, builds each occupied
/// octant's subtree on a `par` worker thread (each into a local node vector
/// over its own disjoint sub-slice of the permutation), and splices the
/// subtrees back in octant order.
///
/// The serial build numbers nodes in DFS preorder, where each root child's
/// subtree occupies one contiguous index range in octant order — exactly the
/// concatenation this performs — so the resulting node array, including all
/// indices, is **byte-identical** to the serial build's.
fn subdivide_root_parallel(
    nodes: &mut Vec<Node>,
    order: &mut [u32],
    set: &ParticleSet,
    params: &TreeParams,
) {
    let (center, half) = (nodes[0].center, nodes[0].half);
    let (counts, _starts) = bucket_by_octant(order, center, set, &mut Vec::new());
    nodes[0].is_leaf = false;
    let quarter = half * 0.5;

    // carve the permutation into per-octant sub-slices, in octant order
    let mut tasks = Vec::new();
    let mut rest = order;
    let mut abs_start = 0_usize;
    for (o, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (slice, tail) = rest.split_at_mut(count);
        rest = tail;
        tasks.push((o, abs_start, count, slice));
        abs_start += count;
    }

    let subtrees = par::run_tasks(
        tasks
            .into_iter()
            .map(|(o, start, count, slice)| {
                move || {
                    let mut local = vec![Node {
                        center: center + octant_offset(o, quarter),
                        half: quarter,
                        com: Vec3::ZERO,
                        mass: 0.0,
                        body_start: start as u32,
                        body_count: count as u32,
                        children: [NO_CHILD; 8],
                        is_leaf: true,
                        depth: 1,
                    }];
                    subdivide(0, &mut local, slice, start, set, params, &mut Vec::new());
                    (o, local)
                }
            })
            .collect(),
    );

    for (o, local) in subtrees {
        let child_idx = nodes.len() as u32;
        nodes[0].children[o] = child_idx;
        nodes.extend(local.into_iter().map(|mut node| {
            for c in node.children.iter_mut() {
                if *c != NO_CHILD {
                    *c += child_idx;
                }
            }
            node
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::body::Body;
    use nbody_core::testutil::random_set;

    #[test]
    fn empty_set_builds_single_root() {
        let set = ParticleSet::new();
        let tree = Octree::build(&set, TreeParams::default());
        assert_eq!(tree.nodes().len(), 1);
        assert!(tree.root().is_leaf);
        assert_eq!(tree.root().body_count, 0);
        assert!(tree.check_invariants(&set).is_ok());
    }

    #[test]
    fn small_set_stays_in_root_leaf() {
        let set = random_set(8, 1);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 16 });
        assert_eq!(tree.nodes().len(), 1);
        assert!(tree.root().is_leaf);
        assert_eq!(tree.root().body_count, 8);
    }

    #[test]
    fn build_respects_leaf_capacity() {
        let set = random_set(500, 2);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 8 });
        for node in tree.nodes() {
            if node.is_leaf {
                assert!(node.body_count as usize <= 8 || node.depth >= 64);
            }
        }
        tree.check_invariants(&set).unwrap();
    }

    #[test]
    fn root_multipole_matches_set() {
        let set = random_set(200, 3);
        let tree = Octree::build(&set, TreeParams::default());
        assert!((tree.root().mass - set.total_mass()).abs() < 1e-9);
        let com = set.center_of_mass().unwrap();
        assert!(tree.root().com.distance(com) < 1e-9);
    }

    #[test]
    fn every_leaf_range_partitions_bodies() {
        let set = random_set(300, 4);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 4 });
        let total: u32 = tree.nodes().iter().filter(|n| n.is_leaf).map(|n| n.body_count).sum();
        assert_eq!(total, 300);
        tree.check_invariants(&set).unwrap();
    }

    #[test]
    fn coincident_points_terminate() {
        // 100 bodies at the same spot must not recurse forever
        let bodies: Vec<Body> = (0..100).map(|_| Body::at_rest(Vec3::ONE, 1.0)).collect();
        let set = ParticleSet::from_bodies(&bodies);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 4 });
        assert!(tree.max_depth() <= 64);
        tree.check_invariants(&set).unwrap();
    }

    #[test]
    fn octant_indexing() {
        let c = Vec3::ZERO;
        assert_eq!(octant(Vec3::new(-1.0, -1.0, -1.0), c), 0);
        assert_eq!(octant(Vec3::new(1.0, -1.0, -1.0), c), 1);
        assert_eq!(octant(Vec3::new(-1.0, 1.0, -1.0), c), 2);
        assert_eq!(octant(Vec3::new(1.0, 1.0, 1.0), c), 7);
    }

    #[test]
    fn deterministic_build() {
        let set = random_set(128, 9);
        let t1 = Octree::build(&set, TreeParams::default());
        let t2 = Octree::build(&set, TreeParams::default());
        assert_eq!(t1.order(), t2.order());
        assert_eq!(t1.nodes().len(), t2.nodes().len());
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        // The octant fan-out must reproduce the serial DFS preorder exactly:
        // same permutation, same node array, including all child indices.
        let set = random_set(2000, 11);
        par::set_threads(1);
        let serial = Octree::build(&set, TreeParams { leaf_capacity: 8 });
        for threads in [2, 3, 8] {
            par::set_threads(threads);
            let parallel = Octree::build(&set, TreeParams { leaf_capacity: 8 });
            assert_eq!(parallel.order(), serial.order(), "threads={threads}");
            assert_eq!(parallel.nodes(), serial.nodes(), "threads={threads}");
            parallel.check_invariants(&set).unwrap();
        }
        par::set_threads(1);
    }

    #[test]
    fn node_side_is_twice_half() {
        let set = random_set(64, 10);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 2 });
        for n in tree.nodes() {
            assert_eq!(n.side(), 2.0 * n.half);
        }
    }

    #[test]
    fn depth_grows_with_n() {
        let shallow = Octree::build(&random_set(32, 5), TreeParams { leaf_capacity: 8 });
        let deep = Octree::build(&random_set(4096, 5), TreeParams { leaf_capacity: 8 });
        assert!(deep.max_depth() > shallow.max_depth());
    }

    #[test]
    fn refit_tracks_small_motion() {
        use crate::mac::OpeningAngle;
        use crate::traverse::accelerations_bh;
        use nbody_core::gravity::{accelerations_pp, max_relative_error, GravityParams};

        let mut set = random_set(600, 7);
        let mut tree = Octree::build(&set, TreeParams::default());
        // nudge every body slightly and refit
        let mut rng = nbody_core::testutil::XorShift64::new(99);
        for p in set.pos_mut() {
            *p += rng.uniform_vec3(-1e-3, 1e-3);
        }
        tree.refit(&set);
        // mass still conserved, com updated
        assert!((tree.root().mass - set.total_mass()).abs() < 1e-9);
        assert!(tree.root().com.distance(set.center_of_mass().unwrap()) < 1e-9);
        // forces from the refitted tree stay close to the truth
        let params = GravityParams::default();
        let mut exact = vec![Vec3::ZERO; set.len()];
        let mut approx = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        accelerations_bh(&tree, &set, OpeningAngle::new(0.5), &params, &mut approx);
        let err = max_relative_error(&exact, &approx);
        assert!(err < 0.03, "refit error {err}");
    }

    #[test]
    #[should_panic(expected = "same body count")]
    fn refit_rejects_different_population() {
        let set = random_set(50, 8);
        let mut tree = Octree::build(&set, TreeParams::default());
        let other = random_set(51, 8);
        tree.refit(&other);
    }

    #[test]
    fn rebuild_in_place_is_identical_to_fresh_build() {
        let set = random_set(700, 12);
        let fresh = Octree::build(&set, TreeParams { leaf_capacity: 8 });
        // start from a tree over a *different* snapshot, then rebuild in place
        let other = random_set(700, 13);
        let mut tree = Octree::build(&other, TreeParams { leaf_capacity: 8 });
        let mut scratch = par::arena::Scratch::new();
        tree.rebuild(&set, &mut scratch);
        assert_eq!(tree.order(), fresh.order());
        assert_eq!(tree.nodes(), fresh.nodes());
        tree.check_invariants(&set).unwrap();
    }

    #[test]
    fn rebuild_reuses_capacity() {
        let set = random_set(400, 14);
        let mut tree = Octree::build(&set, TreeParams::default());
        let mut scratch = par::arena::Scratch::new();
        tree.rebuild(&set, &mut scratch); // warm the bucket scratch
        let node_cap = tree.nodes.capacity();
        let order_cap = tree.order.capacity();
        tree.rebuild(&set, &mut scratch);
        assert_eq!(tree.nodes.capacity(), node_cap);
        assert_eq!(tree.order.capacity(), order_cap);
    }

    #[test]
    fn rebuild_handles_population_change() {
        let small = random_set(50, 15);
        let big = random_set(900, 15);
        let mut tree = Octree::build(&small, TreeParams::default());
        let mut scratch = par::arena::Scratch::new();
        tree.rebuild(&big, &mut scratch);
        tree.check_invariants(&big).unwrap();
        tree.rebuild(&small, &mut scratch);
        tree.check_invariants(&small).unwrap();
        assert_eq!(tree.order().len(), 50);
    }

    #[test]
    fn leaf_count_reasonable() {
        let set = random_set(1000, 6);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 10 });
        // at least N / capacity leaves are needed; no more than N
        assert!(tree.leaf_count() >= 100);
        assert!(tree.leaf_count() <= 1000);
    }
}
