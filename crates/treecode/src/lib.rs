//! # treecode
//!
//! The Barnes-Hut substrate of the PTPM N-body reproduction (paper §2.2):
//! octree construction with center-of-mass multipoles, the `l/D < θ`
//! multipole acceptance criterion, per-body CPU walks, and — the part the
//! GPU plans build on — Hamada-style **multiple-walk interaction lists**,
//! where spatially coherent groups of bodies share one list produced by a
//! single conservative (group-MAC) traversal.
//!
//! ```
//! use nbody_core::prelude::*;
//! use treecode::prelude::*;
//!
//! let set = nbody_core::testutil::random_set(256, 7);
//! let params = GravityParams::default();
//! let tree = Octree::build(&set, TreeParams::default());
//! let walks = build_walks(&tree, &set, OpeningAngle::new(0.5), 32);
//! let mut acc = vec![Vec3::ZERO; set.len()];
//! evaluate_walks_cpu(&walks, &tree, &set, &params, &mut acc);
//! assert!(acc.iter().all(|a| a.is_finite()));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod interaction_list;
pub mod mac;
pub mod morton;
pub mod multipole;
pub mod shards;
pub mod traverse;
pub mod tree;

/// Common imports.
pub mod prelude {
    pub use crate::engine::BarnesHut;
    pub use crate::interaction_list::{
        build_walks, build_walks_into, build_walks_range, collect_list, collect_list_into,
        evaluate_walks_cpu, WalkGroup, WalkSet,
    };
    pub use crate::mac::{accepts_group, accepts_point, Aabb, OpeningAngle};
    pub use crate::morton::{
        demorton3, eligible_walk_splits, keys_in_order, morton3, morton_of, morton_order,
        morton_order_incremental,
    };
    pub use crate::multipole::{accelerations_bh_quad, compute_quadrupoles, Quadrupole};
    pub use crate::shards::{MortonShard, MortonShards};
    pub use crate::traverse::{
        acceleration_on, acceleration_on_with_stack, accelerations_bh, accelerations_bh_scratch,
        WalkStats,
    };
    pub use crate::tree::{octant, octant_offset, root_cube, Node, Octree, TreeParams, NO_CHILD};
}

pub use prelude::*;
