//! Multipole acceptance criteria (MAC).
//!
//! The paper (Eq. 3 context) uses the classic Barnes-Hut opening rule: a
//! cell of side `l` at distance `D` may stand in for its bodies when
//! `l / D < θ`. Two distance conventions are provided:
//!
//! * **point MAC** — `D` is the distance from a single target body;
//! * **group MAC** — `D` is the *minimum* distance from a target group's
//!   bounding box, which makes one interaction list valid for every body in
//!   the group (the correctness condition of Hamada's multiple-walk method
//!   that w-parallel and jw-parallel rely on).

use crate::tree::Node;
use nbody_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Opening-angle parameter θ. Smaller is more accurate and more expensive;
/// the paper's experiments use the conventional θ = 0.5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpeningAngle(f64);

impl OpeningAngle {
    /// Creates a θ value.
    ///
    /// # Panics
    /// Panics unless `0 < θ ≤ 2` (θ ≥ ~1 is already physically dubious; 2 is
    /// a hard sanity bound).
    pub fn new(theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= 2.0 && theta.is_finite(),
            "theta must be in (0, 2], got {theta}"
        );
        Self(theta)
    }

    /// The raw θ.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for OpeningAngle {
    fn default() -> Self {
        Self(0.5)
    }
}

/// Point MAC: may `node` approximate its bodies as seen from `point`?
///
/// Uses `l / D < θ` with `D` the distance from `point` to the node's center
/// of mass. A node containing the point (D ≈ 0) is never accepted.
#[inline]
pub fn accepts_point(node: &Node, point: Vec3, theta: OpeningAngle) -> bool {
    let d2 = point.distance_sq(node.com);
    let l = node.side();
    // l / D < θ  ⇔  l² < θ² D²  (avoids the sqrt)
    l * l < theta.get() * theta.get() * d2
}

/// Axis-aligned box used for group MACs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub lo: Vec3,
    /// Maximum corner.
    pub hi: Vec3,
}

impl Aabb {
    /// Box covering a set of points.
    ///
    /// # Panics
    /// Panics on an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Self {
        let mut it = points.into_iter();
        let first = it.next().expect("Aabb::from_points needs at least one point");
        let mut lo = first;
        let mut hi = first;
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Self { lo, hi }
    }

    /// Smallest distance from `p` to this box (zero if inside).
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        let clamped = p.max(self.lo).min(self.hi);
        p.distance(clamped)
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// True if `p` lies inside (inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }
}

/// Group MAC: may `node` approximate its bodies as seen from *every* point
/// of `group_box`?
///
/// `D` is the minimum distance from the box to the node's center of mass, so
/// acceptance here implies point-MAC acceptance for all group members.
#[inline]
pub fn accepts_group(node: &Node, group_box: &Aabb, theta: OpeningAngle) -> bool {
    let d = group_box.distance_to_point(node.com);
    let l = node.side();
    l < theta.get() * d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NO_CHILD;

    fn node_at(com: Vec3, side: f64) -> Node {
        Node {
            center: com,
            half: side / 2.0,
            com,
            mass: 1.0,
            body_start: 0,
            body_count: 1,
            children: [NO_CHILD; 8],
            is_leaf: true,
            depth: 0,
        }
    }

    #[test]
    fn theta_validation() {
        assert_eq!(OpeningAngle::new(0.5).get(), 0.5);
        assert_eq!(OpeningAngle::default().get(), 0.5);
        assert!(std::panic::catch_unwind(|| OpeningAngle::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| OpeningAngle::new(-1.0)).is_err());
        assert!(std::panic::catch_unwind(|| OpeningAngle::new(3.0)).is_err());
        assert!(std::panic::catch_unwind(|| OpeningAngle::new(f64::NAN)).is_err());
    }

    #[test]
    fn far_node_accepted_near_node_opened() {
        let node = node_at(Vec3::new(10.0, 0.0, 0.0), 1.0);
        let theta = OpeningAngle::new(0.5);
        // D = 10, l = 1: 1/10 < 0.5 -> accept
        assert!(accepts_point(&node, Vec3::ZERO, theta));
        // D = 1.5, l = 1: 1/1.5 > 0.5 -> open
        assert!(!accepts_point(&node, Vec3::new(8.5, 0.0, 0.0), theta));
    }

    #[test]
    fn node_containing_point_never_accepted() {
        let node = node_at(Vec3::ZERO, 2.0);
        assert!(!accepts_point(&node, Vec3::ZERO, OpeningAngle::new(0.5)));
    }

    #[test]
    fn smaller_theta_is_stricter() {
        let node = node_at(Vec3::new(3.0, 0.0, 0.0), 1.0);
        let p = Vec3::ZERO; // l/D = 1/3
        assert!(accepts_point(&node, p, OpeningAngle::new(0.5)));
        assert!(!accepts_point(&node, p, OpeningAngle::new(0.3)));
    }

    #[test]
    fn aabb_from_points_and_distance() {
        let b = Aabb::from_points([Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0)]);
        assert_eq!(b.lo, Vec3::ZERO);
        assert_eq!(b.hi, Vec3::splat(2.0));
        assert_eq!(b.center(), Vec3::splat(1.0));
        assert_eq!(b.distance_to_point(Vec3::splat(1.0)), 0.0); // inside
        assert_eq!(b.distance_to_point(Vec3::new(5.0, 1.0, 1.0)), 3.0);
        assert!(b.contains(Vec3::splat(2.0)));
        assert!(!b.contains(Vec3::new(2.1, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_aabb_panics() {
        let _ = Aabb::from_points(std::iter::empty::<Vec3>());
    }

    #[test]
    fn group_mac_implies_point_mac_for_members() {
        let node = node_at(Vec3::new(10.0, 0.0, 0.0), 1.5);
        let theta = OpeningAngle::new(0.5);
        let members = [Vec3::ZERO, Vec3::new(1.0, 1.0, 0.0), Vec3::new(0.5, -1.0, 0.5)];
        let gbox = Aabb::from_points(members);
        if accepts_group(&node, &gbox, theta) {
            for m in members {
                assert!(accepts_point(&node, m, theta));
            }
        } else {
            // also fine — just make sure the test exercised the accept path
            panic!("expected group acceptance in this geometry");
        }
    }

    #[test]
    fn group_mac_stricter_than_center_point_mac() {
        // a node that passes from the box center may fail for the box
        let node = node_at(Vec3::new(4.0, 0.0, 0.0), 1.0);
        let theta = OpeningAngle::new(0.5);
        let gbox = Aabb { lo: Vec3::new(-2.0, -2.0, -2.0), hi: Vec3::new(2.0, 2.0, 2.0) };
        assert!(accepts_point(&node, gbox.center(), theta)); // D=4 from center
        assert!(!accepts_group(&node, &gbox, theta)); // D=2 from box face
    }
}
