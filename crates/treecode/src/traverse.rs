//! Per-body tree walks: the CPU Barnes-Hut force evaluation.
//!
//! For each target body the walk descends from the root; accepted cells
//! contribute a softened monopole interaction with their center of mass
//! (the paper's Eq. 3), rejected internal cells are opened, and leaf bodies
//! interact directly (skipping the target itself). Statistics of the walk —
//! how many cell and body interactions occurred — feed the flop accounting
//! used by figures 4–5.

use crate::mac::{accepts_point, OpeningAngle};
use crate::tree::Octree;
use nbody_core::gravity::{pair_acceleration, GravityParams};
use nbody_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Counters for one or more walks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkStats {
    /// Accepted cell (monopole) interactions.
    pub cell_interactions: u64,
    /// Direct body-body interactions.
    pub body_interactions: u64,
    /// Nodes popped from the traversal stack.
    pub nodes_visited: u64,
}

impl WalkStats {
    /// Total pairwise interactions (cells + bodies), the quantity flop
    /// conventions are applied to.
    pub fn total_interactions(&self) -> u64 {
        self.cell_interactions + self.body_interactions
    }
}

impl std::ops::AddAssign for WalkStats {
    fn add_assign(&mut self, rhs: Self) {
        self.cell_interactions += rhs.cell_interactions;
        self.body_interactions += rhs.body_interactions;
        self.nodes_visited += rhs.nodes_visited;
    }
}

/// Acceleration on body `target` (an index into `set`) from the whole tree.
pub fn acceleration_on(
    tree: &Octree,
    set: &nbody_core::body::ParticleSet,
    target: usize,
    theta: OpeningAngle,
    params: &GravityParams,
    stats: &mut WalkStats,
) -> Vec3 {
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    acceleration_on_with_stack(tree, set, target, theta, params, stats, &mut stack)
}

/// [`acceleration_on`] with a caller-provided traversal stack, so repeated
/// walks (one per body, every step) reuse one buffer instead of allocating
/// per walk. The stack is cleared on entry.
pub fn acceleration_on_with_stack(
    tree: &Octree,
    set: &nbody_core::body::ParticleSet,
    target: usize,
    theta: OpeningAngle,
    params: &GravityParams,
    stats: &mut WalkStats,
    stack: &mut Vec<u32>,
) -> Vec3 {
    let pos = set.pos();
    let mass = set.mass();
    let xi = pos[target];
    let eps_sq = params.eps_sq();
    let mut acc = Vec3::ZERO;
    stack.clear();
    if tree.root().body_count > 0 {
        stack.push(0);
    }
    while let Some(idx) = stack.pop() {
        let node = &tree.nodes()[idx as usize];
        stats.nodes_visited += 1;
        if accepts_point(node, xi, theta) {
            acc += pair_acceleration(xi, node.com, node.mass, eps_sq);
            stats.cell_interactions += 1;
        } else if node.is_leaf {
            for &b in tree.bodies_of(node) {
                let b = b as usize;
                if b != target {
                    acc += pair_acceleration(xi, pos[b], mass[b], eps_sq);
                    stats.body_interactions += 1;
                }
            }
        } else {
            stack.extend(node.child_indices());
        }
    }
    acc * params.g
}

/// Accelerations on every body via per-body walks. Returns aggregate walk
/// statistics.
///
/// Walks are independent per body, so they run chunked over `par` worker
/// threads; each body's acceleration depends only on the tree, and the
/// stats counters are summed in chunk order, so results are bit-identical
/// for every thread count.
pub fn accelerations_bh(
    tree: &Octree,
    set: &nbody_core::body::ParticleSet,
    theta: OpeningAngle,
    params: &GravityParams,
    acc: &mut [Vec3],
) -> WalkStats {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    if par::threads() == 1 {
        // serial fast path: write in place with one shared traversal stack
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        return bh_rows(tree, set, theta, params, acc, &mut stack);
    }
    let chunks = par::map_chunks(set.len(), |range| {
        let mut stats = WalkStats::default();
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        let accs: Vec<Vec3> = range
            .clone()
            .map(|i| {
                acceleration_on_with_stack(tree, set, i, theta, params, &mut stats, &mut stack)
            })
            .collect();
        (range, accs, stats)
    });
    let mut stats = WalkStats::default();
    for (range, accs, chunk_stats) in chunks {
        acc[range].copy_from_slice(&accs);
        stats += chunk_stats;
    }
    stats
}

/// Serial per-body walks over all of `acc`, reusing `stack`.
fn bh_rows(
    tree: &Octree,
    set: &nbody_core::body::ParticleSet,
    theta: OpeningAngle,
    params: &GravityParams,
    acc: &mut [Vec3],
    stack: &mut Vec<u32>,
) -> WalkStats {
    let mut stats = WalkStats::default();
    for (i, ai) in acc.iter_mut().enumerate() {
        *ai = acceleration_on_with_stack(tree, set, i, theta, params, &mut stats, stack);
    }
    stats
}

/// [`accelerations_bh`] with the traversal stack pooled in `scratch`:
/// the allocation-free walk used by the steady-state treecode step. Results
/// are bit-identical to [`accelerations_bh`] (same walks, same order). With
/// more than one `par` thread this delegates to the chunked path, whose
/// per-chunk buffers still allocate (zero-alloc is a serial invariant).
pub fn accelerations_bh_scratch(
    tree: &Octree,
    set: &nbody_core::body::ParticleSet,
    theta: OpeningAngle,
    params: &GravityParams,
    acc: &mut [Vec3],
    scratch: &mut par::arena::Scratch,
) -> WalkStats {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    if par::threads() != 1 {
        return accelerations_bh(tree, set, theta, params, acc);
    }
    let mut stack = scratch.take::<u32>("walk-stack");
    let stats = bh_rows(tree, set, theta, params, acc, &mut stack);
    scratch.put("walk-stack", stack);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use nbody_core::gravity::{accelerations_pp, max_relative_error};
    use nbody_core::testutil::random_set;

    fn bh_error(n: usize, theta: f64, seed: u64) -> f64 {
        let set = random_set(n, seed);
        let params = GravityParams::default();
        let tree = Octree::build(&set, TreeParams::default());
        let mut exact = vec![Vec3::ZERO; n];
        let mut approx = vec![Vec3::ZERO; n];
        accelerations_pp(&set, &params, &mut exact);
        accelerations_bh(&tree, &set, OpeningAngle::new(theta), &params, &mut approx);
        max_relative_error(&exact, &approx)
    }

    #[test]
    fn tiny_theta_matches_direct_sum() {
        // θ→0 opens everything: BH degenerates to exact PP
        let err = bh_error(200, 1e-9, 1);
        assert!(err < 1e-12, "error {err}");
    }

    #[test]
    fn theta_half_is_accurate() {
        let err = bh_error(500, 0.5, 2);
        assert!(err < 0.02, "θ=0.5 error {err}");
    }

    #[test]
    fn error_grows_with_theta() {
        let e_small = bh_error(400, 0.3, 3);
        let e_large = bh_error(400, 1.0, 3);
        assert!(e_small <= e_large, "error should not decrease with θ: {e_small} vs {e_large}");
    }

    #[test]
    fn stats_count_fewer_interactions_than_pp() {
        let n = 2000;
        let set = random_set(n, 4);
        let params = GravityParams::default();
        let tree = Octree::build(&set, TreeParams::default());
        let mut acc = vec![Vec3::ZERO; n];
        let stats = accelerations_bh(&tree, &set, OpeningAngle::new(0.5), &params, &mut acc);
        let pp = (n * (n - 1)) as u64;
        assert!(stats.total_interactions() < pp / 2, "{stats:?}");
        assert!(stats.cell_interactions > 0);
        assert!(stats.body_interactions > 0);
    }

    #[test]
    fn interactions_scale_subquadratically() {
        let count = |n: usize| {
            let set = random_set(n, 5);
            let params = GravityParams::default();
            let tree = Octree::build(&set, TreeParams::default());
            let mut acc = vec![Vec3::ZERO; n];
            accelerations_bh(&tree, &set, OpeningAngle::default(), &params, &mut acc)
                .total_interactions()
        };
        let c1 = count(500);
        let c2 = count(2000); // 4x bodies
                              // O(N log N): expect much less than 16x
        assert!(c2 < 8 * c1, "c1 {c1}, c2 {c2}");
    }

    #[test]
    fn empty_tree_yields_zero_acceleration() {
        use nbody_core::body::{Body, ParticleSet};
        let set = ParticleSet::from_bodies(&[Body::at_rest(Vec3::ZERO, 1.0)]);
        let tree = Octree::build(&set, TreeParams::default());
        let params = GravityParams::default();
        let mut stats = WalkStats::default();
        // single body: no interaction partners
        let a = acceleration_on(&tree, &set, 0, OpeningAngle::default(), &params, &mut stats);
        assert_eq!(a, Vec3::ZERO);
        assert_eq!(stats.cell_interactions, 0);
        assert_eq!(stats.body_interactions, 0);
    }

    #[test]
    fn stats_add_assign() {
        let mut a = WalkStats { cell_interactions: 1, body_interactions: 2, nodes_visited: 3 };
        a += WalkStats { cell_interactions: 10, body_interactions: 20, nodes_visited: 30 };
        assert_eq!(a.cell_interactions, 11);
        assert_eq!(a.total_interactions(), 33);
    }

    #[test]
    fn scratch_walk_is_bitwise_identical() {
        let set = random_set(400, 8);
        let params = GravityParams::default();
        let tree = Octree::build(&set, TreeParams::default());
        let mut a = vec![Vec3::ZERO; set.len()];
        let mut b = vec![Vec3::ZERO; set.len()];
        let s1 = accelerations_bh(&tree, &set, OpeningAngle::new(0.5), &params, &mut a);
        let mut scratch = par::arena::Scratch::new();
        let s2 = accelerations_bh_scratch(
            &tree,
            &set,
            OpeningAngle::new(0.5),
            &params,
            &mut b,
            &mut scratch,
        );
        assert_eq!(a, b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn momentum_approximately_conserved() {
        // BH forces are not exactly antisymmetric, but net force stays small
        let set = random_set(300, 6);
        let params = GravityParams::default();
        let tree = Octree::build(&set, TreeParams::default());
        let mut acc = vec![Vec3::ZERO; set.len()];
        accelerations_bh(&tree, &set, OpeningAngle::new(0.5), &params, &mut acc);
        let net: Vec3 = acc.iter().zip(set.mass()).map(|(&a, &m)| a * m).sum();
        let scale: f64 = acc.iter().zip(set.mass()).map(|(a, m)| a.norm() * m).sum();
        assert!(net.norm() < 0.02 * scale, "net {net:?} scale {scale}");
    }
}
