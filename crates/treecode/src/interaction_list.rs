//! Multiple-walk interaction lists (Hamada's method, the substrate of the
//! paper's w-parallel and jw-parallel plans).
//!
//! Instead of walking the tree once per body, bodies are grouped into
//! spatially coherent **walks** (consecutive runs of the tree-order
//! permutation). One traversal per walk, using the *group* MAC, produces an
//! interaction list — accepted cells plus leaf bodies — valid for every
//! body of the walk. The GPU then evaluates `|walk| × |list|` interactions
//! with perfectly regular data access, which is exactly the shape the
//! paper's tile-based kernels consume.

use crate::mac::{accepts_group, Aabb, OpeningAngle};
use crate::traverse::WalkStats;
use crate::tree::Octree;
use nbody_core::body::ParticleSet;
use nbody_core::gravity::{pair_acceleration, GravityParams};
use nbody_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// One walk: a group of target bodies sharing an interaction list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkGroup {
    /// Target body indices (original particle ids, tree order).
    pub bodies: Vec<u32>,
    /// Bounding box of the targets.
    pub bbox: Aabb,
    /// Accepted cells: indices into the octree's node array.
    pub cell_list: Vec<u32>,
    /// Direct-interaction source bodies (original particle ids). Includes
    /// the walk's own bodies; evaluators must skip `i == j`.
    pub body_list: Vec<u32>,
}

impl WalkGroup {
    /// Length of the interaction list (cells + bodies).
    pub fn list_len(&self) -> usize {
        self.cell_list.len() + self.body_list.len()
    }

    /// Pairwise interactions this walk evaluates (self-pairs excluded).
    pub fn interactions(&self) -> u64 {
        let targets = self.bodies.len() as u64;
        let cells = self.cell_list.len() as u64;
        let bodies = self.body_list.len() as u64;
        // every target meets every listed cell and body, minus its self-pair
        let self_pairs = self.bodies.iter().filter(|b| self.body_list.contains(b)).count() as u64;
        targets * (cells + bodies) - self_pairs
    }
}

/// All walks covering a particle set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkSet {
    /// The walks, in tree order.
    pub groups: Vec<WalkGroup>,
    /// θ the lists were built with.
    pub theta: OpeningAngle,
    /// Requested targets per walk.
    pub walk_size: usize,
}

impl WalkSet {
    /// Total pairwise interactions across all walks.
    pub fn total_interactions(&self) -> u64 {
        self.groups.iter().map(WalkGroup::interactions).sum()
    }

    /// Longest interaction list (sizes GPU staging buffers).
    pub fn max_list_len(&self) -> usize {
        self.groups.iter().map(WalkGroup::list_len).max().unwrap_or(0)
    }

    /// Coefficient of variation of list lengths — the load-imbalance measure
    /// that motivates jw-parallel over w-parallel.
    pub fn list_len_cv(&self) -> f64 {
        let n = self.groups.len();
        if n == 0 {
            return 0.0;
        }
        let lens: Vec<f64> = self.groups.iter().map(|g| g.list_len() as f64).collect();
        let mean = lens.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = lens.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n as f64;
        var.sqrt() / mean
    }
}

/// Builds walks of at most `walk_size` targets each and their interaction
/// lists.
///
/// # Panics
/// Panics if `walk_size == 0`.
pub fn build_walks(
    tree: &Octree,
    set: &ParticleSet,
    theta: OpeningAngle,
    walk_size: usize,
) -> WalkSet {
    assert!(walk_size > 0, "walk_size must be positive");
    let pos = set.pos();
    let num_walks = tree.order().len().div_ceil(walk_size);
    // Each walk's list depends only on the tree and its own bodies, so the
    // traversals run chunked over `par` worker threads; concatenating the
    // per-chunk groups in chunk order keeps the walks in tree order.
    let chunks = par::map_chunks(num_walks, |range| {
        range
            .map(|w| {
                let start = w * walk_size;
                let end = (start + walk_size).min(tree.order().len());
                let bodies = &tree.order()[start..end];
                let bbox = Aabb::from_points(bodies.iter().map(|&b| pos[b as usize]));
                let (cell_list, body_list) = collect_list(tree, &bbox, theta);
                WalkGroup { bodies: bodies.to_vec(), bbox, cell_list, body_list }
            })
            .collect::<Vec<_>>()
    });
    let mut groups = Vec::with_capacity(num_walks);
    for chunk in chunks {
        groups.extend(chunk);
    }
    WalkSet { groups, theta, walk_size }
}

/// Builds the walks of one contiguous sub-range of the **global** walk grid
/// (walk indices `walk_range` of the grid [`build_walks`] produces), used by
/// the Morton-sharded out-of-core path: each shard builds only its own
/// walks, yet every group is identical to the corresponding group of the
/// full build, so per-walk results are bit-exact against the unsharded
/// reference.
///
/// # Panics
/// Panics if `walk_size == 0` or the range exceeds the walk grid.
pub fn build_walks_range(
    tree: &Octree,
    set: &ParticleSet,
    theta: OpeningAngle,
    walk_size: usize,
    walk_range: std::ops::Range<usize>,
) -> WalkSet {
    assert!(walk_size > 0, "walk_size must be positive");
    let num_walks = tree.order().len().div_ceil(walk_size);
    assert!(walk_range.end <= num_walks, "walk range {walk_range:?} exceeds grid {num_walks}");
    let pos = set.pos();
    let chunks = par::map_chunks(walk_range.len(), |range| {
        range
            .map(|r| {
                let w = walk_range.start + r;
                let start = w * walk_size;
                let end = (start + walk_size).min(tree.order().len());
                let bodies = &tree.order()[start..end];
                let bbox = Aabb::from_points(bodies.iter().map(|&b| pos[b as usize]));
                let (cell_list, body_list) = collect_list(tree, &bbox, theta);
                WalkGroup { bodies: bodies.to_vec(), bbox, cell_list, body_list }
            })
            .collect::<Vec<_>>()
    });
    let mut groups = Vec::with_capacity(walk_range.len());
    for chunk in chunks {
        groups.extend(chunk);
    }
    WalkSet { groups, theta, walk_size }
}

/// Rebuilds a walk set **in place**, reusing every group's `bodies`,
/// `cell_list`, and `body_list` capacity and pooling the traversal stack in
/// `scratch` — after a warmup build, a steady-state rebuild over a
/// same-sized set performs no heap allocation at one thread (list capacities
/// grow monotonically to their high-water mark).
///
/// The result is exactly [`build_walks`]' output: same groups, same order.
/// With more than one `par` thread this delegates to the chunked
/// [`build_walks`] (zero-alloc is a serial invariant; see DESIGN.md §9).
///
/// # Panics
/// Panics if `walk_size == 0`.
pub fn build_walks_into(
    walks: &mut WalkSet,
    tree: &Octree,
    set: &ParticleSet,
    theta: OpeningAngle,
    walk_size: usize,
    scratch: &mut par::arena::Scratch,
) {
    assert!(walk_size > 0, "walk_size must be positive");
    if par::threads() != 1 {
        *walks = build_walks(tree, set, theta, walk_size);
        return;
    }
    let pos = set.pos();
    let num_walks = tree.order().len().div_ceil(walk_size);
    walks.theta = theta;
    walks.walk_size = walk_size;
    walks.groups.truncate(num_walks);
    let mut stack = scratch.take::<u32>("list-stack");
    for w in 0..num_walks {
        let start = w * walk_size;
        let end = (start + walk_size).min(tree.order().len());
        let bodies = &tree.order()[start..end];
        let bbox = Aabb::from_points(bodies.iter().map(|&b| pos[b as usize]));
        if let Some(group) = walks.groups.get_mut(w) {
            group.bodies.clear();
            group.bodies.extend_from_slice(bodies);
            group.bbox = bbox;
            collect_list_into(
                tree,
                &group.bbox,
                theta,
                &mut group.cell_list,
                &mut group.body_list,
                &mut stack,
            );
        } else {
            let mut cell_list = Vec::new();
            let mut body_list = Vec::new();
            collect_list_into(tree, &bbox, theta, &mut cell_list, &mut body_list, &mut stack);
            walks.groups.push(WalkGroup { bodies: bodies.to_vec(), bbox, cell_list, body_list });
        }
    }
    scratch.put("list-stack", stack);
}

/// Traverses the tree once for a group box, splitting accepted cells from
/// leaf bodies. Public so alternative walk generators (the GPU tree
/// pipeline's emit kernel) produce lists with the exact traversal order of
/// the host path.
pub fn collect_list(tree: &Octree, bbox: &Aabb, theta: OpeningAngle) -> (Vec<u32>, Vec<u32>) {
    let mut cells = Vec::new();
    let mut bodies = Vec::new();
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    collect_list_into(tree, bbox, theta, &mut cells, &mut bodies, &mut stack);
    (cells, bodies)
}

/// [`collect_list`] into caller-provided buffers (cleared on entry), with a
/// reusable traversal stack.
pub fn collect_list_into(
    tree: &Octree,
    bbox: &Aabb,
    theta: OpeningAngle,
    cells: &mut Vec<u32>,
    bodies: &mut Vec<u32>,
    stack: &mut Vec<u32>,
) {
    cells.clear();
    bodies.clear();
    stack.clear();
    if tree.root().body_count > 0 {
        stack.push(0);
    }
    while let Some(idx) = stack.pop() {
        let node = &tree.nodes()[idx as usize];
        if accepts_group(node, bbox, theta) {
            cells.push(idx);
        } else if node.is_leaf {
            bodies.extend_from_slice(tree.bodies_of(node));
        } else {
            stack.extend(node.child_indices());
        }
    }
}

/// Reference CPU evaluation of a walk set: the semantics every GPU walk
/// kernel must reproduce.
pub fn evaluate_walks_cpu(
    walks: &WalkSet,
    tree: &Octree,
    set: &ParticleSet,
    params: &GravityParams,
    acc: &mut [Vec3],
) -> WalkStats {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    let pos = set.pos();
    let mass = set.mass();
    let eps_sq = params.eps_sq();
    let mut stats = WalkStats::default();
    for group in &walks.groups {
        for &i in &group.bodies {
            let i = i as usize;
            let xi = pos[i];
            let mut a = Vec3::ZERO;
            for &c in &group.cell_list {
                let node = &tree.nodes()[c as usize];
                a += pair_acceleration(xi, node.com, node.mass, eps_sq);
                stats.cell_interactions += 1;
            }
            for &j in &group.body_list {
                let j = j as usize;
                if j != i {
                    a += pair_acceleration(xi, pos[j], mass[j], eps_sq);
                    stats.body_interactions += 1;
                }
            }
            acc[i] = a * params.g;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use nbody_core::gravity::{accelerations_pp, max_relative_error};
    use nbody_core::testutil::random_set;

    fn setup(n: usize, seed: u64, walk_size: usize) -> (ParticleSet, Octree, WalkSet) {
        let set = random_set(n, seed);
        let tree = Octree::build(&set, TreeParams::default());
        let walks = build_walks(&tree, &set, OpeningAngle::new(0.5), walk_size);
        (set, tree, walks)
    }

    #[test]
    fn every_body_appears_in_exactly_one_walk() {
        let (set, _tree, walks) = setup(333, 1, 32);
        let mut seen = vec![false; set.len()];
        for g in &walks.groups {
            for &b in &g.bodies {
                assert!(!seen[b as usize], "body {b} in two walks");
                seen[b as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn walk_sizes_respected() {
        let (_, _, walks) = setup(100, 2, 32);
        assert_eq!(walks.groups.len(), 4); // 32+32+32+4
        for g in &walks.groups[..3] {
            assert_eq!(g.bodies.len(), 32);
        }
        assert_eq!(walks.groups[3].bodies.len(), 4);
    }

    #[test]
    fn walk_evaluation_matches_direct_sum() {
        let (set, tree, walks) = setup(600, 3, 32);
        let params = GravityParams::default();
        let mut exact = vec![Vec3::ZERO; set.len()];
        let mut approx = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        evaluate_walks_cpu(&walks, &tree, &set, &params, &mut approx);
        let err = max_relative_error(&exact, &approx);
        assert!(err < 0.02, "walk evaluation error {err}");
    }

    #[test]
    fn group_mac_at_least_as_accurate_as_point_walks() {
        // group MAC is stricter, so interactions >= per-body BH interactions
        let (set, tree, walks) = setup(800, 4, 32);
        let params = GravityParams::default();
        let mut acc = vec![Vec3::ZERO; set.len()];
        let point_stats = crate::traverse::accelerations_bh(
            &tree,
            &set,
            OpeningAngle::new(0.5),
            &params,
            &mut acc,
        );
        assert!(
            walks.total_interactions() >= point_stats.total_interactions(),
            "walks {} < point {}",
            walks.total_interactions(),
            point_stats.total_interactions()
        );
    }

    #[test]
    fn interactions_formula_matches_evaluation_stats() {
        let (set, tree, walks) = setup(200, 5, 16);
        let params = GravityParams::default();
        let mut acc = vec![Vec3::ZERO; set.len()];
        let stats = evaluate_walks_cpu(&walks, &tree, &set, &params, &mut acc);
        assert_eq!(walks.total_interactions(), stats.total_interactions());
    }

    #[test]
    fn bigger_walks_shorter_total_but_longer_each() {
        let (_, _, small) = setup(1024, 6, 8);
        let (_, _, big) = setup(1024, 6, 64);
        assert!(big.groups.len() < small.groups.len());
        // fewer traversals but each list serves more bodies; total
        // interactions grow with walk size (lists get conservative)
        assert!(big.total_interactions() >= small.total_interactions());
    }

    #[test]
    fn list_stats_helpers() {
        let (_, _, walks) = setup(500, 7, 32);
        assert!(walks.max_list_len() > 0);
        assert!(walks.list_len_cv() >= 0.0);
        let g = &walks.groups[0];
        assert_eq!(g.list_len(), g.cell_list.len() + g.body_list.len());
    }

    #[test]
    #[should_panic(expected = "walk_size must be positive")]
    fn zero_walk_size_panics() {
        let set = random_set(10, 8);
        let tree = Octree::build(&set, TreeParams::default());
        build_walks(&tree, &set, OpeningAngle::default(), 0);
    }

    #[test]
    fn build_walks_into_matches_build_walks() {
        let (set, tree, fresh) = setup(500, 10, 32);
        let mut scratch = par::arena::Scratch::new();
        // cold start from an empty set of walks
        let mut walks = WalkSet { groups: Vec::new(), theta: OpeningAngle::new(0.9), walk_size: 1 };
        build_walks_into(&mut walks, &tree, &set, OpeningAngle::new(0.5), 32, &mut scratch);
        assert_eq!(walks, fresh);
        // rebuild over stale contents (different walk size: more groups than needed)
        build_walks_into(&mut walks, &tree, &set, OpeningAngle::new(0.5), 8, &mut scratch);
        assert_eq!(walks, build_walks(&tree, &set, OpeningAngle::new(0.5), 8));
        // and shrink back, reusing capacity
        build_walks_into(&mut walks, &tree, &set, OpeningAngle::new(0.5), 32, &mut scratch);
        assert_eq!(walks, fresh);
    }

    #[test]
    fn ranged_build_matches_slices_of_the_full_build() {
        let (set, tree, full) = setup(700, 11, 32);
        let num_walks = full.groups.len();
        for (a, b) in [(0, num_walks), (0, 3), (3, 9), (num_walks - 1, num_walks)] {
            let part = build_walks_range(&tree, &set, OpeningAngle::new(0.5), 32, a..b);
            assert_eq!(part.groups.as_slice(), &full.groups[a..b], "range {a}..{b}");
        }
        // empty range is fine
        let empty = build_walks_range(&tree, &set, OpeningAngle::new(0.5), 32, 5..5);
        assert!(empty.groups.is_empty());
    }

    #[test]
    fn self_interactions_excluded_from_count() {
        // a single walk covering everything: bodies interact with all listed
        // bodies except themselves
        let set = random_set(20, 9);
        let tree = Octree::build(&set, TreeParams { leaf_capacity: 4 });
        let walks = build_walks(&tree, &set, OpeningAngle::new(1e-6), 20);
        // θ→0 forces all-direct: one walk, body list = all 20 bodies
        assert_eq!(walks.groups.len(), 1);
        let g = &walks.groups[0];
        assert!(g.cell_list.is_empty());
        assert_eq!(g.body_list.len(), 20);
        assert_eq!(g.interactions(), 20 * 19);
    }
}
