//! [`BarnesHut`]: the treecode as a drop-in [`ForceEngine`].
//!
//! Rebuilds the octree every evaluation (positions move every step), walks
//! per body, and keeps cumulative statistics so the harness can report
//! interaction counts and host-side tree time.

use crate::mac::OpeningAngle;
use crate::multipole::{accelerations_bh_quad, compute_quadrupoles};
use crate::traverse::{accelerations_bh_scratch, WalkStats};
use crate::tree::{Octree, TreeParams};
use nbody_core::body::ParticleSet;
use nbody_core::gravity::GravityParams;
use nbody_core::integrator::ForceEngine;
use nbody_core::vec3::Vec3;
use std::time::Duration;

/// CPU Barnes-Hut force engine.
#[derive(Debug, Clone)]
pub struct BarnesHut {
    /// Gravity model.
    pub params: GravityParams,
    /// Opening angle.
    pub theta: OpeningAngle,
    /// Tree build parameters.
    pub tree_params: TreeParams,
    /// Use quadrupole-corrected cell interactions (extension beyond the
    /// paper's monopole-only cells; ~10× lower error at the same θ).
    pub quadrupoles: bool,
    /// Rebuild the tree topology every this many evaluations; in between,
    /// the tree is only *refitted* (multipoles recomputed on the frozen
    /// topology) — the standard cheap update. 1 = always rebuild.
    pub rebuild_interval: u64,
    cached_tree: Option<Octree>,
    /// Pooled buffers (bucketing scratch, traversal stack) persisting across
    /// evaluations; cloning an engine starts with a cold arena.
    scratch: par::arena::Scratch,
    evaluations: u64,
    stats: WalkStats,
    tree_time: Duration,
    walk_time: Duration,
}

impl BarnesHut {
    /// Creates an engine with θ = 0.5 and default tree parameters.
    pub fn new(params: GravityParams) -> Self {
        Self::with_theta(params, OpeningAngle::default())
    }

    /// Creates an engine with an explicit opening angle.
    pub fn with_theta(params: GravityParams, theta: OpeningAngle) -> Self {
        Self {
            params,
            theta,
            tree_params: TreeParams::default(),
            quadrupoles: false,
            rebuild_interval: 1,
            cached_tree: None,
            scratch: par::arena::Scratch::new(),
            evaluations: 0,
            stats: WalkStats::default(),
            tree_time: Duration::ZERO,
            walk_time: Duration::ZERO,
        }
    }

    /// Enables quadrupole-corrected cells (builder style).
    pub fn with_quadrupoles(mut self) -> Self {
        self.quadrupoles = true;
        self
    }

    /// Rebuilds topology only every `k` evaluations, refitting in between
    /// (builder style).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_rebuild_interval(mut self, k: u64) -> Self {
        assert!(k >= 1, "rebuild interval must be >= 1");
        self.rebuild_interval = k;
        self
    }

    /// Cumulative walk statistics over all evaluations.
    pub fn stats(&self) -> WalkStats {
        self.stats
    }

    /// Number of force evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Wall time spent building trees.
    pub fn tree_time(&self) -> Duration {
        self.tree_time
    }

    /// Wall time spent walking.
    pub fn walk_time(&self) -> Duration {
        self.walk_time
    }

    /// Resets the cumulative counters.
    pub fn reset_stats(&mut self) {
        self.evaluations = 0;
        self.stats = WalkStats::default();
        self.tree_time = Duration::ZERO;
        self.walk_time = Duration::ZERO;
    }
}

impl ForceEngine for BarnesHut {
    fn accelerations(&mut self, set: &ParticleSet, acc: &mut [Vec3]) {
        let t0 = std::time::Instant::now();
        let needs_rebuild = match &self.cached_tree {
            None => true,
            Some(t) => {
                t.order().len() != set.len()
                    || self.evaluations.is_multiple_of(self.rebuild_interval)
            }
        };
        if needs_rebuild {
            // rebuild into the existing node pool when possible; identical
            // output to a fresh build, without the per-step allocations
            match self.cached_tree.as_mut() {
                Some(tree) if tree.params() == self.tree_params => {
                    tree.rebuild(set, &mut self.scratch)
                }
                _ => self.cached_tree = Some(Octree::build(set, self.tree_params)),
            }
        } else if let Some(tree) = self.cached_tree.as_mut() {
            tree.refit(set);
        }
        let tree = self.cached_tree.as_ref().expect("tree just ensured");
        let t1 = std::time::Instant::now();
        let stats = if self.quadrupoles {
            let quads = compute_quadrupoles(tree, set);
            accelerations_bh_quad(tree, &quads, set, self.theta, &self.params, acc)
        } else {
            accelerations_bh_scratch(tree, set, self.theta, &self.params, acc, &mut self.scratch)
        };
        let t2 = std::time::Instant::now();
        self.tree_time += t1 - t0;
        self.walk_time += t2 - t1;
        self.stats += stats;
        self.evaluations += 1;
    }

    fn name(&self) -> &str {
        if self.quadrupoles {
            "barnes-hut-quad"
        } else {
            "barnes-hut"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::energy::total_energy;
    use nbody_core::integrator::{run, LeapfrogKdk};
    use nbody_core::testutil::random_set;

    #[test]
    fn engine_fills_accelerations() {
        let set = random_set(100, 1);
        let mut engine = BarnesHut::new(GravityParams::default());
        let mut acc = vec![Vec3::ZERO; set.len()];
        engine.accelerations(&set, &mut acc);
        assert!(acc.iter().all(|a| a.is_finite()));
        assert!(acc.iter().any(|a| a.norm() > 0.0));
        assert_eq!(engine.evaluations(), 1);
        assert!(engine.stats().total_interactions() > 0);
    }

    #[test]
    fn engine_tracks_time_split() {
        let set = random_set(500, 2);
        let mut engine = BarnesHut::new(GravityParams::default());
        let mut acc = vec![Vec3::ZERO; set.len()];
        engine.accelerations(&set, &mut acc);
        assert!(engine.tree_time() > Duration::ZERO);
        assert!(engine.walk_time() > Duration::ZERO);
        engine.reset_stats();
        assert_eq!(engine.evaluations(), 0);
        assert_eq!(engine.tree_time(), Duration::ZERO);
    }

    #[test]
    fn integration_with_bh_conserves_energy_roughly() {
        let mut set = random_set(150, 3);
        set.recenter();
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let mut engine = BarnesHut::new(params);
        let e0 = total_energy(&set, &params);
        run(&mut set, &mut engine, &LeapfrogKdk, 2e-4, 50);
        let e1 = total_energy(&set, &params);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.05, "energy drift {drift}");
    }

    #[test]
    fn name_reported() {
        assert_eq!(BarnesHut::new(GravityParams::default()).name(), "barnes-hut");
        assert_eq!(
            BarnesHut::new(GravityParams::default()).with_quadrupoles().name(),
            "barnes-hut-quad"
        );
    }

    #[test]
    fn refit_interval_still_conserves_energy() {
        let mut set = random_set(200, 11);
        set.recenter();
        let params = GravityParams { g: 1.0, softening: 0.05 };
        let mut engine = BarnesHut::new(params).with_rebuild_interval(10);
        let e0 = total_energy(&set, &params);
        run(&mut set, &mut engine, &LeapfrogKdk, 5e-4, 60);
        let e1 = total_energy(&set, &params);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.05, "energy drift with refit {drift}");
        assert_eq!(engine.evaluations(), 61);
    }

    #[test]
    #[should_panic(expected = "rebuild interval")]
    fn zero_rebuild_interval_rejected() {
        let _ = BarnesHut::new(GravityParams::default()).with_rebuild_interval(0);
    }

    #[test]
    fn quadrupole_engine_is_more_accurate() {
        use nbody_core::gravity::{accelerations_pp, max_relative_error};
        let set = random_set(400, 5);
        let params = GravityParams { g: 1.0, softening: 0.01 };
        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);

        let theta = crate::mac::OpeningAngle::new(0.8);
        let mut mono = BarnesHut::with_theta(params, theta);
        let mut quad = BarnesHut::with_theta(params, theta).with_quadrupoles();
        let mut a_mono = vec![Vec3::ZERO; set.len()];
        let mut a_quad = vec![Vec3::ZERO; set.len()];
        mono.accelerations(&set, &mut a_mono);
        quad.accelerations(&set, &mut a_quad);
        let e_mono = max_relative_error(&exact, &a_mono);
        let e_quad = max_relative_error(&exact, &a_quad);
        assert!(e_quad <= e_mono, "quad {e_quad} vs mono {e_mono}");
    }
}
