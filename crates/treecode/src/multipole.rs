//! Quadrupole moments — an accuracy extension beyond the paper.
//!
//! The paper's cells carry only monopoles (total mass at the center of
//! mass, Eq. 3). The next term of the multipole expansion is the traceless
//! quadrupole `Q_ij = Σ m (3 d_i d_j − |d|² δ_ij)` with `d` the body offset
//! from the cell's center of mass. Adding it cuts the force error at fixed
//! θ by roughly an order of magnitude — equivalently, it allows a larger θ
//! (shorter interaction lists) at equal accuracy, which is exactly the
//! trade the GPU plans monetize. This module computes quadrupoles bottom-up
//! (with the parallel-axis shift for internal cells) and evaluates the
//! corrected cell interaction.

use crate::mac::OpeningAngle;
use crate::traverse::WalkStats;
use crate::tree::Octree;
use nbody_core::body::ParticleSet;
use nbody_core::gravity::{pair_acceleration, GravityParams};
use nbody_core::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A symmetric traceless 3×3 tensor stored as
/// `[Qxx, Qxy, Qxz, Qyy, Qyz, Qzz]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Quadrupole(pub [f64; 6]);

impl Quadrupole {
    /// The zero tensor.
    pub const ZERO: Self = Self([0.0; 6]);

    /// Accumulates the contribution of a point mass `m` at offset `d` from
    /// the expansion center: `m (3 d dᵀ − |d|² I)`.
    pub fn accumulate_point(&mut self, d: Vec3, m: f64) {
        let d2 = d.norm_sq();
        self.0[0] += m * (3.0 * d.x * d.x - d2);
        self.0[1] += m * 3.0 * d.x * d.y;
        self.0[2] += m * 3.0 * d.x * d.z;
        self.0[3] += m * (3.0 * d.y * d.y - d2);
        self.0[4] += m * 3.0 * d.y * d.z;
        self.0[5] += m * (3.0 * d.z * d.z - d2);
    }

    /// Adds a child tensor shifted by the parallel-axis rule: the child's
    /// own `Q` plus its mass treated as a point at offset `d`.
    pub fn accumulate_shifted(&mut self, child: &Quadrupole, d: Vec3, m: f64) {
        for k in 0..6 {
            self.0[k] += child.0[k];
        }
        self.accumulate_point(d, m);
    }

    /// Matrix-vector product `Q r`.
    pub fn mul_vec(&self, r: Vec3) -> Vec3 {
        let q = &self.0;
        Vec3::new(
            q[0] * r.x + q[1] * r.y + q[2] * r.z,
            q[1] * r.x + q[3] * r.y + q[4] * r.z,
            q[2] * r.x + q[4] * r.y + q[5] * r.z,
        )
    }

    /// Quadratic form `rᵀ Q r`.
    pub fn quadratic_form(&self, r: Vec3) -> f64 {
        r.dot(self.mul_vec(r))
    }

    /// Trace (should be ~0 for a well-formed tensor).
    pub fn trace(&self) -> f64 {
        self.0[0] + self.0[3] + self.0[5]
    }

    /// Frobenius-ish magnitude, for tests.
    pub fn magnitude(&self) -> f64 {
        self.0.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Quadrupole of every node of `tree`, bottom-up (children are stored after
/// parents, so a reverse sweep sees children first).
pub fn compute_quadrupoles(tree: &Octree, set: &ParticleSet) -> Vec<Quadrupole> {
    let pos = set.pos();
    let mass = set.mass();
    let nodes = tree.nodes();
    let mut quads = vec![Quadrupole::ZERO; nodes.len()];
    for i in (0..nodes.len()).rev() {
        let node = &nodes[i];
        let mut q = Quadrupole::ZERO;
        if node.is_leaf {
            for &b in tree.bodies_of(node) {
                let b = b as usize;
                q.accumulate_point(pos[b] - node.com, mass[b]);
            }
        } else {
            for ci in node.child_indices() {
                let child = &nodes[ci as usize];
                let shifted = quads[ci as usize];
                q.accumulate_shifted(&shifted, child.com - node.com, child.mass);
            }
        }
        quads[i] = q;
    }
    quads
}

/// Acceleration at displacement `r = x_target − com` from a cell with mass
/// `m` and quadrupole `q` (G = 1 units, softened monopole):
///
/// `a = a_monopole + G [ Q r / r⁵ − (5/2)(rᵀQr) r / r⁷ ]`.
#[inline]
pub fn cell_acceleration_quad(r_to_com: Vec3, m: f64, q: &Quadrupole, eps_sq: f64) -> Vec3 {
    // monopole, softened (target at origin of r; source direction is -r...)
    // pair_acceleration expects (xi, xj): use xi = 0, xj = r_to_com reversed.
    let mono = pair_acceleration(Vec3::ZERO, -r_to_com, m, eps_sq);
    let r2 = r_to_com.norm_sq();
    if r2 <= 0.0 {
        return mono;
    }
    let r = r2.sqrt();
    let inv_r5 = 1.0 / (r2 * r2 * r);
    let inv_r7 = inv_r5 / r2;
    let qr = q.mul_vec(r_to_com);
    let rqr = r_to_com.dot(qr);
    mono + qr * inv_r5 - r_to_com * (2.5 * rqr * inv_r7)
}

/// Per-body walk with quadrupole-corrected cell interactions.
pub fn acceleration_on_quad(
    tree: &Octree,
    quads: &[Quadrupole],
    set: &ParticleSet,
    target: usize,
    theta: OpeningAngle,
    params: &GravityParams,
    stats: &mut WalkStats,
) -> Vec3 {
    let pos = set.pos();
    let mass = set.mass();
    let xi = pos[target];
    let eps_sq = params.eps_sq();
    let mut acc = Vec3::ZERO;
    let mut stack: Vec<u32> = Vec::with_capacity(64);
    if tree.root().body_count > 0 {
        stack.push(0);
    }
    while let Some(idx) = stack.pop() {
        let node = &tree.nodes()[idx as usize];
        stats.nodes_visited += 1;
        if crate::mac::accepts_point(node, xi, theta) {
            let r = xi - node.com;
            acc += cell_acceleration_quad(r, node.mass, &quads[idx as usize], eps_sq);
            stats.cell_interactions += 1;
        } else if node.is_leaf {
            for &b in tree.bodies_of(node) {
                let b = b as usize;
                if b != target {
                    acc += pair_acceleration(xi, pos[b], mass[b], eps_sq);
                    stats.body_interactions += 1;
                }
            }
        } else {
            stack.extend(node.child_indices());
        }
    }
    acc * params.g
}

/// Accelerations on every body with quadrupole-corrected walks. Chunked
/// over `par` worker threads like
/// [`accelerations_bh`](crate::traverse::accelerations_bh), with the same
/// thread-count-invariance guarantee.
pub fn accelerations_bh_quad(
    tree: &Octree,
    quads: &[Quadrupole],
    set: &ParticleSet,
    theta: OpeningAngle,
    params: &GravityParams,
    acc: &mut [Vec3],
) -> WalkStats {
    assert_eq!(acc.len(), set.len(), "acceleration buffer length mismatch");
    let chunks = par::map_chunks(set.len(), |range| {
        let mut stats = WalkStats::default();
        let accs: Vec<Vec3> = range
            .clone()
            .map(|i| acceleration_on_quad(tree, quads, set, i, theta, params, &mut stats))
            .collect();
        (range, accs, stats)
    });
    let mut stats = WalkStats::default();
    for (range, accs, chunk_stats) in chunks {
        acc[range].copy_from_slice(&accs);
        stats += chunk_stats;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::accelerations_bh;
    use crate::tree::TreeParams;
    use nbody_core::body::Body;
    use nbody_core::gravity::{accelerations_pp, max_relative_error};
    use nbody_core::testutil::random_set;

    #[test]
    fn quadrupole_is_traceless() {
        let mut q = Quadrupole::ZERO;
        let mut rng = nbody_core::testutil::XorShift64::new(4);
        for _ in 0..50 {
            q.accumulate_point(rng.uniform_vec3(-2.0, 2.0), rng.uniform(0.1, 3.0));
        }
        assert!(q.trace().abs() < 1e-9 * q.magnitude().max(1.0), "trace {}", q.trace());
    }

    #[test]
    fn symmetric_mass_distribution_has_small_quadrupole() {
        // two equal masses symmetric about the origin along x have a pure
        // axial quadrupole; four arranged at tetrahedron-ish symmetry cancel
        let mut q = Quadrupole::ZERO;
        q.accumulate_point(Vec3::new(1.0, 0.0, 0.0), 1.0);
        q.accumulate_point(Vec3::new(-1.0, 0.0, 0.0), 1.0);
        // Qxx = 2*(3-1)=4, Qyy = Qzz = -2
        assert!((q.0[0] - 4.0).abs() < 1e-12);
        assert!((q.0[3] + 2.0).abs() < 1e-12);
        assert!((q.0[5] + 2.0).abs() < 1e-12);
        assert!(q.trace().abs() < 1e-12);
    }

    #[test]
    fn parallel_axis_shift_matches_direct_accumulation() {
        // quadrupole of a cloud about P computed directly must equal the
        // shifted child tensors
        let mut rng = nbody_core::testutil::XorShift64::new(6);
        let pts: Vec<(Vec3, f64)> =
            (0..20).map(|_| (rng.uniform_vec3(-1.0, 1.0), rng.uniform(0.5, 2.0))).collect();
        let center = Vec3::new(0.3, -0.2, 0.1);

        let mut direct = Quadrupole::ZERO;
        for &(p, m) in &pts {
            direct.accumulate_point(p - center, m);
        }

        // split into two halves, each with its own com+tensor, then shift
        let half = pts.len() / 2;
        let part = |slice: &[(Vec3, f64)]| {
            let m: f64 = slice.iter().map(|&(_, m)| m).sum();
            let com: Vec3 = slice.iter().map(|&(p, pm)| p * pm).sum::<Vec3>() / m;
            let mut q = Quadrupole::ZERO;
            for &(p, pm) in slice {
                q.accumulate_point(p - com, pm);
            }
            (m, com, q)
        };
        let (m1, c1, q1) = part(&pts[..half]);
        let (m2, c2, q2) = part(&pts[half..]);
        let mut combined = Quadrupole::ZERO;
        combined.accumulate_shifted(&q1, c1 - center, m1);
        combined.accumulate_shifted(&q2, c2 - center, m2);

        for k in 0..6 {
            assert!(
                (combined.0[k] - direct.0[k]).abs() < 1e-9 * direct.magnitude().max(1.0),
                "component {k}: {} vs {}",
                combined.0[k],
                direct.0[k]
            );
        }
    }

    #[test]
    fn quadrupole_correction_reduces_walk_error() {
        let set = random_set(800, 8);
        let params = GravityParams { g: 1.0, softening: 0.01 };
        let theta = OpeningAngle::new(0.7); // loose, so the correction matters
        let tree = Octree::build(&set, TreeParams::default());
        let quads = compute_quadrupoles(&tree, &set);

        let mut exact = vec![Vec3::ZERO; set.len()];
        accelerations_pp(&set, &params, &mut exact);
        let mut mono = vec![Vec3::ZERO; set.len()];
        accelerations_bh(&tree, &set, theta, &params, &mut mono);
        let mut quad = vec![Vec3::ZERO; set.len()];
        accelerations_bh_quad(&tree, &quads, &set, theta, &params, &mut quad);

        // mean relative error: the quadrupole term cuts the typical cell
        // error by (l/D) per accepted cell; the max error can be dominated
        // by a single near-leaf body pair, so compare means and require the
        // max not to regress
        let mean_err = |approx: &[Vec3]| -> f64 {
            exact
                .iter()
                .zip(approx)
                .map(|(e, a)| (*e - *a).norm() / e.norm().max(1e-12))
                .sum::<f64>()
                / exact.len() as f64
        };
        let e_mono = mean_err(&mono);
        let e_quad = mean_err(&quad);
        assert!(
            e_quad < e_mono * 0.5,
            "quadrupole (mean {e_quad}) should clearly beat monopole (mean {e_mono})"
        );
        assert!(max_relative_error(&exact, &quad) <= max_relative_error(&exact, &mono));
    }

    #[test]
    fn cell_acceleration_reduces_to_monopole_for_zero_quadrupole() {
        let r = Vec3::new(1.0, 2.0, -0.5);
        let a = cell_acceleration_quad(r, 3.0, &Quadrupole::ZERO, 1e-4);
        let mono = pair_acceleration(Vec3::ZERO, -r, 3.0, 1e-4);
        assert!((a - mono).norm() < 1e-15);
    }

    #[test]
    fn two_point_cell_quadrupole_matches_direct_sum_far_away() {
        // a cell of two separated masses, seen from far: quadrupole
        // expansion must track the exact field much better than monopole
        let bodies = [
            Body::at_rest(Vec3::new(0.4, 0.0, 0.0), 1.0),
            Body::at_rest(Vec3::new(-0.4, 0.0, 0.0), 1.0),
        ];
        let com = Vec3::ZERO;
        let mut q = Quadrupole::ZERO;
        for b in &bodies {
            q.accumulate_point(b.pos - com, b.mass);
        }
        let target = Vec3::new(0.0, 3.0, 0.0); // perpendicular, sees the quad
        let exact: Vec3 =
            bodies.iter().map(|b| pair_acceleration(target, b.pos, b.mass, 0.0)).sum();
        let mono = pair_acceleration(target, com, 2.0, 0.0);
        let quad = cell_acceleration_quad(target - com, 2.0, &q, 0.0);
        assert!(
            (quad - exact).norm() < 0.2 * (mono - exact).norm(),
            "quad err {} vs mono err {}",
            (quad - exact).norm(),
            (mono - exact).norm()
        );
    }
}
