//! Morton-sharded out-of-core domain decomposition.
//!
//! At N ≫ device memory the interaction-list working set (not the bodies)
//! blows the budget: a walk's packed list is hundreds of entries per ~64
//! targets. [`MortonShards`] cuts the key-sorted body set into contiguous
//! key-range shards, each a run of **whole walk groups** of the global walk
//! grid. Because every walk's interaction list — and therefore every force
//! it produces — depends only on the (shared, far smaller) tree and its own
//! bodies, evaluating the shards in sequence and concatenating their
//! accelerations is *bit-exact* against the unsharded run for any shard
//! count and any thread count.
//!
//! Shard boundaries are restricted to eligible walk-grid splits
//! ([`crate::morton::eligible_walk_splits`]): an equal-Morton-key run
//! (duplicate or clamped positions) is never divided, so shard membership is
//! a deterministic function of the key sequence with ties broken on body
//! index. The degenerate all-same-position workload has no eligible split
//! and always collapses to one shard.

use crate::morton::eligible_walk_splits;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One shard: a contiguous run of walk groups of the global walk grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MortonShard {
    /// First walk index of the shard (inclusive, global walk grid).
    pub walk_start: usize,
    /// One past the last walk index (exclusive).
    pub walk_end: usize,
}

impl MortonShard {
    /// Number of walk groups in the shard.
    pub fn num_walks(&self) -> usize {
        self.walk_end - self.walk_start
    }
}

/// A complete decomposition of the walk grid into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MortonShards {
    shards: Vec<MortonShard>,
    walk_size: usize,
    num_bodies: usize,
}

impl MortonShards {
    /// The trivial single-shard decomposition (the unsharded reference).
    pub fn unsharded(num_bodies: usize, walk_size: usize) -> Self {
        assert!(walk_size > 0, "walk_size must be positive");
        let num_walks = num_bodies.div_ceil(walk_size);
        Self {
            shards: vec![MortonShard { walk_start: 0, walk_end: num_walks }],
            walk_size,
            num_bodies,
        }
    }

    /// Cuts the walk grid into (up to) `shard_count` shards of near-equal
    /// walk counts, snapping every cut to the nearest eligible split so
    /// equal-key runs stay whole. Fewer shards result when eligible splits
    /// run out (one shard for the degenerate all-same-key workload).
    ///
    /// `keys` are the Morton keys of the bodies **in evaluation order**
    /// (tree order), from [`crate::morton::keys_in_order`].
    ///
    /// # Panics
    /// Panics if `walk_size == 0` or `shard_count == 0`.
    pub fn by_count(keys: &[u64], walk_size: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "shard_count must be positive");
        let eligible = eligible_walk_splits(keys, walk_size);
        let num_walks = keys.len().div_ceil(walk_size);
        let mut cuts: Vec<usize> = Vec::with_capacity(shard_count.saturating_sub(1));
        for i in 1..shard_count.min(num_walks.max(1)) {
            let target = i * num_walks / shard_count;
            // nearest eligible split, ties to the smaller; strictly after the
            // previous cut so shards stay non-empty
            let floor = cuts.last().copied().unwrap_or(0);
            let pick = eligible
                .iter()
                .copied()
                .filter(|&e| e > floor)
                .min_by_key(|&e| (e.abs_diff(target), e));
            match pick {
                Some(e) => cuts.push(e),
                None => break,
            }
        }
        Self::from_cuts(&cuts, num_walks, walk_size, keys.len())
    }

    /// Greedy budget-driven decomposition: walks accumulate into the current
    /// shard until the estimated device footprint would exceed
    /// `budget_bytes`, then the shard is cut at the first eligible split.
    /// `bytes_per_walk[w]` estimates walk `w`'s device bytes (packed list
    /// data + targets); `fixed_bytes` is the per-shard resident overhead
    /// (bodies + tree halo), charged to every shard. A single walk over
    /// budget still forms its own shard — the decomposition always covers
    /// the grid.
    ///
    /// # Panics
    /// Panics if `walk_size == 0` or `bytes_per_walk` is shorter than the
    /// walk grid.
    pub fn by_budget(
        keys: &[u64],
        walk_size: usize,
        bytes_per_walk: &[usize],
        fixed_bytes: usize,
        budget_bytes: usize,
    ) -> Self {
        let num_walks = keys.len().div_ceil(walk_size);
        assert!(
            bytes_per_walk.len() >= num_walks,
            "need a byte estimate for each of the {num_walks} walks"
        );
        let eligible = eligible_walk_splits(keys, walk_size);
        let mut next_eligible = eligible.iter().copied().peekable();
        let mut cuts = Vec::new();
        let mut shard_bytes = fixed_bytes;
        let mut shard_start = 0_usize;
        for (w, &wb) in bytes_per_walk.iter().enumerate().take(num_walks) {
            // advance to the first eligible split at or past this walk
            while next_eligible.peek().is_some_and(|&e| e < w) {
                next_eligible.next();
            }
            let over = shard_bytes + wb > budget_bytes && w > shard_start;
            if over && next_eligible.peek() == Some(&w) {
                cuts.push(w);
                shard_start = w;
                shard_bytes = fixed_bytes;
            }
            shard_bytes += wb;
        }
        Self::from_cuts(&cuts, num_walks, walk_size, keys.len())
    }

    fn from_cuts(cuts: &[usize], num_walks: usize, walk_size: usize, num_bodies: usize) -> Self {
        assert!(walk_size > 0, "walk_size must be positive");
        let mut shards = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &c in cuts {
            debug_assert!(c > start && c < num_walks);
            shards.push(MortonShard { walk_start: start, walk_end: c });
            start = c;
        }
        shards.push(MortonShard { walk_start: start, walk_end: num_walks });
        Self { shards, walk_size, num_bodies }
    }

    /// The shards, in walk-grid order.
    pub fn shards(&self) -> &[MortonShard] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// False: a decomposition always has at least one shard (the empty
    /// grid still yields one empty shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// True when the decomposition is the trivial single shard.
    pub fn is_unsharded(&self) -> bool {
        self.shards.len() == 1
    }

    /// Walk-group size the grid was cut with.
    pub fn walk_size(&self) -> usize {
        self.walk_size
    }

    /// Body-index range (positions in the evaluation order) of one shard.
    pub fn body_range(&self, shard: &MortonShard) -> Range<usize> {
        let start = shard.walk_start * self.walk_size;
        let end = (shard.walk_end * self.walk_size).min(self.num_bodies);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::keys_in_order;
    use nbody_core::body::{Body, ParticleSet};
    use nbody_core::testutil::random_set;
    use nbody_core::vec3::Vec3;

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let set = random_set(n, seed);
        let order = crate::morton::morton_order(&set);
        keys_in_order(&set, &order)
    }

    fn covers_grid(s: &MortonShards, num_walks: usize) {
        assert_eq!(s.shards()[0].walk_start, 0);
        assert_eq!(s.shards().last().unwrap().walk_end, num_walks);
        for w in s.shards().windows(2) {
            assert_eq!(w[0].walk_end, w[1].walk_start, "shards must tile the grid");
            assert!(w[0].num_walks() > 0);
        }
    }

    #[test]
    fn by_count_tiles_the_walk_grid() {
        let keys = keys(1000, 1);
        for count in [1, 2, 7, 64] {
            let s = MortonShards::by_count(&keys, 16, count);
            covers_grid(&s, 1000_usize.div_ceil(16));
            assert!(s.len() <= count, "requested {count}, got {}", s.len());
            // plenty of distinct keys: the full count should be reachable
            assert_eq!(s.len(), count.min(1000_usize.div_ceil(16)));
        }
    }

    #[test]
    fn shard_count_capped_by_walks() {
        let keys = keys(40, 2);
        let s = MortonShards::by_count(&keys, 16, 64); // only 3 walks exist
        assert!(s.len() <= 3);
        covers_grid(&s, 3);
    }

    #[test]
    fn degenerate_all_same_position_is_one_shard() {
        let bodies: Vec<Body> = (0..256).map(|_| Body::at_rest(Vec3::ONE, 1.0)).collect();
        let set = ParticleSet::from_bodies(&bodies);
        let order: Vec<u32> = (0..256).collect();
        let k = keys_in_order(&set, &order);
        let s = MortonShards::by_count(&k, 16, 8);
        assert!(s.is_unsharded(), "equal keys must never split");
        let t = MortonShards::by_budget(&k, 16, &[1 << 20; 16], 0, 1 << 10);
        assert!(t.is_unsharded(), "budget pressure cannot force an ineligible cut");
    }

    #[test]
    fn by_budget_respects_the_cap_where_splits_allow() {
        let keys = keys(4096, 3);
        let num_walks = 4096 / 64;
        let per_walk = vec![1000_usize; num_walks];
        let s = MortonShards::by_budget(&keys, 64, &per_walk, 500, 8_500);
        covers_grid(&s, num_walks);
        assert!(s.len() > 1, "a tight budget must shard");
        for sh in s.shards() {
            let bytes = 500 + sh.num_walks() * 1000;
            assert!(bytes <= 8_500 || sh.num_walks() == 1, "shard over budget: {bytes}");
        }
    }

    #[test]
    fn unsharded_and_body_ranges() {
        let s = MortonShards::unsharded(100, 16);
        assert!(s.is_unsharded());
        assert_eq!(s.walk_size(), 16);
        assert_eq!(s.body_range(&s.shards()[0]), 0..100);
        let keys = keys(100, 4);
        let t = MortonShards::by_count(&keys, 16, 3);
        let total: usize = t.shards().iter().map(|sh| t.body_range(sh).len()).sum();
        assert_eq!(total, 100, "body ranges partition the set");
    }
}
