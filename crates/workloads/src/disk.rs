//! A rotating disk galaxy: exponential surface density, a dominant central
//! mass, and near-circular orbital velocities. This is the "realistic
//! scenario" workload behind the galaxy-collision example and the
//! inhomogeneous-load ablation (disks produce very ragged interaction
//! lists, stressing w-parallel exactly where jw-parallel helps).

use nbody_core::body::{Body, ParticleSet};
use nbody_core::vec3::Vec3;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Disk galaxy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Mass of the central body (bulge/black hole proxy).
    pub central_mass: f64,
    /// Total mass of the disk stars.
    pub disk_mass: f64,
    /// Exponential scale length of the surface density.
    pub scale_length: f64,
    /// Maximum disk radius in scale lengths.
    pub cutoff: f64,
    /// Vertical thickness as a fraction of the scale length.
    pub thickness: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        Self { central_mass: 1.0, disk_mass: 0.25, scale_length: 1.0, cutoff: 6.0, thickness: 0.05 }
    }
}

/// Samples an `n`-star disk (plus one central body, so the set holds
/// `n + 1` particles) spinning in the xy-plane around the origin.
pub fn disk_galaxy(n: usize, params: DiskParams, seed: u64) -> ParticleSet {
    assert!(params.scale_length > 0.0, "scale length must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m_star = params.disk_mass / n.max(1) as f64;
    let rd = params.scale_length;

    let mut set = ParticleSet::with_capacity(n + 1);
    set.push(Body::at_rest(Vec3::ZERO, params.central_mass));

    for _ in 0..n {
        // exponential surface density Σ ∝ exp(-r/rd): sample by rejection
        let r = loop {
            let r: f64 = rng.gen_range(0.0..params.cutoff * rd);
            let y: f64 = rng.gen_range(0.0..1.0);
            if y < (r / rd) * (-r / rd).exp() * std::f64::consts::E {
                break r.max(0.05 * rd);
            }
        };
        let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let z = rng.gen_range(-1.0..1.0) * params.thickness * rd;
        let pos = Vec3::new(r * phi.cos(), r * phi.sin(), z);

        // circular speed from the mass enclosed: central + disk fraction
        let disk_enclosed = params.disk_mass * (1.0 - (1.0 + r / rd) * (-r / rd).exp());
        let v_circ = ((params.central_mass + disk_enclosed) / r).sqrt();
        let vel = Vec3::new(-phi.sin(), phi.cos(), 0.0) * v_circ;

        set.push(Body::new(pos, vel, m_star));
    }
    set
}

/// Rigid-body transform of a particle set: rotate around z by `angle`, then
/// translate by `dx` and boost by `dv`. Used to compose collision scenarios.
pub fn transform(set: &ParticleSet, angle: f64, dx: Vec3, dv: Vec3) -> ParticleSet {
    let (s, c) = angle.sin_cos();
    let rot = |v: Vec3| Vec3::new(c * v.x - s * v.y, s * v.x + c * v.y, v.z);
    set.to_bodies().iter().map(|b| Body::new(rot(b.pos) + dx, rot(b.vel) + dv, b.mass)).collect()
}

/// Merges two particle sets into one.
pub fn merge(a: &ParticleSet, b: &ParticleSet) -> ParticleSet {
    let mut out = a.clone();
    for body in b.to_bodies() {
        out.push(body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::energy::angular_momentum;

    #[test]
    fn star_count_plus_center() {
        let set = disk_galaxy(200, DiskParams::default(), 1);
        assert_eq!(set.len(), 201);
        assert_eq!(set.mass()[0], 1.0); // central body first
    }

    #[test]
    fn disk_is_thin_and_bounded() {
        let p = DiskParams::default();
        let set = disk_galaxy(1000, p, 2);
        for pos in &set.pos()[1..] {
            assert!(pos.z.abs() <= p.thickness * p.scale_length + 1e-12);
            let r = (pos.x * pos.x + pos.y * pos.y).sqrt();
            assert!(r <= p.cutoff * p.scale_length);
        }
    }

    #[test]
    fn net_rotation_about_z() {
        let set = disk_galaxy(2000, DiskParams::default(), 3);
        let l = angular_momentum(&set);
        assert!(l.z > 0.0, "disk should spin counter-clockwise: {l:?}");
        assert!(l.z.abs() > 10.0 * l.x.abs().max(l.y.abs()));
    }

    #[test]
    fn stars_move_near_circular_speed() {
        let p = DiskParams { disk_mass: 0.0, ..Default::default() };
        // massless disk: v = sqrt(M_c / r) exactly
        let set = disk_galaxy(100, DiskParams { disk_mass: 1e-9, ..p }, 4);
        for i in 1..set.len() {
            let pos = set.pos()[i];
            let r = (pos.x * pos.x + pos.y * pos.y).sqrt();
            let v = set.vel()[i].norm();
            let expect = (1.0 / r).sqrt();
            assert!((v - expect).abs() / expect < 0.01, "v {v} vs {expect}");
        }
    }

    #[test]
    fn transform_rotates_and_shifts() {
        let set = disk_galaxy(10, DiskParams::default(), 5);
        let moved = transform(&set, 0.0, Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(moved.len(), set.len());
        assert!((moved.pos()[0] - Vec3::new(10.0, 0.0, 0.0)).norm() < 1e-12);
        assert!((moved.vel()[0] - Vec3::new(0.0, 1.0, 0.0)).norm() < 1e-12);
        // rotation by π flips x of a body on the +x axis
        let quarter = transform(&set, std::f64::consts::PI, Vec3::ZERO, Vec3::ZERO);
        for (a, b) in set.pos().iter().zip(quarter.pos()) {
            assert!((a.x + b.x).abs() < 1e-9);
            assert!((a.y + b.y).abs() < 1e-9);
            assert!((a.z - b.z).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_concatenates() {
        let a = disk_galaxy(10, DiskParams::default(), 6);
        let b = disk_galaxy(20, DiskParams::default(), 7);
        let m = merge(&a, &b);
        assert_eq!(m.len(), a.len() + b.len());
        assert!((m.total_mass() - a.total_mass() - b.total_mass()).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            disk_galaxy(64, DiskParams::default(), 8),
            disk_galaxy(64, DiskParams::default(), 8)
        );
    }
}
