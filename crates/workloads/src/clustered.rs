//! Hierarchically clustered initial conditions: `k` Plummer sub-clusters
//! scattered in a large volume. This is the adversarial workload for
//! w-parallel — walk interaction lists become strongly ragged (walks inside
//! a dense sub-cluster see long direct lists; walks in the void see a few
//! distant monopoles), which is precisely the load imbalance jw-parallel's
//! slicing removes. Used by the imbalance ablation.

use crate::plummer::{plummer, PlummerParams};
use nbody_core::body::{Body, ParticleSet};
use nbody_core::vec3::Vec3;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the clustered workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredParams {
    /// Number of sub-clusters.
    pub clusters: usize,
    /// Radius of the region the sub-cluster centers are scattered in.
    pub region_radius: f64,
    /// Scale radius of each sub-cluster (much smaller than the region for a
    /// strongly clustered field).
    pub cluster_scale: f64,
    /// Total mass.
    pub total_mass: f64,
}

impl Default for ClusteredParams {
    fn default() -> Self {
        Self { clusters: 8, region_radius: 20.0, cluster_scale: 0.5, total_mass: 1.0 }
    }
}

/// `n` bodies in `k` Plummer sub-clusters at random centers; deterministic
/// in `seed`. The body count is split as evenly as possible.
pub fn clustered(n: usize, params: ClusteredParams, seed: u64) -> ParticleSet {
    assert!(params.clusters >= 1, "need at least one cluster");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = params.clusters;
    let per = n / k;
    let extra = n % k;

    let mut all: Vec<Body> = Vec::with_capacity(n);
    for c in 0..k {
        let count = per + usize::from(c < extra);
        if count == 0 {
            continue;
        }
        let center = Vec3::new(
            rng.gen_range(-params.region_radius..params.region_radius),
            rng.gen_range(-params.region_radius..params.region_radius),
            rng.gen_range(-params.region_radius..params.region_radius),
        );
        let pp = PlummerParams {
            total_mass: params.total_mass * count as f64 / n as f64,
            scale_radius: params.cluster_scale,
            ..Default::default()
        };
        let sub = plummer(count, pp, seed.wrapping_add(1000 + c as u64));
        for b in sub.to_bodies() {
            all.push(Body::new(b.pos + center, b.vel, b.mass));
        }
    }
    let mut set = ParticleSet::from_bodies(&all);
    set.recenter();
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_count_exact() {
        for n in [100_usize, 101, 107] {
            let set = clustered(n, ClusteredParams::default(), 1);
            assert_eq!(set.len(), n);
        }
    }

    #[test]
    fn deterministic() {
        let p = ClusteredParams::default();
        assert_eq!(clustered(256, p, 5), clustered(256, p, 5));
        assert_ne!(clustered(256, p, 5), clustered(256, p, 6));
    }

    #[test]
    fn field_is_strongly_clustered() {
        // nearest-neighbour distances are tiny relative to the region: the
        // mean NN distance of a clustered field is far below a uniform one
        let p = ClusteredParams::default();
        let set = clustered(512, p, 2);
        let pos = set.pos();
        let mean_nn: f64 = pos
            .iter()
            .enumerate()
            .map(|(i, a)| {
                pos.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, b)| a.distance(*b))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / pos.len() as f64;
        // uniform 512 bodies in radius-20 ball would have NN ~ 2; clusters
        // of scale 0.5 give NN ~ 0.1
        assert!(mean_nn < 0.5, "mean NN distance {mean_nn}");
    }

    #[test]
    fn recentered() {
        let set = clustered(300, ClusteredParams::default(), 3);
        assert!(set.center_of_mass().unwrap().norm() < 1e-9);
        assert!((set.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        clustered(10, ClusteredParams { clusters: 0, ..Default::default() }, 1);
    }
}
