//! Snapshot I/O: serialize particle sets with their provenance so an
//! initial condition or a simulation state can be saved, shared, and
//! reloaded bit-exactly.

use nbody_core::body::ParticleSet;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A particle set plus the metadata needed to interpret it later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Free-form label (workload spec string, experiment id, ...).
    pub label: String,
    /// Simulation time the snapshot was taken at.
    pub time: f64,
    /// The particles.
    pub set: ParticleSet,
}

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl Snapshot {
    /// Wraps a particle set at time `time`.
    pub fn new(label: impl Into<String>, time: f64, set: ParticleSet) -> Self {
        Self { version: SNAPSHOT_VERSION, label: label.into(), time, set }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parses from JSON, validating the schema version.
    pub fn from_json(s: &str) -> Result<Self, SnapshotError> {
        let snap: Snapshot = serde_json::from_str(s).map_err(SnapshotError::Parse)?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(snap.version));
        }
        if !snap.set.all_finite() {
            return Err(SnapshotError::NonFinite);
        }
        Ok(snap)
    }

    /// Writes to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(SnapshotError::Io)?;
        Self::from_json(&text)
    }
}

/// What can go wrong loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// File could not be read.
    Io(std::io::Error),
    /// JSON was malformed.
    Parse(serde_json::Error),
    /// Unsupported schema version.
    Version(u32),
    /// Data contained NaN/∞.
    NonFinite,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Parse(e) => write!(f, "snapshot parse error: {e}"),
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::NonFinite => write!(f, "snapshot contains non-finite values"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plummer::{plummer, PlummerParams};

    #[test]
    fn roundtrip_exact() {
        let set = plummer(64, PlummerParams::default(), 9);
        let snap = Snapshot::new("test", 1.25, set.clone());
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.set, set);
        assert_eq!(back.time, 1.25);
        assert_eq!(back.label, "test");
    }

    #[test]
    fn file_roundtrip() {
        let set = plummer(16, PlummerParams::default(), 10);
        let snap = Snapshot::new("file-test", 0.0, set);
        let dir = std::env::temp_dir().join("nbody-ptpm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let set = plummer(4, PlummerParams::default(), 11);
        let mut snap = Snapshot::new("v", 0.0, set);
        snap.version = 999;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Version(999)));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(Snapshot::from_json("{oops"), Err(SnapshotError::Parse(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Snapshot::load("/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }
}
