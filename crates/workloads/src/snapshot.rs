//! Snapshot I/O: serialize particle sets with their provenance so an
//! initial condition or a simulation state can be saved, shared, and
//! reloaded bit-exactly.
//!
//! Version 2 adds a content checksum (FNV-1a over the simulation time and
//! every particle's f64 bit patterns) so silent corruption of a checkpoint
//! file is detected at load time instead of propagating NaN-free-but-wrong
//! state into a resumed run. Version-1 snapshots (no checksum) still load.

use nbody_core::body::ParticleSet;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A particle set plus the metadata needed to interpret it later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Free-form label (workload spec string, experiment id, ...).
    pub label: String,
    /// Simulation time the snapshot was taken at.
    pub time: f64,
    /// The particles.
    pub set: ParticleSet,
    /// FNV-1a content checksum (version ≥ 2; absent in v1 files).
    pub checksum: Option<u64>,
}

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Oldest schema version this crate still reads.
pub const SNAPSHOT_MIN_VERSION: u32 = 1;

/// FNV-1a over the simulation time and every particle component's f64
/// bit pattern, in storage order. Bit patterns (not values) make the
/// checksum as strict as the bit-exact reload guarantee it protects.
pub fn content_checksum(time: f64, set: &ParticleSet) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(time.to_bits());
    mix(set.len() as u64);
    for i in 0..set.len() {
        let (p, v, m) = (set.pos()[i], set.vel()[i], set.mass()[i]);
        for c in [p.x, p.y, p.z, v.x, v.y, v.z, m] {
            mix(c.to_bits());
        }
    }
    hash
}

impl Snapshot {
    /// Wraps a particle set at time `time`.
    pub fn new(label: impl Into<String>, time: f64, set: ParticleSet) -> Self {
        let checksum = Some(content_checksum(time, &set));
        Self { version: SNAPSHOT_VERSION, label: label.into(), time, set, checksum }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parses from JSON, validating the schema version and (for v2 files)
    /// the content checksum.
    pub fn from_json(s: &str) -> Result<Self, SnapshotError> {
        let snap: Snapshot = serde_json::from_str(s).map_err(SnapshotError::Parse)?;
        if snap.version < SNAPSHOT_MIN_VERSION || snap.version > SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(snap.version));
        }
        if !snap.set.all_finite() {
            return Err(SnapshotError::NonFinite);
        }
        if snap.version >= 2 {
            let expected = snap.checksum.ok_or(SnapshotError::Checksum {
                expected: content_checksum(snap.time, &snap.set),
                found: 0,
            })?;
            let actual = content_checksum(snap.time, &snap.set);
            if actual != expected {
                return Err(SnapshotError::Checksum { expected, found: actual });
            }
        }
        Ok(snap)
    }

    /// Writes to a file atomically: the JSON lands in a `.tmp` sibling
    /// first and is renamed into place, so a crash mid-write can never
    /// leave a truncated snapshot under the final name — at worst it leaves
    /// `.tmp` litter for startup cleanup to delete.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(SnapshotError::Io)?;
        Self::from_json(&text)
    }
}

/// What can go wrong loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// File could not be read.
    Io(std::io::Error),
    /// JSON was malformed.
    Parse(serde_json::Error),
    /// Unsupported schema version.
    Version(u32),
    /// Data contained NaN/∞.
    NonFinite,
    /// Content checksum did not match the stored one (corrupt file).
    Checksum {
        /// Checksum recorded in the file (0 when the field was missing).
        expected: u64,
        /// Checksum recomputed from the loaded data.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Parse(e) => write!(f, "snapshot parse error: {e}"),
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::NonFinite => write!(f, "snapshot contains non-finite values"),
            SnapshotError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch (stored {expected:#018x}, computed {found:#018x}): \
                 file is corrupt"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plummer::{plummer, PlummerParams};

    #[test]
    fn roundtrip_exact() {
        let set = plummer(64, PlummerParams::default(), 9);
        let snap = Snapshot::new("test", 1.25, set.clone());
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.set, set);
        assert_eq!(back.time, 1.25);
        assert_eq!(back.label, "test");
        assert_eq!(back.version, SNAPSHOT_VERSION);
        assert!(back.checksum.is_some());
    }

    #[test]
    fn file_roundtrip() {
        let set = plummer(16, PlummerParams::default(), 10);
        let snap = Snapshot::new("file-test", 0.0, set);
        let dir = std::env::temp_dir().join("nbody-ptpm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_leaving_no_tmp_sibling() {
        let set = plummer(8, PlummerParams::default(), 21);
        let snap = Snapshot::new("atomic", 0.25, set);
        let dir = std::env::temp_dir().join("nbody-ptpm-test-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        // a stale tmp from a previous crash must not confuse the write
        std::fs::write(dir.join("snap.json.tmp"), "{half-written").unwrap();
        snap.save(&path).unwrap();
        assert!(!dir.join("snap.json.tmp").exists(), "tmp renamed away");
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_rejected() {
        let set = plummer(4, PlummerParams::default(), 11);
        let mut snap = Snapshot::new("v", 0.0, set);
        snap.version = 999;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Version(999)));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(Snapshot::from_json("{oops"), Err(SnapshotError::Parse(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Snapshot::load("/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn v1_snapshot_without_checksum_still_loads() {
        let set = plummer(8, PlummerParams::default(), 12);
        let mut snap = Snapshot::new("legacy", 0.5, set.clone());
        snap.version = 1;
        snap.checksum = None;
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.set, set);
        assert_eq!(back.checksum, None);
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let set = plummer(8, PlummerParams::default(), 13);
        let mut snap = Snapshot::new("c", 0.5, set);
        // flip one particle coordinate without touching the stored checksum,
        // as silent bit rot in the file would
        snap.set.pos_mut()[3].x += 0.125;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Checksum { .. }), "got {err}");
        assert!(err.to_string().contains("corrupt"));
    }

    #[test]
    fn v2_snapshot_missing_checksum_rejected() {
        let set = plummer(4, PlummerParams::default(), 14);
        let mut snap = Snapshot::new("m", 0.0, set);
        snap.checksum = None;
        let err = Snapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(matches!(err, SnapshotError::Checksum { .. }));
    }

    #[test]
    fn checksum_depends_on_time_and_every_component() {
        let set = plummer(4, PlummerParams::default(), 15);
        let base = content_checksum(1.0, &set);
        assert_ne!(base, content_checksum(2.0, &set));
        let mut moved = set.clone();
        moved.pos_mut()[2].y += 1e-12;
        assert_ne!(base, content_checksum(1.0, &moved));
        let mut kicked = set.clone();
        kicked.vel_mut()[0].z = -kicked.vel_mut()[0].z;
        assert_ne!(base, content_checksum(1.0, &kicked));
    }
}
