//! Uniform initial conditions: cube and sphere, cold or with thermal
//! velocities. The simplest stress workloads — also the least favourable to
//! the treecode (no hierarchy to exploit), which makes them useful in the
//! plan-comparison ablations.

use nbody_core::body::{Body, ParticleSet};
use nbody_core::vec3::Vec3;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters for uniform workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformParams {
    /// Total mass, split equally.
    pub total_mass: f64,
    /// Cube half-side or sphere radius.
    pub extent: f64,
    /// RMS speed of the isotropic velocity field (0 = cold start).
    pub velocity_rms: f64,
}

impl Default for UniformParams {
    fn default() -> Self {
        Self { total_mass: 1.0, extent: 1.0, velocity_rms: 0.0 }
    }
}

/// `n` equal-mass bodies uniform in the cube `[-extent, extent]³`.
pub fn uniform_cube(n: usize, params: UniformParams, seed: u64) -> ParticleSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = params.total_mass / n.max(1) as f64;
    (0..n)
        .map(|_| {
            let pos = Vec3::new(
                rng.gen_range(-params.extent..params.extent),
                rng.gen_range(-params.extent..params.extent),
                rng.gen_range(-params.extent..params.extent),
            );
            Body::new(pos, velocity(&mut rng, params.velocity_rms), m)
        })
        .collect()
}

/// `n` equal-mass bodies uniform in the ball of radius `extent`.
pub fn uniform_sphere(n: usize, params: UniformParams, seed: u64) -> ParticleSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = params.total_mass / n.max(1) as f64;
    let mut set = ParticleSet::with_capacity(n);
    while set.len() < n {
        let p =
            Vec3::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        if p.norm_sq() <= 1.0 {
            set.push(Body::new(p * params.extent, velocity(&mut rng, params.velocity_rms), m));
        }
    }
    set
}

fn velocity<R: Rng>(rng: &mut R, rms: f64) -> Vec3 {
    if rms <= 0.0 {
        return Vec3::ZERO;
    }
    // isotropic Gaussian components with per-axis sigma = rms / sqrt(3)
    let sigma = rms / 3f64.sqrt();
    let gauss = |rng: &mut R| {
        // Box-Muller
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    Vec3::new(gauss(rng), gauss(rng), gauss(rng)) * sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_bounds_respected() {
        let set = uniform_cube(500, UniformParams { extent: 2.0, ..Default::default() }, 1);
        assert_eq!(set.len(), 500);
        for p in set.pos() {
            assert!(p.abs().max_component() <= 2.0);
        }
    }

    #[test]
    fn sphere_bounds_respected() {
        let set = uniform_sphere(500, UniformParams { extent: 3.0, ..Default::default() }, 2);
        for p in set.pos() {
            assert!(p.norm() <= 3.0 + 1e-12);
        }
    }

    #[test]
    fn cold_start_has_zero_velocities() {
        let set = uniform_cube(100, UniformParams::default(), 3);
        assert!(set.vel().iter().all(|v| *v == Vec3::ZERO));
    }

    #[test]
    fn velocity_rms_approximately_honoured() {
        let p = UniformParams { velocity_rms: 0.5, ..Default::default() };
        let set = uniform_cube(20_000, p, 4);
        let ms: f64 = set.vel().iter().map(|v| v.norm_sq()).sum::<f64>() / set.len() as f64;
        let rms = ms.sqrt();
        assert!((rms - 0.5).abs() < 0.02, "rms {rms}");
    }

    #[test]
    fn deterministic() {
        let p = UniformParams::default();
        assert_eq!(uniform_cube(64, p, 9), uniform_cube(64, p, 9));
        assert_ne!(uniform_cube(64, p, 9), uniform_cube(64, p, 10));
        assert_eq!(uniform_sphere(64, p, 9), uniform_sphere(64, p, 9));
    }

    #[test]
    fn masses_equal_and_total() {
        let p = UniformParams { total_mass: 8.0, ..Default::default() };
        let set = uniform_sphere(256, p, 5);
        assert!((set.total_mass() - 8.0).abs() < 1e-9);
    }
}
