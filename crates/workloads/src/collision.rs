//! Colliding systems: two Plummer clusters (or two disks) on an approach
//! orbit. The cluster-collision workload produces strongly clustered,
//! time-varying density — the regime where the treecode's advantage over PP
//! is largest and where tree rebuild cost (part of "total time" in the
//! paper's Table 2) matters.

use crate::disk::{disk_galaxy, merge, transform, DiskParams};
use crate::plummer::{plummer, PlummerParams};
use nbody_core::body::ParticleSet;
use nbody_core::vec3::Vec3;

/// Parameters for a two-cluster collision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionParams {
    /// Initial center-to-center separation.
    pub separation: f64,
    /// Closing speed of each cluster (along the separation axis).
    pub approach_speed: f64,
    /// Perpendicular impact parameter.
    pub impact_parameter: f64,
}

impl Default for CollisionParams {
    fn default() -> Self {
        Self { separation: 6.0, approach_speed: 0.3, impact_parameter: 1.0 }
    }
}

/// Two equal Plummer spheres of `n/2` bodies each, set on a collision
/// course. Total bodies: `2 * (n / 2)`.
pub fn cluster_collision(n: usize, params: CollisionParams, seed: u64) -> ParticleSet {
    let half = n / 2;
    let pp = PlummerParams::default();
    let a = plummer(half, pp, seed);
    let b = plummer(half, pp, seed.wrapping_add(1));

    let dx = Vec3::new(params.separation / 2.0, params.impact_parameter / 2.0, 0.0);
    let dv = Vec3::new(-params.approach_speed, 0.0, 0.0);
    let a = offset(&a, dx, dv);
    let b = offset(&b, -dx, -dv);
    let mut out = merge(&a, &b);
    out.recenter();
    out
}

/// Two disk galaxies on a collision course (`n/2` stars each plus their
/// central bodies).
pub fn galaxy_collision(n: usize, params: CollisionParams, seed: u64) -> ParticleSet {
    let half = n / 2;
    let dp = DiskParams::default();
    let a = disk_galaxy(half, dp, seed);
    let b = disk_galaxy(half, dp, seed.wrapping_add(1));

    let dx = Vec3::new(params.separation / 2.0, params.impact_parameter / 2.0, 0.0);
    let dv = Vec3::new(-params.approach_speed, 0.0, 0.0);
    // tilt the second disk so the encounter is three-dimensional
    let b = transform(&b, std::f64::consts::FRAC_PI_3, Vec3::ZERO, Vec3::ZERO);
    let a = offset(&a, dx, dv);
    let b = offset(&b, -dx, -dv);
    let mut out = merge(&a, &b);
    out.recenter();
    out
}

fn offset(set: &ParticleSet, dx: Vec3, dv: Vec3) -> ParticleSet {
    transform(set, 0.0, dx, dv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_collision_geometry() {
        let p = CollisionParams::default();
        let set = cluster_collision(1000, p, 1);
        assert_eq!(set.len(), 1000);
        // recentered
        assert!(set.center_of_mass().unwrap().norm() < 1e-9);
        assert!(set.center_of_mass_velocity().unwrap().norm() < 1e-9);
        // two lobes: bounding box x-extent of order the separation
        let (lo, hi) = set.bounding_box().unwrap();
        assert!(hi.x - lo.x > p.separation * 0.8);
    }

    #[test]
    fn clusters_approach_each_other() {
        let set = cluster_collision(2000, CollisionParams::default(), 2);
        // mean vx of the +x half should be negative (moving toward -x)
        let mut vx_right = 0.0;
        let mut count = 0;
        for i in 0..set.len() {
            if set.pos()[i].x > 1.0 {
                vx_right += set.vel()[i].x;
                count += 1;
            }
        }
        assert!(count > 100);
        assert!(vx_right / (count as f64) < -0.1);
    }

    #[test]
    fn galaxy_collision_has_two_centers() {
        let set = galaxy_collision(400, CollisionParams::default(), 3);
        // two central bodies with the big mass
        let heavy: Vec<usize> = (0..set.len()).filter(|&i| set.mass()[i] > 0.5).collect();
        assert_eq!(heavy.len(), 2);
        assert_eq!(set.len(), 402);
    }

    #[test]
    fn deterministic() {
        let p = CollisionParams::default();
        assert_eq!(cluster_collision(100, p, 7), cluster_collision(100, p, 7));
        assert_ne!(cluster_collision(100, p, 7), cluster_collision(100, p, 8));
    }
}
